"""Whole-pipeline invariants over seeded random networks.

For any generated network, under either router engine, with claims on or
off, the pipeline must produce a diagram that (a) passes every legality
rule, (b) whose extracted connectivity equals the net-list for the routed
nets, and (c) survives an ESCHER round-trip geometrically intact.
"""

import pytest

from repro.core.generator import generate
from repro.core.metrics import diagram_metrics
from repro.core.validate import (
    check_diagram,
    connectivity_matches_netlist,
    routing_violations,
)
from repro.formats.escher import read_escher, write_escher
from repro.place.pablo import PabloOptions
from repro.route.eureka import RouterOptions
from repro.workloads.random_nets import random_network

SEEDS = [0, 3, 7, 11]
PABLO = PabloOptions(partition_size=4, box_size=3)


def _geometry(diagram):
    return {
        name: frozenset(route.points()) for name, route in diagram.routes.items()
    }


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("engine", ["state", "intervals"])
def test_generated_diagram_invariants(seed, engine):
    net = random_network(modules=10, extra_nets=5, seed=seed)
    result = generate(net, PABLO, RouterOptions(margin=6, engine=engine))
    check_diagram(result.diagram)
    assert connectivity_matches_netlist(result.diagram)
    metrics = diagram_metrics(result.diagram)
    assert metrics.nets_routed + metrics.nets_failed == metrics.nets_total
    # Sanity on metric consistency.
    assert metrics.length >= 0 and metrics.bends >= 0


@pytest.mark.parametrize("seed", SEEDS)
def test_escher_roundtrip_preserves_everything(seed):
    net = random_network(modules=9, extra_nets=4, seed=seed)
    result = generate(net, PABLO, RouterOptions(margin=6))
    original = result.diagram
    again = read_escher(write_escher(original), net)
    assert {m: p.position for m, p in again.placements.items()} == {
        m: p.position for m, p in original.placements.items()
    }
    assert {m: p.rotation for m, p in again.placements.items()} == {
        m: p.rotation for m, p in original.placements.items()
    }
    assert again.terminal_positions == original.terminal_positions
    assert _geometry(again) == _geometry(original)
    # The round-tripped diagram obeys the same rules.
    assert routing_violations(again) == []


@pytest.mark.parametrize("seed", SEEDS)
def test_claims_never_reduce_success_on_generated_placements(seed):
    net = random_network(modules=10, extra_nets=5, seed=seed)
    with_claims = generate(net, PABLO, RouterOptions(margin=6, claimpoints=True))
    net2 = random_network(modules=10, extra_nets=5, seed=seed)
    without = generate(net2, PABLO, RouterOptions(margin=6, claimpoints=False))
    assert (
        with_claims.metrics.nets_routed >= without.metrics.nets_routed
    )
