"""Tests for the file formats: net-lists (App. A), module descriptions
(App. B), the module library (App. C) and ESCHER files (App. D)."""

import pytest

from repro.core.netlist import NetlistError, Pin, TermType
from repro.formats.library import ModuleLibrary
from repro.formats.module_desc import (
    parse_module_description,
    write_module_description,
)
from repro.formats.netlist_files import (
    build_network,
    load_network_files,
    parse_call_file,
    parse_io_file,
    parse_netlist_file,
    save_network_files,
    write_call_file,
    write_io_file,
    write_netlist_file,
)
from repro.workloads.examples import example2_controller
from repro.workloads.stdlib import instantiate


class TestCallFile:
    def test_parse(self):
        pairs = parse_call_file("u0 buf\nu1\tinv\n\n# comment\nu2 and2\n")
        assert pairs == [("u0", "buf"), ("u1", "inv"), ("u2", "and2")]

    def test_duplicate_instance(self):
        with pytest.raises(NetlistError, match="duplicate"):
            parse_call_file("u buf\nu inv\n")

    def test_wrong_field_count(self):
        with pytest.raises(NetlistError, match="expected 2 fields"):
            parse_call_file("u buf extra\n")


class TestIoFile:
    def test_parse(self):
        pairs = parse_io_file("clk in\nq out\nbus inout\n")
        assert pairs == [
            ("clk", TermType.IN),
            ("q", TermType.OUT),
            ("bus", TermType.INOUT),
        ]

    def test_bad_type(self):
        with pytest.raises(NetlistError):
            parse_io_file("clk sideways\n")


class TestNetlistFile:
    def test_parse_with_root(self):
        records = parse_netlist_file("n1 u0 a\nn1 root clk\n")
        assert records == [("n1", Pin("u0", "a")), ("n1", Pin(None, "clk"))]


class TestRoundtrip:
    def test_network_files_roundtrip(self, tmp_path):
        net = example2_controller()
        paths = save_network_files(net, tmp_path)
        lib = ModuleLibrary.standard()
        loaded = load_network_files(
            paths["netlist"], paths["call"], paths["io"], library=lib
        )
        assert set(loaded.modules) == set(net.modules)
        assert set(loaded.system_terminals) == set(net.system_terminals)
        assert {n: sorted(map(str, obj.pins)) for n, obj in loaded.nets.items()} == {
            n: sorted(map(str, obj.pins)) for n, obj in net.nets.items()
        }

    def test_io_file_optional(self, tmp_path):
        net = example2_controller()
        # Strip the system pins so no io-file is needed.
        for netobj in net.nets.values():
            netobj.pins = [p for p in netobj.pins if not p.is_system]
        net.system_terminals.clear()
        paths = save_network_files(net, tmp_path)
        loaded = load_network_files(
            paths["netlist"], paths["call"], library=ModuleLibrary.standard()
        )
        assert not loaded.system_terminals

    def test_build_network_validates(self):
        lib = ModuleLibrary.standard()
        with pytest.raises(NetlistError):
            build_network("n u0 a\n", "u0 buf\n", library=lib)  # 1-pin net

    def test_writers_produce_records(self):
        net = example2_controller()
        assert len(write_call_file(net).splitlines()) == 16
        assert len(write_io_file(net).splitlines()) == 3
        assert len(write_netlist_file(net).splitlines()) == sum(
            len(n.pins) for n in net.nets.values()
        )


class TestModuleDescription:
    DESC = "module latch 40 30\nin d 0 10\nin clk 0 20\nout q 40 10\n"

    def test_parse_scales_by_ten(self):
        m = parse_module_description(self.DESC)
        assert (m.width, m.height) == (4, 3)
        assert m.terminals["d"].offset == (0, 1)
        assert m.terminals["q"].type is TermType.OUT

    def test_roundtrip(self):
        m = parse_module_description(self.DESC)
        again = parse_module_description(write_module_description(m))
        assert again.width == m.width and again.terminals == m.terminals

    def test_rejects_non_divisible(self):
        with pytest.raises(NetlistError, match="divisible"):
            parse_module_description("module m 45 30\nin d 0 10\n")

    def test_rejects_terminal_off_outline(self):
        with pytest.raises(NetlistError):
            parse_module_description("module m 40 30\nin d 10 10\n")

    def test_rejects_garbage(self):
        with pytest.raises(NetlistError):
            parse_module_description("")
        with pytest.raises(NetlistError):
            parse_module_description("flurb x 1 2\n")
        with pytest.raises(NetlistError, match="no terminals"):
            parse_module_description("module m 40 30\n")


class TestLibrary:
    def test_standard_has_all_templates(self):
        lib = ModuleLibrary.standard()
        assert "buf" in lib and "life_cell" in lib
        assert len(lib) >= 14

    def test_instantiate_fresh_instances(self):
        lib = ModuleLibrary.standard()
        a = lib("buf", "u0")
        b = lib("buf", "u1")
        assert a.name == "u0" and b.name == "u1"
        assert a.template == b.template == "buf"

    def test_unknown_template(self):
        with pytest.raises(NetlistError):
            ModuleLibrary.standard().template("warp_core")

    def test_duplicate_rejected(self):
        lib = ModuleLibrary()
        lib.add(instantiate("buf", "buf"))
        with pytest.raises(NetlistError):
            lib.add(instantiate("buf", "buf"))

    def test_save_load_directory(self, tmp_path):
        lib = ModuleLibrary.standard()
        lib.save(tmp_path)
        loaded = ModuleLibrary.load(tmp_path)
        assert sorted(loaded) == sorted(lib)
        m0, m1 = lib.template("alu"), loaded.template("alu")
        assert m0.width == m1.width and m0.terminals == m1.terminals

    def test_add_description(self):
        lib = ModuleLibrary()
        m = lib.add_description("module latch 40 30\nin d 0 10\nout q 40 10\n")
        assert "latch" in lib
        assert m.template == "latch"
