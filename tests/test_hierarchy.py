"""Tests for hierarchical network descriptions and elaboration."""

import pytest

from repro.core.geometry import Point
from repro.core.hierarchy import HierarchicalDesign, TemplateDefinition
from repro.core.netlist import NetlistError, Pin, TermType
from repro.workloads.stdlib import instantiate, make_module


@pytest.fixture
def design() -> HierarchicalDesign:
    """A two-level design: `pair` wraps two buffers; `top` chains two
    pairs between its ports."""
    d = HierarchicalDesign()
    d.define_leaf(instantiate("buf", "buf"))

    pair_symbol = make_module(
        "pair", 4, 4, [("i", "in", 0, 2), ("o", "out", 4, 2)]
    )
    pair = TemplateDefinition(symbol=pair_symbol)
    pair.add_instance("u0", "buf")
    pair.add_instance("u1", "buf")
    pair.connect("w_in", "u0.a")
    pair.connect("w_mid", "u0.y", "u1.a")
    pair.connect("w_out", "u1.y")
    pair.bind_port("i", "w_in")
    pair.bind_port("o", "w_out")
    d.define(pair)

    top_symbol = make_module(
        "top", 6, 6, [("din", "in", 0, 3), ("dout", "out", 6, 3)]
    )
    top = TemplateDefinition(symbol=top_symbol)
    top.add_instance("p0", "pair")
    top.add_instance("p1", "pair")
    top.connect("t_in", "p0.i")
    top.connect("t_mid", "p0.o", "p1.i")
    top.connect("t_out", "p1.o")
    top.bind_port("din", "t_in")
    top.bind_port("dout", "t_out")
    d.define(top)
    return d


class TestDefinitions:
    def test_duplicate_template(self, design):
        with pytest.raises(NetlistError):
            design.define_leaf(instantiate("buf", "buf"))

    def test_duplicate_instance(self):
        t = TemplateDefinition(symbol=instantiate("buf", "t"))
        t.add_instance("a", "x")
        with pytest.raises(NetlistError):
            t.add_instance("a", "y")

    def test_bind_unknown_port(self):
        t = TemplateDefinition(symbol=instantiate("buf", "t"))
        with pytest.raises(NetlistError):
            t.bind_port("nonexistent", "w")

    def test_bad_pin_spec(self):
        t = TemplateDefinition(symbol=instantiate("buf", "t"))
        with pytest.raises(NetlistError):
            t.connect("w", "no_dot")

    def test_leaf_detection(self, design):
        assert design.template("buf").is_leaf
        assert not design.template("pair").is_leaf
        assert "pair" in design and "warp" not in design


class TestNetworkOf:
    def test_single_level_view(self, design):
        net = design.network_of("top")
        assert set(net.modules) == {"p0", "p1"}
        assert net.modules["p0"].template == "pair"
        assert set(net.system_terminals) == {"din", "dout"}
        net.validate()
        # t_mid connects the two pair symbols.
        assert net.connected("p0", "p1", "t_mid")

    def test_level_is_generatable(self, design):
        from repro.core.generator import generate
        from repro.place.pablo import PabloOptions

        net = design.network_of("top")
        result = generate(net, PabloOptions(partition_size=4, box_size=4))
        assert result.metrics.nets_failed == 0

    def test_unknown_template(self, design):
        with pytest.raises(NetlistError):
            design.network_of("ghost")


class TestElaborate:
    def test_flattens_to_leaves(self, design):
        flat = design.elaborate("top")
        assert sorted(flat.modules) == ["p0/u0", "p0/u1", "p1/u0", "p1/u1"]
        assert all(m.template == "buf" for m in flat.modules.values())
        flat.validate()

    def test_port_stitching(self, design):
        flat = design.elaborate("top")
        # din .. p0/u0.a are one net; p0/u1.y .. p1/u0.a are one net, etc.
        chain = [
            Pin(None, "din"),
            Pin("p0/u0", "a"),
            Pin("p0/u0", "y"),
            Pin("p0/u1", "a"),
            Pin("p0/u1", "y"),
            Pin("p1/u0", "a"),
            Pin("p1/u0", "y"),
            Pin("p1/u1", "a"),
            Pin("p1/u1", "y"),
            Pin(None, "dout"),
        ]
        nets = [flat.net_of(p) for p in chain]
        assert all(n is not None for n in nets)
        # Pairs (0,1), (2,3), (4,5), (6,7), (8,9) share nets.
        for i in range(0, 10, 2):
            assert nets[i].name == nets[i + 1].name
        # And adjacent pairs do not (the buffers separate them).
        assert nets[1].name != nets[2].name

    def test_flat_network_simulates(self, design):
        from repro.sim.behaviors import default_behaviors
        from repro.sim.logic import LogicSimulator

        flat = design.elaborate("top")
        sim = LogicSimulator(flat, default_behaviors(flat))
        sim.set_input("din", 1)
        values = sim.settle()
        assert sim.read_output("dout") == 1
        sim.set_input("din", 0)
        sim.settle()
        assert sim.read_output("dout") == 0

    def test_flat_network_generates(self, design):
        from repro.core.generator import generate
        from repro.core.validate import check_diagram
        from repro.place.pablo import PabloOptions

        flat = design.elaborate("top")
        result = generate(flat, PabloOptions(partition_size=6, box_size=6))
        assert result.metrics.nets_failed == 0
        check_diagram(result.diagram)

    def test_system_terminal_types_preserved(self, design):
        flat = design.elaborate("top")
        assert flat.system_terminals["din"].type is TermType.IN
        assert flat.system_terminals["dout"].type is TermType.OUT


class TestDeepHierarchy:
    def _three_level(self) -> HierarchicalDesign:
        d = HierarchicalDesign()
        d.define_leaf(instantiate("buf", "buf"))
        inner = TemplateDefinition(
            symbol=make_module("inner", 3, 3, [("i", "in", 0, 1), ("o", "out", 3, 1)])
        )
        inner.add_instance("u", "buf")
        inner.connect("a", "u.a")
        inner.connect("y", "u.y")
        inner.bind_port("i", "a")
        inner.bind_port("o", "y")
        d.define(inner)
        mid = TemplateDefinition(
            symbol=make_module("mid", 4, 4, [("i", "in", 0, 2), ("o", "out", 4, 2)])
        )
        mid.add_instance("x0", "inner")
        mid.add_instance("x1", "inner")
        mid.connect("w0", "x0.i")
        mid.connect("w1", "x0.o", "x1.i")
        mid.connect("w2", "x1.o")
        mid.bind_port("i", "w0")
        mid.bind_port("o", "w2")
        d.define(mid)
        top = TemplateDefinition(
            symbol=make_module("deep_top", 5, 5, [("a", "in", 0, 2), ("b", "out", 5, 2)])
        )
        top.add_instance("m", "mid")
        top.connect("t0", "m.i")
        top.connect("t1", "m.o")
        top.bind_port("a", "t0")
        top.bind_port("b", "t1")
        d.define(top)
        return d

    def test_three_levels_flatten(self):
        d = self._three_level()
        flat = d.elaborate("deep_top")
        assert sorted(flat.modules) == ["m/x0/u", "m/x1/u"]
        flat.validate()
        # a .. m/x0/u.a are one net through two levels of ports.
        from repro.core.netlist import Pin

        assert flat.net_of(Pin(None, "a")).name == flat.net_of(Pin("m/x0/u", "a")).name
        assert flat.net_of(Pin("m/x0/u", "y")).name == flat.net_of(Pin("m/x1/u", "a")).name
        assert flat.net_of(Pin(None, "b")).name == flat.net_of(Pin("m/x1/u", "y")).name

    def test_unbound_subport_dangles_quietly(self):
        d = HierarchicalDesign()
        d.define_leaf(instantiate("buf", "buf"))
        inner = TemplateDefinition(
            symbol=make_module("inner2", 3, 3, [("i", "in", 0, 1), ("o", "out", 3, 1)])
        )
        inner.add_instance("u", "buf")
        inner.connect("a", "u.a")
        inner.bind_port("i", "a")
        # port "o" deliberately unbound; u.y dangles inside.
        d.define(inner)
        top = TemplateDefinition(
            symbol=make_module("top2", 4, 4, [("p", "in", 0, 2)])
        )
        top.add_instance("k", "inner2")
        top.connect("w", "k.i")
        top.bind_port("p", "w")
        d.define(top)
        flat = d.elaborate("top2")
        flat.validate()
        assert "k/u" in flat.modules
