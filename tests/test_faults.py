"""Chaos suite: the fault-injection registry itself, plus every
injection point driven end to end — cache corruption recovery, worker
crash supervision, IPC loss, the circuit breaker's trip/heal cycle,
deadline propagation, and journal append failures."""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.faults import (
    CRASH_EXIT_CODE,
    ENV_FAULTS,
    ENV_SEED,
    Fault,
    FaultInjected,
    FaultRegistry,
    FaultSpecError,
    get_faults,
    parse_spec,
    set_faults,
)
from repro.gateway import (
    CircuitBreaker,
    GatewayConfig,
    HttpClient,
    JobJournal,
    WorkerPool,
    start_gateway,
)
from repro.service import JobSpec, ResultCache
from repro.workloads import random_network

from .test_gateway import collect, echo_worker, napping_worker


def spec_for(seed: int = 0, *, modules: int = 5) -> JobSpec:
    return JobSpec.from_network(random_network(modules=modules, seed=seed))


@pytest.fixture(autouse=True)
def _clean_fault_registry():
    """Every test leaves the process-global registry empty."""
    yield
    set_faults(FaultRegistry(""))


# -- spec grammar -----------------------------------------------------------


class TestFaultSpec:
    def test_full_grammar(self):
        table = parse_spec("cache.read=io:0.5,worker.exec=crash,journal.append=sleep:1:2.5")
        assert table["cache.read"].kind == "io"
        assert table["cache.read"].probability == 0.5
        assert table["worker.exec"].kind == "crash"
        assert table["worker.exec"].probability == 1.0
        assert table["journal.append"].arg == 2.5

    def test_empty_and_whitespace(self):
        assert parse_spec("") == {}
        assert parse_spec(" , ,") == {}

    def test_bad_specs_raise(self):
        for bad in ("nokind", "p=warp", "p=io:nan:x", "p=io:2.0", "p=io:0.5:1:extra"):
            with pytest.raises(FaultSpecError):
                parse_spec(bad)

    def test_points_and_roundtrip(self):
        registry = FaultRegistry("a=io:0.25,b=sleep:1:3")
        assert registry.active
        assert registry.points() == {"a": "io:0.25", "b": "sleep:1:3"}
        assert registry.fired() == {"a": 0, "b": 0}


class TestFaultRegistry:
    def test_probability_draws_are_deterministic_per_seed(self):
        def draws(seed):
            fault = Fault("p", "io", probability=0.5, seed=seed)
            return [fault.should_fire() for _ in range(64)]

        assert draws(7) == draws(7)
        assert draws(7) != draws(8)

    def test_check_counts_fires(self):
        registry = FaultRegistry("p=io")
        assert registry.check("other") is None
        assert registry.check("p").kind == "io"
        assert registry.fired() == {"p": 1}

    def test_fire_io_raises_fault_injected(self):
        registry = FaultRegistry("p=io")
        with pytest.raises(FaultInjected) as err:
            registry.fire("p")
        assert isinstance(err.value, OSError)
        assert err.value.point == "p"

    def test_fire_sleep_blocks(self):
        registry = FaultRegistry("p=sleep:1:0.05")
        started = time.perf_counter()
        registry.fire("p")
        assert time.perf_counter() - started >= 0.05

    def test_global_registry_reads_environment(self, monkeypatch):
        monkeypatch.setenv(ENV_FAULTS, "x=io:0.5")
        monkeypatch.setenv(ENV_SEED, "9")
        set_faults(None)  # force a lazy rebuild
        registry = get_faults()
        assert registry.points() == {"x": "io:0.5"}
        assert registry.seed == 9

    def test_inactive_registry_is_a_noop(self):
        registry = FaultRegistry("")
        assert not registry.active
        registry.fire("anything")  # must not raise


# -- cache fault points -----------------------------------------------------


class TestCacheFaults:
    def _cached(self, tmp_path):
        from repro.formats.escher import MAGIC

        cache = ResultCache(tmp_path / "cache")
        spec = spec_for(seed=41)
        cache.put(spec, {"status": "ok", "escher": MAGIC + "\n",
                         "metrics": {}, "timing": {}, "seconds": 0.01})
        return cache, spec

    def test_read_fault_is_a_recovered_miss(self, tmp_path):
        cache, spec = self._cached(tmp_path)
        set_faults(FaultRegistry("cache.read=io"))
        assert cache.get(spec) is None  # absorbed as corruption
        assert cache.stats.corrupt == 1
        assert cache.stats.evictions == 1
        set_faults(FaultRegistry(""))
        # The poisoned entry was evicted; a re-store works again.
        from repro.formats.escher import MAGIC

        cache.put(spec, {"status": "ok", "escher": MAGIC + "\n",
                         "metrics": {}, "timing": {}, "seconds": 0.01})
        assert cache.get(spec) is not None

    def test_write_fault_surfaces_as_oserror(self, tmp_path):
        cache, spec = self._cached(tmp_path)
        set_faults(FaultRegistry("cache.write=io"))
        with pytest.raises(OSError):
            cache.put(spec, {"status": "ok", "escher": "", "metrics": {},
                             "timing": {}, "seconds": 0.0})

    def test_atomic_writes_leave_no_temp_files(self, tmp_path):
        cache, spec = self._cached(tmp_path)
        entry = cache.entry_dir(spec.digest)
        assert not list(entry.glob("*.tmp"))
        assert (entry / "result.json").exists()


# -- worker / IPC fault points (the supervised pool) -------------------------


class TestWorkerFaults:
    def test_worker_exec_crash_is_supervised(self):
        set_faults(FaultRegistry("worker.exec=crash"))
        with WorkerPool(1, worker=echo_worker, poll_interval=0.05,
                        restart_backoff=0.01) as pool:
            (result, attempts), = collect(pool, [{"name": "doomed"}])
            assert result["status"] == "crashed"
            assert attempts == 2
            health = pool.health()
            assert health["worker_restarts"] >= 2
            assert health["alive"] == 1  # supervision replaced the corpse

    def test_ipc_loss_is_reclaimed_by_the_timeout_backstop(self):
        set_faults(FaultRegistry("pool.ipc=io"))
        with WorkerPool(1, worker=echo_worker, timeout=0.3, kill_grace=0.3,
                        poll_interval=0.05) as pool:
            (result, _), = collect(pool, [{"name": "lost"}], timeout=30.0)
            # The work happened but the result message was dropped; the
            # parent's only move is the kill backstop.
            assert result["status"] == "timeout"

    def test_crash_exit_code_is_distinct(self):
        assert CRASH_EXIT_CODE == 13


# -- the circuit breaker ----------------------------------------------------


class TestCircuitBreaker:
    def test_trips_at_threshold_within_window(self):
        now = [0.0]
        breaker = CircuitBreaker(threshold=3, window=10.0, cooldown=5.0,
                                 clock=lambda: now[0])
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.record_failure() is True
        assert breaker.state == "open"
        assert breaker.trips == 1

    def test_old_failures_age_out(self):
        now = [0.0]
        breaker = CircuitBreaker(threshold=2, window=5.0, clock=lambda: now[0])
        breaker.record_failure()
        now[0] = 6.0  # past the window
        assert breaker.record_failure() is False
        assert breaker.state == "closed"

    def test_cooldown_then_half_open_then_heal(self):
        now = [0.0]
        breaker = CircuitBreaker(threshold=1, window=10.0, cooldown=2.0,
                                 clock=lambda: now[0])
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.allow_respawn(0) is False
        now[0] = 2.5
        assert breaker.poll() == "half_open"
        assert breaker.allow_respawn(0) is True   # exactly one probe
        assert breaker.allow_respawn(1) is False
        assert breaker.record_success() is True   # the probe delivered
        assert breaker.state == "closed"
        assert breaker.heals == 1

    def test_half_open_failure_reopens(self):
        now = [0.0]
        breaker = CircuitBreaker(threshold=1, cooldown=1.0, clock=lambda: now[0])
        breaker.record_failure()
        now[0] = 1.5
        breaker.poll()
        assert breaker.record_failure() is True  # the probe died too
        assert breaker.state == "open"
        assert breaker.trips == 2

    def test_pool_breaker_trips_and_heals_on_real_deaths(self):
        """Kill the worker repeatedly from outside: the breaker opens
        (no respawn), cools down, probes, and a delivered result heals
        it and restores the fleet."""
        breaker = CircuitBreaker(threshold=2, window=30.0, cooldown=0.2)
        with WorkerPool(1, worker=echo_worker, poll_interval=0.02,
                        restart_backoff=0.01, breaker=breaker) as pool:
            collect(pool, [{"name": "warm"}])
            for _ in range(2):
                pid = pool.health()["workers"][0]["pid"]
                os.kill(pid, signal.SIGKILL)
                deadline = time.time() + 5.0
                while time.time() < deadline:
                    pool.reap()
                    state = pool.health()
                    if breaker.state == "open" or (
                        state["alive"] == 1
                        and state["workers"][0]["pid"] != pid
                    ):
                        break
                    time.sleep(0.02)
            assert breaker.state == "open"
            assert pool.degraded is True
            time.sleep(0.25)  # cooldown
            assert pool.degraded is False  # polled into half_open
            pool.reap()  # forks the probe worker
            (result, _), = collect(pool, [{"name": "probe"}])
            assert result["status"] == "ok"
            snap = breaker.snapshot()
            assert snap["state"] == "closed"
            assert snap["trips"] >= 1 and snap["heals"] >= 1


# -- degraded cache-only mode over HTTP --------------------------------------


class TestDegradedGateway:
    def test_open_breaker_serves_cache_only(self, tmp_path):
        from repro.formats.escher import MAGIC

        cache = ResultCache(tmp_path / "cache")
        cached_spec = spec_for(seed=51)
        cache.put(cached_spec, {"status": "ok", "escher": MAGIC + "\n",
                                "metrics": {}, "timing": {}, "seconds": 0.01})
        breaker = CircuitBreaker(threshold=1, cooldown=60.0)
        pool = WorkerPool(1, worker=echo_worker, breaker=breaker)
        config = GatewayConfig(workers=1, cache=cache)
        with start_gateway(config, pool=pool) as served:
            with HttpClient("127.0.0.1", served.port) as c:
                # Force the crash-loop verdict deterministically.
                with pool._lock:
                    breaker.record_failure()
                assert pool.degraded is True

                miss = c.post("/v1/jobs", spec_for(seed=52).to_dict())
                assert miss.status == 503
                assert "cache only" in miss.json()["error"]
                assert int(miss.headers["retry-after"]) >= 1

                hit = c.post("/v1/jobs", cached_spec.to_dict())
                assert hit.status == 200
                assert hit.json()["cached"] is True

                health = c.get("/healthz")
                assert health.status == 503
                assert health.json()["status"] == "degraded"
                assert health.json()["pool"]["breaker"]["state"] == "open"

                metrics = c.get("/metrics").body.decode()
                assert 'gateway_breaker_open 1' in metrics
                assert 'gateway_breaker{state="open"} 1' in metrics

                stats = c.get("/v1/stats").json()
                assert stats["breaker"]["state"] == "open"
                assert stats["totals"]["gateway.degraded_rejections"] == 1

                # Heal: the gateway recovers without a restart.
                with pool._lock:
                    breaker.record_success()
                ok = c.post("/v1/jobs", spec_for(seed=53).to_dict())
                assert ok.status == 202
                assert c.get("/healthz").json()["status"] == "ok"


# -- deadline propagation ----------------------------------------------------


class TestDeadlines:
    def test_expired_queued_job_is_cancelled_before_dispatch(self):
        with WorkerPool(1, worker=napping_worker, poll_interval=0.02) as pool:
            results: dict[str, dict] = {}
            done = threading.Event()
            pool.submit({"name": "hog", "nap": 0.6},
                        callback=lambda r, a: results.setdefault("hog", r))

            def on_expired(result, _attempts):
                results["late"] = result
                done.set()

            pool.submit({"name": "late", "nap": 0.0}, callback=on_expired,
                        deadline=time.time() + 0.1)
            assert done.wait(10.0)
            assert results["late"]["status"] == "cancelled"
            assert "deadline" in results["late"]["error"]
            assert pool.health()["deadline_cancelled"] == 1

    def test_worker_budget_is_clamped_to_remaining_deadline(self):
        """No pool timeout, but a 0.5s deadline: the worker's SIGALRM
        budget is the remaining time, so a 30s job dies in well under it."""
        with WorkerPool(1, worker=napping_worker) as pool:
            box: dict[str, dict] = {}
            done = threading.Event()
            started = time.perf_counter()
            pool.submit(
                {"name": "slow", "nap": 30},
                deadline=time.time() + 0.5,
                callback=lambda r, _a: (box.setdefault("r", r), done.set()),
            )
            assert done.wait(15.0)
            assert box["r"]["status"] == "timeout"
            assert time.perf_counter() - started < 10.0

    def test_gateway_deadline_validation(self, tmp_path):
        config = GatewayConfig(workers=1)
        with start_gateway(config) as served:
            with HttpClient("127.0.0.1", served.port) as c:
                bad = c.post("/v1/jobs", spec_for(seed=54).to_dict(),
                             headers={"x-deadline-ms": "soon"})
                assert bad.status == 400
                zero = c.post("/v1/jobs", spec_for(seed=54).to_dict(),
                              headers={"x-deadline-ms": "-5"})
                assert zero.status == 400
                posted = c.post("/v1/jobs",
                                {**spec_for(seed=55).to_dict(), "deadline_ms": 60000})
                assert posted.status == 202
                assert posted.json()["deadline"] is not None


# -- journal fault point -----------------------------------------------------


class TestJournalFaults:
    def test_append_io_fault_raises(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl", fsync="never")
        set_faults(FaultRegistry("journal.append=io"))
        with pytest.raises(OSError):
            journal.accepted("j000001", "d", {})
        journal.close()

    def test_append_corrupt_fault_leaves_a_torn_tail(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = JobJournal(path, fsync="never")
        journal.accepted("j000001", "d1", {})
        set_faults(FaultRegistry("journal.append=corrupt"))
        with pytest.raises(OSError):
            journal.accepted("j000002", "d2", {})
        journal.close()
        set_faults(FaultRegistry(""))
        reopened = JobJournal(path, fsync="never")
        assert reopened.stats.torn_tail is True
        # The torn record is dropped; the intact one survives.
        assert [e.job_id for e in reopened.replay()] == ["j000001"]
        reopened.close()

    def test_gateway_absorbs_journal_failures(self, tmp_path):
        """A dying journal degrades durability, never availability."""
        journal = JobJournal(tmp_path / "j.jsonl", fsync="never")
        config = GatewayConfig(workers=1, journal=journal)
        with start_gateway(config) as served:
            set_faults(FaultRegistry("journal.append=io"))
            with HttpClient("127.0.0.1", served.port) as c:
                posted = c.post("/v1/jobs", spec_for(seed=56).to_dict())
                assert posted.status == 202  # accepted despite the journal
                final = c.get(f"/v1/jobs/{posted.json()['id']}?wait=30").json()
                assert final["status"] == "ok"
                stats = c.get("/v1/stats").json()
                assert stats["totals"]["gateway.journal_errors"] >= 1
                assert stats["faults"]["points"] == {"journal.append": "io:1"}
            set_faults(FaultRegistry(""))
