"""Tests for the literal interval-sweep line-expansion engine.

The key property: the interval engine is the paper's algorithm, the state
engine is its optimisation — they must agree exactly on reachability (the
guaranteed-solution property) and on the minimum bend count; the
crossover/length tie-break may differ (the paper's UPDATE_SOLUTION only
compares solutions of the terminal wave).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.geometry import Direction, Point, Rect, path_bends, path_length
from repro.core.validate import check_diagram
from repro.route.interval_expansion import route_connection_intervals
from repro.route.line_expansion import SearchStats, route_connection
from repro.route.plane import Plane


def _plane(w=24, h=24) -> Plane:
    return Plane(bounds=Rect(0, 0, w, h))


class TestBasics:
    def test_straight(self):
        r = route_connection_intervals(
            _plane(), "n", Point(2, 5), list(Direction), [Point(12, 5)]
        )
        assert r is not None
        assert (r.bends, r.length) == (0, 10)
        assert r.path == [Point(2, 5), Point(12, 5)]

    def test_one_bend(self):
        r = route_connection_intervals(
            _plane(), "n", Point(0, 0), list(Direction), [Point(5, 7)]
        )
        assert r is not None
        assert r.bends == 1
        assert path_bends(r.path) == 1
        assert path_length(r.path) == r.length == 12

    def test_start_is_target(self):
        r = route_connection_intervals(
            _plane(), "n", Point(3, 3), list(Direction), [Point(3, 3)]
        )
        assert r.path == [Point(3, 3)]

    def test_no_targets(self):
        assert (
            route_connection_intervals(_plane(), "n", Point(0, 0), list(Direction), [])
            is None
        )

    def test_unreachable(self):
        p = _plane(10, 10)
        p.block_rect(Rect(4, 0, 2, 10))
        stats = SearchStats()
        assert (
            route_connection_intervals(
                p, "n", Point(0, 5), list(Direction), [Point(9, 5)], stats=stats
            )
            is None
        )
        assert stats.failures == 1

    def test_crossing_counted(self):
        p = _plane()
        p.add_net_path("w", [Point(0, 5), Point(20, 5)])
        r = route_connection_intervals(
            p, "n", Point(10, 0), [Direction.UP], [Point(10, 10)]
        )
        assert r is not None
        assert r.crossings == 1
        assert r.path == [Point(10, 0), Point(10, 10)]

    def test_arrival_direction(self):
        r = route_connection_intervals(
            _plane(),
            "n",
            Point(10, 0),
            [Direction.UP],
            {Point(10, 10): frozenset({Direction.RIGHT})},
        )
        assert r is not None
        assert r.path[-2].y == 10 and r.path[-2].x < 10

    def test_path_avoids_obstacles(self):
        p = _plane()
        p.block_rect(Rect(5, 0, 2, 12))
        r = route_connection_intervals(
            p, "n", Point(0, 5), list(Direction), [Point(12, 5)]
        )
        assert r is not None
        for q in r.path:
            assert not (5 <= q.x <= 7 and 0 <= q.y <= 12)


def _random_scene(rng: random.Random):
    plane = Plane(bounds=Rect(0, 0, 20, 20))
    for _ in range(rng.randint(0, 5)):
        plane.block_rect(
            Rect(rng.randint(1, 15), rng.randint(1, 15), rng.randint(1, 4), rng.randint(1, 4))
        )
    for i in range(rng.randint(0, 2)):
        y = rng.randint(1, 19)
        x1 = rng.randint(0, 8)
        plane.add_net_path(f"w{i}", [Point(x1, y), Point(x1 + rng.randint(2, 8), y)])
    free = [
        Point(x, y)
        for x in range(21)
        for y in range(21)
        if not plane.occupied(Point(x, y))
    ]
    return plane, rng.choice(free), rng.choice(free)


class TestEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10_000))
    def test_matches_state_engine(self, seed):
        plane, start, goal = _random_scene(random.Random(seed))
        state = route_connection(plane, "n", start, list(Direction), [goal])
        intervals = route_connection_intervals(
            plane, "n", start, list(Direction), [goal]
        )
        assert (state is None) == (intervals is None)
        if state is None or intervals is None:
            return
        assert intervals.bends == state.bends  # minimum-bend equivalence
        assert intervals.path[0] == start and intervals.path[-1] == goal
        assert path_length(intervals.path) == intervals.length
        assert path_bends(intervals.path) == intervals.bends
        # The interval path respects every obstacle rule.
        for q in intervals.path:
            assert not plane.occupied(q) or q in (start, goal) or q in plane.usage


class TestEurekaIntegration:
    def test_engine_option_routes_legally(self, two_buffer_diagram):
        from repro.route.eureka import RouterOptions, route_diagram

        report = route_diagram(two_buffer_diagram, RouterOptions(engine="intervals"))
        assert report.nets_routed == 3
        check_diagram(two_buffer_diagram)

    @pytest.mark.parametrize("engine", ["state", "intervals"])
    def test_example2_full(self, engine, example2):
        from repro.core.generator import generate
        from repro.place.pablo import PabloOptions
        from repro.route.eureka import RouterOptions

        result = generate(
            example2, PabloOptions(partition_size=5), RouterOptions(engine=engine)
        )
        assert result.metrics.nets_failed == 0
        check_diagram(result.diagram)
