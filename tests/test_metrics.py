"""Unit tests for the diagram quality metrics."""

from repro.core.diagram import Diagram
from repro.core.geometry import Point
from repro.core.metrics import (
    count_crossovers,
    diagram_metrics,
    net_branch_nodes,
    net_metrics,
)


def _route(diagram, name, *paths):
    route = diagram.route_for(name)
    for path in paths:
        route.add_path(list(path))
    return route


class TestNetMetrics:
    def test_straight_wire(self, two_buffer_diagram):
        route = _route(two_buffer_diagram, "n_mid", [Point(3, 1), Point(8, 1)])
        m = net_metrics(route)
        assert (m.length, m.bends, m.branch_nodes) == (5, 0, 0)

    def test_l_wire(self, two_buffer_diagram):
        route = _route(
            two_buffer_diagram, "n_mid", [Point(3, 1), Point(3, 5), Point(8, 5)]
        )
        m = net_metrics(route)
        assert (m.length, m.bends) == (9, 1)

    def test_branch_node(self, two_buffer_diagram):
        route = _route(
            two_buffer_diagram,
            "n_mid",
            [Point(0, 0), Point(10, 0)],
            [Point(5, 0), Point(5, 5)],  # T junction at (5, 0)
        )
        assert net_branch_nodes(route) == 1

    def test_cross_within_same_net_is_x_node(self, two_buffer_diagram):
        route = _route(
            two_buffer_diagram,
            "n_mid",
            [Point(0, 0), Point(10, 0)],
            [Point(5, -5), Point(5, 5)],
        )
        assert net_branch_nodes(route) == 1  # the X point has degree 4


class TestCrossovers:
    def test_none(self, two_buffer_diagram):
        _route(two_buffer_diagram, "n_mid", [Point(3, 1), Point(8, 1)])
        assert count_crossovers(two_buffer_diagram) == 0

    def test_single_cross(self, two_buffer_diagram):
        _route(two_buffer_diagram, "n_mid", [Point(0, 1), Point(10, 1)])
        _route(two_buffer_diagram, "n_in", [Point(5, -3), Point(5, 4)])
        assert count_crossovers(two_buffer_diagram) == 1

    def test_three_nets_through_one_point(self, two_buffer_diagram):
        # Degenerate but countable: 3 nets at one point = 3 pairs.
        _route(two_buffer_diagram, "n_mid", [Point(0, 0), Point(4, 0)])
        _route(two_buffer_diagram, "n_in", [Point(2, -2), Point(2, 2)])
        _route(two_buffer_diagram, "n_out", [Point(2, -3), Point(2, 3)])
        assert count_crossovers(two_buffer_diagram) >= 3


class TestDiagramMetrics:
    def test_counts_routed_and_failed(self, two_buffer_diagram):
        _route(two_buffer_diagram, "n_mid", [Point(3, 1), Point(8, 1)])
        m = diagram_metrics(two_buffer_diagram)
        assert m.nets_total == 3
        assert m.nets_routed == 1
        assert m.nets_failed == 2
        assert m.length == 5

    def test_as_row(self, two_buffer_diagram):
        row = diagram_metrics(two_buffer_diagram).as_row()
        assert row["nets"] == 3 and row["routed"] == 0
