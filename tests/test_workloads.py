"""Tests for the workload generators (examples, random networks, stdlib)."""

import pytest

from repro.core.netlist import NetlistError
from repro.workloads.examples import example1_string, example2_controller
from repro.workloads.random_nets import RandomNetworkSpec, random_network
from repro.workloads.stdlib import TEMPLATES, instantiate, make_module


class TestStdlib:
    @pytest.mark.parametrize("template", sorted(TEMPLATES))
    def test_every_template_instantiates(self, template):
        m = instantiate(template, "inst")
        assert m.name == "inst"
        assert m.template == template
        assert m.terminals  # every template has at least one terminal

    def test_unknown_template(self):
        with pytest.raises(KeyError):
            instantiate("flux_capacitor", "x")

    def test_make_module_validates(self):
        with pytest.raises(NetlistError):
            make_module("m", 4, 4, [("t", "in", 2, 2)])  # not on outline

    def test_life_cell_terminal_count(self):
        cell = instantiate("life_cell", "c")
        names = set(cell.terminals)
        assert {f"n{k}" for k in range(8)} <= names
        assert {f"o{k}" for k in range(8)} <= names
        assert {"clk", "load", "data"} <= names


class TestExamples:
    def test_example1_counts(self):
        net = example1_string()
        assert net.stats["modules"] == 6
        assert net.stats["nets"] == 6

    def test_example2_counts(self):
        net = example2_controller()
        assert net.stats["modules"] == 16
        assert net.stats["nets"] == 24

    def test_examples_validate(self):
        example1_string().validate()
        example2_controller().validate()

    def test_example2_controller_is_hub(self):
        net = example2_controller()
        degree = {
            m: len(net.nets_of_module(m)) for m in net.modules
        }
        assert degree["ctl"] == max(degree.values())


class TestRandomNetworks:
    def test_reproducible(self):
        a = random_network(seed=5)
        b = random_network(seed=5)
        assert a.stats == b.stats
        assert {n: sorted(map(str, o.pins)) for n, o in a.nets.items()} == {
            n: sorted(map(str, o.pins)) for n, o in b.nets.items()
        }

    def test_different_seeds_differ(self):
        a = random_network(seed=1)
        b = random_network(seed=2)
        different = a.stats != b.stats or {
            n: sorted(map(str, o.pins)) for n, o in a.nets.items()
        } != {n: sorted(map(str, o.pins)) for n, o in b.nets.items()}
        assert different

    def test_sizes_respected(self):
        net = random_network(modules=15, seed=0)
        assert len(net.modules) == 15

    def test_always_valid(self):
        for seed in range(8):
            random_network(RandomNetworkSpec(modules=12, extra_nets=6, seed=seed)).validate()

    def test_overrides(self):
        net = random_network(RandomNetworkSpec(seed=3), system_terminals=0)
        assert not net.system_terminals
