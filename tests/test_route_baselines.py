"""Tests for the baseline routers: Lee, Hightower, left-edge channel."""

from repro.core.geometry import Direction, Point, Rect
from repro.route.channel import ChannelPin, channel_density, route_channel
from repro.route.hightower import route_hightower
from repro.route.lee import route_lee
from repro.route.line_expansion import SearchStats, route_connection
from repro.route.plane import Plane


def _plane(w=30, h=30) -> Plane:
    return Plane(bounds=Rect(0, 0, w, h))


class TestLee:
    def test_straight(self):
        r = route_lee(_plane(), "n", Point(0, 5), list(Direction), [Point(10, 5)])
        assert r is not None
        assert r.length == 10 and r.bends == 0

    def test_minimum_length_guarantee(self):
        p = _plane()
        p.block_rect(Rect(5, 3, 2, 8))
        r = route_lee(p, "n", Point(0, 5), list(Direction), [Point(12, 5)])
        exp = route_connection(p, "n", Point(0, 5), list(Direction), [Point(12, 5)])
        assert r is not None and exp is not None
        assert r.length <= exp.length  # Lee's length is minimal

    def test_lee_trades_bends_for_length(self):
        # A staircase of obstacles: the min-length path zigzags, the
        # line-expansion router accepts extra length for fewer bends.
        p = _plane(20, 20)
        for i in range(4):
            p.block_rect(Rect(3 + 3 * i, 3 * i, 1, 2))
        start, goal = Point(0, 0), Point(16, 12)
        lee = route_lee(p, "n", start, list(Direction), [goal])
        exp = route_connection(p, "n", start, list(Direction), [goal])
        assert lee is not None and exp is not None
        assert lee.length <= exp.length
        assert exp.bends <= lee.bends

    def test_unreachable(self):
        p = _plane(10, 10)
        p.block_rect(Rect(4, 0, 2, 10))
        stats = SearchStats()
        assert route_lee(p, "n", Point(0, 5), list(Direction), [Point(9, 5)], stats=stats) is None
        assert stats.failures == 1

    def test_respects_net_overlap_rules(self):
        p = _plane()
        p.add_net_path("w", [Point(0, 5), Point(20, 5)])
        r = route_lee(p, "n", Point(3, 5 - 5), list(Direction), [Point(3, 10)])
        assert r is not None
        assert r.crossings == 1

    def test_start_is_target(self):
        r = route_lee(_plane(), "n", Point(3, 3), list(Direction), [Point(3, 3)])
        assert r.path == [Point(3, 3)]


class TestHightower:
    def test_straight(self):
        r = route_hightower(_plane(), "n", Point(0, 5), list(Direction), [Point(10, 5)])
        assert r is not None
        assert r.bends == 0 and r.length == 10

    def test_l_path(self):
        r = route_hightower(_plane(), "n", Point(0, 0), list(Direction), [Point(8, 9)])
        assert r is not None
        assert r.bends >= 1

    def test_around_simple_obstacle(self):
        p = _plane()
        p.block_rect(Rect(5, 0, 2, 12))
        r = route_hightower(p, "n", Point(0, 5), list(Direction), [Point(12, 5)])
        assert r is not None
        # Every vertex is turn-legal and the path avoids the wall.
        for q in r.path:
            assert not (5 <= q.x <= 7 and 0 <= q.y <= 12)

    def test_may_fail_where_line_expansion_succeeds(self):
        # A spiral-ish maze: the probe heuristic gives up; the exhaustive
        # router does not (the paper's argument for line expansion).
        p = _plane(24, 24)
        p.block_rect(Rect(4, 4, 1, 16))
        p.block_rect(Rect(4, 20, 12, 1))
        p.block_rect(Rect(16, 4, 1, 17))
        p.block_rect(Rect(4, 4, 10, 1))
        p.block_rect(Rect(8, 8, 1, 9))
        p.block_rect(Rect(8, 16, 5, 1))
        p.block_rect(Rect(12, 8, 1, 8))
        start, goal = Point(0, 0), Point(10, 12)
        exp = route_connection(p, "n", start, list(Direction), [goal])
        assert exp is not None  # guaranteed solution
        ht = route_hightower(p, "n", start, list(Direction), [goal])
        if ht is not None:  # when it does find it, it must be legal
            assert ht.path[0] == start and ht.path[-1] == goal

    def test_start_is_target(self):
        r = route_hightower(_plane(), "n", Point(3, 3), list(Direction), [Point(3, 3)])
        assert r.path == [Point(3, 3)]


class TestChannel:
    def test_single_net(self):
        pins = [ChannelPin("a", 0, True), ChannelPin("a", 5, False)]
        r = route_channel(pins)
        assert r.width == 1
        assert r.net_track["a"] == 0
        assert r.spans["a"] == (0, 5)

    def test_disjoint_nets_share_track(self):
        pins = [
            ChannelPin("a", 0, True),
            ChannelPin("a", 3, False),
            ChannelPin("b", 5, True),
            ChannelPin("b", 9, False),
        ]
        r = route_channel(pins)
        assert r.width == 1
        assert r.net_track["a"] == r.net_track["b"] == 0

    def test_overlapping_nets_stack(self):
        pins = [
            ChannelPin("a", 0, True),
            ChannelPin("a", 6, False),
            ChannelPin("b", 3, True),
            ChannelPin("b", 9, False),
            ChannelPin("c", 4, True),
            ChannelPin("c", 5, False),
        ]
        r = route_channel(pins)
        assert r.width == channel_density(pins) == 3
        assert len({r.net_track[n] for n in "abc"}) == 3

    def test_density_lower_bound_holds(self):
        import random

        rng = random.Random(7)
        pins = []
        for i in range(30):
            a, b = rng.randrange(50), rng.randrange(50)
            pins += [ChannelPin(f"n{i}", a, True), ChannelPin(f"n{i}", b, False)]
        r = route_channel(pins)
        assert r.width >= channel_density(pins)
        # Left-edge is optimal without vertical constraints:
        assert r.width == channel_density(pins)
        # No two nets on one track overlap.
        for track in r.tracks:
            spans = sorted(r.spans[n] for n in track)
            for (a1, b1), (a2, b2) in zip(spans, spans[1:]):
                assert b1 < a2

    def test_empty(self):
        assert route_channel([]).width == 0
        assert channel_density([]) == 0
