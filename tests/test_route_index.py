"""Tests for the incremental routing-plane index.

Two layers of evidence:

* structural — after any sequence of plane mutations the incrementally
  maintained :class:`~repro.route.index.PlaneIndex` equals an index
  rebuilt from scratch off the same plane, and a
  :class:`~repro.route.index.NetView` answers every point query exactly
  like the pre-index :class:`~repro.route.reference.ReferenceSnapshot`,
* behavioural — the indexed A* returns the same optimum cost tuple
  (bends, crossings, length) as the snapshot-rebuilding reference
  Dijkstra on randomized scenes, under both tie-break orders.
"""

import random

from repro.core.geometry import Direction, Orientation, Point, Rect
from repro.route.index import PlaneIndex
from repro.route.line_expansion import CostOrder, SearchStats, route_connection
from repro.route.plane import Plane
from repro.route.reference import ReferenceSnapshot, route_connection_reference


def _fresh_index(plane: Plane) -> PlaneIndex:
    """An index rebuilt from scratch off the plane's current state."""
    fresh = PlaneIndex(plane)
    for p in plane.blocked:
        fresh.blocked_added(p)
    fresh.rebuild()
    return fresh


def _lines(d: dict) -> dict:
    """Row/column sets with emptied entries dropped (removals leave empty
    sets behind in the live index; that is not a semantic difference)."""
    return {k: set(v) for k, v in d.items() if v}


def assert_index_matches_rebuild(plane: Plane) -> None:
    live, fresh = plane.index, _fresh_index(plane)
    assert live.h_block == fresh.h_block
    assert live.v_block == fresh.v_block
    assert live.blocked_h_pts == fresh.blocked_h_pts
    assert live.blocked_v_pts == fresh.blocked_v_pts
    assert live.cross_h == fresh.cross_h
    assert live.cross_v == fresh.cross_v
    assert live.occ == fresh.occ
    assert live.occ_pts == fresh.occ_pts
    assert {n: c for n, c in live.contrib.items() if c} == {
        n: c for n, c in fresh.contrib.items() if c
    }
    assert _lines(live._rows) == _lines(fresh._rows)
    assert _lines(live._cols) == _lines(fresh._cols)
    for y in set(live._rows) | set(fresh._rows):
        assert live.sorted_row(y) == fresh.sorted_row(y)
    for x in set(live._cols) | set(fresh._cols):
        assert live.sorted_col(x) == fresh.sorted_col(x)


def assert_view_matches_snapshot(plane: Plane, net: str, allow=frozenset()) -> None:
    """Every point query of the O(1)-overlay view equals the rebuilt flat
    snapshot of the pre-index router."""
    snap = ReferenceSnapshot(plane, net, allow)
    view = plane.index.view(net, allow)
    points = (
        set(plane.blocked)
        | set(plane.claims)
        | set(plane.usage)
        | {Point(1, 1), Point(5, 5)}
    )
    for q in points:
        assert view.hard_at(q) == (q in snap.hard), q
        assert view.foreign_at(q) == (q in snap.foreign_any), q
        assert view.entry_blocked(q, True) == (q in snap.blocked_h), q
        assert view.entry_blocked(q, False) == (q in snap.blocked_v), q
        assert view.crossings_at(q, True) == snap.cross_h.get(q, 0), q
        assert view.crossings_at(q, False) == snap.cross_v.get(q, 0), q


class TestIncrementalConsistency:
    def test_block_claim_path_release_sequence(self):
        p = Plane(bounds=Rect(0, 0, 20, 20))
        p.block_rect(Rect(3, 3, 2, 2))
        assert_index_matches_rebuild(p)
        assert p.add_claim(Point(10, 10), "owner-a")
        assert p.add_claim(Point(11, 10), "owner-b")
        assert_index_matches_rebuild(p)
        p.add_net_path("n1", [Point(0, 8), Point(15, 8)])
        p.add_net_path("n2", [Point(7, 0), Point(7, 8), Point(9, 8)])
        assert_index_matches_rebuild(p)
        assert p.release_claims(["owner-a"]) == 1
        assert_index_matches_rebuild(p)
        # A second path of the same net turns (7, 8) into a branch point.
        p.add_net_path("n2", [Point(7, 8), Point(7, 12)])
        assert_index_matches_rebuild(p)
        assert p.release_all_claims() == 1
        assert not p.claims
        assert_index_matches_rebuild(p)

    def test_direct_blocked_mutation_notifies_index(self):
        p = Plane(bounds=Rect(0, 0, 10, 10))
        p.blocked.add(Point(4, 4))
        p.blocked |= {Point(4, 5), Point(4, 6)}
        p.blocked.update([Point(5, 5)])
        assert_index_matches_rebuild(p)
        assert 4 in p.index.sorted_row(5)
        p.blocked.discard(Point(4, 5))
        assert_index_matches_rebuild(p)
        assert 4 not in p.index.sorted_row(5)
        p.blocked.clear()
        assert not p.blocked
        assert_index_matches_rebuild(p)
        assert p.index.sorted_row(4) == []

    def test_claim_release_keeps_wire_obstacles(self):
        # A claim and a wire share nothing; releasing a claim on a row
        # that also holds a wire-blocked point must keep the wire's entry.
        p = Plane(bounds=Rect(0, 0, 10, 10))
        p.add_net_path("w", [Point(2, 5), Point(6, 5)])  # blocks h on row 5
        assert p.add_claim(Point(8, 5), "c")
        assert p.release_claims(["c"]) == 1
        assert 8 not in p.index.sorted_row(5)
        assert set(p.index.sorted_row(5)) == {2, 3, 4, 5, 6}
        assert_index_matches_rebuild(p)

    def test_prepopulated_plane_ingested(self):
        usage = {Point(3, 3): {"w": {Orientation.HORIZONTAL}}}
        p = Plane(
            bounds=Rect(0, 0, 10, 10),
            blocked={Point(1, 1)},
            claims={Point(2, 2): "c"},
            usage=usage,
            nodes={"w": set()},
        )
        assert_index_matches_rebuild(p)
        assert p.index.occ_pts == {Point(3, 3)}
        assert Point(1, 1) in p.blocked

    def test_randomized_mutation_storm(self):
        rng = random.Random(0xC0FFEE)
        p = Plane(bounds=Rect(0, 0, 24, 24))
        owners = []
        for step in range(60):
            op = rng.randrange(5)
            if op == 0:
                x, y = rng.randrange(1, 20), rng.randrange(1, 20)
                p.block_rect(Rect(x, y, rng.randrange(0, 3), rng.randrange(0, 3)))
            elif op == 1:
                owner = f"o{step}"
                if p.add_claim(Point(rng.randrange(24), rng.randrange(24)), owner):
                    owners.append(owner)
            elif op == 2 and owners:
                p.release_claims([owners.pop(rng.randrange(len(owners)))])
            elif op == 3:
                a = Point(rng.randrange(24), rng.randrange(24))
                b = Point(rng.randrange(24), a.y)
                c = Point(b.x, rng.randrange(24))
                p.add_net_path(f"net{rng.randrange(4)}", [a, b, c])
            else:
                p.blocked.add(Point(rng.randrange(24), rng.randrange(24)))
            if step % 10 == 9:
                assert_index_matches_rebuild(p)
                for net in ("net0", "net1", "net2", "net3"):
                    assert_view_matches_snapshot(p, net)
        p.release_all_claims()
        assert_index_matches_rebuild(p)

    def test_net_points_served_from_contrib(self):
        p = Plane(bounds=Rect(0, 0, 20, 20))
        p.add_net_path("a", [Point(0, 0), Point(4, 0), Point(4, 4)])
        p.add_net_path("b", [Point(4, 2), Point(8, 2)])
        for net in ("a", "b"):
            expected = {q for q, nets in p.usage.items() if net in nets}
            assert p.net_points(net) == expected
        assert p.net_points("missing") == set()


class TestRunStop:
    def _naive_stop(self, view, vertical, line, start, step, lo, hi):
        c = start + step
        while lo <= c <= hi + 5:  # scan a little past the border too
            q = Point(line, c) if vertical else Point(c, line)
            if view._stops(q, vertical):
                return c
            c += step
        return None

    def test_matches_naive_scan(self):
        rng = random.Random(7)
        p = Plane(bounds=Rect(0, 0, 20, 20))
        p.block_rect(Rect(5, 5, 3, 3))
        p.add_net_path("own", [Point(2, 10), Point(12, 10)])
        p.add_net_path("other", [Point(10, 2), Point(10, 18)])
        p.add_claim(Point(15, 10), "c")
        for net in ("own", "other", "third"):
            view = p.index.view(net, allow=frozenset({Point(15, 10)}))
            for _ in range(60):
                vertical = rng.random() < 0.5
                line = rng.randrange(0, 21)
                start = rng.randrange(0, 21)
                step = rng.choice((1, -1))
                got = view.run_stop(vertical, line, start, step)
                want = self._naive_stop(view, vertical, line, start, step, -5, 20)
                assert got == want, (net, vertical, line, start, step)


def _random_scene(seed: int) -> Plane:
    rng = random.Random(seed)
    p = Plane(bounds=Rect(0, 0, 22, 22))
    for _ in range(rng.randrange(1, 4)):
        x, y = rng.randrange(2, 16), rng.randrange(2, 16)
        p.block_rect(Rect(x, y, rng.randrange(1, 4), rng.randrange(1, 4)))
    for i in range(rng.randrange(2, 6)):
        a = Point(rng.randrange(22), rng.randrange(22))
        b = Point(rng.randrange(22), a.y)
        c = Point(b.x, rng.randrange(22))
        p.add_net_path(f"f{i}", [a, b, c])
    for j in range(rng.randrange(0, 4)):
        p.add_claim(Point(rng.randrange(22), rng.randrange(22)), f"c{j}")
    return p


class TestAStarMatchesReference:
    """Property: on random scenes the indexed A* and the pre-index
    snapshot Dijkstra return identical (bends, crossings, length)."""

    def _compare(self, seed: int, cost_order: CostOrder) -> None:
        rng = random.Random(seed * 31 + 1)
        plane = _random_scene(seed)
        free = [
            Point(x, y)
            for x in range(23)
            for y in range(23)
            if Point(x, y) not in plane.blocked and Point(x, y) not in plane.claims
        ]
        for trial in range(6):
            start = rng.choice(free)
            targets = {rng.choice(free): None for _ in range(rng.randrange(1, 3))}
            dirs = rng.sample(list(Direction), rng.randrange(1, 5))
            allow = frozenset({start, *targets})
            net = rng.choice(["f0", "f1", "mine"])
            a = route_connection(
                plane, net, start, dirs, targets, allow=allow, cost_order=cost_order
            )
            b = route_connection_reference(
                plane, net, start, dirs, targets, allow=allow, cost_order=cost_order
            )
            ka = None if a is None else (a.bends, a.crossings, a.length)
            kb = None if b is None else (b.bends, b.crossings, b.length)
            assert ka == kb, (seed, trial, ka, kb)

    def test_crossings_first(self):
        for seed in range(12):
            self._compare(seed, CostOrder.BENDS_CROSSINGS_LENGTH)

    def test_length_first(self):
        for seed in range(12):
            self._compare(seed, CostOrder.BENDS_LENGTH_CROSSINGS)

    def test_astar_never_expands_more(self):
        # The admissible heuristic may only prune, never add, expansions
        # relative to the undirected search on the same scene.
        total_a = total_b = 0
        for seed in range(6):
            plane = _random_scene(seed)
            sa, sb = SearchStats(), SearchStats()
            start, goal = Point(0, 0), Point(20, 20)
            route_connection(plane, "mine", start, list(Direction), [goal], stats=sa)
            route_connection_reference(
                plane, "mine", start, list(Direction), [goal], stats=sb
            )
            total_a += sa.states_expanded
            total_b += sb.states_expanded
        assert total_a < total_b


class TestZeroLengthAcceptance:
    """Regression: the ``start in targets`` early return must apply the
    same acceptance rule as the main loop."""

    def test_foreign_wire_at_shared_point_rejects(self):
        p = Plane(bounds=Rect(0, 0, 10, 10))
        p.add_net_path("other", [Point(0, 5), Point(10, 5)])
        shared = Point(5, 5)
        for routers in (route_connection, route_connection_reference):
            r = routers(p, "mine", shared, list(Direction), [shared])
            # Every path ends at the shared point, which carries a foreign
            # wire — no legal termination exists at all.
            assert r is None

    def test_own_wire_at_shared_point_accepts(self):
        p = Plane(bounds=Rect(0, 0, 10, 10))
        p.add_net_path("mine", [Point(0, 5), Point(10, 5)])
        shared = Point(5, 5)
        r = route_connection(p, "mine", shared, list(Direction), [shared])
        assert r is not None and r.length == 0

    def test_arrival_constraint_satisfiable_accepts(self):
        p = Plane(bounds=Rect(0, 0, 10, 10))
        s = Point(5, 5)
        r = route_connection(
            p, "mine", s, [Direction.UP], {s: frozenset({Direction.UP})}
        )
        assert r is not None and r.length == 0 and r.path == [s]

    def test_arrival_constraint_unsatisfiable_forces_loop(self):
        p = Plane(bounds=Rect(0, 0, 10, 10))
        s = Point(5, 5)
        for routers in (route_connection, route_connection_reference):
            r = routers(
                p, "mine", s, [Direction.UP], {s: frozenset({Direction.DOWN})}
            )
            # Must leave upward and come back arriving downward: a real
            # loop, never the old zero-length short-circuit.
            assert r is not None
            assert r.length > 0 and r.bends > 0


class TestPrunedCounter:
    def test_stats_pruned_tracked(self):
        stats = SearchStats()
        p = _random_scene(3)
        route_connection(
            p, "mine", Point(0, 0), list(Direction), [Point(20, 20)], stats=stats
        )
        # Stale-entry skips are bookkept separately from expansions.
        assert stats.pruned >= 0
        assert stats.states_expanded > 0
