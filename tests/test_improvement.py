"""Tests for the iterative placement-improvement baseline."""

import random

from repro.core.diagram import Diagram
from repro.core.geometry import Point
from repro.core.netlist import Network
from repro.core.validate import placement_violations
from repro.place.improvement import (
    estimated_wire_length,
    improve_placement,
)
from repro.workloads.stdlib import instantiate


def _chain(n: int) -> Network:
    net = Network()
    for i in range(n):
        net.add_module(instantiate("buf", f"b{i}"))
    for i in range(n - 1):
        net.connect(f"n{i}", f"b{i}.y", f"b{i + 1}.a")
    return net


def _grid_placement(net: Network, order: list[str], pitch: int = 6) -> Diagram:
    d = Diagram(net)
    for i, name in enumerate(order):
        d.place_module(name, Point((i % 3) * pitch, (i // 3) * pitch))
    return d


class TestEstimatedWireLength:
    def test_straight_chain(self):
        net = _chain(3)
        d = _grid_placement(net, ["b0", "b1", "b2"])
        # Each net spans one pitch horizontally minus terminal offsets.
        assert estimated_wire_length(d) > 0

    def test_ignores_unplaced_pins(self):
        net = _chain(3)
        d = Diagram(net)
        d.place_module("b0", Point(0, 0))
        assert estimated_wire_length(d) == 0  # no net has two placed pins

    def test_two_pin_net_is_manhattan_span(self):
        net = _chain(2)
        d = Diagram(net)
        d.place_module("b0", Point(0, 0))
        d.place_module("b1", Point(10, 5))
        a = d.pin_position(next(iter(net.nets.values())).pins[0])
        b = d.pin_position(next(iter(net.nets.values())).pins[1])
        assert estimated_wire_length(d) == abs(a.x - b.x) + abs(a.y - b.y)


class TestImprovePlacement:
    def test_fixes_a_bad_swap(self):
        net = _chain(3)
        good = _grid_placement(net, ["b0", "b1", "b2"])
        bad = _grid_placement(net, ["b1", "b0", "b2"])  # b0/b1 swapped
        assert estimated_wire_length(bad) > estimated_wire_length(good)
        report = improve_placement(bad)
        assert report.swaps >= 1
        assert report.final_cost == estimated_wire_length(good)
        assert report.gain > 0

    def test_never_increases_cost(self):
        rng = random.Random(3)
        net = _chain(6)
        order = [f"b{i}" for i in range(6)]
        rng.shuffle(order)
        d = _grid_placement(net, order)
        before = estimated_wire_length(d)
        report = improve_placement(d)
        assert report.final_cost <= before
        assert report.final_cost == estimated_wire_length(d)

    def test_keeps_placement_legal(self):
        rng = random.Random(9)
        net = _chain(9)
        order = [f"b{i}" for i in range(9)]
        rng.shuffle(order)
        d = _grid_placement(net, order)
        improve_placement(d)
        assert placement_violations(d) == []

    def test_only_same_footprint_swaps(self):
        net = Network()
        net.add_module(instantiate("buf", "small"))
        net.add_module(instantiate("alu", "big"))
        net.connect("n", "small.y", "big.a")
        d = Diagram(net)
        d.place_module("small", Point(20, 0))
        d.place_module("big", Point(0, 0))
        report = improve_placement(d)
        assert report.swaps == 0  # different sizes: never exchanged
        assert report.trials == 0

    def test_report_fields(self):
        net = _chain(4)
        d = _grid_placement(net, ["b3", "b2", "b1", "b0"])
        report = improve_placement(d)
        assert report.passes >= 1
        assert report.seconds >= 0
        assert 0 <= report.gain <= 1
