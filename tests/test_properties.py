"""Property-based tests (hypothesis) on core invariants.

The invariants here are the load-bearing ones: path metrics are consistent
under normalisation, rotations form a group acting on module outlines,
the router's output is always legal and cost-consistent, partitioning is
a true partition, and gravity placement never overlaps.
"""

from hypothesis import given, settings, strategies as st

from repro.core.geometry import (
    Direction,
    Point,
    Rect,
    normalize_path,
    path_bends,
    path_length,
    path_points,
    path_segments,
)
from repro.core.rotation import Rotation
from repro.place.gravity import GravityItem, place_by_gravity
from repro.place.partitioning import PartitionLimits, partition_network
from repro.route.line_expansion import route_connection
from repro.route.plane import Plane
from repro.workloads.random_nets import random_network

# -- strategies -----------------------------------------------------------

points = st.builds(Point, st.integers(-20, 20), st.integers(-20, 20))
directions = st.sampled_from(list(Direction))


@st.composite
def rectilinear_paths(draw) -> list[Point]:
    start = draw(points)
    path = [start]
    for _ in range(draw(st.integers(0, 8))):
        d = draw(directions)
        amount = draw(st.integers(1, 6))
        path.append(path[-1].step(d, amount))
    return path


@st.composite
def small_rects(draw) -> Rect:
    return Rect(
        draw(st.integers(-10, 10)),
        draw(st.integers(-10, 10)),
        draw(st.integers(1, 8)),
        draw(st.integers(1, 8)),
    )


# -- geometry properties ------------------------------------------------


class TestPathProperties:
    @given(rectilinear_paths())
    def test_normalization_preserves_metrics(self, path):
        norm = normalize_path(path)
        assert path_length(norm) == path_length(path)
        assert norm[0] == path[0] and norm[-1] == path[-1]
        assert normalize_path(norm) == norm  # idempotent

    @given(rectilinear_paths())
    def test_length_equals_point_count(self, path):
        pts = list(path_points(path))
        # Walking the path visits length+1 points (with repeats on
        # self-overlap, which still count as steps).
        assert len(pts) == path_length(path) + 1

    @given(rectilinear_paths())
    def test_bends_bounded_by_segments(self, path):
        segs = path_segments(normalize_path(path))
        assert path_bends(path) == max(0, len(segs) - 1)

    @given(rectilinear_paths())
    def test_segments_cover_length(self, path):
        assert sum(s.length for s in path_segments(path)) == path_length(path)


class TestRectProperties:
    @given(small_rects(), small_rects())
    def test_overlap_symmetry(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)
        assert a.overlaps(b, touching_ok=False) == b.overlaps(a, touching_ok=False)

    @given(small_rects(), small_rects())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        for r in (a, b):
            assert u.x <= r.x and u.y <= r.y
            assert u.x2 >= r.x2 and u.y2 >= r.y2

    @given(small_rects(), st.integers(0, 5))
    def test_expand_monotone(self, r, m):
        e = r.expand(m)
        assert e.w == r.w + 2 * m and e.h == r.h + 2 * m


class TestRotationProperties:
    @given(
        st.sampled_from(list(Rotation)),
        st.sampled_from(list(Rotation)),
        st.integers(1, 9),
        st.integers(1, 9),
        st.data(),
    )
    def test_compose_acts_like_sequential_application(self, r1, r2, w, h, data):
        # A point on the outline of a w x h module.
        perimeter = (
            [Point(0, y) for y in range(h + 1)]
            + [Point(w, y) for y in range(h + 1)]
            + [Point(x, 0) for x in range(1, w)]
            + [Point(x, h) for x in range(1, w)]
        )
        p = data.draw(st.sampled_from(perimeter))
        w1, h1 = r1.size(w, h)
        q = r2.apply(r1.apply(p, w, h), w1, h1)
        assert q == r1.compose(r2).apply(p, w, h)

    @given(st.sampled_from(list(Rotation)), st.integers(1, 9), st.integers(1, 9))
    def test_inverse_undoes(self, r, w, h):
        p = Point(0, h // 2)
        rw, rh = r.size(w, h)
        assert r.inverse.apply(r.apply(p, w, h), rw, rh) == p


# -- router properties ------------------------------------------------------


@st.composite
def routing_scenes(draw):
    plane = Plane(bounds=Rect(0, 0, 24, 24))
    for _ in range(draw(st.integers(0, 4))):
        r = draw(
            st.builds(
                Rect,
                st.integers(2, 18),
                st.integers(2, 18),
                st.integers(1, 5),
                st.integers(1, 5),
            )
        )
        plane.block_rect(r)
    free = [
        Point(x, y)
        for x in range(25)
        for y in range(25)
        if not plane.occupied(Point(x, y))
    ]
    start = draw(st.sampled_from(free))
    goal = draw(st.sampled_from(free))
    return plane, start, goal


class TestRouterProperties:
    @settings(max_examples=40, deadline=None)
    @given(routing_scenes())
    def test_route_is_legal_and_cost_consistent(self, scene):
        plane, start, goal = scene
        r = route_connection(plane, "n", start, list(Direction), [goal])
        if r is None:
            return  # separated by obstacles: allowed
        assert r.path[0] == start and r.path[-1] == goal
        assert path_length(r.path) == r.length
        assert path_bends(r.path) == r.bends
        for p in r.path:
            assert not plane.occupied(p) or p in (start, goal)

    @settings(max_examples=40, deadline=None)
    @given(routing_scenes())
    def test_bends_never_beat_lee_on_length_alone(self, scene):
        from repro.route.lee import route_lee

        plane, start, goal = scene
        exp = route_connection(plane, "n", start, list(Direction), [goal])
        lee = route_lee(plane, "n", start, list(Direction), [goal])
        assert (exp is None) == (lee is None)  # both are exhaustive
        if exp is not None:
            assert lee.length <= exp.length
            assert exp.bends <= lee.bends


# -- placement properties ---------------------------------------------------


class TestPartitionProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 30), st.integers(1, 6))
    def test_partitioning_is_a_partition(self, seed, max_size):
        net = random_network(modules=10, seed=seed)
        parts = partition_network(net, PartitionLimits(max_size=max_size))
        flat = [m for p in parts for m in p]
        assert sorted(flat) == sorted(net.modules)
        assert len(flat) == len(set(flat))
        assert all(1 <= len(p) <= max_size for p in parts)


class TestGravityProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_never_overlaps(self, data):
        n = data.draw(st.integers(1, 7))
        items = []
        for i in range(n):
            w = data.draw(st.integers(1, 6))
            h = data.draw(st.integers(1, 6))
            nets = {
                f"n{data.draw(st.integers(0, 3))}": [Point(0, 0)]
                for _ in range(data.draw(st.integers(0, 2)))
            }
            items.append(GravityItem(f"i{i}", w, h, net_points=nets, weight=i))
        pos = place_by_gravity(items, spacing=data.draw(st.integers(0, 2)))
        rects = [
            Rect(pos[i.key].x, pos[i.key].y, i.width, i.height) for i in items
        ]
        for a in range(len(rects)):
            for b in range(a + 1, len(rects)):
                assert not rects[a].overlaps(rects[b])
