"""Tests for gravity placement (generic), box/partition placement and
terminal placement."""

import pytest

from repro.core.diagram import Diagram
from repro.core.geometry import Point, Rect
from repro.core.netlist import Network, TermType
from repro.core.validate import placement_violations
from repro.place.box_place import place_partition
from repro.place.boxes import form_boxes
from repro.place.gravity import GravityItem, place_by_gravity
from repro.place.module_place import place_box
from repro.place.terminal_place import place_terminals
from repro.workloads.examples import example2_controller
from repro.workloads.stdlib import instantiate


def _rects(items, positions):
    by_key = {i.key: i for i in items}
    return {
        k: Rect(p.x, p.y, by_key[k].width, by_key[k].height)
        for k, p in positions.items()
    }


class TestPlaceByGravity:
    def test_first_item_is_heaviest(self):
        items = [
            GravityItem("small", 2, 2, weight=1),
            GravityItem("big", 4, 4, weight=5),
        ]
        pos = place_by_gravity(items)
        assert pos["big"] == Point(0, 0)

    def test_no_overlap(self):
        items = [
            GravityItem(f"i{k}", 5, 5, net_points={"n": [Point(0, 0)]}, weight=1)
            for k in range(6)
        ]
        pos = place_by_gravity(items)
        rects = list(_rects(items, pos).values())
        for i, a in enumerate(rects):
            for b in rects[i + 1 :]:
                assert not a.overlaps(b)

    def test_spacing_respected(self):
        items = [
            GravityItem("a", 4, 4, net_points={"n": [Point(4, 2)]}, weight=2),
            GravityItem("b", 4, 4, net_points={"n": [Point(0, 2)]}, weight=1),
        ]
        pos = place_by_gravity(items, spacing=3)
        ra, rb = _rects(items, pos).values()
        gap_x = max(rb.x - ra.x2, ra.x - rb.x2)
        gap_y = max(rb.y - ra.y2, ra.y - rb.y2)
        assert max(gap_x, gap_y) >= 3

    def test_connected_items_attract(self):
        # c is connected to a; d is not. c must end up nearer to a.
        items = [
            GravityItem("a", 4, 4, net_points={"n": [Point(2, 2)]}, weight=10),
            GravityItem("c", 2, 2, net_points={"n": [Point(1, 1)]}),
            GravityItem("d", 2, 2, net_points={}),
        ]
        pos = place_by_gravity(items)
        da = pos["c"].manhattan(pos["a"])
        dd = pos["d"].manhattan(pos["a"])
        assert da <= dd

    def test_preplaced_stay_fixed(self):
        items = [
            GravityItem("fixed", 4, 4, net_points={"n": [Point(2, 2)]}),
            GravityItem("new", 2, 2, net_points={"n": [Point(1, 1)]}),
        ]
        pos = place_by_gravity(items, preplaced={"fixed": Point(50, 50)})
        assert pos["fixed"] == Point(50, 50)
        assert pos["new"].manhattan(Point(50, 50)) < 30

    def test_preplaced_unknown_key(self):
        with pytest.raises(KeyError):
            place_by_gravity(
                [GravityItem("a", 1, 1)], preplaced={"ghost": Point(0, 0)}
            )


class TestPartitionPlacement:
    def test_boxes_do_not_overlap(self, example2):
        parts = [sorted(example2.modules)]
        boxes = form_boxes(example2, parts[0], max_box_size=5)
        layouts = [place_box(example2, b) for b in boxes]
        layout = place_partition(example2, layouts)
        d = Diagram(example2)
        for pos, (box, origin) in zip(
            layout.box_positions, zip(layout.boxes, layout.box_positions)
        ):
            pass
        for module, (pos, rot) in layout.module_placements().items():
            d.place_module(module, pos, rot)
        assert placement_violations(d) == []

    def test_layout_normalised_to_origin(self, example2):
        boxes = form_boxes(example2, sorted(example2.modules), max_box_size=3)
        layouts = [place_box(example2, b) for b in boxes]
        layout = place_partition(example2, layouts)
        assert min(p.x for p in layout.box_positions) == 0
        assert min(p.y for p in layout.box_positions) == 0
        assert layout.width > 0 and layout.height > 0

    def test_net_points_translated(self, example2):
        boxes = form_boxes(example2, sorted(example2.modules), max_box_size=3)
        layouts = [place_box(example2, b) for b in boxes]
        layout = place_partition(example2, layouts)
        pts = layout.net_points(example2)
        assert pts  # every connected terminal appears
        for plist in pts.values():
            for p in plist:
                assert 0 <= p.x <= layout.width
                assert 0 <= p.y <= layout.height


class TestTerminalPlacement:
    def test_on_ring_and_free(self, two_buffer_network):
        d = Diagram(two_buffer_network)
        d.place_module("u0", Point(0, 0))
        d.place_module("u1", Point(8, 0))
        place_terminals(d)
        assert set(d.terminal_positions) == {"din", "dout"}
        bbox = Rect(0, 0, 11, 2).expand(1)
        for pos in d.terminal_positions.values():
            on_ring = (
                pos.x in (bbox.x, bbox.x2) and bbox.y <= pos.y <= bbox.y2
            ) or (pos.y in (bbox.y, bbox.y2) and bbox.x <= pos.x <= bbox.x2)
            assert on_ring
        assert placement_violations(d) == []

    def test_input_lands_left_output_right(self, two_buffer_network):
        d = Diagram(two_buffer_network)
        d.place_module("u0", Point(0, 0))
        d.place_module("u1", Point(8, 0))
        place_terminals(d)
        # Rule 4: din connects to u0.a on the left, dout to u1.y right.
        assert d.terminal_positions["din"].x < d.terminal_positions["dout"].x

    def test_existing_positions_kept(self, two_buffer_network):
        d = Diagram(two_buffer_network)
        d.place_module("u0", Point(0, 0))
        d.place_module("u1", Point(8, 0))
        d.place_system_terminal("din", Point(-7, 0))
        place_terminals(d)
        assert d.terminal_positions["din"] == Point(-7, 0)

    def test_no_terminals_no_op(self):
        net = Network()
        net.add_module(instantiate("buf", "u"))
        d = Diagram(net)
        d.place_module("u", Point(0, 0))
        place_terminals(d)
        assert d.terminal_positions == {}

    def test_unconnected_terminal_still_placed(self):
        net = Network()
        net.add_module(instantiate("buf", "u"))
        net.add_system_terminal("spare", TermType.IN)
        d = Diagram(net)
        d.place_module("u", Point(0, 0))
        place_terminals(d)
        assert "spare" in d.terminal_positions
