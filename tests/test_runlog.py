"""Tests for the run registry (``repro.obs.runlog``), the regression
gate and the ``artwork-inspect`` front end."""

import json

import pytest

from repro.core.generator import generate
from repro.formats.netlist_files import save_network_files
from repro.inspect import inspect_main
from repro.obs import Registry, Tracer, get_registry, set_registry, set_tracer
from repro.obs.congestion import CongestionMap
from repro.obs.report import render_html_report
from repro.obs.runlog import (
    RunLog,
    RunRecord,
    check_regressions,
    diff_records,
    stages_from_spans,
)
from repro.service.jobs import JobSpec
from repro.service.scheduler import BatchScheduler
from repro.workloads.examples import example1_string


@pytest.fixture
def tracer():
    t = Tracer(enabled=True)
    previous = set_tracer(t)
    yield t
    set_tracer(previous)


@pytest.fixture
def registry():
    r = Registry()
    previous = set_registry(r)
    yield r
    set_registry(previous)


@pytest.fixture
def runlog(tmp_path) -> RunLog:
    return RunLog(tmp_path / "runs.jsonl")


@pytest.fixture
def network_files(tmp_path):
    return save_network_files(example1_string(), tmp_path / "net")


def _net_args(paths):
    return [str(paths["netlist"]), str(paths["call"]), str(paths["io"])]


class TestRunRecord:
    def test_seal_is_content_derived(self):
        a = RunRecord(kind="artwork", name="x", metrics={"bends": 3}).seal()
        b = RunRecord(kind="artwork", name="x", metrics={"bends": 3}).seal()
        c = RunRecord(kind="artwork", name="x", metrics={"bends": 4}).seal()
        assert a.run_id == b.run_id
        assert a.run_id != c.run_id
        assert len(a.run_id) == 12

    def test_round_trip(self, runlog, registry):
        written = runlog.record(
            kind="bench",
            name="t",
            wall_seconds=1.25,
            metrics={"bends": 7, "crossovers": 2},
            failures={"n1": {"reason": "blocked"}},
            extra={"note": "hi"},
        )
        loaded = runlog.load()
        assert len(loaded) == 1
        again = loaded[0]
        assert again.run_id == written.run_id
        assert again.kind == "bench"
        assert again.metrics == {"bends": 7, "crossovers": 2}
        assert again.failures == {"n1": {"reason": "blocked"}}
        assert again.extra == {"note": "hi"}
        assert again.wall_seconds == pytest.approx(1.25)
        assert again.environment["python"]

    def test_record_result_captures_everything(self, runlog, registry, tracer):
        result = generate(example1_string(), runlog=runlog, run_name="ex1")
        record = result.run_record
        assert record is not None
        assert record.name == "ex1"
        assert record.metrics == dict(result.metrics.as_row())
        assert record.spec_digest == JobSpec.from_network(example1_string()).digest
        # The congestion snapshot agrees with the table 6.1 metrics.
        cmap = CongestionMap.from_dict(record.congestion)
        assert cmap.crossover_total == record.metrics["crossovers"]
        # Tracing was on, so stages and the profile tree landed too.
        assert "artwork.generate" in record.stages
        assert record.stages["artwork.generate"]["count"] == 1
        assert "artwork.generate" in record.profile
        assert record.counters["counters"]["route.nets"] >= 1


class TestRunLogIO:
    def test_corrupt_lines_skipped_and_tallied(self, runlog, registry):
        runlog.record(kind="artwork", name="a")
        runlog.record(kind="artwork", name="b")
        with runlog.path.open("a") as fh:
            fh.write("{not json at all\n")
            fh.write("[1, 2, 3]\n")
            fh.write("\n")  # blank lines are not corruption
        records = runlog.load()
        assert [r.name for r in records] == ["a", "b"]
        assert runlog.corrupt_lines == 2

    def test_missing_file_is_empty(self, tmp_path):
        log = RunLog(tmp_path / "nope" / "runs.jsonl")
        assert log.load() == []
        assert log.corrupt_lines == 0

    def test_filters_latest_and_prefix_find(self, runlog, registry):
        runlog.record(kind="artwork", name="a", wall_seconds=1.0)
        runlog.record(kind="bench", name="a", wall_seconds=2.0)
        runlog.record(kind="artwork", name="b", wall_seconds=3.0)
        assert len(runlog.runs(name="a")) == 2
        assert len(runlog.runs(kind="artwork")) == 2
        latest_a = runlog.latest(name="a")
        assert latest_a is not None and latest_a.kind == "bench"
        assert runlog.find(latest_a.run_id[:6]).run_id == latest_a.run_id
        assert runlog.find("zzzzzz") is None

    def test_stages_from_spans_flattens_worker_trees(self):
        roots = [
            {
                "name": "job",
                "duration": 2.0,
                "children": [
                    {"name": "pablo.place", "duration": 0.5, "children": []},
                    {"name": "eureka.route", "duration": 1.5, "children": []},
                ],
            }
        ]
        stages = stages_from_spans(roots)
        assert stages["job"] == {"seconds": 2.0, "count": 1}
        assert stages["eureka.route"]["seconds"] == pytest.approx(1.5)


class TestDiffAndGate:
    def test_diff_math(self):
        base = RunRecord(metrics={"bends": 10, "nets": 5}, wall_seconds=1.0)
        run = RunRecord(metrics={"bends": 15, "nets": 5}, wall_seconds=0.5)
        diff = diff_records(base, run)
        assert diff["bends"] == {"base": 10, "run": 15, "delta": 5, "pct": 50.0}
        assert diff["nets"]["delta"] == 0
        assert diff["wall_seconds"]["pct"] == pytest.approx(-50.0)

    def test_quality_regression_flagged_at_zero_tolerance(self):
        baseline = {"name": "w", "metrics": {"bends": 10, "crossovers": 2, "failed": 0}}
        record = RunRecord(metrics={"bends": 20, "crossovers": 2, "failed": 0})
        found = check_regressions(baseline, record)
        assert [v.metric for v in found] == ["bends"]
        assert found[0].kind == "quality"
        assert "10 -> 20" in str(found[0])

    def test_tolerance_absorbs_small_growth(self):
        baseline = {"name": "w", "metrics": {"bends": 10}}
        worse = RunRecord(metrics={"bends": 11})
        assert check_regressions(baseline, worse)  # 0% tolerance: fail
        assert not check_regressions(baseline, worse, quality_tolerance=0.10)
        assert check_regressions(baseline, worse, quality_tolerance=0.05)

    def test_improvement_and_new_failures(self):
        baseline = {"name": "w", "metrics": {"bends": 10, "failed": 0}}
        better = RunRecord(metrics={"bends": 5, "failed": 0})
        assert not check_regressions(baseline, better)
        failing = RunRecord(metrics={"bends": 10, "failed": 1})
        assert [v.metric for v in check_regressions(baseline, failing)] == ["failed"]

    def test_wall_time_gate_has_a_floor(self):
        baseline = {"name": "w", "metrics": {}, "wall_seconds": 0.001}
        noisy = RunRecord(wall_seconds=0.4)  # 400x the baseline, under floor
        assert not check_regressions(baseline, noisy)
        slow = RunRecord(wall_seconds=10.0)
        found = check_regressions(baseline, slow)
        assert [v.kind for v in found] == ["time"]


class TestSchedulerRunlog:
    def test_one_job_record_per_outcome(self, tmp_path, registry, tracer):
        log = RunLog(tmp_path / "runs.jsonl")
        specs = [
            JobSpec.from_network(example1_string(), name="j1"),
            JobSpec.from_network(example1_string(), name="j2"),
        ]
        sched = BatchScheduler(max_workers=1, runlog=log)
        outcomes = sched.run(specs)
        assert all(o.ok for o in outcomes)
        records = log.runs(kind="job")
        assert [r.name for r in records] == ["j1", "j2"]
        for record, outcome in zip(records, outcomes):
            assert record.metrics == outcome.metrics
            assert record.spec_digest == outcome.spec.digest
            assert record.stages  # worker spans travelled back
            assert CongestionMap.from_dict(record.congestion).occupancy_total > 0
        # Job wall time landed as a histogram (satellite: percentiles in
        # the registry, not just the report dict).
        hist = sched.counters.histogram("service.job_wall_s")
        assert hist.count == len(specs)
        assert get_registry().histogram("service.job_wall_s").count == len(specs)


class TestInspectCli:
    def test_record_list_show_diff(self, tmp_path, network_files, capsys, registry):
        log = str(tmp_path / "runs.jsonl")
        base_args = _net_args(network_files) + ["--runlog", log]
        assert inspect_main(["record"] + base_args + ["--name", "one"]) == 0
        assert inspect_main(["record"] + base_args + ["--name", "two", "-p", "3"]) == 0
        capsys.readouterr()

        assert inspect_main(["list", "--runlog", log]) == 0
        out = capsys.readouterr().out
        assert "one" in out and "two" in out

        records = RunLog(log).load()
        assert len(records) == 2
        assert inspect_main(["show", records[0].run_id[:8], "--runlog", log]) == 0
        out = capsys.readouterr().out
        assert "artwork.generate" in out  # profile tree
        assert "congestion:" in out

        rc = inspect_main(["diff", records[0].run_id, records[1].run_id, "--runlog", log])
        assert rc == 0
        assert "bends" in capsys.readouterr().out

    def test_record_writes_overlay_svg(self, tmp_path, network_files, registry):
        log = str(tmp_path / "runs.jsonl")
        svg = tmp_path / "overlay.svg"
        rc = inspect_main(
            ["record"] + _net_args(network_files)
            + ["--runlog", log, "--svg", str(svg)]
        )
        assert rc == 0
        text = svg.read_text()
        assert "#d9534f" in text  # congestion underlay cells present

    def test_unknown_run_id_is_usage_error(self, tmp_path, capsys):
        log = RunLog(tmp_path / "runs.jsonl")
        log.append(RunRecord(kind="artwork", name="x"))
        assert inspect_main(["show", "ffffff", "--runlog", str(log.path)]) == 2
        assert "no run matching" in capsys.readouterr().err

    def test_report_renders_without_rescanning(
        self, tmp_path, network_files, capsys, registry
    ):
        log = str(tmp_path / "runs.jsonl")
        assert inspect_main(["record"] + _net_args(network_files) + ["--runlog", log]) == 0
        # Everything the report needs is in the one recorded line: route.*
        # counters must not move while rendering (zero extra plane work).
        route_counters = {
            k: v
            for k, v in get_registry().snapshot()["counters"].items()
            if k.startswith("route.")
        }
        assert route_counters  # the capture did route
        record = RunLog(log).load()[0]
        html = render_html_report(record)
        after = {
            k: v
            for k, v in get_registry().snapshot()["counters"].items()
            if k.startswith("route.")
        }
        assert after == route_counters
        assert "Congestion heatmap" in html
        assert "artwork.generate" in html  # profile tree
        assert "p95" in html  # histogram percentiles table

        out = tmp_path / "report.html"
        assert inspect_main(["report", "--runlog", log, "-o", str(out)]) == 0
        assert "Congestion heatmap" in out.read_text()


class TestRegressCli:
    def _baseline(self, tmp_path, **overrides) -> "tuple[str, dict]":
        baselines = tmp_path / "baselines"
        baselines.mkdir(exist_ok=True)
        data = {
            "name": "example1_string",
            "source": {"example": "example1_string"},
            "pablo": {},
            "eureka": {},
            "metrics": {},
        }
        data.update(overrides)
        (baselines / "example1_string.json").write_text(json.dumps(data))
        return str(baselines), data

    def test_capture_update_then_twice_green(self, tmp_path, capsys, registry):
        baselines, _ = self._baseline(tmp_path)
        log = str(tmp_path / "runs.jsonl")
        common = ["regress", "--baselines", baselines, "--runlog", log, "--capture"]
        assert inspect_main(common + ["--update"]) == 0
        refreshed = json.loads((tmp_path / "baselines" / "example1_string.json").read_text())
        assert refreshed["metrics"]["nets"] > 0
        assert refreshed["wall_seconds"] > 0
        capsys.readouterr()
        # The acceptance bar: rerunning on an unchanged checkout passes,
        # twice, with no self-regression flakes.
        assert inspect_main(common) == 0
        assert inspect_main(common) == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_doubled_bends_fails_with_readable_diff(self, tmp_path, capsys, registry):
        baselines, _ = self._baseline(tmp_path)
        log = str(tmp_path / "runs.jsonl")
        common = ["regress", "--baselines", baselines, "--runlog", log, "--capture"]
        assert inspect_main(common + ["--update"]) == 0
        path = tmp_path / "baselines" / "example1_string.json"
        data = json.loads(path.read_text())
        # A synthetic quality regression: the checkout now produces twice
        # the baseline's bends (we halve the baseline instead of patching
        # the router).
        data["metrics"]["bends"] = data["metrics"]["bends"] // 2
        path.write_text(json.dumps(data))
        capsys.readouterr()
        assert inspect_main(common) == 1
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "bends regressed" in captured.err
        assert "limit" in captured.err

    def test_latest_run_mode_without_capture(self, tmp_path, capsys, registry):
        baselines, _ = self._baseline(tmp_path)
        log = RunLog(tmp_path / "runs.jsonl")
        # No runs recorded yet -> usage error, with a hint.
        assert inspect_main(
            ["regress", "--baselines", baselines, "--runlog", str(log.path)]
        ) == 2
        err = capsys.readouterr().err
        assert "--capture" in err
        # With a matching recorded run it gates that run.
        generate(example1_string(), runlog=log, run_name="example1_string")
        assert inspect_main(
            ["regress", "--baselines", baselines, "--runlog", str(log.path)]
        ) == 0

    def test_empty_baseline_dir_is_usage_error(self, tmp_path, capsys):
        empty = tmp_path / "none"
        empty.mkdir()
        assert inspect_main(["regress", "--baselines", str(empty)]) == 2
        assert "no baseline files" in capsys.readouterr().err
