"""Tests for the windowed RED telemetry ring (`repro.obs.window`), its
exposure through the gateway's ``/v1/stats`` handler, and the
``artwork-top`` dashboard renderer."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.obs.window import WINDOWS, RollingWindow, _percentile
from repro.top import render_dashboard


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock(1000.0)


@pytest.fixture()
def window(clock):
    return RollingWindow(horizon_s=900.0, bucket_s=5.0, clock=clock)


class TestPercentile:
    def test_nearest_rank(self):
        ordered = [1.0, 2.0, 3.0, 4.0]
        assert _percentile(ordered, 0.50) == 2.0
        assert _percentile(ordered, 0.95) == 4.0
        assert _percentile(ordered, 0.0) == 1.0
        assert _percentile([], 0.5) == 0.0
        assert _percentile([7.0], 0.95) == 7.0


class TestRollingWindow:
    def test_basic_red_aggregate(self, window, clock):
        for seconds in (0.1, 0.2, 0.3, 0.4):
            window.observe("ep", seconds)
        window.observe("ep", 1.0, error=True)
        stats = window.window(60.0)["ep"]
        assert stats["count"] == 5
        assert stats["errors"] == 1
        assert stats["qps"] == pytest.approx(5 / 60.0, abs=1e-6)
        assert stats["error_ratio"] == pytest.approx(0.2)
        assert stats["mean"] == pytest.approx(0.4)
        assert stats["p50"] == pytest.approx(0.3)
        assert stats["p95"] == pytest.approx(1.0)
        assert stats["max"] == pytest.approx(1.0)

    def test_rotation_expires_short_window_first(self, window, clock):
        for _ in range(10):
            window.observe("ep", 0.05)
        assert window.window(60.0)["ep"]["count"] == 10
        clock.advance(70.0)
        assert window.window(60.0)["ep"]["count"] == 0
        assert window.window(300.0)["ep"]["count"] == 10
        clock.advance(300.0)
        assert window.window(300.0)["ep"]["count"] == 0
        assert window.window(900.0)["ep"]["count"] == 10

    def test_idle_series_reports_zeros(self, window, clock):
        window.observe("ep", 0.2)
        clock.advance(3600.0)
        stats = window.window(60.0)["ep"]
        assert stats == {
            "count": 0, "errors": 0, "qps": 0.0, "error_ratio": 0.0,
            "mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0,
        }

    def test_ring_wrap_reuses_stale_buckets(self, window, clock):
        window.observe("ep", 0.5)
        # One full trip around the ring lands on the same slot index with
        # a different stamp: the stale bucket must be invalidated, not
        # double-counted.
        clock.advance(window.slots * window.bucket_s)
        window.observe("ep", 0.1)
        stats = window.window(900.0)["ep"]
        assert stats["count"] == 1
        assert stats["max"] == pytest.approx(0.1)

    def test_sample_cap_and_stride_replacement(self, clock):
        window = RollingWindow(horizon_s=60.0, bucket_s=60.0, max_samples=8, clock=clock)
        for i in range(100):
            window.observe("ep", float(i))
        stats = window.window(60.0)["ep"]
        assert stats["count"] == 100
        assert stats["mean"] == pytest.approx(sum(range(100)) / 100)
        # The bounded reservoir keeps recent values via stride replacement.
        ring = window._series["ep"]
        bucket = next(b for b in ring if b is not None)
        assert len(bucket.samples) == 8
        assert stats["max"] <= 99.0

    def test_window_capped_at_horizon(self, window, clock):
        window.observe("ep", 0.2)
        clock.advance(850.0)
        assert window.window(10_000.0)["ep"]["count"] == 1

    def test_keys_and_selective_window(self, window):
        window.observe("a", 0.1)
        window.observe("b", 0.2)
        assert window.keys() == ["a", "b"]
        only_a = window.window(60.0, keys=["a", "missing"])
        assert set(only_a) == {"a"}

    def test_snapshot_shape(self, window):
        window.observe("ep", 0.1)
        snap = window.snapshot()
        assert set(snap["ep"]) == set(WINDOWS)
        assert snap["ep"]["1m"]["count"] == 1

    def test_ctor_validation(self):
        with pytest.raises(ValueError):
            RollingWindow(horizon_s=0.0)
        with pytest.raises(ValueError):
            RollingWindow(bucket_s=-1.0)
        with pytest.raises(ValueError):
            RollingWindow(horizon_s=5.0, bucket_s=10.0)
        with pytest.raises(ValueError):
            RollingWindow(max_samples=0)


class TestStatsEndpointRotation:
    """`GET /v1/stats` reads live windows: swap in fake-clock rings and
    drive the handler directly (no sockets needed)."""

    def _stats_body(self, gateway) -> dict:
        from repro.gateway.protocol import HTTPRequest

        request = HTTPRequest(
            method="GET", target="/v1/stats", path="/v1/stats",
            query={}, headers={},
        )
        response = asyncio.run(gateway._stats(request, None, None))
        assert response.status == 200
        return json.loads(response.body)

    def test_windows_rotate_between_polls(self):
        from repro.gateway.server import ArtworkGateway, GatewayConfig

        gateway = ArtworkGateway(GatewayConfig(workers=1))
        clock = FakeClock(500.0)
        gateway.windows = RollingWindow(clock=clock)
        gateway.stage_windows = RollingWindow(clock=clock)
        try:
            gateway.windows.observe("POST /v1/jobs", 0.25)
            gateway.stage_windows.observe("worker.exec", 0.2)

            body = self._stats_body(gateway)
            assert set(body["windows"]) == set(WINDOWS)
            assert body["endpoints"]["POST /v1/jobs"]["1m"]["count"] == 1
            assert body["endpoints"]["POST /v1/jobs"]["1m"]["p50"] == pytest.approx(0.25)
            assert body["stages"]["worker.exec"]["1m"]["count"] == 1

            clock.advance(70.0)
            body = self._stats_body(gateway)
            assert body["endpoints"]["POST /v1/jobs"]["1m"]["count"] == 0
            assert body["endpoints"]["POST /v1/jobs"]["5m"]["count"] == 1
        finally:
            gateway.pool.close(drain=False)


class TestDashboardRenderer:
    def _stats(self) -> dict:
        red = {
            "count": 12, "errors": 1, "qps": 0.2, "error_ratio": 1 / 12,
            "mean": 0.2, "p50": 0.15, "p95": 0.8, "max": 1.2,
        }
        zero = {k: 0 if isinstance(v, int) else 0.0 for k, v in red.items()}
        return {
            "version": "1.2.3",
            "uptime_s": 321.0,
            "draining": False,
            "windows": dict(WINDOWS),
            "endpoints": {"POST /v1/jobs": {"1m": red, "5m": red, "15m": zero}},
            "stages": {"worker.exec": {"1m": red, "5m": zero, "15m": zero}},
            "gauges": {
                "queue_depth": 3,
                "in_flight": 1,
                "jobs_tracked": 40,
                "workers": {"size": 2, "alive": 2, "idle": 1, "busy": 1, "dead": 0},
                "cache": {"entries": 7, "hit_rate": 0.5},
            },
            "totals": {"service.jobs": 40, "service.cache_hits": 20,
                       "gateway.slow_requests": 2},
        }

    def test_render_dashboard_plain_text(self):
        board = render_dashboard(self._stats(), window="1m")
        assert "\x1b" not in board  # pure text; ANSI lives in the loop
        assert "artwork-serve 1.2.3" in board
        assert "queue 3" in board
        assert "workers 2/2 (busy 1, idle 1)" in board
        assert "POST /v1/jobs" in board
        assert "worker.exec" in board
        assert "8.3%" in board  # 1/12 errors
        assert "0.15s" in board and "0.80s" in board
        assert "slow requests 2" in board
        assert "cache 7 entries, 50% hit" in board

    def test_render_idle_windows(self):
        board = render_dashboard(self._stats(), window="15m")
        assert "(15m window)" in board
        # Idle series still render (zero row), the section is not empty.
        assert "POST /v1/jobs" in board

    def test_render_empty_stats(self):
        board = render_dashboard({"endpoints": {}, "stages": {}})
        assert "(no traffic yet)" in board

    def test_render_breaker_journal_and_profiler(self):
        stats = self._stats()
        stats["breaker"] = {
            "state": "open", "failures_in_window": 3, "threshold": 3,
            "trips": 1, "heals": 0,
        }
        stats["journal"] = {"live_jobs": 2, "appended": 9, "compactions": 1}
        stats["profile"] = {
            "running": True, "hz": 19.0, "ticks": 1234, "errors": 1,
            "overhead_ratio": 0.0042, "attributed_ratio": 0.93,
            "last_window": {
                "samples": 95, "duration_s": 5.0,
                "top_frames": [["repro.route.expand", 40],
                               ["repro.place.sweep", 30],
                               ["idle.wait", 25]],
                "spans": {"job>eureka.route": 70, "": 25},
            },
        }
        board = render_dashboard(stats, window="1m")
        assert "breaker OPEN (3/3 deaths, 1 trips, 0 heals)" in board
        assert "journal 2 live, 9 appended, 1 compactions" in board
        assert "profiler  (19 hz, 1234 ticks" in board
        assert "93% attributed" in board and "1 errors" in board
        assert "repro.route.expand" in board
        assert "42.1%" in board  # 40/95 self-time share

    def test_profiler_pane_hidden_when_sampler_off(self):
        stats = self._stats()
        stats["profile"] = {"running": False}
        board = render_dashboard(stats, window="1m")
        assert "profiler" not in board

    def test_profiler_pane_empty_window(self):
        stats = self._stats()
        stats["profile"] = {
            "running": True, "hz": 19.0, "ticks": 3, "errors": 0,
            "overhead_ratio": 0.0, "attributed_ratio": 0.0,
            "last_window": {"samples": 0, "top_frames": []},
        }
        board = render_dashboard(stats, window="1m")
        assert "(no samples in the last window)" in board
