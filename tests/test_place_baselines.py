"""Tests for the baseline placers: epitaxial, min-cut, logic columns."""

import pytest

from repro.core.validate import placement_violations
from repro.place.epitaxial import epitaxial_placement
from repro.place.logic_columns import levelize, logic_columns_placement
from repro.place.mincut import bipartition, cut_count, mincut_placement
from repro.workloads.examples import example1_string, example2_controller
from repro.workloads.random_nets import random_network


PLACERS = [epitaxial_placement, mincut_placement, logic_columns_placement]


class TestCommonContract:
    @pytest.mark.parametrize("placer", PLACERS)
    def test_places_everything_legally(self, placer, example2):
        d = placer(example2)
        assert d.is_placed
        assert placement_violations(d) == []

    @pytest.mark.parametrize("placer", PLACERS)
    def test_random_networks(self, placer):
        net = random_network(modules=8, seed=3)
        d = placer(net)
        assert d.is_placed
        assert placement_violations(d) == []

    @pytest.mark.parametrize("placer", PLACERS)
    def test_deterministic(self, placer, example1):
        a = placer(example1)
        b = placer(example1)
        assert {m: p.position for m, p in a.placements.items()} == {
            m: p.position for m, p in b.placements.items()
        }


class TestEpitaxial:
    def test_seed_module_at_origin_slot(self, example2):
        d = epitaxial_placement(example2, seed="ctl")
        # The seed lands in the slot nearest the origin.
        others = [p.position for n, p in d.placements.items() if n != "ctl"]
        ctl = d.placements["ctl"].position
        assert any(ctl.x <= p.x or ctl.y <= p.y for p in others)

    def test_connected_modules_near_seed(self, example2):
        d = epitaxial_placement(example2, seed="ctl")
        ctl = d.placements["ctl"].rect.center
        reg0 = d.placements["reg0"].rect.center  # connected to ctl
        # All modules are within the grown cluster; reg0 is no farther
        # than the farthest module.
        dists = [
            abs(p.rect.center[0] - ctl[0]) + abs(p.rect.center[1] - ctl[1])
            for p in d.placements.values()
        ]
        d_reg0 = abs(reg0[0] - ctl[0]) + abs(reg0[1] - ctl[1])
        assert d_reg0 <= max(dists)


class TestMinCut:
    def test_cut_count(self, example2):
        left = {"reg0", "alu0", "mux0", "out0", "buf0"}
        right = set(example2.modules) - left
        cut = cut_count(example2, left, right)
        # Cluster 0 talks to the controller (3 control nets) and to the
        # neighbouring clusters through the ring buffers (2 nets).
        assert cut == 5

    def test_bipartition_balanced(self, example2):
        left, right = bipartition(example2, sorted(example2.modules))
        assert abs(len(left) - len(right)) <= 1
        assert set(left) | set(right) == set(example2.modules)
        assert not set(left) & set(right)

    def test_bipartition_beats_naive_split(self, example2):
        members = sorted(example2.modules)
        left, right = bipartition(example2, members)
        naive = cut_count(
            example2, set(members[: len(members) // 2]), set(members[len(members) // 2 :])
        )
        assert cut_count(example2, set(left), set(right)) <= naive


class TestLogicColumns:
    def test_levelize_sources_first(self, example1):
        columns = levelize(example1)
        # d0 is driven only by the system terminal: it is a source.
        assert "d0" in columns[0]
        order = {m: i for i, col in enumerate(columns) for m in col}
        # Drive order respected along the chain.
        assert order["d0"] <= order["b1"] <= order["i2"] <= order["b3"]

    def test_levelize_handles_feedback(self, example2):
        # example2 has a buffer ring: levelize must still terminate and
        # cover every module exactly once.
        columns = levelize(example2)
        flat = [m for col in columns for m in col]
        assert sorted(flat) == sorted(example2.modules)

    def test_columns_are_x_ordered(self, example1):
        d = logic_columns_placement(example1)
        order = {m: i for i, col in enumerate(levelize(example1)) for m in col}
        for a in order:
            for b in order:
                if order[a] < order[b]:
                    assert d.placements[a].position.x < d.placements[b].position.x
