"""Unit tests for the diagram model."""

import pytest

from repro.core.diagram import Diagram, DiagramError, PlacedModule, RoutedNet
from repro.core.geometry import Point, Rect, Side
from repro.core.netlist import Pin
from repro.core.rotation import Rotation
from repro.workloads.stdlib import instantiate


class TestPlacedModule:
    def test_rect_and_terminals(self, square_module_network):
        pm = PlacedModule(square_module_network.modules["sq"], Point(10, 20))
        assert pm.rect == Rect(10, 20, 4, 4)
        assert pm.terminal_position("l") == Point(10, 21)
        assert pm.terminal_position("r") == Point(14, 22)
        assert pm.terminal_side("l") is Side.LEFT

    def test_rotated_terminals(self, square_module_network):
        pm = PlacedModule(
            square_module_network.modules["sq"], Point(0, 0), Rotation.R90
        )
        # R90 maps LEFT to DOWN.
        assert pm.terminal_side("l") is Side.DOWN
        offset = pm.terminal_offset("l")
        assert pm.rect.side_of(Point(offset.x, offset.y)) is Side.DOWN


class TestDiagramConstruction:
    def test_place_unknown_module(self, two_buffer_network):
        d = Diagram(two_buffer_network)
        with pytest.raises(DiagramError):
            d.place_module("nosuch", Point(0, 0))

    def test_place_unknown_terminal(self, two_buffer_network):
        d = Diagram(two_buffer_network)
        with pytest.raises(DiagramError):
            d.place_system_terminal("nosuch", Point(0, 0))

    def test_is_placed(self, two_buffer_diagram):
        assert two_buffer_diagram.is_placed

    def test_is_placed_partial(self, two_buffer_network):
        d = Diagram(two_buffer_network)
        d.place_module("u0", Point(0, 0))
        assert not d.is_placed

    def test_pin_positions(self, two_buffer_diagram):
        assert two_buffer_diagram.pin_position(Pin("u0", "a")) == Point(0, 1)
        assert two_buffer_diagram.pin_position(Pin("u0", "y")) == Point(3, 1)
        assert two_buffer_diagram.pin_position(Pin(None, "din")) == Point(-4, 1)

    def test_pin_position_unplaced(self, two_buffer_network):
        d = Diagram(two_buffer_network)
        with pytest.raises(DiagramError):
            d.pin_position(Pin("u0", "a"))
        with pytest.raises(DiagramError):
            d.pin_position(Pin(None, "din"))

    def test_pin_side(self, two_buffer_diagram):
        assert two_buffer_diagram.pin_side(Pin("u0", "a")) is Side.LEFT
        assert two_buffer_diagram.pin_side(Pin(None, "din")) is None


class TestRoutedNet:
    def test_add_path_normalises(self, two_buffer_network):
        route = RoutedNet(two_buffer_network.nets["n_mid"])
        route.add_path([Point(3, 1), Point(5, 1), Point(8, 1)])
        assert route.paths == [[Point(3, 1), Point(8, 1)]]
        assert route.length == 5
        assert route.bends == 0
        assert route.complete

    def test_points_cover_path(self, two_buffer_network):
        route = RoutedNet(two_buffer_network.nets["n_mid"])
        route.add_path([Point(0, 0), Point(2, 0), Point(2, 2)])
        assert Point(1, 0) in route.points()
        assert Point(2, 1) in route.points()
        assert len(route.points()) == 5

    def test_incomplete_when_failed(self, two_buffer_network):
        route = RoutedNet(two_buffer_network.nets["n_mid"])
        route.failed_pins.append(Pin("u1", "a"))
        assert not route.complete


class TestDiagramBookkeeping:
    def test_bounding_box(self, two_buffer_diagram):
        bbox = two_buffer_diagram.bounding_box(include_routes=False)
        assert bbox.x == -4 and bbox.x2 == 15

    def test_bounding_box_includes_routes(self, two_buffer_diagram):
        route = two_buffer_diagram.route_for("n_mid")
        route.add_path([Point(3, 1), Point(3, 30)])
        assert two_buffer_diagram.bounding_box().y2 == 30

    def test_bounding_box_empty(self, two_buffer_network):
        assert Diagram(two_buffer_network).bounding_box() == Rect(0, 0, 0, 0)

    def test_unrouted_nets(self, two_buffer_diagram):
        assert set(two_buffer_diagram.unrouted_nets) == {"n_in", "n_mid", "n_out"}
        r = two_buffer_diagram.route_for("n_mid")
        r.add_path([Point(3, 1), Point(8, 1)])
        assert "n_mid" not in two_buffer_diagram.unrouted_nets

    def test_copy_placement_drops_routes(self, two_buffer_diagram):
        two_buffer_diagram.route_for("n_mid").add_path([Point(3, 1), Point(8, 1)])
        copy = two_buffer_diagram.copy_placement()
        assert not copy.routes
        assert copy.placements["u0"].position == Point(0, 0)
        # And the copy is independent.
        copy.place_module("u0", Point(50, 50))
        assert two_buffer_diagram.placements["u0"].position == Point(0, 0)
