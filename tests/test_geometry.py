"""Unit tests for the grid geometry primitives."""

import pytest

from repro.core.geometry import (
    Direction,
    Orientation,
    Point,
    Rect,
    Segment,
    Side,
    bounding_rect,
    normalize_path,
    path_bends,
    path_length,
    path_points,
    path_segments,
)


class TestDirection:
    def test_steps(self):
        assert Point(0, 0).step(Direction.RIGHT) == Point(1, 0)
        assert Point(0, 0).step(Direction.UP, 3) == Point(0, 3)
        assert Point(5, 5).step(Direction.LEFT, 2) == Point(3, 5)
        assert Point(5, 5).step(Direction.DOWN) == Point(5, 4)

    def test_opposites(self):
        for d in Direction:
            assert d.opposite.opposite is d
            assert d.dx == -d.opposite.dx and d.dy == -d.opposite.dy

    def test_orientation(self):
        assert Direction.LEFT.orientation is Orientation.HORIZONTAL
        assert Direction.UP.orientation is Orientation.VERTICAL
        assert Orientation.HORIZONTAL.perpendicular is Orientation.VERTICAL

    def test_perpendiculars(self):
        assert set(Direction.RIGHT.perpendiculars) == {Direction.UP, Direction.DOWN}
        assert set(Direction.DOWN.perpendiculars) == {Direction.LEFT, Direction.RIGHT}

    def test_side_outward(self):
        assert Side.LEFT.outward is Direction.LEFT
        assert Side.UP.opposite is Side.DOWN


class TestPoint:
    def test_manhattan(self):
        assert Point(0, 0).manhattan(Point(3, 4)) == 7
        assert Point(-2, 1).manhattan(Point(-2, 1)) == 0


class TestRect:
    def test_properties(self):
        r = Rect(1, 2, 3, 4)
        assert r.x2 == 4 and r.y2 == 6
        assert r.lower_left == Point(1, 2)
        assert r.upper_right == Point(4, 6)
        assert r.area == 12
        assert r.center == (2.5, 4.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Rect(0, 0, -1, 2)

    def test_contains(self):
        r = Rect(0, 0, 4, 4)
        assert r.contains(Point(0, 0))
        assert r.contains(Point(4, 4))
        assert not r.contains(Point(5, 0))
        assert not r.contains(Point(0, 0), strict=True)
        assert r.contains(Point(2, 2), strict=True)

    def test_overlap_touching(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(2, 0, 2, 2)  # shares the x=2 border
        assert not a.overlaps(b)
        assert a.overlaps(b, touching_ok=False)
        assert a.overlaps(Rect(1, 1, 2, 2))
        assert not a.overlaps(Rect(5, 5, 1, 1), touching_ok=False)

    def test_union_and_bounding(self):
        a, b = Rect(0, 0, 1, 1), Rect(3, 4, 2, 2)
        u = a.union(b)
        assert u == Rect(0, 0, 5, 6)
        assert bounding_rect([a, b]) == u
        with pytest.raises(ValueError):
            bounding_rect([])

    def test_expand_translate(self):
        assert Rect(1, 1, 2, 2).expand(1) == Rect(0, 0, 4, 4)
        assert Rect(1, 1, 2, 2).translate(2, -1) == Rect(3, 0, 2, 2)

    def test_side_of(self):
        r = Rect(0, 0, 4, 4)
        assert r.side_of(Point(0, 2)) is Side.LEFT
        assert r.side_of(Point(4, 2)) is Side.RIGHT
        assert r.side_of(Point(2, 4)) is Side.UP
        assert r.side_of(Point(2, 0)) is Side.DOWN
        # Corners resolve to left/right (the paper's convention).
        assert r.side_of(Point(0, 0)) is Side.LEFT
        assert r.side_of(Point(4, 4)) is Side.RIGHT
        assert r.side_of(Point(2, 2)) is None
        assert r.side_of(Point(9, 9)) is None


class TestSegment:
    def test_between(self):
        s = Segment.between(Point(1, 3), Point(5, 3))
        assert s.orientation is Orientation.HORIZONTAL
        assert (s.index, s.lo, s.hi) == (3, 1, 5)
        assert s.p1 == Point(1, 3) and s.p2 == Point(5, 3)
        with pytest.raises(ValueError):
            Segment.between(Point(0, 0), Point(1, 1))

    def test_reversed_range_rejected(self):
        with pytest.raises(ValueError):
            Segment(Orientation.HORIZONTAL, 0, 5, 1)

    def test_points_and_contains(self):
        s = Segment(Orientation.VERTICAL, 2, 0, 2)
        assert list(s.points()) == [Point(2, 0), Point(2, 1), Point(2, 2)]
        assert s.contains_point(Point(2, 1))
        assert not s.contains_point(Point(3, 1))
        assert s.length == 2 and not s.is_point
        assert Segment(Orientation.HORIZONTAL, 0, 1, 1).is_point

    def test_crosses(self):
        h = Segment(Orientation.HORIZONTAL, 5, 0, 10)
        v = Segment(Orientation.VERTICAL, 3, 0, 10)
        assert h.crosses(v) == Point(3, 5)
        assert v.crosses(h) == Point(3, 5)
        assert h.crosses(Segment(Orientation.HORIZONTAL, 5, 0, 3)) is None
        assert h.crosses(Segment(Orientation.VERTICAL, 20, 0, 10)) is None


class TestPaths:
    def test_normalize(self):
        path = [Point(0, 0), Point(2, 0), Point(2, 0), Point(4, 0), Point(4, 3)]
        assert normalize_path(path) == [Point(0, 0), Point(4, 0), Point(4, 3)]

    def test_normalize_single(self):
        assert normalize_path([Point(1, 1)]) == [Point(1, 1)]

    def test_length_and_bends(self):
        path = [Point(0, 0), Point(4, 0), Point(4, 3), Point(6, 3)]
        assert path_length(path) == 9
        assert path_bends(path) == 2
        assert path_bends([Point(0, 0), Point(5, 0)]) == 0

    def test_segments(self):
        path = [Point(0, 0), Point(2, 0), Point(2, 2)]
        segs = path_segments(path)
        assert len(segs) == 2
        assert segs[0].orientation is Orientation.HORIZONTAL

    def test_points_enumeration(self):
        path = [Point(0, 0), Point(2, 0), Point(2, 1)]
        assert list(path_points(path)) == [
            Point(0, 0),
            Point(1, 0),
            Point(2, 0),
            Point(2, 1),
        ]
