"""Tests for the datapath scaling workload and the HTML report."""

import pytest

from repro.core.generator import generate
from repro.place.pablo import PabloOptions
from repro.render.report import Report
from repro.route.eureka import route_diagram
from repro.workloads.datapath import datapath_network, datapath_sizes


class TestDatapath:
    def test_counts_scale(self):
        small = datapath_network(lanes=1, stages=2)
        big = datapath_network(lanes=3, stages=6)
        assert len(big.modules) > len(small.modules)
        assert len(big.nets) > len(small.nets)

    def test_structure(self):
        net = datapath_network(lanes=2, stages=3)
        # lanes*stages registers + lanes*(stages-1) muxes + controller
        assert len(net.modules) == 2 * 3 + 2 * 2 + 1
        assert "ctl" in net.modules
        net.validate()

    def test_pipeline_chain_exists(self):
        net = datapath_network(lanes=1, stages=4)
        assert net.connected("r0_0", "m0_0", "q0_0")
        assert net.connected("m0_0", "r0_1", "d0_0")

    def test_bad_sizes(self):
        with pytest.raises(ValueError):
            datapath_network(lanes=0, stages=3)
        with pytest.raises(ValueError):
            datapath_network(lanes=1, stages=1)

    def test_many_lanes_validates(self):
        datapath_network(lanes=12, stages=2).validate()

    def test_standard_sweep(self):
        nets = datapath_sizes()
        sizes = [len(n.modules) for n in nets]
        assert sizes == sorted(sizes)

    def test_small_datapath_generates(self):
        result = generate(
            datapath_network(lanes=1, stages=3),
            PabloOptions(partition_size=5, box_size=4),
        )
        assert result.metrics.nets_failed == 0


class TestReport:
    def test_html_structure(self, two_buffer_diagram, tmp_path):
        route_diagram(two_buffer_diagram)
        report = Report("Demo report")
        report.add("The pair", two_buffer_diagram, note="two buffers & <wires>")
        html_text = report.to_html()
        assert html_text.startswith("<!DOCTYPE html>")
        assert "Demo report" in html_text
        assert "<svg" in html_text
        assert "two buffers &amp; &lt;wires&gt;" in html_text  # escaped note
        assert "crossovers" in html_text  # the metrics table

    def test_save(self, two_buffer_diagram, tmp_path):
        report = Report("r")
        report.add("s", two_buffer_diagram)
        out = report.save(tmp_path / "sub" / "report.html")
        assert out.exists()
        assert out.read_text().startswith("<!DOCTYPE html>")

    def test_multiple_sections(self, two_buffer_diagram):
        report = Report("multi")
        report.add("a", two_buffer_diagram)
        report.add("b", two_buffer_diagram)
        assert report.to_html().count("<section>") == 2
