"""Tests for module placement inside boxes (rotation, spacing, bends)."""

import pytest

from repro.core.diagram import Diagram
from repro.core.geometry import Point, Side
from repro.core.netlist import Network
from repro.core.validate import placement_violations
from repro.place.boxes import form_boxes
from repro.place.module_place import connected_terminals_on, place_box
from repro.core.rotation import Rotation
from repro.workloads.examples import example1_string
from repro.workloads.stdlib import instantiate, make_module


@pytest.fixture
def string_network() -> Network:
    net = example1_string()
    return net


def _string(net) -> list[str]:
    boxes = form_boxes(net, sorted(net.modules), max_box_size=10)
    return max(boxes, key=len)


class TestPlaceBox:
    def test_left_to_right_levels(self, string_network):
        box = _string(string_network)
        layout = place_box(string_network, box)
        xs = [layout.positions[m].x for m in box]
        assert xs == sorted(xs)
        assert len(set(xs)) == len(xs)

    def test_no_overlaps(self, string_network):
        box = _string(string_network)
        layout = place_box(string_network, box)
        d = Diagram(string_network)
        for m in box:
            d.place_module(m, layout.positions[m], layout.rotations[m])
        assert placement_violations(d) == []

    def test_box_encloses_modules_with_white_space(self, string_network):
        box = _string(string_network)
        layout = place_box(string_network, box)
        for m in box:
            pos = layout.positions[m]
            mod = string_network.modules[m]
            w, h = layout.rotations[m].size(mod.width, mod.height)
            assert pos.x >= 1 and pos.y >= 1  # at least f() = 0 + 1 track
            assert pos.x + w < layout.width
            assert pos.y + h < layout.height

    def test_string_nets_have_zero_bends_when_aligned(self, string_network):
        """The lemma of 4.6.4: for out-right/in-left terminals at the same
        height the connecting nets are straight."""
        box = _string(string_network)
        layout = place_box(string_network, box)
        for prev, nxt in zip(box, box[1:]):
            # find the connecting terminals
            from repro.place.boxes import string_edge

            e = string_edge(string_network, prev, nxt, set(box))
            p_out = layout.terminal_point(string_network, prev, e.source_terminal)
            p_in = layout.terminal_point(string_network, nxt, e.sink_terminal)
            assert p_out.y == p_in.y  # same track: zero bends possible
            assert p_out.x < p_in.x

    def test_extra_space_widens_box(self, string_network):
        box = _string(string_network)
        tight = place_box(string_network, box, extra_space=0)
        roomy = place_box(string_network, box, extra_space=2)
        assert roomy.width > tight.width
        assert roomy.height > tight.height

    def test_singleton_box(self):
        net = Network()
        net.add_module(instantiate("alu", "solo"))
        layout = place_box(net, ["solo"])
        assert layout.rotations["solo"] is Rotation.R0
        assert layout.width >= net.modules["solo"].width


class TestRotationChoice:
    def test_source_rotated_to_right(self):
        """A first module whose driving terminal sits on top must be
        rotated so it faces right."""
        net = Network()
        net.add_module(make_module("src", 4, 4, [("q", "out", 2, 4)]))  # up
        net.add_module(make_module("dst", 4, 4, [("d", "in", 0, 2)]))  # left
        net.connect("n", "src.q", "dst.d")
        layout = place_box(net, ["src", "dst"])
        rot = layout.rotations["src"]
        assert rot.side(Side.UP) is Side.RIGHT
        assert layout.rotations["dst"] is Rotation.R0  # already faces left

    def test_sink_rotated_to_left(self):
        net = Network()
        net.add_module(make_module("src", 4, 4, [("q", "out", 4, 2)]))  # right
        net.add_module(make_module("dst", 4, 4, [("d", "in", 2, 0)]))  # down
        net.connect("n", "src.q", "dst.d")
        layout = place_box(net, ["src", "dst"])
        rot = layout.rotations["dst"]
        assert rot.side(Side.DOWN) is Side.LEFT


class TestWhiteSpace:
    def test_connected_terminals_on(self):
        net = Network()
        net.add_module(instantiate("and2", "g"))
        net.connect("n", "g.a", "g.y")  # a (left) and y (right) connected
        mod = net.modules["g"]
        assert connected_terminals_on(net, mod, Rotation.R0, Side.LEFT) == 1
        assert connected_terminals_on(net, mod, Rotation.R0, Side.RIGHT) == 1
        assert connected_terminals_on(net, mod, Rotation.R0, Side.UP) == 0
        # b is unconnected so it does not count.
        assert connected_terminals_on(net, mod, Rotation.R90, Side.DOWN) == 1
