"""Tests for the gateway's write-ahead job journal: durability format,
torn-tail tolerance, compaction, boot-time replay, and the full
kill-the-daemon-and-restart recovery path."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.gateway import GatewayConfig, HttpClient, JobJournal, start_gateway
from repro.gateway.journal import read_journal
from repro.service import JobSpec, ResultCache
from repro.workloads import random_network


def spec_for(seed: int = 0, *, modules: int = 5) -> JobSpec:
    return JobSpec.from_network(random_network(modules=modules, seed=seed))


# -- JobJournal unit --------------------------------------------------------


class TestJobJournal:
    def test_accept_dispatch_done_lifecycle(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path, fsync="never") as journal:
            journal.accepted("j000001", "d1", {"name": "a"}, name="a",
                             trace_id="t1", deadline=123.5)
            journal.accepted("j000002", "d2", {"name": "b"}, name="b")
            journal.dispatched("j000001")
            journal.done("j000002", "ok")
        reopened = JobJournal(path, fsync="never")
        entries = reopened.replay()
        assert [e.job_id for e in entries] == ["j000001"]
        entry = entries[0]
        assert entry.digest == "d1"
        assert entry.payload == {"name": "a"}
        assert entry.trace_id == "t1"
        assert entry.deadline == 123.5
        assert entry.state == "dispatched"
        reopened.close()

    def test_done_without_accept_is_ignored(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl", fsync="never")
        journal.done("j000009", "ok")  # no-op, no record written
        assert journal.stats.appended == 0
        journal.close()

    def test_torn_tail_is_dropped_silently(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JobJournal(path, fsync="never") as journal:
            journal.accepted("j000001", "d1", {})
            journal.accepted("j000002", "d2", {})
        with open(path, "ab") as fh:
            fh.write(b'{"op": "done", "job": "j0000')  # power cut mid-append
        reopened = JobJournal(path, fsync="never")
        assert reopened.stats.torn_tail is True
        assert reopened.stats.corrupt_lines == 0
        assert {e.job_id for e in reopened.replay()} == {"j000001", "j000002"}
        reopened.close()

    def test_interior_corruption_is_counted(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JobJournal(path, fsync="never") as journal:
            journal.accepted("j000001", "d1", {})
        lines = path.read_bytes().splitlines()
        path.write_bytes(b"garbage not json\n" + lines[0] + b"\n")
        reopened = JobJournal(path, fsync="never")
        assert reopened.stats.corrupt_lines == 1
        assert [e.job_id for e in reopened.replay()] == ["j000001"]
        reopened.close()

    def test_compact_keeps_only_live_entries(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = JobJournal(path, fsync="never")
        for i in range(1, 6):
            journal.accepted(f"j{i:06d}", f"d{i}", {"i": i})
        for i in range(1, 5):
            journal.done(f"j{i:06d}", "ok")
        assert journal.compact() == 1
        journal.close()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["job"] for r in records] == ["j000005"]
        assert [r["op"] for r in records] == ["accepted"]

    def test_compact_preserves_dispatched_marker(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = JobJournal(path, fsync="never")
        journal.accepted("j000001", "d1", {})
        journal.dispatched("j000001")
        journal.compact()
        journal.close()
        reopened = JobJournal(path, fsync="never")
        assert reopened.replay()[0].state == "dispatched"
        reopened.close()

    def test_auto_compaction_after_threshold_completions(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = JobJournal(path, fsync="never", compact_threshold=3)
        for i in range(1, 5):
            journal.accepted(f"j{i:06d}", f"d{i}", {})
            journal.done(f"j{i:06d}", "ok")
        assert journal.stats.compactions >= 1
        journal.close()
        # The compaction at the threshold purged everything terminal at
        # that point; only later records remain.
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert {r["job"] for r in records} == {"j000004"}

    def test_max_job_seq(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl", fsync="never")
        assert journal.max_job_seq() == 0
        journal.accepted("j000007", "d", {})
        journal.accepted("j000042", "d2", {})
        assert journal.max_job_seq() == 42
        journal.close()

    def test_fsync_policies(self, tmp_path):
        for policy in ("always", "interval", "never"):
            journal = JobJournal(tmp_path / f"{policy}.jsonl", fsync=policy)
            journal.accepted("j000001", "d", {})
            journal.close()
        with pytest.raises(ValueError):
            JobJournal(tmp_path / "bad.jsonl", fsync="sometimes")
        always = JobJournal(tmp_path / "always.jsonl", fsync="always")
        assert always.stats.appended == 0  # fresh handle, load-only
        always.accepted("j000002", "d", {})
        assert always.stats.fsyncs == 1
        always.close()

    def test_read_journal_summary(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JobJournal(path, fsync="never") as journal:
            journal.accepted("j000001", "d1", {}, name="one")
            journal.accepted("j000002", "d2", {}, name="two")
            journal.dispatched("j000002")
            journal.done("j000001", "ok")
        records, summary = read_journal(path)
        assert summary["jobs"] == 2
        assert summary["live"] == 1
        assert summary["live_jobs"] == {"j000002": "dispatched"}
        assert summary["statuses"] == {"j000001": "ok"}
        assert summary["corrupt_lines"] == 0 and summary["torn_tail"] is False
        assert len(records) == 4


# -- boot-time replay through the gateway -----------------------------------


class TestGatewayReplay:
    def test_queued_job_survives_restart(self, tmp_path):
        spec = spec_for(seed=21)
        path = tmp_path / "journal.jsonl"
        with JobJournal(path, fsync="never") as journal:
            journal.accepted(
                "j000031", spec.digest, spec.to_dict(),
                name=spec.name, trace_id="cafe" * 8,
            )
        config = GatewayConfig(
            workers=1,
            cache=ResultCache(tmp_path / "cache"),
            journal=JobJournal(path, fsync="never"),
        )
        with start_gateway(config) as served:
            with HttpClient("127.0.0.1", served.port) as c:
                final = c.get("/v1/jobs/j000031?wait=30").json()
                assert final["status"] == "ok"
                assert final["replayed"] is True
                assert final["trace_id"] == "cafe" * 8
                # Fresh ids allocate above the replayed sequence.
                fresh = c.post("/v1/jobs", spec_for(seed=22).to_dict()).json()
                assert int(fresh["id"][1:]) > 31
                stats = c.get("/v1/stats").json()
                assert stats["totals"]["gateway.journal_replayed"] == 1
                assert stats["journal"]["path"] == str(path)
        # The job reached a terminal state: nothing left to replay.
        _, summary = read_journal(path)
        assert summary["live"] == 0

    def test_finished_before_crash_served_from_cache(self, tmp_path):
        """A job whose result landed in the cache before the crash is
        replayed as a cache hit — executed exactly once overall."""
        spec = spec_for(seed=23)
        cache = ResultCache(tmp_path / "cache")
        from repro.formats.escher import MAGIC

        cache.put(spec, {"status": "ok", "escher": MAGIC + "\n", "metrics": {},
                         "timing": {}, "seconds": 0.01})
        path = tmp_path / "journal.jsonl"
        with JobJournal(path, fsync="never") as journal:
            journal.accepted("j000005", spec.digest, spec.to_dict(), name=spec.name)
        config = GatewayConfig(
            workers=1, cache=cache, journal=JobJournal(path, fsync="never")
        )
        with start_gateway(config) as served:
            with HttpClient("127.0.0.1", served.port) as c:
                final = c.get("/v1/jobs/j000005?wait=10").json()
                assert final["status"] == "ok"
                assert final["cached"] is True
                assert final["replayed"] is True

    def test_unreplayable_entry_is_retired(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path, fsync="never") as journal:
            journal.accepted("j000001", "bogus", {"not": "a spec"})
        config = GatewayConfig(workers=1, journal=JobJournal(path, fsync="never"))
        with start_gateway(config) as served:
            with HttpClient("127.0.0.1", served.port) as c:
                assert c.get("/v1/jobs/j000001").status == 404
        _, summary = read_journal(path)
        assert summary["live"] == 0  # journaled done("error"), then compacted


# -- the restart-recovery satellite: SIGKILL a real daemon mid-job ----------


class TestRestartRecovery:
    def _spawn_daemon(self, args: list[str], env: dict) -> tuple[subprocess.Popen, int]:
        code = (
            "import sys; from repro.cli import artwork_serve_main; "
            f"sys.exit(artwork_serve_main({args!r}))"
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", code],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
        )
        banner = proc.stdout.readline()
        assert "listening" in banner, banner + proc.stdout.read()
        port = int(banner.rsplit(":", 1)[1].split()[0])
        return proc, port

    def test_sigkill_mid_job_then_restart_completes_same_job(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        runlog = tmp_path / "runlog.jsonl"
        base = [
            "--port", "0", "--workers", "1",
            "--journal", str(journal),
            "--cache", str(tmp_path / "cache"),
            "--runlog", str(runlog),
        ]
        env = {**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)}
        env.pop("ARTWORK_FAULTS", None)
        spec = spec_for(seed=31)

        # Daemon #1: every worker execution stalls 30s (injected), so the
        # accepted job is guaranteed to be in flight when SIGKILL lands.
        stalled_env = {**env, "ARTWORK_FAULTS": "worker.exec=sleep:1:30"}
        proc, port = self._spawn_daemon(base, stalled_env)
        try:
            with HttpClient("127.0.0.1", port) as c:
                posted = c.post("/v1/jobs", spec.to_dict())
                assert posted.status == 202, posted.body
                job_id = posted.json()["id"]
            time.sleep(0.3)  # let the pool dispatch into the stall
            proc.send_signal(signal.SIGKILL)
            # Don't communicate(): the orphaned worker child still holds
            # the stdout pipe (it is mid-stall), so EOF would take 30s.
            proc.wait(timeout=10)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
            proc.stdout.close()

        # The accepted record survived the kill.
        _, summary = read_journal(journal)
        assert job_id in summary["live_jobs"]

        # Daemon #2: same journal, no faults — replay finishes the job
        # under its original id.
        proc, port = self._spawn_daemon(base, env)
        try:
            with HttpClient("127.0.0.1", port) as c:
                final = c.get(f"/v1/jobs/{job_id}?wait=60").json()
                assert final["status"] == "ok", final
                assert final["id"] == job_id
                assert final["replayed"] is True
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
            assert proc.returncode == 0, out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()

        # Exactly one runlog record: the job executed once overall.
        records = [json.loads(line) for line in runlog.read_text().splitlines()]
        serve = [r for r in records if r["kind"] == "serve"]
        assert [r["extra"]["job_id"] for r in serve] == [job_id]
        _, summary = read_journal(journal)
        assert summary["live"] == 0
