"""Unit tests for the routing plane obstacle model."""

from repro.core.geometry import Direction, Orientation, Point, Rect, Side
from repro.route.plane import Plane


def _plane(w=20, h=20) -> Plane:
    return Plane(bounds=Rect(0, 0, w, h))


class TestBlocking:
    def test_out_of_bounds(self):
        p = _plane(5, 5)
        assert not p.enterable(Point(6, 0), Direction.RIGHT, "n")
        assert not p.enterable(Point(-1, 0), Direction.LEFT, "n")
        assert p.enterable(Point(5, 5), Direction.RIGHT, "n")

    def test_block_rect_covers_border_and_interior(self):
        p = _plane()
        p.block_rect(Rect(2, 2, 3, 3))
        assert not p.enterable(Point(2, 2), Direction.RIGHT, "n")  # corner
        assert not p.enterable(Point(3, 3), Direction.RIGHT, "n")  # interior
        assert not p.enterable(Point(5, 5), Direction.RIGHT, "n")  # far corner
        assert p.enterable(Point(6, 5), Direction.RIGHT, "n")

    def test_allow_exempts_terminal(self):
        p = _plane()
        p.block_rect(Rect(2, 2, 3, 3))
        term = Point(2, 3)
        assert not p.enterable(term, Direction.RIGHT, "n")
        assert p.enterable(term, Direction.RIGHT, "n", allow=frozenset({term}))


class TestNetObstacles:
    def test_parallel_overlap_forbidden(self):
        p = _plane()
        p.add_net_path("other", [Point(0, 5), Point(10, 5)])
        assert not p.enterable(Point(4, 5), Direction.RIGHT, "n")

    def test_perpendicular_cross_allowed_and_counted(self):
        p = _plane()
        p.add_net_path("other", [Point(0, 5), Point(10, 5)])
        assert p.enterable(Point(4, 5), Direction.UP, "n")
        assert p.crossings_at(Point(4, 5), Direction.UP, "n") == 1
        assert p.crossings_at(Point(4, 5), Direction.UP, "other") == 0

    def test_bend_point_blocks_even_perpendicular(self):
        p = _plane()
        p.add_net_path("other", [Point(0, 5), Point(6, 5), Point(6, 9)])
        # (6,5) is a bend of "other": nothing may pass through it.
        assert not p.enterable(Point(6, 5), Direction.UP, "n")
        assert not p.enterable(Point(6, 5), Direction.RIGHT, "n")

    def test_endpoints_block(self):
        p = _plane()
        p.add_net_path("other", [Point(2, 5), Point(8, 5)])
        assert not p.enterable(Point(2, 5), Direction.UP, "n")
        assert not p.enterable(Point(8, 5), Direction.UP, "n")

    def test_own_net_is_transparent(self):
        p = _plane()
        p.add_net_path("n", [Point(0, 5), Point(10, 5)])
        assert p.enterable(Point(4, 5), Direction.RIGHT, "n")
        assert p.can_turn_at(Point(4, 5), "n")

    def test_can_turn_blocked_by_foreign_wire(self):
        p = _plane()
        p.add_net_path("other", [Point(0, 5), Point(10, 5)])
        assert not p.can_turn_at(Point(4, 5), "n")
        assert p.can_turn_at(Point(4, 6), "n")

    def test_net_points(self):
        p = _plane()
        p.add_net_path("n", [Point(0, 0), Point(2, 0)])
        assert p.net_points("n") == {Point(0, 0), Point(1, 0), Point(2, 0)}


class TestClaims:
    def test_claim_blocks_and_releases(self):
        p = _plane()
        assert p.add_claim(Point(3, 3), owner="o1")
        assert not p.enterable(Point(3, 3), Direction.UP, "n")
        p.release_claims(["o1"])
        assert p.enterable(Point(3, 3), Direction.UP, "n")

    def test_claim_refused_on_occupied(self):
        p = _plane()
        p.blocked.add(Point(3, 3))
        assert not p.add_claim(Point(3, 3), owner="o1")
        p.add_net_path("n", [Point(5, 5), Point(6, 5)])
        assert not p.add_claim(Point(5, 5), owner="o1")

    def test_claim_refused_out_of_bounds(self):
        p = _plane(5, 5)
        assert not p.add_claim(Point(9, 9), owner="o1")

    def test_release_all(self):
        p = _plane()
        p.add_claim(Point(1, 1), owner="a")
        p.add_claim(Point(2, 2), owner="b")
        p.release_all_claims()
        assert not p.claims


class TestForDiagram:
    def test_margins_and_fixed_sides(self, two_buffer_diagram):
        p = Plane.for_diagram(two_buffer_diagram, margin=5)
        bbox = two_buffer_diagram.bounding_box()
        assert p.bounds.x == bbox.x - 5 and p.bounds.y2 == bbox.y2 + 5
        p2 = Plane.for_diagram(
            two_buffer_diagram, margin=5, fixed_sides=[Side.LEFT, Side.UP]
        )
        assert p2.bounds.x == bbox.x
        assert p2.bounds.y2 == bbox.y2
        assert p2.bounds.x2 == bbox.x2 + 5

    def test_modules_and_terminals_blocked(self, two_buffer_diagram):
        p = Plane.for_diagram(two_buffer_diagram)
        assert Point(1, 1) in p.blocked  # inside u0
        assert Point(-4, 1) in p.blocked  # din's position

    def test_prerouted_nets_registered(self, two_buffer_diagram):
        two_buffer_diagram.route_for("n_mid").add_path([Point(3, 1), Point(8, 1)])
        p = Plane.for_diagram(two_buffer_diagram)
        assert p.net_points("n_mid")
        assert not p.enterable(Point(5, 1), Direction.RIGHT, "n_in")


class TestOccupied:
    def test_occupied(self):
        p = _plane()
        assert not p.occupied(Point(1, 1))
        p.blocked.add(Point(1, 1))
        assert p.occupied(Point(1, 1))
        p.add_net_path("n", [Point(2, 2), Point(3, 2)])
        assert p.occupied(Point(2, 2))
