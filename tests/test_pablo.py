"""Tests for the PABLO placement driver (options, preplaced parts)."""

import pytest

from repro.core.diagram import Diagram
from repro.core.geometry import Point
from repro.core.netlist import Pin
from repro.core.validate import placement_violations
from repro.place.pablo import PabloOptions, place_network
from repro.workloads.examples import example1_string, example2_controller
from repro.workloads.life import life_network


class TestOptions:
    def test_defaults_match_appendix_e(self):
        opts = PabloOptions()
        assert opts.partition_size == 1
        assert opts.box_size == 1
        assert opts.partition_spacing == 0

    def test_limits_property(self):
        opts = PabloOptions(partition_size=5, max_connections=7)
        assert opts.limits.max_size == 5
        assert opts.limits.max_connections == 7


class TestPlaceNetwork:
    def test_all_modules_and_terminals_placed(self, example2):
        diagram, report = place_network(example2, PabloOptions(partition_size=5))
        assert diagram.is_placed
        assert placement_violations(diagram) == []
        assert report.partition_count >= 3
        assert report.seconds >= 0

    def test_example1_single_box(self, example1):
        diagram, report = place_network(
            example1, PabloOptions(partition_size=7, box_size=7)
        )
        assert report.partition_count == 1
        assert report.box_count == 1
        assert diagram.is_placed

    def test_partition_size_1_gives_singletons(self, example2):
        _, report = place_network(example2, PabloOptions())
        assert report.partition_count == 16
        assert all(len(p) == 1 for p in report.partitions)

    def test_spacing_options_grow_layout(self, example2):
        small, _ = place_network(example2, PabloOptions(partition_size=5))
        big, _ = place_network(
            example2,
            PabloOptions(partition_size=5, partition_spacing=4, box_spacing=2),
        )
        area_small = small.bounding_box(include_routes=False).area
        area_big = big.bounding_box(include_routes=False).area
        assert area_big > area_small

    def test_deterministic(self, example2):
        a, _ = place_network(example2, PabloOptions(partition_size=5, box_size=3))
        b, _ = place_network(example2, PabloOptions(partition_size=5, box_size=3))
        assert {m: pm.position for m, pm in a.placements.items()} == {
            m: pm.position for m, pm in b.placements.items()
        }
        assert a.terminal_positions == b.terminal_positions

    def test_life_places_clean(self):
        net = life_network()
        diagram, report = place_network(net, PabloOptions(partition_size=7, box_size=5))
        assert diagram.is_placed
        assert placement_violations(diagram) == []


class TestPreplaced:
    def test_preplaced_part_untouched(self, example2):
        pre = Diagram(example2)
        pre.place_module("ctl", Point(100, 100))
        pre.place_module("reg0", Point(120, 100))
        diagram, report = place_network(
            example2, PabloOptions(partition_size=5), preplaced=pre
        )
        assert diagram.placements["ctl"].position == Point(100, 100)
        assert diagram.placements["reg0"].position == Point(120, 100)
        assert diagram.is_placed
        assert placement_violations(diagram) == []
        # The preplaced modules never entered the partitioning.
        flat = {m for p in report.partitions for m in p}
        assert "ctl" not in flat and "reg0" not in flat

    def test_preplaced_routes_survive(self, example2):
        pre = Diagram(example2)
        pre.place_module("ctl", Point(100, 100))
        pre.place_module("reg0", Point(120, 103))
        # Preroute the controller's enable net by hand.
        a = pre.pin_position(Pin("ctl", "c0"))
        b = pre.pin_position(Pin("reg0", "en"))
        pre.route_for("c0_en").add_path([a, Point(b.x, a.y), b])
        diagram, _ = place_network(
            example2, PabloOptions(partition_size=5), preplaced=pre
        )
        assert diagram.routes["c0_en"].paths

    def test_wrong_network_rejected(self, example1, example2):
        pre = Diagram(example1)
        with pytest.raises(ValueError):
            place_network(example2, preplaced=pre)
