"""Unit tests for module rotation."""

import pytest

from repro.core.geometry import Point, Side
from repro.core.rotation import Rotation


class TestRotation:
    def test_sizes(self):
        assert Rotation.R0.size(3, 5) == (3, 5)
        assert Rotation.R90.size(3, 5) == (5, 3)
        assert Rotation.R180.size(3, 5) == (3, 5)
        assert Rotation.R270.size(3, 5) == (5, 3)

    def test_apply_corners(self):
        # Lower-left corner of a 4x2 module under every rotation.
        assert Rotation.R0.apply(Point(0, 0), 4, 2) == Point(0, 0)
        assert Rotation.R90.apply(Point(0, 0), 4, 2) == Point(2, 0)
        assert Rotation.R180.apply(Point(0, 0), 4, 2) == Point(4, 2)
        assert Rotation.R270.apply(Point(0, 0), 4, 2) == Point(0, 4)

    @pytest.mark.parametrize("rotation", list(Rotation))
    def test_apply_stays_on_outline(self, rotation):
        # A terminal on the outline must stay on the rotated outline.
        from repro.core.geometry import Rect

        w, h = 5, 3
        for p in [Point(0, 1), Point(5, 2), Point(2, 0), Point(4, 3)]:
            q = rotation.apply(p, w, h)
            rw, rh = rotation.size(w, h)
            assert Rect(0, 0, rw, rh).side_of(q) is not None

    def test_side_cycle(self):
        assert Rotation.R90.side(Side.LEFT) is Side.DOWN
        assert Rotation.R90.side(Side.DOWN) is Side.RIGHT
        assert Rotation.R90.side(Side.RIGHT) is Side.UP
        assert Rotation.R90.side(Side.UP) is Side.LEFT
        assert Rotation.R180.side(Side.LEFT) is Side.RIGHT

    def test_side_consistent_with_apply(self):
        # The side computed symbolically must match the geometric side of
        # the rotated offset.
        from repro.core.geometry import Rect

        w, h = 4, 2
        rect0 = Rect(0, 0, w, h)
        samples = [Point(0, 1), Point(4, 1), Point(2, 2), Point(2, 0)]
        for rotation in Rotation:
            rw, rh = rotation.size(w, h)
            rect1 = Rect(0, 0, rw, rh)
            for p in samples:
                side0 = rect0.side_of(p)
                q = rotation.apply(p, w, h)
                assert rect1.side_of(q) is rotation.side(side0)

    def test_taking(self):
        assert Rotation.taking(Side.LEFT, Side.LEFT) is Rotation.R0
        rot = Rotation.taking(Side.UP, Side.LEFT)
        assert rot.side(Side.UP) is Side.LEFT
        for a in Side:
            for b in Side:
                assert Rotation.taking(a, b).side(a) is b

    def test_compose_inverse(self):
        for r in Rotation:
            assert r.compose(r.inverse) is Rotation.R0
        assert Rotation.R90.compose(Rotation.R180) is Rotation.R270
