"""Integration tests: the full generator on the paper's configurations.

These run the small paper experiments end to end (figures 6.1-6.5 scale)
and assert the qualitative claims of chapter 6; the LIFE experiments
(figures 6.6/6.7) run in the benchmark harness because they take minutes,
exactly as they did in the paper.
"""

import pytest

from repro.core.generator import generate, route_placed
from repro.core.geometry import Point
from repro.core.metrics import diagram_metrics
from repro.core.validate import (
    check_diagram,
    connectivity_matches_netlist,
)
from repro.place.pablo import PabloOptions
from repro.route.eureka import RouterOptions
from repro.workloads.examples import example1_string, example2_controller
from repro.workloads.random_nets import random_network


class TestExample1:
    """Figure 6.1: one partition, one box, minimum-bend string."""

    def test_fully_routed_with_minimal_bends(self):
        result = generate(
            example1_string(), PabloOptions(partition_size=7, box_size=7)
        )
        assert result.placement.partition_count == 1
        assert result.placement.box_count == 1
        assert result.metrics.nets_failed == 0
        # Level assignment fixed => intra-string nets need zero bends; the
        # only bends may come from the system terminal's approach.
        assert result.metrics.bends <= 2
        check_diagram(result.diagram)
        assert connectivity_matches_netlist(result.diagram)


class TestExample2:
    """Figures 6.2-6.4: the same network under three option sets."""

    @pytest.mark.parametrize(
        "p,b",
        [(1, 1), (5, 1), (7, 5)],
        ids=["fig6.2-clusters", "fig6.3-partitions", "fig6.4-strings"],
    )
    def test_configurations_route_completely(self, p, b):
        result = generate(
            example2_controller(), PabloOptions(partition_size=p, box_size=b)
        )
        assert result.metrics.nets_failed == 0
        check_diagram(result.diagram)
        assert connectivity_matches_netlist(result.diagram)

    def test_partition_counts_differ_by_options(self):
        net = example2_controller()
        r1 = generate(net, PabloOptions(partition_size=1))
        r5 = generate(net, PabloOptions(partition_size=5))
        assert r1.placement.partition_count == 16
        assert 4 <= r5.placement.partition_count < 16

    def test_boxes_give_left_to_right_strings(self):
        result = generate(
            example2_controller(), PabloOptions(partition_size=7, box_size=5)
        )
        # Some multi-module string exists and its members go left to right.
        strings = [b for part in result.placement.boxes for b in part if len(b) > 1]
        assert strings
        d = result.diagram
        for string in strings:
            xs = [d.placements[m].position.x for m in string]
            assert xs == sorted(xs)


class TestExample3Flow:
    """Figure 6.5: manual edit of a placement, then rerouting."""

    def test_edit_and_reroute(self):
        net = example2_controller()
        result = generate(net, PabloOptions(partition_size=1))
        edited = result.diagram.copy_placement()
        # Move one module far out (the figure moved one to the top left).
        bbox = edited.bounding_box(include_routes=False)
        edited.place_module("buf0", Point(bbox.x - 15, bbox.y2 + 8))
        rerouted = route_placed(edited)
        assert rerouted.metrics.nets_failed == 0
        check_diagram(rerouted.diagram)


class TestTimingRow:
    def test_shape(self):
        result = generate(example1_string(), PabloOptions(partition_size=7, box_size=7))
        row = result.timing_row
        assert row["modules"] == 6 and row["nets"] == 6
        assert row["placement_seconds"] >= 0
        assert row["routing_seconds"] >= 0


class TestRandomEndToEnd:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_networks_route_legally(self, seed):
        net = random_network(modules=9, extra_nets=4, seed=seed)
        result = generate(
            net,
            PabloOptions(partition_size=4, box_size=3),
            RouterOptions(margin=6),
        )
        check_diagram(result.diagram)
        assert result.metrics.nets_failed == 0
        assert connectivity_matches_netlist(result.diagram)
