"""Tests for the logic simulator and the behavioural library."""

import numpy as np
import pytest

from repro.core.netlist import Network, TermType
from repro.sim.behaviors import (
    Combinational,
    DFlipFlop,
    EnabledRegister,
    LifeCell,
    default_behaviors,
)
from repro.sim.logic import LogicSimulator, SimulationError
from repro.workloads.stdlib import instantiate


def _xor_chain() -> tuple[Network, dict]:
    net = Network()
    net.add_module(instantiate("xor2", "x"))
    net.add_module(instantiate("dff", "ff"))
    net.add_system_terminal("a", TermType.IN)
    net.add_system_terminal("b", TermType.IN)
    net.add_system_terminal("q", TermType.OUT)
    net.connect("na", "a", "x.a")
    net.connect("nb", "b", "x.b")
    net.connect("nx", "x.y", "ff.d")
    net.connect("nq", "ff.q", "q")
    return net, default_behaviors(net)


class TestSimulator:
    def test_combinational_propagation(self):
        net, behaviors = _xor_chain()
        sim = LogicSimulator(net, behaviors)
        sim.set_input("a", 1)
        values = sim.settle()
        assert values["nx"] == 1
        assert values["nq"] == 0  # flip-flop not ticked yet

    def test_register_samples_on_step(self):
        net, behaviors = _xor_chain()
        sim = LogicSimulator(net, behaviors)
        sim.step(a=1, b=0)
        assert sim.read_output("q") == 0  # q shows pre-tick state this cycle
        sim.settle()
        assert sim.read_output("q") == 1  # after the tick

    def test_missing_behavior_rejected(self):
        net, behaviors = _xor_chain()
        del behaviors["x"]
        with pytest.raises(SimulationError, match="no behaviour"):
            LogicSimulator(net, behaviors)

    def test_conflicting_drivers_detected(self):
        net = Network()
        net.add_module(instantiate("buf", "u"))
        net.add_module(instantiate("inv", "v"))
        net.add_module(instantiate("buf", "w"))
        net.connect("n", "u.y", "v.y", "w.a")  # two drivers on one net
        sim = LogicSimulator(net, default_behaviors(net))
        with pytest.raises(SimulationError, match="conflicting"):
            sim.settle()

    def test_driving_non_output_rejected(self):
        net = Network()
        net.add_module(instantiate("buf", "u"))
        net.add_module(instantiate("buf", "v"))
        net.connect("n", "u.y", "v.a")
        sim = LogicSimulator(
            net,
            {
                "u": Combinational(lambda ins: {"a": 1}),  # drives its input!
                "v": Combinational(lambda ins: {"y": ins.get("a", 0)}),
            },
        )
        with pytest.raises(SimulationError, match="non-output"):
            sim.settle()

    def test_oscillation_detected(self):
        net = Network()
        net.add_module(instantiate("inv", "i0"))
        net.add_module(instantiate("inv", "i1"))
        net.connect("n0", "i0.y", "i1.a")
        net.connect("n1", "i1.y", "i0.a")  # combinational ring oscillator
        sim = LogicSimulator(net, default_behaviors(net))
        with pytest.raises(SimulationError, match="settle"):
            sim.settle()

    def test_unknown_input_rejected(self):
        net, behaviors = _xor_chain()
        sim = LogicSimulator(net, behaviors)
        with pytest.raises(SimulationError):
            sim.set_input("nope", 1)
        with pytest.raises(SimulationError):
            sim.set_input("q", 1)  # q is an output


class TestBehaviors:
    def test_gates(self):
        net = Network()
        for t in ("and2", "or2", "xor2", "inv", "buf"):
            net.add_module(instantiate(t, t))
        b = default_behaviors(net)
        assert b["and2"].evaluate({"a": 1, "b": 1})["y"] == 1
        assert b["and2"].evaluate({"a": 1, "b": 0})["y"] == 0
        assert b["or2"].evaluate({"a": 0, "b": 1})["y"] == 1
        assert b["xor2"].evaluate({"a": 1, "b": 1})["y"] == 0
        assert b["inv"].evaluate({"a": 0})["y"] == 1
        assert b["buf"].evaluate({"a": 1})["y"] == 1

    def test_fulladder(self):
        net = Network()
        net.add_module(instantiate("fulladder", "fa"))
        fa = default_behaviors(net)["fa"]
        out = fa.evaluate({"a": 1, "b": 1, "cin": 1})
        assert out == {"sum": 1, "cout": 1}
        assert fa.evaluate({"a": 1, "b": 0, "cin": 0}) == {"sum": 1, "cout": 0}

    def test_dff_holds_until_tick(self):
        ff = DFlipFlop()
        assert ff.evaluate({"d": 1})["q"] == 0
        ff.tick({"d": 1})
        assert ff.evaluate({})["q"] == 1

    def test_enabled_register(self):
        r = EnabledRegister()
        r.tick({"d": 1, "en": 0})
        assert r.evaluate({})["q"] == 0
        r.tick({"d": 1, "en": 1})
        assert r.evaluate({})["q"] == 1

    def test_life_cell_rules(self):
        cell = LifeCell()
        cell.tick({"load": 1, "data": 1})
        assert cell.state == 1
        # Two live neighbours: survives.
        cell.tick({"clk": 1, **{f"n{k}": 1 for k in range(2)}})
        assert cell.state == 1
        # One neighbour: dies.
        cell.tick({"clk": 1, "n0": 1})
        assert cell.state == 0
        # Exactly three: born.
        cell.tick({"clk": 1, "n0": 1, "n1": 1, "n2": 1})
        assert cell.state == 1
        # Four: overcrowded.
        cell.tick({"clk": 1, "n0": 1, "n1": 1, "n2": 1, "n3": 1})
        assert cell.state == 0

    def test_life_cell_holds_without_clock(self):
        cell = LifeCell()
        cell.tick({"load": 1, "data": 1})
        cell.tick({})  # no clk, no load
        assert cell.state == 1

    def test_unknown_template(self):
        from repro.core.netlist import Module
        from repro.sim.behaviors import behavior_for

        with pytest.raises(KeyError):
            behavior_for(Module("m", 2, 2, template="mystery"))
