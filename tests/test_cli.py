"""Tests for the command-line front ends."""

import pytest

from repro.cli import artwork_main, eureka_main, pablo_main, quinto_main
from repro.formats.netlist_files import save_network_files
from repro.workloads.examples import example1_string


@pytest.fixture
def network_files(tmp_path):
    net = example1_string()
    paths = save_network_files(net, tmp_path)
    return paths


def _net_args(paths):
    return [str(paths["netlist"]), str(paths["call"]), str(paths["io"])]


class TestPablo:
    def test_places_and_writes_escher(self, tmp_path, network_files, capsys):
        out = tmp_path / "placed.es"
        rc = pablo_main(
            _net_args(network_files) + ["-p", "7", "-b", "7", "-o", str(out)]
        )
        assert rc == 0
        assert out.exists()
        assert "1 partitions / 1 boxes" in capsys.readouterr().out


class TestEureka:
    def test_routes_placed_diagram(self, tmp_path, network_files, capsys):
        placed = tmp_path / "placed.es"
        pablo_main(_net_args(network_files) + ["-p", "7", "-b", "7", "-o", str(placed)])
        routed = tmp_path / "routed.es"
        rc = eureka_main(
            [str(placed)] + _net_args(network_files) + ["-o", str(routed)]
        )
        assert rc == 0
        assert routed.exists()
        assert "nets routed: 6/6" in capsys.readouterr().out

    def test_swap_and_border_flags_accepted(self, tmp_path, network_files):
        placed = tmp_path / "placed.es"
        pablo_main(_net_args(network_files) + ["-p", "7", "-b", "7", "-o", str(placed)])
        rc = eureka_main(
            [str(placed)]
            + _net_args(network_files)
            + ["-s", "-u", "-d", "--margin", "8", "-o", str(tmp_path / "r.es")]
        )
        assert rc == 0


class TestQuinto:
    def test_adds_template(self, tmp_path, capsys):
        desc = tmp_path / "latch.desc"
        desc.write_text("module latch 40 30\nin d 0 10\nout q 40 10\n")
        lib_dir = tmp_path / "lib"
        rc = quinto_main([str(desc), "--library", str(lib_dir)])
        assert rc == 0
        assert (lib_dir / "latch.mod").exists()
        assert "latch" in capsys.readouterr().out

    def test_library_usable_after_quinto(self, tmp_path):
        desc = tmp_path / "latch.desc"
        desc.write_text("module latch 40 30\nin d 0 10\nout q 40 10\n")
        lib_dir = tmp_path / "lib"
        quinto_main([str(desc), "--library", str(lib_dir)])
        from repro.formats.library import ModuleLibrary

        lib = ModuleLibrary.load(lib_dir)
        assert "latch" in lib


class TestErrorHandling:
    """Load/validation problems exit 2 with a message, not a traceback."""

    def test_missing_network_files_exit_2(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.net")
        for main in (pablo_main, artwork_main):
            rc = main([missing, missing])
            assert rc == 2
            assert "error:" in capsys.readouterr().err

    def test_eureka_bad_escher_exit_2(self, tmp_path, network_files, capsys):
        bad = tmp_path / "bad.es"
        bad.write_text("this is not an escher file")
        rc = eureka_main([str(bad)] + _net_args(network_files))
        assert rc == 2
        assert "magic" in capsys.readouterr().err

    def test_quinto_missing_description_exit_2(self, tmp_path, capsys):
        rc = quinto_main([str(tmp_path / "absent.desc")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_version_flag_on_every_command(self, capsys):
        from repro import __version__

        for main in (pablo_main, eureka_main, quinto_main, artwork_main):
            with pytest.raises(SystemExit) as exc:
                main(["--version"])
            assert exc.value.code == 0
            assert __version__ in capsys.readouterr().out


class TestArtwork:
    def test_full_pipeline(self, tmp_path, network_files, capsys):
        svg = tmp_path / "fig.svg"
        es = tmp_path / "fig.es"
        rc = artwork_main(
            _net_args(network_files)
            + ["-p", "7", "-b", "7", "-o", str(svg), "--escher", str(es)]
        )
        assert rc == 0
        assert svg.read_text().startswith("<svg")
        assert es.exists()
        out = capsys.readouterr().out
        assert "nets routed: 6/6" in out
