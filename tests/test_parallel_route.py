"""Tests for speculative parallel net routing (``parallel_nets``).

The contract under test is strong: the parallel router must produce the
*identical* diagram — same paths, same failed pins, same Table-6.1
metrics — as the serial router, because conflicted speculations are
re-routed serially and conflict-free ones are provably the serial
result.  A second group covers the rollback primitive the speculation
machinery leans on: ``Plane.remove_net`` must leave the index
indistinguishable from a fresh rebuild.
"""

import copy

import pytest

from repro.core.diagram import Diagram
from repro.core.geometry import Point
from repro.core.metrics import diagram_metrics
from repro.core.netlist import Network
from repro.core.validate import check_diagram, connectivity_matches_netlist
from repro.obs import counters
from repro.place.pablo import PabloOptions, place_network
from repro.route import eureka
from repro.route.eureka import RouterOptions, route_diagram
from repro.route.index import PlaneIndex
from repro.route.line_expansion import CostOrder
from repro.route.plane import Plane
from repro.workloads import (
    datapath_network,
    example1_string,
    example2_controller,
    random_network,
)
from repro.workloads.stdlib import make_module


def _placed(network: Network) -> Diagram:
    diagram, _ = place_network(network, PabloOptions())
    return diagram


def _parallel_counters() -> dict[str, int]:
    snap = counters.get_registry().snapshot()
    data = snap.get("counters", snap)
    return {k: v for k, v in data.items() if k.startswith("route.parallel")}


def _routes_equal(d1: Diagram, d2: Diagram) -> bool:
    if set(d1.routes) != set(d2.routes):
        return False
    for name, r1 in d1.routes.items():
        r2 = d2.routes[name]
        if r1.paths != r2.paths or r1.failed_pins != r2.failed_pins:
            return False
    return True


WORKLOADS = {
    "example1": example1_string,
    "example2": example2_controller,
    "random": lambda: random_network(modules=14, extra_nets=6, seed=7),
    "datapath": lambda: datapath_network(lanes=2, stages=4),
}


class TestParallelMatchesSerial:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize(
        "order", [CostOrder.BENDS_CROSSINGS_LENGTH, CostOrder.BENDS_LENGTH_CROSSINGS]
    )
    def test_identical_output(self, workload, order):
        base = _placed(WORKLOADS[workload]())
        serial, parallel = copy.deepcopy(base), copy.deepcopy(base)
        rs = route_diagram(serial, RouterOptions(cost_order=order))
        rp = route_diagram(
            parallel, RouterOptions(cost_order=order, parallel_nets=True)
        )
        # Identical reports, routes and pin connectivity...
        assert (rp.nets_routed, rp.nets_failed) == (rs.nets_routed, rs.nets_failed)
        assert list(map(str, rp.failed_nets)) == list(map(str, rs.failed_nets))
        assert _routes_equal(serial, parallel)
        check_diagram(parallel)
        assert connectivity_matches_netlist(parallel) == connectivity_matches_netlist(
            serial
        )
        # ...and identical Table-6.1 metrics, trivially so given the above.
        assert diagram_metrics(parallel) == diagram_metrics(serial)
        # Speculative work that is thrown away still shows up in the
        # stats, so parallel >= serial states expanded, never less.
        assert rp.search.states_expanded >= rs.search.states_expanded

    def test_wave_counters_emitted(self):
        diagram = _placed(WORKLOADS["random"]())
        counters.get_registry().reset()
        route_diagram(diagram, RouterOptions(parallel_nets=True))
        emitted = _parallel_counters()
        assert emitted.get("route.parallel.waves", 0) >= 1
        assert emitted.get("route.parallel.commits", 0) >= 1

    def test_non_state_engine_falls_back_to_serial(self):
        diagram = _placed(example1_string())
        counters.get_registry().reset()
        report = route_diagram(
            diagram, RouterOptions(parallel_nets=True, engine="reference")
        )
        assert report.nets_failed == 0
        # No waves: only the state engine reports search footprints.
        assert _parallel_counters() == {}


def _corridor_diagram() -> Diagram:
    """Two modules facing each other across a corridor, with two nets
    that *cross* inside it — any wave putting both nets together is
    certain to conflict, because the second net's route (and therefore
    its search footprint) passes over the tracks the first one takes."""
    net = Network(name="corridor")
    net.add_module(
        make_module("a", 3, 6, [("y1", "out", 3, 1), ("y2", "out", 3, 4)])
    )
    net.add_module(
        make_module("b", 3, 6, [("x1", "in", 0, 1), ("x2", "in", 0, 4)])
    )
    net.connect("n1", "a.y1", "b.x2")
    net.connect("n2", "a.y2", "b.x1")
    diagram = Diagram(net)
    diagram.place_module("a", Point(0, 0))
    diagram.place_module("b", Point(9, 0))
    return diagram


class TestConflictRollback:
    def test_forced_wave_conflicts_deterministically(self, monkeypatch):
        # Force both corridor nets into one wave (their pin boxes overlap,
        # so the wave builder would normally keep them serial) and check
        # the conflict path: detected, counted, and re-routed to exactly
        # the serial result — twice, to pin down determinism.
        monkeypatch.setattr(
            eureka, "_conflict_unlikely_waves", lambda diagram, todo: [list(todo)]
        )
        serial = _corridor_diagram()
        rs = route_diagram(serial, RouterOptions())
        assert rs.nets_failed == 0
        runs = []
        for _ in range(2):
            parallel = _corridor_diagram()
            counters.get_registry().reset()
            rp = route_diagram(parallel, RouterOptions(parallel_nets=True))
            assert rp.nets_failed == 0
            assert _routes_equal(serial, parallel)
            runs.append(_parallel_counters())
        assert runs[0] == runs[1]
        assert runs[0]["route.parallel.conflicts"] >= 1
        assert runs[0]["route.parallel.rollbacks"] >= 1

    def test_wave_builder_separates_overlapping_nets(self):
        diagram = _corridor_diagram()
        todo = ["n1", "n2"]
        waves = eureka._conflict_unlikely_waves(diagram, todo)
        assert waves == [["n1"], ["n2"]]
        assert [n for wave in waves for n in wave] == todo


def _canonical_index(index: PlaneIndex) -> dict:
    """Every non-lazy aggregate of the index, in comparable form."""
    return {
        "h_block": dict(index.h_block),
        "v_block": dict(index.v_block),
        "blocked_h_pts": set(index.blocked_h_pts),
        "blocked_v_pts": set(index.blocked_v_pts),
        "cross_h": dict(index.cross_h),
        "cross_v": dict(index.cross_v),
        "occ": dict(index.occ),
        "occ_pts": set(index.occ_pts),
        "contrib": {n: dict(c) for n, c in index.contrib.items()},
        "rows": {y: set(xs) for y, xs in index._rows.items() if xs},
        "cols": {x: set(ys) for x, ys in index._cols.items() if ys},
        "cross_by_row": {
            y: dict(row) for y, row in index._cross_by_row.items() if row
        },
        "cross_by_col": {
            x: dict(col) for x, col in index._cross_by_col.items() if col
        },
    }


def _fresh_rebuild(plane: Plane) -> PlaneIndex:
    fresh = PlaneIndex(plane)
    for p in plane.blocked:
        fresh.blocked_added(p)
    fresh.rebuild()
    return fresh


class TestRemoveNetRollback:
    def test_remove_net_matches_fresh_rebuild(self):
        diagram = _placed(WORKLOADS["random"]())
        report = route_diagram(diagram, RouterOptions())
        routed = [n for n, r in diagram.routes.items() if r.paths]
        assert report.nets_routed and routed
        plane = Plane.for_diagram(diagram)
        victim = sorted(routed)[len(routed) // 2]
        assert plane.net_points(victim)

        plane.remove_net(victim)

        # The O(own net) unwind must equal a from-scratch rebuild of the
        # same (now net-less) plane, aggregate for aggregate.
        assert _canonical_index(plane.index) == _canonical_index(
            _fresh_rebuild(plane)
        )
        assert victim not in plane.nodes
        assert not plane.net_points(victim)
        assert all(victim not in nets for nets in plane.usage.values())

    def test_remove_net_is_idempotent_for_unknown_net(self):
        diagram = _placed(example1_string())
        plane = Plane.for_diagram(diagram)
        before = _canonical_index(plane.index)
        plane.remove_net("no-such-net")
        assert _canonical_index(plane.index) == before


class TestBidirectionalExact:
    @pytest.mark.parametrize(
        "order", [CostOrder.BENDS_CROSSINGS_LENGTH, CostOrder.BENDS_LENGTH_CROSSINGS]
    )
    def test_bidirectional_matches_reference_optimum(self, order):
        diagram = _placed(WORKLOADS["example2"]())
        counters.get_registry().reset()
        report = route_diagram(
            diagram,
            RouterOptions(
                cost_order=order, bidirectional=True, verify_optimum=True
            ),
        )
        snap = counters.get_registry().snapshot()
        data = snap.get("counters", snap)
        assert data.get("route.verified_connections", 0) >= report.nets_routed
        assert data.get("route.verify_mismatch", 0) == 0
        check_diagram(diagram)

    def test_bidirectional_same_metrics_as_serial(self):
        base = _placed(WORKLOADS["random"]())
        uni, bidi = copy.deepcopy(base), copy.deepcopy(base)
        ru = route_diagram(uni, RouterOptions())
        rb = route_diagram(bidi, RouterOptions(bidirectional=True))
        assert (ru.nets_routed, ru.nets_failed) == (rb.nets_routed, rb.nets_failed)
        mu, mb = diagram_metrics(uni), diagram_metrics(bidi)
        # Equal-cost tie-break paths may differ; the optimum totals may not.
        assert (mu.bends, mu.crossovers) == (mb.bends, mb.crossovers)
