"""Edge-case tests across modules: driver restrictions, format corners,
behavioural odds and ends."""

import numpy as np
import pytest

from repro.core.diagram import Diagram
from repro.core.geometry import Point, path_points
from repro.core.netlist import Network, TermType
from repro.core.validate import check_diagram
from repro.route.eureka import RouterOptions, route_diagram
from repro.workloads.stdlib import instantiate


class TestOnlyNets:
    def test_restricts_routing(self, two_buffer_diagram):
        report = route_diagram(two_buffer_diagram, only_nets=["n_mid"])
        assert report.nets_total == 1
        assert "n_mid" in two_buffer_diagram.routes
        assert "n_in" not in two_buffer_diagram.routes

    def test_unknown_names_ignored(self, two_buffer_diagram):
        report = route_diagram(two_buffer_diagram, only_nets=["ghost"])
        assert report.nets_total == 0

    def test_remaining_nets_still_routable(self, two_buffer_diagram):
        route_diagram(two_buffer_diagram, only_nets=["n_mid"])
        report = route_diagram(two_buffer_diagram)
        assert report.nets_total == 2
        assert report.nets_failed == 0
        check_diagram(two_buffer_diagram)


class TestGeometryCorners:
    def test_path_points_empty(self):
        assert list(path_points([])) == []

    def test_path_points_single(self):
        assert list(path_points([Point(1, 2)])) == [Point(1, 2)]


class TestSimCorners:
    def test_read_unconnected_output(self):
        from repro.sim.behaviors import default_behaviors
        from repro.sim.logic import LogicSimulator, SimulationError

        net = Network()
        net.add_module(instantiate("buf", "u"))
        net.add_module(instantiate("buf", "v"))
        net.add_system_terminal("q", TermType.OUT)
        net.connect("n", "u.y", "v.a")
        sim = LogicSimulator(net, default_behaviors(net))
        with pytest.raises(SimulationError, match="unconnected"):
            sim.read_output("q")

    def test_life_controller_rejects_bad_seed(self):
        from repro.sim.behaviors import LifeController

        with pytest.raises(ValueError):
            LifeController(np.zeros((3, 3)))

    def test_clock_generator_gating(self):
        from repro.sim.behaviors import ClockGenerator

        gen = ClockGenerator()
        assert gen.evaluate({"clk_in": 1, "enable": 1})["clk"] == 1
        assert gen.evaluate({"clk_in": 1, "enable": 0})["clk"] == 0
        gen.tick({})
        assert gen.evaluate({})["tick"] == 1


class TestEscherCorners:
    def test_isolated_point_net_roundtrip(self, two_buffer_diagram):
        from repro.formats.escher import read_escher, write_escher

        two_buffer_diagram.route_for("n_mid").add_path([Point(5, 5)])
        again = read_escher(
            write_escher(two_buffer_diagram), two_buffer_diagram.network
        )
        assert again.routes["n_mid"].points() == {Point(5, 5)}

    def test_vertical_arm_roundtrip(self, two_buffer_diagram):
        from repro.formats.escher import read_escher, write_escher

        two_buffer_diagram.route_for("n_mid").add_path(
            [Point(5, 5), Point(5, 9)]
        )
        again = read_escher(
            write_escher(two_buffer_diagram), two_buffer_diagram.network
        )
        assert again.routes["n_mid"].points() == set(
            Point(5, y) for y in range(5, 10)
        )


class TestRouterCorners:
    def test_route_two_point_net_same_position(self):
        """Degenerate: both pins land on the same point (stacked symbols
        are illegal, but abutting terminals are not)."""
        from repro.workloads.stdlib import make_module

        net = Network()
        net.add_module(make_module("a", 2, 2, [("y", "out", 2, 1)]))
        net.add_module(make_module("b", 2, 2, [("x", "in", 0, 1)]))
        net.connect("n", "a.y", "b.x")
        d = Diagram(net)
        d.place_module("a", Point(0, 0))
        d.place_module("b", Point(2, 0))  # borders touch; pins coincide
        report = route_diagram(d)
        assert report.nets_failed == 0
        route = d.routes["n"]
        assert route.points() == {Point(2, 1)}

    def test_margin_zero_with_all_sides_fixed(self, two_buffer_diagram):
        from repro.core.geometry import Side

        report = route_diagram(
            two_buffer_diagram,
            RouterOptions(margin=0, fixed_sides=frozenset(Side)),
        )
        # The plane is exactly the bounding box; everything still routes
        # because the terminals sit on its border ring.
        assert report.nets_routed + report.nets_failed == 3

    def test_swap_engine_mismatch_is_harmless(self, two_buffer_diagram):
        """-s with the interval engine: the engine ignores the tie-break
        (documented) but still routes legally."""
        report = route_diagram(
            two_buffer_diagram,
            RouterOptions(engine="intervals").with_swap_option(),
        )
        assert report.nets_failed == 0
        check_diagram(two_buffer_diagram)


class TestCliCorners:
    def test_artwork_swap_flag(self, tmp_path):
        from repro.cli import artwork_main
        from repro.formats.netlist_files import save_network_files
        from repro.workloads.examples import example1_string

        paths = save_network_files(example1_string(), tmp_path)
        rc = artwork_main(
            [
                str(paths["netlist"]),
                str(paths["call"]),
                str(paths["io"]),
                "-p",
                "7",
                "-b",
                "7",
                "--swap",
                "-o",
                str(tmp_path / "a.svg"),
            ]
        )
        assert rc == 0
