"""Tests for the batch job service: specs, cache, scheduler, CLI."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.cli import artwork_batch_main
from repro.core.netlist import Network, Pin, TermType
from repro.place.pablo import PabloOptions
from repro.route.eureka import RouterOptions
from repro.service import (
    BatchScheduler,
    JobError,
    JobSpec,
    ResultCache,
    execute_job,
    network_from_dict,
    network_to_dict,
)
from repro.workloads import batch_networks, random_network
from repro.workloads.stdlib import instantiate


def specs_for(count: int, *, modules: int = 5, seed: int = 0) -> list[JobSpec]:
    return [
        JobSpec.from_network(random_network(modules=modules, seed=seed + i))
        for i in range(count)
    ]


# -- module-level workers (must be picklable for the process pool) --------


def slow_worker(payload: dict) -> dict:
    time.sleep(30)
    return {"status": "ok", "metrics": {}, "timing": {}}  # pragma: no cover


def flaky_crash_worker(payload: dict) -> dict:
    """Dies hard on first sight of a job; succeeds once the marker exists."""
    marker = os.path.join(os.environ["REPRO_TEST_DIR"], payload["name"])
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os._exit(13)
    return execute_job(payload)


def always_crash_worker(payload: dict) -> dict:
    os._exit(13)  # pragma: no cover


class TestJobSpec:
    def test_digest_ignores_construction_order(self):
        def build(order):
            net = Network(name="n")
            for name in order:
                net.add_module(instantiate("and2", name))
            net.add_system_terminal("ext", TermType.IN)
            net.connect("n1", ("a", "y"), ("b", "a"))
            net.connect("n2", Pin(None, "ext"), ("a", "a"), ("b", "b"))
            return net

        one = JobSpec.from_network(build(["a", "b"]))
        other = JobSpec.from_network(build(["b", "a"]))
        assert one.digest == other.digest
        assert one == other and hash(one) == hash(other)

    def test_digest_sensitive_to_content_and_options(self):
        base = random_network(modules=5, seed=1)
        spec = JobSpec.from_network(base)
        assert spec.digest != JobSpec.from_network(random_network(modules=5, seed=2)).digest
        assert (
            spec.digest
            != JobSpec.from_network(base, PabloOptions(partition_size=4)).digest
        )
        assert (
            spec.digest
            != JobSpec.from_network(base, eureka=RouterOptions(claimpoints=False)).digest
        )

    def test_name_does_not_enter_digest(self):
        net = random_network(modules=4, seed=3)
        assert (
            JobSpec.from_network(net, name="a").digest
            == JobSpec.from_network(net, name="b").digest
        )

    def test_dict_round_trip(self):
        spec = JobSpec.from_network(
            random_network(modules=5, seed=4),
            PabloOptions(partition_size=3, box_size=2),
            RouterOptions(claimpoints=False, margin=6),
        )
        again = JobSpec.from_dict(spec.to_dict())
        assert again == spec and again.digest == spec.digest

    def test_network_round_trip_preserves_content(self):
        net = random_network(modules=7, seed=5)
        rebuilt = network_from_dict(network_to_dict(net))
        rebuilt.validate()
        assert rebuilt.stats == net.stats
        assert network_to_dict(rebuilt) == network_to_dict(net)

    def test_rejects_unknown_options(self):
        with pytest.raises(JobError):
            JobSpec.from_dict(
                {
                    "network": network_to_dict(random_network(modules=4, seed=0)),
                    "pablo": {"bogus": 1},
                }
            )


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = specs_for(1)[0]
        assert cache.get(spec) is None
        payload = execute_job(spec.to_dict())
        cache.put(spec, payload)
        hit = cache.get(spec)
        assert hit is not None
        assert hit["escher"] == payload["escher"]
        assert hit["metrics"] == payload["metrics"]
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert 0 < cache.stats.hit_rate < 1

    def test_corrupt_diagram_recovers_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = specs_for(1)[0]
        cache.put(spec, execute_job(spec.to_dict()))
        entry = cache.entry_dir(spec.digest)
        (entry / "diagram.es").write_text("garbage, not escher")
        assert cache.get(spec) is None
        assert cache.stats.corrupt == 1 and cache.stats.evictions == 1
        assert spec not in cache  # evicted, a rerun can repopulate

    def test_corrupt_sidecar_recovers_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = specs_for(1)[0]
        cache.put(spec, execute_job(spec.to_dict()))
        (cache.entry_dir(spec.digest) / "result.json").write_text("{not json")
        assert cache.get(spec) is None
        assert cache.stats.corrupt == 1

    def test_lru_eviction_bound(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2)
        specs = specs_for(3)
        payload = {"status": "ok", "escher": "#TUE-ES-871\n", "metrics": {}, "timing": {}}
        for age, spec in enumerate(specs):
            entry = cache.put(spec, payload)
            os.utime(entry, times=(age, age))  # unambiguous LRU order
            if age < 2:  # the third put trims before we can re-stamp
                assert len(cache) == age + 1
        assert len(cache) == 2
        assert specs[0] not in cache  # oldest evicted
        assert cache.stats.evictions == 1


class TestScheduler:
    def test_serial_and_parallel_agree(self, tmp_path):
        specs = specs_for(4)
        serial = BatchScheduler(max_workers=1).run(specs)
        fanned = BatchScheduler(max_workers=4).run(specs)
        assert [o.spec.name for o in serial] == [s.name for s in specs]
        assert all(o.ok for o in serial + fanned)
        assert [o.payload["escher"] for o in serial] == [
            o.payload["escher"] for o in fanned
        ]

    def test_warm_cache_and_progress_stream(self, tmp_path):
        specs = specs_for(3)
        cache = ResultCache(tmp_path)
        events: list[tuple[str, int, int]] = []
        sched = BatchScheduler(max_workers=2, cache=cache)
        sched.run(specs, progress=lambda o, d, t: events.append((o.status, d, t)))
        assert [e[1:] for e in sorted(events)] == [(1, 3), (2, 3), (3, 3)]
        warm = sched.run(specs)
        assert all(o.from_cache and o.ok for o in warm)
        assert cache.stats.hits == 3
        assert "total_seconds" in warm[0].timing  # sidecar keeps the timing row

    def test_load_diagram_round_trips(self):
        outcome = BatchScheduler(max_workers=1).run(specs_for(1))[0]
        diagram = outcome.load_diagram()
        assert len(diagram.placements) == outcome.timing["modules"]

    def test_bad_network_is_an_error_not_a_crash(self):
        spec = specs_for(1)[0]
        dangling = network_to_dict(random_network(modules=4, seed=0))
        dangling["nets"][0]["pins"] = dangling["nets"][0]["pins"][:1]
        broken = JobSpec(name="broken", network_json=json.dumps(dangling))
        outcomes = BatchScheduler(max_workers=2).run([spec, broken])
        assert outcomes[0].ok
        assert outcomes[1].status == "error"
        assert "NetlistError" in outcomes[1].error

    def test_per_job_timeout(self):
        sched = BatchScheduler(max_workers=1, timeout=0.2, worker=slow_worker)
        outcome = sched.run(specs_for(1))[0]
        assert outcome.status == "timeout"
        assert "0.2" in outcome.error

    def test_crash_retried_once_then_succeeds(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_DIR", str(tmp_path))
        sched = BatchScheduler(max_workers=1, worker=flaky_crash_worker)
        outcome = sched.run(specs_for(1))[0]
        assert outcome.status == "ok"
        assert outcome.attempts == 2

    def test_persistent_crash_reported(self):
        sched = BatchScheduler(max_workers=1, worker=always_crash_worker)
        outcome = sched.run(specs_for(1))[0]
        assert outcome.status == "crashed"
        assert outcome.attempts == 2

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            BatchScheduler(max_workers=0)


class TestBatchWorkloads:
    def test_random_batch_is_seeded_and_distinct(self):
        nets = batch_networks(kind="random", count=3, modules=5, seed=7)
        again = batch_networks(kind="random", count=3, modules=5, seed=7)
        assert [n.name for n in nets] == [n.name for n in again]
        assert len({n.name for n in nets}) == 3
        for net in nets:
            net.validate()

    def test_datapath_and_examples_kinds(self):
        assert len(batch_networks(kind="datapath", count=4)) == 4
        assert len(batch_networks(kind="examples", count=3)) == 3

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            batch_networks(kind="quantum")


class TestArtworkBatchCli:
    def manifest(self, tmp_path, count=4) -> str:
        path = tmp_path / "manifest.json"
        path.write_text(
            json.dumps(
                {"workload": {"kind": "random", "count": count, "modules": 5, "seed": 20}}
            )
        )
        return str(path)

    def test_batch_run_outputs_and_report(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        rc = artwork_batch_main(
            [
                self.manifest(tmp_path),
                "-o",
                str(tmp_path / "out"),
                "--workers",
                "2",
                "--report",
                str(report),
            ]
        )
        assert rc == 0
        for seed in range(20, 24):
            assert (tmp_path / "out" / f"random_{seed}.es").exists()
            assert (tmp_path / "out" / f"random_{seed}.svg").exists()
        data = json.loads(report.read_text())
        assert data["summary"]["ok"] == 4
        assert {row["status"] for row in data["jobs"]} == {"ok"}
        out = capsys.readouterr().out
        assert "batch report" in out and "total_s" in out

    def test_workers_do_not_change_diagrams(self, tmp_path):
        manifest = self.manifest(tmp_path)
        one, four = tmp_path / "w1", tmp_path / "w4"
        assert artwork_batch_main([manifest, "-o", str(one), "--workers", "1", "-q"]) == 0
        assert artwork_batch_main([manifest, "-o", str(four), "--workers", "4", "-q"]) == 0
        for es in sorted(one.glob("*.es")):
            assert es.read_text() == (four / es.name).read_text()

    def test_warm_cache_second_run(self, tmp_path, capsys):
        manifest = self.manifest(tmp_path)
        out = tmp_path / "out"
        artwork_batch_main([manifest, "-o", str(out), "-q"])
        capsys.readouterr()
        assert artwork_batch_main([manifest, "-o", str(out), "-q"]) == 0
        assert "cache: 4/4 hits (100%)" in capsys.readouterr().out

    def test_file_jobs_manifest(self, tmp_path):
        from repro.formats.netlist_files import save_network_files
        from repro.workloads.examples import example1_string

        paths = save_network_files(example1_string(), tmp_path)
        manifest = tmp_path / "m.json"
        manifest.write_text(
            json.dumps(
                {
                    "jobs": [
                        {
                            "name": "ex1",
                            "netlist": paths["netlist"].name,
                            "call": paths["call"].name,
                            "io": paths["io"].name,
                            "pablo": {"partition_size": 7, "box_size": 7},
                        }
                    ]
                }
            )
        )
        rc = artwork_batch_main([str(manifest), "-o", str(tmp_path / "out"), "-q"])
        assert rc == 0
        assert (tmp_path / "out" / "ex1.svg").exists()

    def test_bad_manifest_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        assert artwork_batch_main([str(bad), "-o", str(tmp_path / "o")]) == 2
        assert "error:" in capsys.readouterr().err
        assert artwork_batch_main([str(tmp_path / "missing.json")]) == 2
        empty = tmp_path / "empty.json"
        empty.write_text("{}")
        assert artwork_batch_main([str(empty)]) == 2
        unknown = tmp_path / "unknown.json"
        unknown.write_text('{"workload": {"kind": "quantum", "count": 2}}')
        assert artwork_batch_main([str(unknown)]) == 2

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            artwork_batch_main(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out


def fast_stub_worker(payload: dict) -> dict:
    return {"status": "ok", "name": payload.get("name", "?"),
            "metrics": {}, "timing": {}, "seconds": 0.0}


class TestSerialFastPath:
    def test_engages_for_tiny_jobs(self):
        sched = BatchScheduler(max_workers=4, serial_threshold=10.0)
        outcomes = sched.run(specs_for(3))
        assert all(o.ok for o in outcomes)
        assert sched.counters.snapshot()["counters"]["service.serial_fast_path"] == 1
        assert all(o.attempts == 1 for o in outcomes)

    def test_matches_pool_results(self):
        specs = specs_for(3, seed=20)
        serial = BatchScheduler(max_workers=2, serial_threshold=10.0).run(specs)
        fanned = BatchScheduler(max_workers=2, serial_threshold=None).run(specs)
        assert [o.payload["escher"] for o in serial] == [
            o.payload["escher"] for o in fanned
        ]

    def test_never_engages_for_custom_workers(self):
        # Substituted workers may crash on purpose; they must stay in
        # child processes even when jobs are fast.
        sched = BatchScheduler(
            max_workers=1, worker=fast_stub_worker, serial_threshold=10.0
        )
        outcomes = sched.run(specs_for(2))
        assert all(o.ok for o in outcomes)
        counters = sched.counters.snapshot()["counters"]
        assert "service.serial_fast_path" not in counters

    def test_slow_probe_falls_back_to_pool(self):
        # An impossible threshold: the probe runs in-parent, the rest fan out.
        sched = BatchScheduler(max_workers=2, serial_threshold=1e-9)
        outcomes = sched.run(specs_for(3, seed=30))
        assert all(o.ok for o in outcomes)
        counters = sched.counters.snapshot()["counters"]
        assert "service.serial_fast_path" not in counters
        assert counters["service.jobs"] == 3


class TestPoolBackedScheduler:
    def test_runs_on_borrowed_warm_pool(self):
        from repro.gateway import WorkerPool

        specs = specs_for(3, seed=40)
        with WorkerPool(2) as pool:
            sched = BatchScheduler(max_workers=2, pool=pool)
            first = sched.run(specs)
            pids = {w["pid"] for w in pool.health()["workers"]}
            second = sched.run(specs_for(2, seed=50))
            assert {w["pid"] for w in pool.health()["workers"]} == pids
        assert all(o.ok for o in first + second)
        assert [o.spec.name for o in first] == [s.name for s in specs]
        assert pool.health()["completed"] == 5

    def test_pool_results_match_executor_results(self, tmp_path):
        from repro.gateway import WorkerPool

        specs = specs_for(2, seed=60)
        plain = BatchScheduler(max_workers=1, serial_threshold=None).run(specs)
        with WorkerPool(1) as pool:
            pooled = BatchScheduler(max_workers=1, pool=pool).run(specs)
        assert [o.payload["escher"] for o in plain] == [
            o.payload["escher"] for o in pooled
        ]

    def test_pool_scheduler_uses_cache(self, tmp_path):
        from repro.gateway import WorkerPool

        cache = ResultCache(tmp_path / "cache")
        specs = specs_for(2, seed=70)
        with WorkerPool(1) as pool:
            sched = BatchScheduler(max_workers=1, pool=pool, cache=cache)
            first = sched.run(specs)
            second = sched.run(specs)
        assert all(not o.from_cache for o in first)
        assert all(o.from_cache for o in second)


class TestBatchCliWarm:
    def _manifest(self, tmp_path, name, seed):
        path = tmp_path / f"{name}.json"
        path.write_text(json.dumps(
            {"workload": {"kind": "random", "count": 2, "modules": 5, "seed": seed}}
        ))
        return path

    def test_multi_manifest_keep_warm(self, tmp_path, capsys):
        m1 = self._manifest(tmp_path, "m1", 80)
        m2 = self._manifest(tmp_path, "m2", 90)
        rc = artwork_batch_main(
            [str(m1), str(m2), "-o", str(tmp_path / "out"),
             "--keep-warm", "--workers", "2", "--no-svg", "-q"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "4/4 jobs ok" in out
        assert (tmp_path / "out" / "random_80.es").exists()
        assert (tmp_path / "out" / "random_90.es").exists()

    def test_serial_threshold_flag(self, tmp_path, capsys):
        m1 = self._manifest(tmp_path, "m", 100)
        rc = artwork_batch_main(
            [str(m1), "-o", str(tmp_path / "out"), "--no-svg", "-q",
             "--serial-threshold", "10"]
        )
        assert rc == 0
        assert "2/2 jobs ok" in capsys.readouterr().out
