"""Tests for simulator signal tracing (waveforms, VCD)."""

from repro.core.netlist import Network, TermType
from repro.sim.behaviors import default_behaviors
from repro.sim.logic import LogicSimulator
from repro.sim.trace import Trace, record, render_waveforms, write_vcd, _vcd_code
from repro.workloads.stdlib import instantiate


def _toggler() -> LogicSimulator:
    """An inverter feeding a flip-flop feeding itself: q toggles."""
    net = Network()
    net.add_module(instantiate("inv", "i"))
    net.add_module(instantiate("dff", "ff"))
    net.add_system_terminal("q", TermType.OUT)
    net.connect("n_fb", "ff.q", "i.a", "q")
    net.connect("n_d", "i.y", "ff.d")
    return LogicSimulator(net, default_behaviors(net))


class TestRecord:
    def test_toggles_recorded(self):
        trace = record(_toggler(), 6)
        assert trace.cycles == 6
        assert trace.signals["n_fb"] == [0, 1, 0, 1, 0, 1]
        assert trace.signals["n_d"] == [1, 0, 1, 0, 1, 0]

    def test_watch_subset(self):
        trace = record(_toggler(), 3, nets=["n_fb"])
        assert set(trace.signals) == {"n_fb"}

    def test_changes(self):
        trace = record(_toggler(), 4)
        assert trace.changes("n_fb") == [(0, 0), (1, 1), (2, 0), (3, 1)]
        assert trace.changes("missing") == []

    def test_inputs_applied(self):
        net = Network()
        net.add_module(instantiate("buf", "u"))
        net.add_module(instantiate("buf", "v"))
        net.add_system_terminal("a", TermType.IN)
        net.connect("n_in", "a", "u.a")
        net.connect("n_out", "u.y", "v.a")
        sim = LogicSimulator(net, default_behaviors(net))
        trace = record(sim, 2, inputs={"a": 1})
        assert trace.signals["n_out"] == [1, 1]


class TestRender:
    def test_waveform_glyphs(self):
        trace = record(_toggler(), 4)
        art = render_waveforms(trace, nets=["n_fb"])
        assert art == "n_fb ▁▔▁▔"

    def test_empty(self):
        assert render_waveforms(Trace()) == "(no signals)"

    def test_alignment(self):
        trace = record(_toggler(), 2)
        lines = render_waveforms(trace).splitlines()
        waves = {line.rindex(" ") for line in lines}
        assert len(waves) == 1  # columns line up


class TestVcd:
    def test_file_structure(self, tmp_path):
        trace = record(_toggler(), 5)
        out = write_vcd(trace, tmp_path / "t.vcd")
        text = out.read_text()
        assert "$enddefinitions" in text
        assert "$var wire 1" in text
        assert "$dumpvars" in text
        assert "#1" in text  # at least one change timestamp

    def test_change_compression(self, tmp_path):
        trace = Trace(signals={"s": [1, 1, 1, 0, 0]})
        text = write_vcd(trace, tmp_path / "t.vcd").read_text()
        # Only the initial dump and the single change at cycle 3 appear.
        assert text.count("\n1!") + text.count("\n0!") <= 2

    def test_code_generator_unique(self):
        codes = {_vcd_code(i) for i in range(500)}
        assert len(codes) == 500
