"""Tests for the ESCHER diagram file format (Appendix D)."""

import pytest

from repro.core.diagram import Diagram, DiagramError
from repro.core.geometry import Point
from repro.core.rotation import Rotation
from repro.core.validate import check_diagram
from repro.formats.escher import (
    MAGIC,
    load_escher,
    read_escher,
    save_escher,
    write_escher,
)
from repro.route.eureka import route_diagram


def _geometry(diagram):
    return {
        name: frozenset(route.points()) for name, route in diagram.routes.items()
    }


class TestWriter:
    def test_magic_and_records(self, two_buffer_diagram):
        text = write_escher(two_buffer_diagram)
        lines = text.splitlines()
        assert lines[0] == MAGIC
        assert any(l.startswith("tname: pair") for l in lines)
        assert sum(1 for l in lines if l.startswith("subsys:")) == 2
        assert sum(1 for l in lines if l.startswith("instname:")) == 2
        # Two placed terminals, no routes: two node records.
        assert sum(1 for l in lines if l.startswith("node:")) == 2

    def test_coordinates_scaled_by_ten(self, two_buffer_diagram):
        text = write_escher(two_buffer_diagram)
        # u0 at (0,0) size 3x2 -> corners 0 0 30 20 appear somewhere.
        assert " 30 20 " in text or " 30 20\n" in text


class TestRoundtrip:
    def test_placement_roundtrip(self, two_buffer_diagram):
        text = write_escher(two_buffer_diagram)
        again = read_escher(text, two_buffer_diagram.network)
        assert {m: p.position for m, p in again.placements.items()} == {
            m: p.position for m, p in two_buffer_diagram.placements.items()
        }
        assert again.terminal_positions == two_buffer_diagram.terminal_positions

    def test_rotation_roundtrip(self, two_buffer_network):
        d = Diagram(two_buffer_network)
        d.place_module("u0", Point(0, 0), Rotation.R90)
        d.place_module("u1", Point(10, 0), Rotation.R270)
        again = read_escher(write_escher(d), two_buffer_network)
        assert again.placements["u0"].rotation is Rotation.R90
        assert again.placements["u1"].rotation is Rotation.R270

    def test_routed_geometry_roundtrip(self, two_buffer_diagram):
        route_diagram(two_buffer_diagram)
        check_diagram(two_buffer_diagram)
        again = read_escher(
            write_escher(two_buffer_diagram), two_buffer_diagram.network
        )
        assert _geometry(again) == _geometry(two_buffer_diagram)
        # The reread diagram passes the same legality checks.
        check_diagram(again)

    def test_file_roundtrip(self, tmp_path, two_buffer_diagram):
        route_diagram(two_buffer_diagram)
        path = save_escher(two_buffer_diagram, tmp_path / "d.es")
        again = load_escher(path, two_buffer_diagram.network)
        assert _geometry(again) == _geometry(two_buffer_diagram)


class TestReader:
    def test_rejects_wrong_magic(self, two_buffer_network):
        with pytest.raises(DiagramError, match="magic"):
            read_escher("#NOT-AN-ESCHER\n", two_buffer_network)

    def test_tolerates_blank_lines(self, two_buffer_diagram):
        text = write_escher(two_buffer_diagram).replace("\n", "\n\n")
        again = read_escher(text, two_buffer_diagram.network)
        assert len(again.placements) == 2
