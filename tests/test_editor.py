"""Tests for the headless schematic editor (figure 3.1)."""

import pytest

from repro.core.geometry import Point
from repro.core.rotation import Rotation
from repro.editor import Editor, EditorError
from repro.place.pablo import PabloOptions
from repro.sim.behaviors import default_behaviors


@pytest.fixture
def editor(two_buffer_network) -> Editor:
    return Editor(two_buffer_network)


class TestModuleCommands:
    def test_place_and_undo(self, editor):
        editor.place("u0", 0, 0)
        assert editor.diagram.placements["u0"].position == Point(0, 0)
        assert editor.undo() == "place u0 at (0,0)"
        assert "u0" not in editor.diagram.placements

    def test_place_unknown(self, editor):
        with pytest.raises(EditorError):
            editor.place("ghost", 0, 0)

    def test_overlapping_placement_refused(self, editor):
        editor.place("u0", 0, 0)
        with pytest.raises(EditorError, match="overlap"):
            editor.place("u1", 1, 1)
        assert "u1" not in editor.diagram.placements
        # The refused command left no undo entry.
        editor.undo()
        assert not editor.can_undo

    def test_move(self, editor):
        editor.place("u0", 0, 0)
        editor.move("u0", 5, 2)
        assert editor.diagram.placements["u0"].position == Point(5, 2)
        editor.undo()
        assert editor.diagram.placements["u0"].position == Point(0, 0)

    def test_move_unplaced(self, editor):
        with pytest.raises(EditorError):
            editor.move("u0", 1, 0)

    def test_rotate(self, editor):
        editor.place("u0", 0, 0)
        editor.rotate("u0")
        assert editor.diagram.placements["u0"].rotation is Rotation.R90
        editor.rotate("u0", 2)
        assert editor.diagram.placements["u0"].rotation is Rotation.R270
        editor.undo()
        assert editor.diagram.placements["u0"].rotation is Rotation.R90

    def test_place_terminal(self, editor):
        editor.place_terminal("din", -3, 1)
        assert editor.diagram.terminal_positions["din"] == Point(-3, 1)
        editor.undo()
        assert "din" not in editor.diagram.terminal_positions


class TestWireCommands:
    def _placed(self, editor):
        editor.place("u0", 0, 0)
        editor.place("u1", 8, 0)
        editor.place_terminal("din", -4, 1)
        editor.place_terminal("dout", 15, 1)
        return editor

    def test_draw_wire(self, editor):
        self._placed(editor)
        editor.draw_wire("n_mid", [(3, 1), (8, 1)])
        assert editor.diagram.routes["n_mid"].paths == [[Point(3, 1), Point(8, 1)]]
        editor.undo()
        assert "n_mid" not in editor.diagram.routes

    def test_draw_wire_through_module_refused(self, editor):
        self._placed(editor)
        with pytest.raises(EditorError):
            editor.draw_wire("n_mid", [(-1, 1), (10, 1)])
        assert "n_mid" not in editor.diagram.routes

    def test_draw_wire_needs_rectilinear(self, editor):
        self._placed(editor)
        with pytest.raises(EditorError, match="rectilinear"):
            editor.draw_wire("n_mid", [(3, 1), (8, 4)])

    def test_draw_wire_unknown_net(self, editor):
        with pytest.raises(EditorError):
            editor.draw_wire("ghost", [(0, 0), (1, 0)])

    def test_erase_net(self, editor):
        self._placed(editor)
        editor.draw_wire("n_mid", [(3, 1), (8, 1)])
        editor.erase_net("n_mid")
        assert "n_mid" not in editor.diagram.routes
        editor.undo()
        assert "n_mid" in editor.diagram.routes

    def test_erase_missing(self, editor):
        with pytest.raises(EditorError):
            editor.erase_net("n_mid")


class TestToolInvocation:
    def test_generate_flow(self, editor):
        editor.invoke_placement(PabloOptions(partition_size=4, box_size=4))
        assert editor.diagram.is_placed
        failed = editor.invoke_routing()
        assert failed == []
        assert editor.metrics().nets_failed == 0
        assert editor.problems() == []

    def test_placement_respects_manual_content(self, editor):
        editor.place("u0", 100, 100)
        editor.invoke_placement(PabloOptions())
        assert editor.diagram.placements["u0"].position == Point(100, 100)
        assert editor.diagram.is_placed

    def test_routing_requires_full_placement(self, editor):
        editor.place("u0", 0, 0)
        with pytest.raises(EditorError, match="place every module"):
            editor.invoke_routing()

    def test_undo_routing_restores_preroutes(self, editor):
        editor.place("u0", 0, 0)
        editor.place("u1", 8, 0)
        editor.place_terminal("din", -4, 1)
        editor.place_terminal("dout", 15, 1)
        editor.draw_wire("n_mid", [(3, 1), (8, 1)])
        editor.invoke_routing()
        assert editor.metrics().nets_failed == 0
        editor.undo()
        assert list(editor.diagram.routes) == ["n_mid"]

    def test_invoke_simulator(self, editor, two_buffer_network):
        editor.invoke_placement(PabloOptions(partition_size=4))
        editor.invoke_routing()
        values = editor.invoke_simulator(
            default_behaviors(two_buffer_network), din=1
        )
        assert values["n_out"] == 1

    def test_undo_placement(self, editor):
        editor.invoke_placement(PabloOptions())
        assert editor.diagram.is_placed
        editor.undo()
        assert not editor.diagram.placements


class TestPersistence:
    def test_save_and_open(self, tmp_path, editor, two_buffer_network):
        editor.invoke_placement(PabloOptions(partition_size=4))
        editor.invoke_routing()
        path = editor.save(tmp_path / "session.es")
        again = Editor.open(path, two_buffer_network)
        assert again.diagram.placements.keys() == editor.diagram.placements.keys()
        assert again.problems() == []

    def test_render_and_svg(self, tmp_path, editor):
        editor.invoke_placement(PabloOptions())
        assert "u0" in editor.render()
        out = editor.save_svg(tmp_path / "x.svg")
        assert out.read_text().startswith("<svg")

    def test_undo_empty(self, editor):
        with pytest.raises(EditorError):
            editor.undo()
