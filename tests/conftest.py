"""Shared fixtures: small hand-built networks and diagrams."""

from __future__ import annotations

import pytest

from repro.core.diagram import Diagram
from repro.core.geometry import Point
from repro.core.netlist import Network, TermType
from repro.workloads.examples import example1_string, example2_controller
from repro.workloads.stdlib import instantiate, make_module


@pytest.fixture
def two_buffer_network() -> Network:
    """Two buffers in a chain with a system input and output."""
    net = Network(name="pair")
    net.add_module(instantiate("buf", "u0"))
    net.add_module(instantiate("buf", "u1"))
    net.add_system_terminal("din", TermType.IN)
    net.add_system_terminal("dout", TermType.OUT)
    net.connect("n_in", "din", "u0.a")
    net.connect("n_mid", "u0.y", "u1.a")
    net.connect("n_out", "u1.y", "dout")
    net.validate()
    return net


@pytest.fixture
def two_buffer_diagram(two_buffer_network: Network) -> Diagram:
    """The two buffers placed face to face with room to route."""
    diagram = Diagram(two_buffer_network)
    diagram.place_module("u0", Point(0, 0))
    diagram.place_module("u1", Point(8, 0))
    diagram.place_system_terminal("din", Point(-4, 1))
    diagram.place_system_terminal("dout", Point(15, 1))
    return diagram


@pytest.fixture
def square_module_network() -> Network:
    """One 4x4 module with a terminal on every side (rotation tests)."""
    net = Network(name="square")
    net.add_module(
        make_module(
            "sq",
            4,
            4,
            [
                ("l", "in", 0, 1),
                ("r", "out", 4, 2),
                ("u", "out", 1, 4),
                ("d", "in", 3, 0),
            ],
        )
    )
    return net


@pytest.fixture
def example1():
    return example1_string()


@pytest.fixture
def example2():
    return example2_controller()
