"""Tests for the always-on sampling profiler (``repro.obs.sampler``):
deterministic aggregation via injectable frame sources and clocks, ring
eviction, span/thread attribution, fault absorption, flamegraph
rendering, cross-process window shipping, and the overhead guard."""

import threading
import time

import pytest

from repro.faults import FaultRegistry, set_faults
from repro.obs.counters import Registry, set_registry
from repro.obs.sampler import (
    DEFAULT_MAX_WINDOWS,
    MAX_STACKS_PER_WINDOW,
    ProfileWindow,
    Sampler,
    capture,
    collapse_frame,
    ensure_sampler,
    flamegraph_div,
    frame_name,
    get_sampler,
    label_thread,
    merge_windows,
    render_flamegraph_html,
    set_sampler,
    unlabel_thread,
    write_flamegraph_html,
)
from repro.obs.trace import Tracer, active_span_path, active_span_paths, set_tracer


class FakeFrame:
    """A frame-shaped object ``collapse_frame`` can walk."""

    def __init__(self, names, module="fake"):
        frame = None
        for name in names:  # outermost first
            frame = FakeFrame._link(name, module, frame)
        self._top = frame

    @staticmethod
    def _link(name, module, back):
        frame = object.__new__(FakeFrame)
        frame.f_code = type("code", (), {"co_name": name, "co_filename": "<fake>"})()
        frame.f_globals = {"__name__": module}
        frame.f_back = back
        return frame

    @property
    def top(self):
        return self._top


def fake_frames(**stacks):
    """``{thread_id: frame}`` source from ``tid=[names outermost first]``."""
    table = {int(tid.lstrip("t")): FakeFrame(names).top for tid, names in stacks.items()}
    return lambda: table


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def make_sampler(frame_source, *, span_source=None, window_s=5.0, max_windows=4):
    clock = FakeClock()
    sampler = Sampler(
        hz=10.0,
        window_s=window_s,
        max_windows=max_windows,
        clock=clock,
        wall_clock=lambda: 1000.0 + clock.now,
        frame_source=frame_source,
        span_source=span_source or dict,
    )
    return sampler, clock


class TestCollapse:
    def test_frame_name_module_qualname(self):
        frame = FakeFrame(["outer", "inner"]).top
        assert frame_name(frame) == "fake.inner"

    def test_collapse_outermost_first(self):
        frame = FakeFrame(["main", "route", "expand"]).top
        assert collapse_frame(frame) == ["fake.main", "fake.route", "fake.expand"]

    def test_depth_bound(self):
        frame = FakeFrame([f"f{i}" for i in range(200)]).top
        assert len(collapse_frame(frame, limit=16)) == 16


class TestAggregation:
    def test_deterministic_stacks(self):
        sampler, clock = make_sampler(fake_frames(t1=["main", "work"]))
        for _ in range(5):
            sampler.tick()
            clock.advance(0.1)
        window = sampler.windows()[-1]
        assert window.samples == 5
        assert window.stacks == {"fake.main;fake.work": 5}
        assert window.ticks == 5

    def test_multiple_threads_per_tick(self):
        sampler, clock = make_sampler(
            fake_frames(t1=["main", "place"], t2=["loop", "route"])
        )
        assert sampler.tick() == 2
        window = sampler.windows()[-1]
        assert window.samples == 2
        assert set(window.stacks) == {
            "fake.main;fake.place",
            "fake.loop;fake.route",
        }

    def test_excluded_threads_skipped(self):
        sampler, _ = make_sampler(fake_frames(t1=["a"], t2=["b"]))
        sampler.excluded.add(2)
        assert sampler.tick() == 1
        assert list(sampler.windows()[-1].stacks) == ["fake.a"]

    def test_window_rollover_and_ring_eviction(self):
        sampler, clock = make_sampler(
            fake_frames(t1=["f"]), window_s=1.0, max_windows=3
        )
        for _ in range(60):  # 6 s of ticks at 1 s windows -> >3 sealed
            sampler.tick()
            clock.advance(0.1)
        sealed = sampler.windows(include_current=False)
        assert len(sealed) == 3  # ring evicted the oldest
        assert all(w.end > w.start for w in sealed)
        # Epoch stamps track the wall clock for overlap queries.
        assert sealed[0].started_at >= 1000.0
        assert sealed[-1].ended_at > sealed[0].started_at

    def test_stack_cardinality_bound(self):
        window = ProfileWindow()
        for i in range(MAX_STACKS_PER_WINDOW + 40):
            window.add([f"root{i}", "leaf"], count=1 + (i % 3))
        window.seal(end=1.0, ended_at=1.0)
        assert len(window.stacks) <= MAX_STACKS_PER_WINDOW + 1
        assert window.stacks.get("(truncated)", 0) > 0
        # No samples lost to the fold.
        assert sum(window.stacks.values()) == window.samples


class TestAttribution:
    def test_span_path_becomes_root(self):
        tid = 7
        sampler, _ = make_sampler(
            fake_frames(t7=["runner", "expand"]),
            span_source=lambda: {tid: ("eureka.route", "eureka.net")},
        )
        sampler.tick()
        window = sampler.windows()[-1]
        assert window.stacks == {
            "eureka.route;eureka.net;fake.runner;fake.expand": 1
        }
        assert window.spans == {"eureka.route>eureka.net": 1}
        assert window.attributed_ratio() == 1.0

    def test_thread_label_fallback(self):
        label_thread("gateway.loop", thread_id=3)
        try:
            sampler, _ = make_sampler(fake_frames(t3=["select"]))
            sampler.tick()
            window = sampler.windows()[-1]
            assert window.stacks == {"gateway.loop;fake.select": 1}
            assert window.spans == {"gateway.loop": 1}
        finally:
            unlabel_thread(thread_id=3)

    def test_unattributed_counted(self):
        sampler, _ = make_sampler(fake_frames(t9=["idle"]))
        sampler.tick()
        window = sampler.windows()[-1]
        assert window.spans == {"": 1}
        assert window.attributed_ratio() == 0.0

    def test_live_tracer_spans_visible_cross_thread(self):
        tracer = Tracer(enabled=True)
        previous = set_tracer(tracer)
        try:
            with tracer.span("job"):
                with tracer.span("eureka.route"):
                    tid = threading.get_ident()
                    assert active_span_path() == ("job", "eureka.route")
                    assert active_span_paths()[tid] == ("job", "eureka.route")
            assert active_span_path() == ()
        finally:
            set_tracer(previous)

    def test_self_counts_and_top_frames(self):
        window = ProfileWindow()
        window.add(["main", "a"], count=3)
        window.add(["main", "b"], count=5)
        window.add(["main"], count=2)
        assert window.self_counts() == {"a": 3, "b": 5, "main": 2}
        assert window.top_frames(2) == [("b", 5), ("a", 3)]


class TestFaults:
    def test_tick_failpoint_absorbed(self):
        registry = Registry()
        previous_reg = set_registry(registry)
        previous_faults = set_faults(FaultRegistry("sampler.tick=io:1"))
        try:
            sampler, _ = make_sampler(fake_frames(t1=["f"]))
            assert sampler.tick() == 0  # the fault ate the pass, not the run
            assert sampler.errors == 1
            assert registry.get("sampler.errors") == 1
        finally:
            set_faults(previous_faults)
            set_registry(previous_reg)

    def test_broken_frame_source_absorbed(self):
        def broken():
            raise RuntimeError("boom")

        sampler, _ = make_sampler(broken)
        for _ in range(3):
            sampler.tick()
        assert sampler.errors == 3


class TestShipping:
    def test_roundtrip_and_merge(self):
        sampler, clock = make_sampler(fake_frames(t1=["main", "work"]))
        for _ in range(4):
            sampler.tick()
            clock.advance(0.1)
        shipped = sampler.export()
        assert shipped and isinstance(shipped[0], dict)
        merged = merge_windows(shipped)
        assert merged.samples == 4
        assert merged.stacks == {"fake.main;fake.work": 4}

    def test_export_since_filters_old_windows(self):
        sampler, clock = make_sampler(
            fake_frames(t1=["f"]), window_s=1.0, max_windows=8
        )
        for _ in range(30):
            sampler.tick()
            clock.advance(0.1)
        cutoff = 1000.0 + clock.now - 1.0
        recent = sampler.export(since=cutoff)
        assert recent
        assert len(recent) < len(sampler.export())
        assert all(w["ended_at"] >= cutoff for w in recent)

    def test_windows_overlapping(self):
        sampler, clock = make_sampler(
            fake_frames(t1=["f"]), window_s=1.0, max_windows=8
        )
        for _ in range(30):
            sampler.tick()
            clock.advance(0.1)
        hits = sampler.windows_overlapping(1000.5, 1001.5)
        assert hits
        for w in hits:
            assert w.started_at <= 1001.5 and w.ended_at >= 1000.5

    def test_merge_handles_objects_and_dicts(self):
        a = ProfileWindow(start=0.0, end=1.0, started_at=10.0, ended_at=11.0)
        a.add(["x"], span_path="x")
        b = ProfileWindow(start=1.0, end=2.0, started_at=11.0, ended_at=12.0)
        b.add(["x"], span_path="x")
        merged = merge_windows([a, b.to_dict()])
        assert merged.samples == 2
        assert merged.started_at == 10.0 and merged.ended_at == 12.0
        assert merged.spans == {"x": 2}


class TestLifecycleAndGlobal:
    def test_start_stop_real_thread(self):
        sampler = Sampler(hz=200.0, window_s=0.5)
        sampler.start()
        try:
            deadline = time.monotonic() + 2.0
            while sampler.ticks == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert sampler.ticks > 0
            assert sampler.running
        finally:
            sampler.stop()
        assert not sampler.running

    def test_ensure_sampler_env_disable(self, monkeypatch):
        previous = set_sampler(None)
        try:
            monkeypatch.setenv("ARTWORK_SAMPLER_HZ", "0")
            assert ensure_sampler() is None
            assert get_sampler() is None
        finally:
            s = set_sampler(previous)
            if s is not None:
                s.stop()

    def test_ensure_sampler_starts_and_reuses(self):
        previous = set_sampler(None)
        try:
            first = ensure_sampler(hz=50.0)
            assert first is not None and first.running
            assert ensure_sampler(hz=50.0) is first
        finally:
            current = set_sampler(previous)
            if current is not None:
                current.stop()

    def test_capture_burst(self):
        clock = FakeClock()

        def sleep(dt):
            clock.advance(max(dt, 0.001))

        window = capture(
            1.0,
            hz=10.0,
            frame_source=fake_frames(t1=["main", "hot"]),
            clock=clock,
            sleep=sleep,
        )
        assert window.samples >= 9
        assert window.stacks.get("fake.main;fake.hot") == window.samples

    def test_snapshot_shape(self):
        sampler, clock = make_sampler(fake_frames(t1=["main", "hot"]))
        for _ in range(3):
            sampler.tick()
            clock.advance(0.1)
        snap = sampler.snapshot()
        assert snap["ticks"] == 3
        assert snap["last_window"]["samples"] == 3
        assert snap["last_window"]["top_frames"][0][0] == "fake.hot"
        assert 0.0 <= snap["overhead_ratio"] < 1.0


class TestOverheadGuard:
    def test_overhead_under_two_percent_at_19hz(self):
        """The always-on rate must cost <2% of wall clock: measure real
        ticks over real stacks, then scale self-time to the 19 hz duty
        cycle instead of sleeping through a wall-clock window."""
        sampler = Sampler(hz=19.0, window_s=60.0)
        ticks = 200
        for _ in range(ticks):
            sampler.tick()
        window = sampler.windows()[-1]
        per_tick = window.self_s / ticks
        duty = per_tick * 19.0  # fraction of each second spent sampling
        assert duty < 0.02, f"sampler duty cycle {duty:.4f} >= 2%"

    def test_window_overhead_accounting(self):
        sampler, clock = make_sampler(fake_frames(t1=["f"]))
        sampler.tick()
        clock.advance(1.0)
        sampler.tick()
        window = sampler.windows()[-1]
        assert window.self_s >= 0.0
        assert window.overhead_ratio < 1.0


class TestFlamegraph:
    def test_html_self_contained(self, tmp_path):
        window = ProfileWindow(start=0.0, end=1.0, hz=19.0, ticks=10)
        window.add(
            ["eureka.route", "fake.expand", "fake.probe"],
            span_path="eureka.route",
            count=7,
        )
        window.add(["eureka.route", "fake.expand"], span_path="eureka.route", count=3)
        html = render_flamegraph_html([window], title="test profile")
        assert html.startswith("<!DOCTYPE html>")
        assert "test profile" in html
        assert "fake.probe" in html
        assert "eureka.route" in html
        assert "http" not in html.split("</style>")[1]  # no external assets
        out = write_flamegraph_html(tmp_path / "flame.html", [window])
        assert out.read_text() == render_flamegraph_html([window])

    def test_widths_proportional(self):
        div = flamegraph_div({"root;a": 3, "root;b": 1})
        assert "width:100.000%" in div  # the root row
        assert "width:75.000%" in div
        assert "width:25.000%" in div

    def test_empty_windows_render(self):
        assert "no samples" in flamegraph_div({})
        html = render_flamegraph_html([])
        assert "0 samples" in html

    def test_escapes_names(self):
        div = flamegraph_div({"<script>;x": 1})
        assert "<script>" not in div
        assert "&lt;script&gt;" in div

    def test_colors_deterministic(self):
        a = flamegraph_div({"root;leaf": 1})
        b = flamegraph_div({"root;leaf": 1})
        assert a == b


class TestDefaults:
    def test_default_ring_covers_a_minute(self):
        sampler = Sampler()
        assert sampler.window_s * DEFAULT_MAX_WINDOWS >= 60.0

    def test_bad_construction(self):
        with pytest.raises(ValueError):
            Sampler(hz=0)
        with pytest.raises(ValueError):
            Sampler(window_s=0)
