"""Tests for the gateway subsystem: worker pool, HTTP/WS server, auth,
rate limiting, backpressure, crash recovery and graceful drain."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.gateway import (
    GatewayConfig,
    HttpClient,
    RateLimiter,
    TokenAuth,
    WebSocketClient,
    WorkerPool,
    start_gateway,
)
from repro.gateway.pool import PoolClosedError
from repro.gateway.protocol import (
    OP_CLOSE,
    OP_TEXT,
    ws_accept_key,
    ws_encode_frame,
)
from repro.service import JobSpec, ResultCache
from repro.workloads import random_network
from repro.workloads.examples import example1_string


def spec_for(seed: int = 0, *, modules: int = 5) -> JobSpec:
    return JobSpec.from_network(random_network(modules=modules, seed=seed))


# -- module-level workers (must be picklable for the pool) -----------------


def echo_worker(payload: dict) -> dict:
    return {"status": "ok", "name": payload.get("name", "?"), "echo": payload,
            "metrics": {}, "timing": {}, "seconds": 0.001}


def napping_worker(payload: dict) -> dict:
    time.sleep(float(payload.get("nap", 2.0)))
    return {"status": "ok", "name": payload.get("name", "?"),
            "metrics": {}, "timing": {}, "seconds": 0.0}


def crash_once_worker(payload: dict) -> dict:
    marker = os.path.join(os.environ["REPRO_TEST_DIR"], payload["name"])
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os._exit(13)
    return echo_worker(payload)


def always_crash_worker(payload: dict) -> dict:
    os._exit(13)  # pragma: no cover


def staged_worker(payload: dict, progress=None) -> dict:
    if progress is not None:
        progress("alpha")
        progress("beta")
    return echo_worker(payload)


def collect(pool: WorkerPool, payloads: list[dict], timeout: float = 30.0) -> list[tuple[dict, int]]:
    """Submit payloads and wait for every callback (submission order)."""
    import threading

    results: dict[int, tuple[dict, int]] = {}
    done = threading.Event()

    def make_cb(i):
        def cb(result, attempts):
            results[i] = (result, attempts)
            if len(results) == len(payloads):
                done.set()
        return cb

    for i, payload in enumerate(payloads):
        pool.submit(payload, callback=make_cb(i))
    assert done.wait(timeout), f"only {len(results)}/{len(payloads)} jobs came back"
    return [results[i] for i in range(len(payloads))]


# -- WorkerPool ------------------------------------------------------------


class TestWorkerPool:
    def test_round_trip_and_ordering(self):
        with WorkerPool(2, worker=echo_worker) as pool:
            got = collect(pool, [{"name": f"job{i}", "i": i} for i in range(6)])
            assert [r["echo"]["i"] for r, _ in got] == list(range(6))
            assert all(r["status"] == "ok" for r, _ in got)
            assert all(attempts == 1 for _, attempts in got)

    def test_workers_stay_resident(self):
        with WorkerPool(1, worker=echo_worker) as pool:
            collect(pool, [{"name": "a"}])
            pids = {w["pid"] for w in pool.health()["workers"]}
            collect(pool, [{"name": "b"}, {"name": "c"}])
            assert {w["pid"] for w in pool.health()["workers"]} == pids
            assert pool.health()["worker_restarts"] == 0

    def test_crash_retried_once(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_DIR", str(tmp_path))
        with WorkerPool(1, worker=crash_once_worker, poll_interval=0.05) as pool:
            (result, attempts), = collect(pool, [{"name": "flaky"}])
            assert result["status"] == "ok"
            assert attempts == 2
            assert pool.health()["worker_restarts"] == 1

    def test_persistent_crash_reported(self):
        with WorkerPool(1, worker=always_crash_worker, poll_interval=0.05) as pool:
            (result, attempts), = collect(pool, [{"name": "doomed"}])
            assert result["status"] == "crashed"
            assert attempts == 2
            assert pool.health()["crashed_jobs"] == 1

    def test_crashed_worker_is_replaced(self):
        with WorkerPool(1, worker=always_crash_worker, poll_interval=0.05) as pool:
            collect(pool, [{"name": "boom"}])
            health = pool.health()
            assert health["alive"] == health["size"] == 1

    def test_in_worker_timeout(self):
        with WorkerPool(1, worker=napping_worker, timeout=0.2) as pool:
            (result, _), = collect(pool, [{"name": "sleepy", "nap": 30}])
            assert result["status"] == "timeout"
            # SIGALRM fired inside the worker: the process survived.
            assert pool.health()["worker_restarts"] == 0

    def test_stage_events_stream_in_order(self):
        events: list[dict] = []
        with WorkerPool(1, worker=staged_worker) as pool:
            import threading

            done = threading.Event()
            pool.submit(
                {"name": "staged"},
                callback=lambda *_: done.set(),
                events=events.append,
            )
            assert done.wait(10)
        kinds = [e.get("type") for e in events]
        assert kinds == ["dispatched", "stage", "stage"]
        assert [e["stage"] for e in events[1:]] == ["alpha", "beta"]

    def test_closed_pool_rejects_submits(self):
        pool = WorkerPool(1, worker=echo_worker)
        pool.start()
        pool.close()
        with pytest.raises(PoolClosedError):
            pool.submit({"name": "late"})

    def test_close_drains_in_flight_jobs(self):
        pool = WorkerPool(1, worker=napping_worker)
        import threading

        results = []
        pool.submit({"name": "nap", "nap": 0.3}, callback=lambda r, a: results.append(r))
        pool.close(drain=True, grace=10.0)
        assert results and results[0]["status"] == "ok"

    def test_health_reflects_externally_killed_worker(self):
        with WorkerPool(1, worker=echo_worker, poll_interval=0.05) as pool:
            collect(pool, [{"name": "warm"}])
            old_pid = pool.health()["workers"][0]["pid"]
            os.kill(old_pid, signal.SIGKILL)
            time.sleep(0.1)
            pool.reap()  # what /healthz does synchronously
            health = pool.health()
            assert health["worker_restarts"] == 1
            assert health["alive"] == 1
            assert health["workers"][0]["pid"] != old_pid


# -- auth and rate limiting (unit) -----------------------------------------


class TestAuthUnit:
    def test_open_when_no_tokens(self):
        assert TokenAuth().authorize({}) is True

    def test_bearer_and_api_key(self):
        auth = TokenAuth(["s3cret"])
        assert auth.authorize({"authorization": "Bearer s3cret"})
        assert auth.authorize({"x-api-key": "s3cret"})
        assert not auth.authorize({"authorization": "Bearer wrong"})
        assert not auth.authorize({})

    def test_query_token_fallback(self):
        auth = TokenAuth(["s3cret"])
        assert auth.authorize({}, query_token="s3cret")
        assert not auth.authorize({}, query_token="wrong")

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv(TokenAuth.ENV_VAR, "envtok")
        assert TokenAuth.from_env().authorize({"x-api-key": "envtok"})


class TestRateLimiterUnit:
    def test_burst_then_reject_then_refill(self):
        now = [0.0]
        limiter = RateLimiter(rate=1.0, burst=2, clock=lambda: now[0])
        assert limiter.check("c") == 0.0
        assert limiter.check("c") == 0.0
        wait = limiter.check("c")
        assert wait == pytest.approx(1.0)
        now[0] += 1.0
        assert limiter.check("c") == 0.0
        assert limiter.rejected == 1 and limiter.allowed == 3

    def test_clients_are_independent(self):
        limiter = RateLimiter(rate=0.001, burst=1, clock=lambda: 0.0)
        assert limiter.check("a") == 0.0
        assert limiter.check("b") == 0.0
        assert limiter.check("a") > 0.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RateLimiter(rate=0.0, burst=1)
        with pytest.raises(ValueError):
            RateLimiter(rate=1.0, burst=0)
        with pytest.raises(ValueError):
            RateLimiter(rate=1.0, burst=1, jitter=-0.1)

    def test_jitter_is_additive_only(self):
        import random as _random

        limiter = RateLimiter(
            rate=1.0, burst=1, clock=lambda: 0.0,
            jitter=0.5, rng=_random.Random(7),
        )
        assert limiter.check("c") == 0.0  # grants are never jittered
        base = 1.0  # empty bucket at rate 1/s
        for _ in range(50):
            wait = limiter.check("c")
            assert base <= wait <= base * 1.5

    def test_retry_after_jitter_never_shrinks_the_wait(self):
        from repro.gateway.server import _retry_after

        for seconds in (0.0, 0.4, 2.0, 30.0):
            for _ in range(50):
                got = int(_retry_after(seconds))
                assert got >= max(1, int(seconds))
                assert got <= int(seconds + seconds * 0.5 + 1) + 1


# -- the served gateway ----------------------------------------------------


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """One warm gateway shared by the happy-path tests: real pipeline
    worker, result cache, runlog."""
    root = tmp_path_factory.mktemp("gateway")
    config = GatewayConfig(
        workers=1,
        job_timeout=60.0,
        cache=ResultCache(root / "cache"),
    )
    from repro.obs import RunLog

    config.runlog = RunLog(root / "runlog.jsonl")
    handle = start_gateway(config)
    with handle:
        yield handle


@pytest.fixture()
def client(served):
    with HttpClient("127.0.0.1", served.port) as c:
        yield c


def submit_and_wait(client: HttpClient, spec: JobSpec) -> dict:
    posted = client.post("/v1/jobs", spec.to_dict())
    assert posted.status in (200, 202), posted.body
    job_id = posted.json()["id"]
    final = client.get(f"/v1/jobs/{job_id}?wait=30").json()
    assert final["status"] not in ("queued", "running"), final
    return final


class TestGatewayHTTP:
    def test_submit_poll_result_round_trip(self, client):
        final = submit_and_wait(client, spec_for(seed=1))
        assert final["status"] == "ok"
        assert final["metrics"]["nets"] >= 1
        result = client.get(f"/v1/jobs/{final['id']}/result").json()
        assert "escher" in result["payload"]
        svg = client.get(f"/v1/jobs/{final['id']}/svg")
        assert svg.status == 200
        assert svg.headers["content-type"].startswith("image/svg+xml")
        assert svg.body.startswith(b"<svg")

    def test_bad_spec_is_a_400(self, client):
        assert client.post("/v1/jobs", {"nonsense": True}).status == 400
        assert client.post("/v1/jobs", b"not json{").status == 400

    def test_unknown_job_and_endpoint_are_404(self, client):
        assert client.get("/v1/jobs/j999999").status == 404
        assert client.get("/v1/nothing").status == 404

    def test_result_before_done_is_409(self, served):
        # A job that was never submitted can't be polled; use a fresh
        # slow-ish spec and race the result endpoint immediately.
        with HttpClient("127.0.0.1", served.port) as c:
            posted = c.post("/v1/jobs", spec_for(seed=2, modules=9).to_dict())
            job_id = posted.json()["id"]
            r = c.get(f"/v1/jobs/{job_id}/result")
            assert r.status in (200, 409)  # 409 unless it already finished
            final = c.get(f"/v1/jobs/{job_id}?wait=30").json()
            assert final["status"] == "ok"

    def test_cache_hit_dedup(self, client):
        spec = spec_for(seed=3)
        first = submit_and_wait(client, spec)
        assert first["cached"] is False
        again = client.post("/v1/jobs", spec.to_dict())
        assert again.status == 200  # served instantly, no queueing
        assert again.json()["cached"] is True
        assert again.json()["status"] == "ok"
        assert again.json()["id"] != first["id"]

    def test_jobs_listing(self, client):
        listing = client.get("/v1/jobs").json()
        assert listing["total"] >= 1
        assert listing["jobs"][0]["submitted_at"] >= listing["jobs"][-1]["submitted_at"]

    def test_websocket_event_ordering(self, served, client):
        spec = JobSpec.from_network(example1_string())
        posted = client.post("/v1/jobs", spec.to_dict())
        job_id = posted.json()["id"]
        with WebSocketClient("127.0.0.1", served.port, f"/v1/jobs/{job_id}/events") as ws:
            events = []
            while True:
                event = ws.recv_json()
                if event is None:
                    break
                events.append(event)
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        names = [e["event"] for e in events]
        assert names[0] == "queued" and names[-1] == "done"
        assert "running" in names
        stages = [e["stage"] for e in events if e["event"] == "stage"]
        assert stages == ["placement", "routing"]
        assert names.index("running") < names.index("done")

    def test_healthz_shape(self, client):
        health = client.get("/healthz").json()
        assert health["status"] == "ok"
        assert health["pool"]["alive"] == health["pool"]["size"] == 1
        assert "queued" in health["jobs"]

    def test_healthz_sees_killed_worker_immediately(self, client):
        before = client.get("/healthz").json()["pool"]
        old_pid = before["workers"][0]["pid"]
        restarts = before["worker_restarts"]
        os.kill(old_pid, signal.SIGKILL)
        time.sleep(0.1)  # let the OS reap the child
        after = client.get("/healthz").json()["pool"]
        assert after["worker_restarts"] == restarts + 1
        assert after["alive"] == after["size"]  # replacement already forked
        assert after["workers"][0]["pid"] != old_pid

    def test_metrics_exposition(self, client):
        submit_and_wait(client, spec_for(seed=4))
        metrics = client.get("/metrics")
        assert metrics.status == 200
        assert metrics.headers["content-type"].startswith("text/plain")
        text = metrics.body.decode()
        assert "# TYPE repro_service_job_wall_s histogram" in text
        assert 'repro_service_job_wall_s_bucket{le="+Inf"}' in text
        assert 'repro_service_job_wall_s{quantile="0.5"}' in text
        assert 'repro_service_job_wall_s{quantile="0.95"}' in text
        assert "repro_service_jobs" in text
        assert "repro_gateway_workers_alive 1" in text
        assert "repro_gateway_http_requests" in text
        assert 'repro_gateway_workers{state="idle"} 1' in text
        assert 'repro_gateway_request_qps{endpoint="POST /v1/jobs",window="1m"}' in text

    def test_serve_runlog_records(self, served, client):
        submit_and_wait(client, spec_for(seed=5))
        records = served.gateway.config.runlog.runs(kind="serve")
        assert records
        last = records[-1]
        assert last.extra["status"] == "ok"
        assert last.extra["job_id"].startswith("j")
        assert last.spec_digest


class TestGatewayTelemetry:
    """End-to-end request tracing: traceparent continuation, one span
    tree per served job, trace ids on every surface, live stats."""

    def test_traceparent_continuation_and_echo(self, client):
        incoming = "00-" + "ab" * 16 + "-" + "cd" * 8 + "-01"
        posted = client.request(
            "POST", "/v1/jobs", spec_for(seed=21).to_dict(),
            headers={"traceparent": incoming},
        )
        assert posted.status in (200, 202)
        assert posted.headers["x-request-id"] == "ab" * 16
        _version, trace_id, span_id, _flags = posted.headers["traceparent"].split("-")
        assert trace_id == "ab" * 16
        assert span_id != "cd" * 8  # a fresh child span, not the caller's

    def test_request_id_minted_without_traceparent(self, client):
        response = client.get("/healthz")
        request_id = response.headers["x-request-id"]
        assert len(request_id) == 32 and request_id != "0" * 32
        assert response.headers["traceparent"].startswith(f"00-{request_id}-")

    def test_trace_id_survives_fork_and_tags_everything(self, served, client):
        incoming = "00-" + "5a" * 16 + "-" + "0f" * 8 + "-01"
        posted = client.request(
            "POST", "/v1/jobs", spec_for(seed=22).to_dict(),
            headers={"traceparent": incoming},
        )
        job_id = posted.json()["id"]
        final = client.get(f"/v1/jobs/{job_id}?wait=30").json()
        assert final["trace_id"] == "5a" * 16
        payload = client.get(f"/v1/jobs/{job_id}/result").json()["payload"]
        assert payload["trace_id"] == "5a" * 16  # crossed the fork boundary
        records = [
            r for r in served.gateway.config.runlog.runs(kind="serve")
            if r.extra["job_id"] == job_id
        ]
        assert records and records[0].extra["trace_id"] == "5a" * 16

    def test_trace_endpoint_returns_one_connected_tree(self, client):
        final = submit_and_wait(client, spec_for(seed=23))
        doc = client.get(f"/v1/jobs/{final['id']}/trace")
        assert doc.status == 200
        events = doc.json()["traceEvents"]
        names = [e["name"] for e in events]
        assert names[0] == "gateway.request"
        for required in ("gateway.auth", "gateway.parse", "queue.wait",
                         "worker.exec", "pablo.place", "eureka.route"):
            assert required in names, names
        root = events[0]
        end = root["ts"] + root["dur"]
        assert all(root["ts"] <= e["ts"] <= end + 1 for e in events)

    def test_cached_replay_gets_its_own_trace_id(self, client):
        spec = spec_for(seed=24)
        first = submit_and_wait(client, spec)
        again = client.post("/v1/jobs", spec.to_dict()).json()
        assert again["cached"] is True
        assert again["trace_id"] != first["trace_id"]

    def test_ws_handshake_and_events_carry_trace(self, served, client):
        posted = client.post("/v1/jobs", spec_for(seed=25, modules=8).to_dict())
        job_id = posted.json()["id"]
        with WebSocketClient("127.0.0.1", served.port, f"/v1/jobs/{job_id}/events") as ws:
            request_id = ws.headers["x-request-id"]
            assert len(request_id) == 32
            events = []
            while True:
                event = ws.recv_json()
                if event is None:
                    break
                events.append(event)
        assert events
        # Every event in the stream is stamped with the job's trace id.
        assert len({e["trace"] for e in events}) == 1

    def test_stats_reports_live_windows(self, client):
        submit_and_wait(client, spec_for(seed=26))
        stats = client.get("/v1/stats").json()
        assert set(stats["windows"]) == {"1m", "5m", "15m"}
        post = stats["endpoints"]["POST /v1/jobs"]["1m"]
        assert post["count"] >= 1 and post["qps"] > 0
        assert post["p95"] >= post["p50"] >= 0
        assert "worker.exec" in stats["stages"]
        assert stats["gauges"]["workers"]["size"] == 1
        assert stats["totals"]["gateway.http_requests"] >= 1


class TestSlowRequestCapture:
    def _config(self, tmp_path, threshold):
        from repro.obs import RunLog

        config = GatewayConfig(workers=1, slow_threshold=threshold)
        config.runlog = RunLog(tmp_path / "runlog.jsonl")
        return config

    def test_zero_threshold_captures_everything(self, tmp_path):
        config = self._config(tmp_path, 0.0)
        with start_gateway(config) as served:
            with HttpClient("127.0.0.1", served.port) as c:
                final = submit_and_wait(c, spec_for(seed=27))
        records = config.runlog.runs(kind="slow")
        assert records
        slow = records[-1]
        assert slow.extra["trace_id"] == final["trace_id"]
        breakdown = slow.extra["breakdown"]
        assert set(breakdown) >= {
            "auth_s", "parse_s", "queue_wait_s", "worker_exec_s", "total_s"
        }
        assert breakdown["total_s"] >= breakdown["worker_exec_s"] >= 0
        spans = slow.extra["spans"]
        assert spans and spans[0]["name"] == "gateway.request"
        assert any(s["name"] == "worker.exec" for s in spans[0]["children"])

    def test_none_threshold_disables_capture(self, tmp_path):
        config = self._config(tmp_path, None)
        with start_gateway(config) as served:
            with HttpClient("127.0.0.1", served.port) as c:
                submit_and_wait(c, spec_for(seed=28))
        assert config.runlog.runs(kind="slow") == []


class TestProfiler:
    def test_on_demand_profile_returns_flamegraph(self, client):
        captured = client.post("/v1/profile?seconds=0.3", {})
        assert captured.status == 200, captured.body
        assert captured.headers["content-type"].startswith("text/html")
        html = captured.body.decode()
        assert html.startswith("<!DOCTYPE html>")
        assert "Flamegraph" in html
        # The event loop thread is labeled, so its samples attribute.
        assert "gateway.loop" in html
        assert int(captured.headers["x-profile-samples"]) > 0

    def test_profile_rejects_bad_parameters(self, client):
        assert client.post("/v1/profile?seconds=nope", {}).status == 400
        assert client.post("/v1/profile?hz=nope", {}).status == 400
        # Out-of-range durations clamp instead of erroring (or hanging).
        quick = client.post("/v1/profile?seconds=0.0001", {})
        assert quick.status == 200

    def test_profile_requires_auth(self):
        config = GatewayConfig(workers=1, auth=TokenAuth(["hunter2"]))
        with start_gateway(config) as served:
            with HttpClient("127.0.0.1", served.port) as anon:
                assert anon.post("/v1/profile?seconds=0.1", {}).status == 401
            with HttpClient("127.0.0.1", served.port, token="hunter2") as authed:
                assert authed.post("/v1/profile?seconds=0.1", {}).status == 200

    def test_stats_and_metrics_expose_sampler(self, client):
        profile = client.get("/v1/stats").json()["profile"]
        assert profile["running"] is True
        assert profile["hz"] > 0
        assert profile["ticks"] > 0
        text = client.get("/metrics").body.decode()
        assert "repro_gateway_sampler_running 1" in text
        assert "repro_gateway_sampler_ticks_total" in text

    def test_serve_records_ship_worker_profile(self, served, client):
        """Every pipeline job's runlog record carries the worker-side
        profile windows that overlapped its run."""
        final = submit_and_wait(client, spec_for(seed=31, modules=9))
        assert final["status"] == "ok"
        records = served.gateway.config.runlog.runs(kind="serve")
        windows = records[-1].profile_windows
        assert windows, "worker shipped no profile windows"
        assert all(w["samples"] > 0 for w in windows)
        merged_stacks = {k for w in windows for k in w["stacks"]}
        # Worker job execution runs under tracer spans, so stacks root
        # in named spans rather than anonymous thread ids.
        assert any(k.startswith(("job", "worker")) for k in merged_stacks), (
            sorted(merged_stacks)[:5]
        )

    def test_profile_shipping_survives_worker_crash(self, served, client):
        """A replacement worker (fresh fork) restarts its own sampler and
        keeps shipping windows — the dead parent sampler must not leak."""
        pool = served.gateway.pool
        old_pid = pool.health()["workers"][0]["pid"]
        os.kill(old_pid, signal.SIGKILL)
        deadline = time.time() + 10
        while time.time() < deadline:
            health = pool.health()
            if health["alive"] == health["size"] and (
                health["workers"][0]["pid"] != old_pid
            ):
                break
            time.sleep(0.05)
        else:
            pytest.fail("worker was not replaced")
        submitted_at = time.time()
        final = submit_and_wait(client, spec_for(seed=32, modules=9))
        assert final["status"] == "ok"
        records = served.gateway.config.runlog.runs(kind="serve")
        windows = records[-1].profile_windows
        assert windows, "replacement worker shipped no profile windows"
        # Fresh child sampler: no window predates the replacement fork.
        assert all(w["ended_at"] >= submitted_at for w in windows)


class TestGatewayGuards:
    def test_auth_401_and_authorized_access(self):
        config = GatewayConfig(workers=1, auth=TokenAuth(["hunter2"]))
        with start_gateway(config) as served:
            with HttpClient("127.0.0.1", served.port) as anon:
                denied = anon.get("/v1/jobs")
                assert denied.status == 401
                assert "bearer" in denied.headers["www-authenticate"].lower()
                # Probes stay open during credential rotation.
                assert anon.get("/healthz").status == 200
                assert anon.get("/metrics").status == 200
            with HttpClient("127.0.0.1", served.port, token="hunter2") as authed:
                assert authed.get("/v1/jobs").status == 200
            with HttpClient("127.0.0.1", served.port, token="wrong") as bad:
                assert bad.get("/v1/jobs").status == 401

    def test_rate_limit_429_with_retry_after(self):
        config = GatewayConfig(
            workers=1, rate_limit=RateLimiter(rate=0.5, burst=2)
        )
        with start_gateway(config) as served:
            with HttpClient("127.0.0.1", served.port) as c:
                assert c.get("/v1/jobs").status == 200
                assert c.get("/v1/jobs").status == 200
                limited = c.get("/v1/jobs")
                assert limited.status == 429
                assert int(limited.headers["retry-after"]) >= 1
                # The unguarded endpoints are never limited.
                assert c.get("/healthz").status == 200

    def test_queue_full_503_and_inflight_dedup(self):
        pool = WorkerPool(1, worker=napping_worker)
        config = GatewayConfig(workers=1, max_queue=1)
        with start_gateway(config, pool=pool) as served:
            with HttpClient("127.0.0.1", served.port) as c:
                first = c.post("/v1/jobs", spec_for(seed=6).to_dict())
                assert first.status == 202
                # Same digest while in flight: coalesced, not re-queued.
                dup = c.post("/v1/jobs", spec_for(seed=6).to_dict())
                assert dup.status == 202
                assert dup.json()["deduped"] is True
                assert dup.json()["id"] == first.json()["id"]
                second = c.post("/v1/jobs", spec_for(seed=7).to_dict())
                assert second.status == 202
                full = c.post("/v1/jobs", spec_for(seed=8).to_dict())
                assert full.status == 503
                assert "retry-after" in full.headers
            served.stop(drain=False)

    def test_crash_retry_through_gateway(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_DIR", str(tmp_path))
        pool = WorkerPool(1, worker=crash_once_worker, poll_interval=0.05)
        with start_gateway(GatewayConfig(workers=1), pool=pool) as served:
            with HttpClient("127.0.0.1", served.port) as c:
                posted = c.post("/v1/jobs", spec_for(seed=9).to_dict())
                final = c.get(f"/v1/jobs/{posted.json()['id']}?wait=30").json()
                assert final["status"] == "ok"
                assert final["attempts"] == 2
                health = c.get("/healthz").json()
                assert health["pool"]["worker_restarts"] >= 1


class TestGatewayDrain:
    def test_draining_gateway_rejects_new_jobs(self):
        with start_gateway(GatewayConfig(workers=1)) as served:
            served.gateway.begin_drain()
            with HttpClient("127.0.0.1", served.port) as c:
                rejected = c.post("/v1/jobs", spec_for(seed=10).to_dict())
                assert rejected.status == 503
                health = c.get("/healthz").json()
                assert health["status"] == "draining"

    def test_sigterm_drains_gracefully(self, tmp_path):
        """End-to-end: real ``artwork-serve`` process, real SIGTERM."""
        runlog = tmp_path / "runlog.jsonl"
        code = (
            "import sys; from repro.cli import artwork_serve_main; "
            f"sys.exit(artwork_serve_main(['--port','0','--workers','1',"
            f"'--runlog',{str(runlog)!r}]))"
        )
        env = {**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)}
        proc = subprocess.Popen(
            [sys.executable, "-c", code],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
        )
        try:
            banner = proc.stdout.readline()
            assert "listening" in banner, banner
            port = int(banner.rsplit(":", 1)[1].split()[0])
            with HttpClient("127.0.0.1", port) as c:
                final = submit_and_wait(c, spec_for(seed=11))
                assert final["status"] == "ok"
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, out
        assert "draining" in out and "stopped" in out
        assert [json.loads(line)["kind"] for line in runlog.read_text().splitlines()] == ["serve"]


# -- protocol odds and ends ------------------------------------------------


class TestProtocol:
    def test_ws_accept_key_rfc_vector(self):
        # The worked example from RFC 6455 §1.3.
        assert (
            ws_accept_key("dGhlIHNhbXBsZSBub25jZQ==")
            == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
        )

    def test_ws_frame_sizes(self):
        for size in (0, 1, 125, 126, 65535, 65536):
            frame = ws_encode_frame(b"x" * size)
            assert frame[0] == 0x80 | OP_TEXT
            assert len(frame) >= size + 2
        close = ws_encode_frame(b"", opcode=OP_CLOSE)
        assert close[0] == 0x80 | OP_CLOSE

    def test_http_413_on_oversized_body(self, served):
        # The server rejects on the Content-Length header alone, before
        # the body arrives — so only the head is sent here.
        import socket

        with socket.create_connection(("127.0.0.1", served.port), timeout=10) as sock:
            declared = served.gateway.config.max_body + 1
            sock.sendall(
                b"POST /v1/jobs HTTP/1.1\r\nhost: t\r\n"
                b"content-length: " + str(declared).encode() + b"\r\n\r\n"
            )
            status = sock.recv(4096).split(b" ")[1]
            assert status == b"413"
