"""Tests for the ``repro.obs`` layer: span tracer, counters registry,
structured logging, CLI flags and the telemetry threaded through the
pipeline and the batch scheduler."""

import json
import logging

import pytest

from repro.core.generator import generate
from repro.core.netlist import Network
from repro.obs import (
    Registry,
    Tracer,
    get_registry,
    set_registry,
    set_tracer,
    setup_logging,
    span,
)
from repro.obs.trace import NULL_SPAN, Span
from repro.route.eureka import (
    FailureReason,
    NetFailure,
    RoutingReport,
)
from repro.workloads.examples import example1_string


@pytest.fixture
def tracer():
    """A fresh enabled tracer installed as the global one."""
    t = Tracer(enabled=True)
    previous = set_tracer(t)
    yield t
    set_tracer(previous)


@pytest.fixture
def registry():
    r = Registry()
    previous = set_registry(r)
    yield r
    set_registry(previous)


class TestSpans:
    def test_nesting(self, tracer):
        with span("outer"):
            with span("inner.a"):
                pass
            with span("inner.b", k=1):
                pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner.a", "inner.b"]
        assert root.children[1].attrs == {"k": 1}
        assert root.duration >= sum(c.duration for c in root.children)

    def test_disabled_tracer_is_noop(self):
        t = Tracer(enabled=False)
        previous = set_tracer(t)
        try:
            handle = span("anything")
            assert handle is NULL_SPAN
            with handle as s:
                s.set(ignored=True)
            assert t.roots == []
        finally:
            set_tracer(previous)

    def test_exception_marks_span(self, tracer):
        with pytest.raises(ValueError):
            with span("boom"):
                raise ValueError("x")
        assert tracer.roots[0].attrs["error"] == "ValueError"

    def test_serialization_round_trip(self, tracer):
        with span("root", net="n1"):
            with span("child"):
                pass
        exported = tracer.export_roots()
        rebuilt = Span.from_dict(exported[0])
        assert rebuilt.name == "root"
        assert rebuilt.attrs == {"net": "n1"}
        assert [c.name for c in rebuilt.children] == ["child"]
        assert rebuilt.duration == pytest.approx(
            tracer.roots[0].duration, abs=1e-5
        )

    def test_adopt_reanchors_foreign_subtree(self, tracer):
        foreign = {
            "name": "job",
            "start": 1234.5,
            "duration": 0.25,
            "children": [{"name": "step", "start": 1234.6, "duration": 0.1}],
        }
        adopted = tracer.adopt(foreign, label="job:x")
        assert adopted.name == "job:x"
        # Re-anchored onto this tracer's timebase, child offset preserved.
        assert 0 <= adopted.start <= adopted.end
        child = adopted.children[0]
        assert child.start - adopted.start == pytest.approx(0.1, abs=1e-6)
        assert adopted in tracer.roots

    def test_chrome_trace_export(self, tracer, tmp_path):
        with span("a"):
            with span("b"):
                pass
        out = tracer.write_chrome_trace(tmp_path / "t.json")
        data = json.loads(out.read_text())
        events = data["traceEvents"]
        assert {e["name"] for e in events} == {"a", "b"}
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 0
            assert event["ts"] >= 0

    def test_profile_tree_aggregates_siblings(self, tracer):
        with span("run"):
            for _ in range(3):
                with span("net"):
                    pass
        tree = tracer.profile_tree()
        assert "run" in tree
        assert "×3" in tree
        assert tree.index("run") < tree.index("net")


class TestRegistry:
    def test_inc_and_observe(self, registry):
        registry.inc("x")
        registry.inc("x", 4)
        registry.observe("h", 2.0)
        registry.observe("h", 4.0)
        assert registry.get("x") == 5
        hist = registry.histogram("h")
        assert hist.count == 2 and hist.mean == 3.0
        assert hist.min == 2.0 and hist.max == 4.0

    def test_snapshot_merge(self):
        a, b = Registry(), Registry()
        a.inc("n", 2)
        a.observe("h", 1.0)
        b.inc("n", 3)
        b.inc("only_b")
        b.observe("h", 5.0)
        a.merge(b.snapshot())
        assert a.get("n") == 5
        assert a.get("only_b") == 1
        hist = a.histogram("h")
        assert hist.count == 2 and hist.min == 1.0 and hist.max == 5.0

    def test_report_text(self, registry):
        registry.inc("events", 7)
        registry.observe("lat", 1.5)
        text = registry.report()
        assert "events" in text and "7" in text
        assert "count=1" in text


class TestPipelineTelemetry:
    def test_generate_emits_stage_spans(self, tracer, registry):
        generate(example1_string())
        names = {s.name for root in tracer.roots for s in root.walk()}
        assert {
            "artwork.generate",
            "pablo.place",
            "pablo.partitioning",
            "pablo.box_formation",
            "pablo.module_placement",
            "pablo.box_placement",
            "pablo.partition_placement",
            "pablo.terminal_placement",
            "eureka.route",
            "eureka.first_pass",
            "eureka.net",
        } <= names
        assert registry.get("route.nets") == 6
        assert registry.get("route.expansions") > 0

    def test_profile_root_matches_timing_row(self, tracer, registry):
        result = generate(example1_string())
        total = tracer.total_seconds()
        # The root span covers validate+place+route+metrics; the timing
        # row only place+route — they must agree within 5%.
        assert total == pytest.approx(
            result.placement.seconds + result.routing.seconds, rel=0.05
        )

    def test_tracing_disabled_records_nothing(self, registry):
        t = Tracer(enabled=False)
        previous = set_tracer(t)
        try:
            generate(example1_string())
        finally:
            set_tracer(previous)
        assert t.roots == []
        # Counters stay on regardless: they are cheap and always useful.
        assert registry.get("route.nets") == 6


class TestRoutingReportFailures:
    def test_success_rate_zero_nets(self):
        assert RoutingReport().success_rate == 1.0

    def test_success_rate_all_failed(self):
        report = RoutingReport(
            nets_total=2,
            nets_failed=2,
            failed_nets=[
                NetFailure("a", FailureReason.RETRY_EXHAUSTED),
                NetFailure("b", FailureReason.NO_INITIAL_PATH),
            ],
        )
        assert report.success_rate == 0.0
        assert report.failure_reasons == {
            "a": FailureReason.RETRY_EXHAUSTED,
            "b": FailureReason.NO_INITIAL_PATH,
        }

    def test_net_failure_is_still_a_name(self):
        failure = NetFailure("n7", FailureReason.EXPANSION_EXHAUSTED)
        assert failure == "n7"
        assert "n7" in [failure]
        assert json.loads(json.dumps([failure])) == ["n7"]
        assert failure.reason is FailureReason.EXPANSION_EXHAUSTED

    def test_impossible_net_carries_reason(self):
        from repro.core.diagram import Diagram
        from repro.core.geometry import Point, Side
        from repro.route.eureka import RouterOptions, route_diagram
        from repro.workloads.stdlib import make_module

        net = Network(name="boxed")
        net.add_module(make_module("a", 2, 2, [("y", "out", 2, 1)]))
        net.add_module(make_module("b", 2, 2, [("x", "in", 0, 1)]))
        net.add_module(make_module("wall", 2, 30, [("w", "in", 0, 15)]))
        net.connect("n", "a.y", "b.x")
        net.connect("nw", "wall.w", "a.y")
        d = Diagram(net)
        d.place_module("a", Point(0, 14))
        d.place_module("b", Point(20, 14))
        d.place_module("wall", Point(10, 0))
        report = route_diagram(
            d, RouterOptions(fixed_sides=frozenset(Side), margin=0)
        )
        assert "n" in report.failed_nets
        failure = next(f for f in report.failed_nets if f == "n")
        assert failure.reason is FailureReason.RETRY_EXHAUSTED
        assert "n" in report.retried_nets
        assert "n" not in report.recovered_nets
        # Without the retry pass the claims get the blame instead.
        d2 = Diagram(net)
        d2.place_module("a", Point(0, 14))
        d2.place_module("b", Point(20, 14))
        d2.place_module("wall", Point(10, 0))
        report2 = route_diagram(
            d2,
            RouterOptions(
                fixed_sides=frozenset(Side), margin=0, retry_failed=False
            ),
        )
        reasons = set(report2.failure_reasons.values())
        assert reasons <= {
            FailureReason.CLAIM_BLOCKED,
            FailureReason.NO_INITIAL_PATH,
            FailureReason.EXPANSION_EXHAUSTED,
        }
        assert report2.retried_nets == []


class TestSchedulerTelemetry:
    def test_counter_aggregation_across_workers(self, registry, tmp_path):
        from repro.service import BatchScheduler, JobSpec, ResultCache
        from repro.workloads import batch_networks

        nets = batch_networks(kind="random", count=4, modules=5, seed=91)
        specs = [JobSpec.from_network(n) for n in nets]
        cache = ResultCache(tmp_path / "cache")
        scheduler = BatchScheduler(max_workers=2, cache=cache)
        outcomes = scheduler.run(specs)
        assert all(o.ok for o in outcomes)

        nets_total = sum(o.metrics.get("nets", 0) for o in outcomes)
        snap = scheduler.counters.snapshot()["counters"]
        # Worker-side routing counters aggregate across the pool…
        assert snap["route.nets"] == nets_total
        assert snap["route.runs"] == len(specs)
        assert snap["route.expansions"] > 0
        assert snap["service.jobs"] == len(specs)
        assert snap["service.cache_misses"] == len(specs)
        # …and also merge into the process-global registry.
        assert get_registry().get("route.nets") == nets_total

        # A warm pass does no routing work: only service counters move.
        warm = BatchScheduler(max_workers=2, cache=cache)
        warm_outcomes = warm.run(specs)
        assert all(o.from_cache for o in warm_outcomes)
        warm_snap = warm.counters.snapshot()["counters"]
        assert warm_snap["service.cache_hits"] == len(specs)
        assert warm_snap.get("route.nets", 0) == 0

    def test_worker_spans_reparented_into_parent_trace(
        self, tracer, registry, tmp_path
    ):
        from repro.service import BatchScheduler, JobSpec, ResultCache
        from repro.workloads import batch_networks

        nets = batch_networks(kind="random", count=2, modules=5, seed=17)
        specs = [JobSpec.from_network(n) for n in nets]
        scheduler = BatchScheduler(max_workers=2, cache=ResultCache(tmp_path / "c"))
        scheduler.run(specs)

        roots = [r.name for r in tracer.roots]
        assert "batch.run" in roots
        batch_root = tracer.roots[roots.index("batch.run")]
        job_spans = [c for c in batch_root.children if c.name.startswith("job:")]
        assert {c.name for c in job_spans} == {f"job:{s.name}" for s in specs}
        # The worker subtree came along and sits inside the parent span.
        nested = {s.name for c in job_spans for s in c.walk()}
        assert "eureka.route" in nested and "pablo.place" in nested

    def test_cached_payload_carries_no_transient_keys(self, registry, tmp_path):
        from repro.service import BatchScheduler, JobSpec, ResultCache
        from repro.workloads import batch_networks

        nets = batch_networks(kind="random", count=1, modules=5, seed=23)
        specs = [JobSpec.from_network(n) for n in nets]
        cache = ResultCache(tmp_path / "cache")
        BatchScheduler(max_workers=1, cache=cache).run(specs)
        cached = cache.get(specs[0])
        assert cached is not None
        assert "trace" not in cached and "counters" not in cached
        assert "failure_reasons" in cached


class TestLogging:
    def test_structured_fields_rendered(self, capsys):
        import io

        stream = io.StringIO()
        logger = setup_logging("info", stream=stream)
        logger.info("hello", extra={"fields": {"nets": 3}})
        line = stream.getvalue().strip()
        assert "INFO" in line and "repro" in line
        assert "hello" in line and "nets=3" in line

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError):
            setup_logging("loud")

    def test_level_filters(self):
        import io

        stream = io.StringIO()
        logger = setup_logging("error", stream=stream)
        logger.warning("quiet")
        assert stream.getvalue() == ""
        logger.error("loud")
        assert "loud" in stream.getvalue()


class TestCliObservability:
    @pytest.fixture
    def network_files(self, tmp_path):
        from repro.formats.netlist_files import save_network_files

        return save_network_files(example1_string(), tmp_path)

    def _net_args(self, paths):
        return [str(paths["netlist"]), str(paths["call"]), str(paths["io"])]

    def test_artwork_trace_and_profile(
        self, tmp_path, network_files, capsys, registry
    ):
        from repro.cli import artwork_main

        trace_file = tmp_path / "run_trace.json"
        rc = artwork_main(
            self._net_args(network_files)
            + [
                "-o",
                str(tmp_path / "a.svg"),
                "--trace",
                str(trace_file),
                "--profile",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "artwork.generate" in out  # profile tree
        assert "route.nets" in out  # counter report
        data = json.loads(trace_file.read_text())
        names = {e["name"] for e in data["traceEvents"]}
        assert {"artwork.generate", "pablo.partitioning", "eureka.net"} <= names

    def test_pablo_and_eureka_accept_obs_flags(
        self, tmp_path, network_files, capsys, registry
    ):
        from repro.cli import eureka_main, pablo_main

        placed = tmp_path / "placed.es"
        rc = pablo_main(
            self._net_args(network_files)
            + ["-p", "7", "-b", "7", "-o", str(placed), "--profile"]
        )
        assert rc == 0
        assert "pablo.place" in capsys.readouterr().out
        trace_file = tmp_path / "route_trace.json"
        rc = eureka_main(
            [str(placed)]
            + self._net_args(network_files)
            + ["-o", str(tmp_path / "r.es"), "--trace", str(trace_file)]
        )
        assert rc == 0
        names = {
            e["name"]
            for e in json.loads(trace_file.read_text())["traceEvents"]
        }
        assert "eureka.route" in names and "eureka.net" in names

    def test_batch_report_includes_cache_block(self, tmp_path, registry):
        from repro.cli import artwork_batch_main

        manifest = tmp_path / "m.json"
        manifest.write_text(
            json.dumps(
                {"workload": {"kind": "random", "count": 2, "modules": 5, "seed": 3}}
            )
        )
        report_file = tmp_path / "report.json"
        rc = artwork_batch_main(
            [
                str(manifest),
                "-o",
                str(tmp_path / "out"),
                "--workers",
                "1",
                "--no-svg",
                "-q",
                "--report",
                str(report_file),
            ]
        )
        assert rc == 0
        report = json.loads(report_file.read_text())
        cache_block = report["summary"]["cache"]
        for key in ("hits", "misses", "stores", "evictions", "hit_rate", "entries"):
            assert key in cache_block
        assert cache_block["stores"] == 2
        assert report["summary"]["counters"]["service.jobs"] == 2

    def test_log_level_flag_everywhere(self, tmp_path, network_files):
        from repro.cli import artwork_main, quinto_main

        rc = artwork_main(
            self._net_args(network_files)
            + ["-o", str(tmp_path / "x.svg"), "--log-level", "error"]
        )
        assert rc == 0
        assert logging.getLogger("repro").level == logging.ERROR
        desc = tmp_path / "m.desc"
        desc.write_text("module m 40 30\nin a 0 10\nout y 40 10\n")
        rc = quinto_main(
            [str(desc), "--library", str(tmp_path / "lib"), "--log-level", "debug"]
        )
        assert rc == 0
        assert logging.getLogger("repro").level == logging.DEBUG


class TestHistogramPercentiles:
    def test_exact_below_reservoir_bound(self):
        from repro.obs.counters import Histogram

        hist = Histogram()
        for v in range(1, 101):
            hist.observe(float(v))
        assert hist.percentile(0.50) == 50.0
        assert hist.percentile(0.95) == 95.0
        assert hist.percentile(0.99) == 99.0
        snap = hist.as_dict()
        assert snap["p50"] == 50.0 and snap["p95"] == 95.0 and snap["p99"] == 99.0
        assert len(snap["samples"]) == 100

    def test_percentiles_survive_merge(self):
        from repro.obs.counters import Histogram

        a, b = Histogram(), Histogram()
        for v in range(1, 51):
            a.observe(float(v))
        for v in range(51, 101):
            b.observe(float(v))
        a.merge(b.as_dict())
        # 100 samples total, still under the reservoir bound: exact.
        assert a.count == 100
        assert a.percentile(0.50) == 50.0
        assert a.percentile(0.95) == 95.0

    def test_reservoir_bounds_memory(self):
        from repro.obs.counters import RESERVOIR_SIZE, Histogram

        hist = Histogram()
        for v in range(10_000):
            hist.observe(float(v))
        assert len(hist.samples) == RESERVOIR_SIZE
        assert hist.count == 10_000
        # The estimate stays in the observed range and roughly central.
        assert 2_000 < hist.percentile(0.50) < 8_000

    def test_empty_histogram_snapshot(self):
        from repro.obs.counters import Histogram

        snap = Histogram().as_dict()
        assert snap["count"] == 0
        assert snap["p50"] == 0.0 and snap["p99"] == 0.0

    def test_report_shows_percentiles(self, registry):
        registry.observe("lat", 1.0)
        registry.observe("lat", 3.0)
        text = registry.report()
        assert "p50=" in text and "p95=" in text and "p99=" in text


class TestCongestionMap:
    def _crossing_plane(self):
        from repro.core.geometry import Point, Rect
        from repro.route.plane import Plane

        plane = Plane(bounds=Rect(0, 0, 10, 10))
        plane.add_net_path("h", [Point(0, 5), Point(10, 5)])
        plane.add_net_path("v", [Point(5, 0), Point(5, 10)])
        return plane

    def test_totals_match_live_index(self):
        from repro.obs.congestion import CongestionMap

        plane = self._crossing_plane()
        cmap = CongestionMap.from_plane(plane)
        assert cmap.occupancy_total == sum(plane.index.occ.values())
        assert cmap.cells[(5, 5)] == (2, 1)  # the crossing point
        assert cmap.crossover_total == 1
        assert cmap.max_occupancy == 2
        assert cmap.hotspots(1) == [(5, 5, 2, 1)]
        # Track totals: row y=5 holds the horizontal wire + the crossing.
        assert cmap.row_totals()[5] == 12
        assert cmap.col_totals()[5] == 12

    def test_dict_round_trip(self):
        from repro.obs.congestion import CongestionMap

        cmap = CongestionMap.from_plane(self._crossing_plane())
        data = cmap.to_dict()
        again = CongestionMap.from_dict(json.loads(json.dumps(data)))
        assert again.cells == cmap.cells
        assert (again.x, again.y, again.w, again.h) == (cmap.x, cmap.y, cmap.w, cmap.h)
        assert data["crossover_total"] == again.crossover_total

    def test_heat_cells_normalized(self):
        from repro.obs.congestion import CongestionMap

        cells = CongestionMap.from_plane(self._crossing_plane()).heat_cells()
        assert cells
        assert all(0.0 < i <= 1.0 for _, _, i in cells)
        by_point = {(x, y): i for x, y, i in cells}
        assert by_point[(5, 5)] == 1.0  # the peak saturates

    def test_svg_marks_crossovers(self):
        from repro.obs.congestion import CongestionMap

        svg = CongestionMap.from_plane(self._crossing_plane()).to_svg()
        assert svg.startswith("<svg")
        assert "occ=2 cross=1" in svg
        assert "<circle" in svg  # crossover ring

    def test_empty_map(self):
        from repro.obs.congestion import CongestionMap

        cmap = CongestionMap()
        assert cmap.occupancy_total == 0
        assert cmap.max_occupancy == 0
        assert cmap.heat_cells() == []
        assert "<svg" in cmap.to_svg()

    def test_routed_report_agrees_with_metrics(self, tracer, registry):
        from repro.obs.congestion import CongestionMap

        result = generate(example1_string())
        cmap = CongestionMap.from_dict(result.routing.congestion)
        assert cmap.crossover_total == result.metrics.as_row()["crossovers"]
        assert cmap.occupancy_total > 0 and cmap.max_occupancy >= 1


class TestTraceFileHandling:
    @pytest.fixture
    def network_files(self, tmp_path):
        from repro.formats.netlist_files import save_network_files

        return save_network_files(example1_string(), tmp_path)

    def _net_args(self, paths):
        return [str(paths["netlist"]), str(paths["call"]), str(paths["io"])]

    def test_trace_creates_parent_dirs(self, tmp_path, network_files, registry):
        from repro.cli import pablo_main

        trace_file = tmp_path / "deep" / "nested" / "trace.json"
        rc = pablo_main(
            self._net_args(network_files)
            + ["-o", str(tmp_path / "p.es"), "--trace", str(trace_file)]
        )
        assert rc == 0
        assert trace_file.exists()

    def test_trace_written_when_input_is_bad(self, tmp_path, capsys, registry):
        from repro.cli import pablo_main

        trace_file = tmp_path / "aborted" / "trace.json"
        rc = pablo_main(
            [
                str(tmp_path / "missing.net"),
                str(tmp_path / "missing.call"),
                "--trace",
                str(trace_file),
            ]
        )
        assert rc == 2  # usage error, not a traceback...
        assert "error:" in capsys.readouterr().err
        assert trace_file.exists()  # ...and the partial trace survived

    def test_trace_written_when_pipeline_aborts(
        self, tmp_path, network_files, capsys, monkeypatch, registry
    ):
        import repro.cli as cli_mod
        from repro.core.diagram import DiagramError

        placed = tmp_path / "placed.es"
        assert (
            cli_mod.pablo_main(
                self._net_args(network_files) + ["-p", "7", "-b", "7", "-o", str(placed)]
            )
            == 0
        )

        def explode(*_args, **_kwargs):
            raise DiagramError("mid-route inconsistency")

        monkeypatch.setattr(cli_mod, "route_diagram", explode)
        trace_file = tmp_path / "abort2" / "trace.json"
        rc = cli_mod.eureka_main(
            [str(placed)]
            + self._net_args(network_files)
            + ["-o", str(tmp_path / "r.es"), "--trace", str(trace_file)]
        )
        assert rc == 2
        assert "mid-route inconsistency" in capsys.readouterr().err
        data = json.loads(trace_file.read_text())
        assert "traceEvents" in data  # the trace file was still flushed

    def test_unwritable_trace_is_usage_error(self, tmp_path, network_files, capsys):
        from repro.cli import pablo_main

        blocker = tmp_path / "blocker"
        blocker.write_text("a file, not a directory")
        rc = pablo_main(
            self._net_args(network_files)
            + ["-o", str(tmp_path / "p.es"), "--trace", str(blocker / "t.json")]
        )
        assert rc == 2
        assert "cannot write trace" in capsys.readouterr().err


class TestPrometheusExposition:
    def test_counters_and_histograms_render(self):
        from repro.obs.prometheus import render_prometheus

        reg = Registry()
        reg.inc("service.jobs", 3)
        for v in (0.01, 0.02, 0.03, 0.04):
            reg.observe("service.job_wall_s", v)
        text = render_prometheus(reg.snapshot())
        assert "# HELP repro_service_jobs " in text
        assert "# TYPE repro_service_jobs counter" in text
        assert "repro_service_jobs 3" in text
        assert "# TYPE repro_service_job_wall_s histogram" in text
        assert 'repro_service_job_wall_s{quantile="0.5"}' in text
        assert 'repro_service_job_wall_s{quantile="0.95"}' in text
        assert 'repro_service_job_wall_s{quantile="0.99"}' in text
        assert 'repro_service_job_wall_s_bucket{le="+Inf"} 4' in text
        assert "repro_service_job_wall_s_count 4" in text
        assert "repro_service_job_wall_s_sum 0.1" in text
        assert text.endswith("\n")

    def test_histogram_buckets_cumulative_and_monotone(self):
        from repro.obs.prometheus import render_prometheus

        reg = Registry()
        for v in (0.002, 0.02, 0.2, 2.0, 20.0):
            reg.observe("h", v)
        text = render_prometheus(reg.snapshot())
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_h_bucket{")
        ]
        assert counts, "no bucket lines rendered"
        assert counts == sorted(counts), "bucket counts must be cumulative"
        assert counts[-1] == 5, "+Inf bucket must equal the total count"
        # All five observations sit at or below distinct default bounds.
        assert 'repro_h_bucket{le="0.0025"} 1' in text
        assert 'repro_h_bucket{le="0.025"} 2' in text

    def test_labeled_series(self):
        from repro.obs.prometheus import render_prometheus

        text = render_prometheus(
            {"counters": {}, "histograms": {}},
            series={
                "gateway.request_qps": [
                    ({"endpoint": "POST /v1/jobs", "window": "1m"}, 0.25),
                    ({"endpoint": "GET /healthz", "window": "5m"}, 1.5),
                ],
                "gateway.empty": [],
            },
        )
        assert "# TYPE repro_gateway_request_qps gauge" in text
        assert 'repro_gateway_request_qps{endpoint="POST /v1/jobs",window="1m"} 0.25' in text
        assert 'repro_gateway_request_qps{endpoint="GET /healthz",window="5m"} 1.5' in text
        assert "repro_gateway_empty" not in text

    def test_label_values_escaped(self):
        from repro.obs.prometheus import render_prometheus

        text = render_prometheus(
            {"counters": {}, "histograms": {}},
            series={"g": [({"client": 'tok"en\\x\n'}, 1)]},
        )
        assert 'repro_g{client="tok\\"en\\\\x\\n"} 1' in text

    def test_gauges_and_empty_snapshot(self):
        from repro.obs.prometheus import render_prometheus

        text = render_prometheus(
            {"counters": {}, "histograms": {}},
            gauges={"gateway.queue_depth": 2, "gateway.draining": 0},
        )
        assert "# TYPE repro_gateway_queue_depth gauge" in text
        assert "repro_gateway_queue_depth 2" in text
        assert "repro_gateway_draining 0" in text

    def test_name_mangling(self):
        from repro.obs.prometheus import metric_name

        assert metric_name("service.job_wall_s") == "repro_service_job_wall_s"
        assert metric_name("weird-name (x)") == "repro_weird_name__x_"
        assert metric_name("9lives") == "repro__9lives"
        assert metric_name("a.b", prefix="") == "a_b"

    def test_quantiles_match_reservoir(self):
        from repro.obs.prometheus import render_prometheus

        reg = Registry()
        for v in range(1, 101):
            reg.observe("h", float(v))
        snap = reg.snapshot()
        text = render_prometheus(snap)
        p95 = snap["histograms"]["h"]["p95"]
        assert f'repro_h{{quantile="0.95"}} {p95!r}' in text
