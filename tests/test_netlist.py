"""Unit tests for the network data model."""

import pytest

from repro.core.geometry import Point, Side
from repro.core.netlist import (
    Module,
    NetlistError,
    Network,
    Pin,
    TermType,
)
from repro.workloads.stdlib import instantiate, make_module


class TestTermType:
    def test_parse(self):
        assert TermType.parse("in") is TermType.IN
        assert TermType.parse(" OUT ") is TermType.OUT
        assert TermType.parse("inout") is TermType.INOUT
        with pytest.raises(NetlistError):
            TermType.parse("sideways")

    def test_drive_listen(self):
        assert TermType.OUT.drives and not TermType.OUT.listens
        assert TermType.IN.listens and not TermType.IN.drives
        assert TermType.INOUT.drives and TermType.INOUT.listens


class TestModule:
    def test_terminal_must_be_on_outline(self):
        m = Module("m", 4, 4)
        with pytest.raises(NetlistError):
            m.add_terminal("bad", TermType.IN, Point(2, 2))
        with pytest.raises(NetlistError):
            m.add_terminal("bad", TermType.IN, Point(9, 0))

    def test_duplicate_terminal(self):
        m = Module("m", 4, 4)
        m.add_terminal("a", TermType.IN, Point(0, 1))
        with pytest.raises(NetlistError):
            m.add_terminal("a", TermType.IN, Point(0, 2))

    def test_non_positive_size(self):
        with pytest.raises(NetlistError):
            Module("m", 0, 4)

    def test_side(self):
        m = make_module(
            "m", 4, 4, [("l", "in", 0, 2), ("u", "out", 2, 4), ("d", "in", 2, 0)]
        )
        assert m.side("l") is Side.LEFT
        assert m.side("u") is Side.UP
        assert m.side("d") is Side.DOWN
        assert [t.name for t in m.terminals_on(Side.LEFT)] == ["l"]

    def test_template_defaults_to_name(self):
        assert Module("alone", 2, 2).template == "alone"


class TestNetworkConstruction:
    def test_duplicate_module(self):
        net = Network()
        net.add_module(instantiate("buf", "u"))
        with pytest.raises(NetlistError):
            net.add_module(instantiate("inv", "u"))

    def test_connect_string_forms(self):
        net = Network()
        net.add_module(instantiate("buf", "u"))
        net.add_system_terminal("t", TermType.IN)
        n = net.connect("n", "u.a", "t", ("u", "y"))
        assert Pin("u", "a") in n.pins
        assert Pin(None, "t") in n.pins
        assert Pin("u", "y") in n.pins

    def test_connect_rejects_unknown(self):
        net = Network()
        net.add_module(instantiate("buf", "u"))
        with pytest.raises(NetlistError):
            net.connect("n", "nosuch.a")
        with pytest.raises(NetlistError):
            net.connect("n", "u.nosuch")
        with pytest.raises(NetlistError):
            net.connect("n", "ghost_terminal")

    def test_connect_is_idempotent_per_pin(self):
        net = Network()
        net.add_module(instantiate("buf", "u"))
        net.connect("n", "u.a")
        net.connect("n", "u.a")
        assert len(net.nets["n"].pins) == 1


class TestNetworkQueries:
    @pytest.fixture
    def trio(self) -> Network:
        net = Network()
        for name in ("a", "b", "c"):
            net.add_module(instantiate("and2", name))
        net.connect("n0", "a.y", "b.a")
        net.connect("n1", "a.a", "b.b")  # a and b share two nets
        net.connect("n2", "b.y", "c.a")
        return net

    def test_connected(self, trio):
        assert trio.connected("a", "b", "n0")
        assert not trio.connected("a", "c", "n0")

    def test_connection_count(self, trio):
        assert trio.connection_count("a", "b") == 2
        assert trio.connection_count("b", "c") == 1
        assert trio.connection_count("a", "c") == 0
        assert trio.connection_count("a", "a") == 0

    def test_connections_to_set(self, trio):
        assert trio.connections_to_set("a", {"b", "c"}) == 2
        assert trio.connections_to_set("c", {"a"}) == 0
        assert trio.connections_to_set("b", {"a", "c"}) == 3

    def test_external_connections(self, trio):
        assert trio.external_connections({"a", "b"}) == 1  # only n2 leaves
        assert trio.external_connections({"a", "b", "c"}) == 0
        assert trio.external_connections({"b"}) == 3

    def test_external_counts_system_pins(self):
        net = Network()
        net.add_module(instantiate("buf", "u"))
        net.add_system_terminal("t", TermType.IN)
        net.connect("n", "u.a", "t")
        assert net.external_connections({"u"}) == 1

    def test_net_of_and_pins_of_module(self, trio):
        assert trio.net_of(Pin("a", "y")).name == "n0"
        assert trio.net_of(Pin("c", "y")) is None
        assert trio.nets_of_module("b") == {"n0", "n1", "n2"}

    def test_pin_type(self, trio):
        assert trio.pin_type(Pin("a", "y")) is TermType.OUT
        trio.add_system_terminal("s", TermType.INOUT)
        assert trio.pin_type(Pin(None, "s")) is TermType.INOUT


class TestValidation:
    def test_single_pin_net_rejected(self):
        net = Network()
        net.add_module(instantiate("buf", "u"))
        net.connect("n", "u.a")
        with pytest.raises(NetlistError, match="fewer than two"):
            net.validate()

    def test_pin_on_two_nets_rejected(self):
        net = Network()
        net.add_module(instantiate("buf", "u"))
        net.add_module(instantiate("buf", "v"))
        net.add_module(instantiate("buf", "w"))
        net.connect("n0", "u.a", "v.y")
        net.connect("n1", "u.a", "w.y")
        with pytest.raises(NetlistError, match="both net"):
            net.validate()

    def test_stats(self, two_buffer_network):
        assert two_buffer_network.stats == {
            "modules": 2,
            "nets": 3,
            "system_terminals": 2,
            "pins": 6,
        }
