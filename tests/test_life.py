"""Tests for the LIFE workload and its simulation (example 3)."""

import numpy as np
import pytest

from repro.core.validate import placement_violations
from repro.sim.life_sim import LifeMachine
from repro.sim.logic import SimulationError
from repro.workloads.life import (
    GLIDER,
    NEIGHBOUR_OFFSETS,
    hand_placement,
    life_network,
    reference_life_run,
    reference_life_step,
)


class TestNetwork:
    def test_paper_counts(self):
        net = life_network()
        assert len(net.modules) == 27
        assert len(net.nets) == 222
        assert len(net.system_terminals) == 4

    def test_neighbour_nets_are_point_to_point(self):
        net = life_network()
        nb = [n for n in net.nets.values() if n.name.startswith("nb_")]
        assert len(nb) == 200
        assert all(len(n.pins) == 2 for n in nb)

    def test_offsets_are_symmetric(self):
        for k, (dr, dc) in enumerate(NEIGHBOUR_OFFSETS):
            assert NEIGHBOUR_OFFSETS[7 - k] == (-dr, -dc)

    def test_wraparound(self):
        net = life_network()
        # cell (0,0)'s north-west neighbour is cell (4,4) on the torus.
        n = net.nets["nb_0_0_0"]
        assert {p.module for p in n.pins} == {"cell_0_0", "cell_4_4"}

    def test_control_nets_multipoint(self):
        net = life_network()
        for r in range(5):
            assert len(net.nets[f"rowclk{r}"].pins) == 6
            assert len(net.nets[f"load{r}"].pins) == 6
        for c in range(5):
            assert len(net.nets[f"data{c}"].pins) == 6


class TestHandPlacement:
    def test_legal_and_complete(self):
        d = hand_placement()
        assert d.is_placed
        assert placement_violations(d) == []

    def test_grid_structure(self):
        d = hand_placement(pitch=20)
        # Row 0 sits above row 4 (north is up).
        assert (
            d.placements["cell_0_0"].position.y
            > d.placements["cell_4_0"].position.y
        )
        assert (
            d.placements["cell_0_0"].position.x
            < d.placements["cell_0_1"].position.x
        )
        # The controller column is left of the array.
        assert d.placements["ctl"].position.x < d.placements["cell_0_0"].position.x


class TestReferenceModel:
    def test_block_is_still(self):
        board = np.zeros((5, 5), dtype=np.int8)
        board[1:3, 1:3] = 1  # block
        assert np.array_equal(reference_life_step(board), board)

    def test_blinker_oscillates(self):
        board = np.zeros((5, 5), dtype=np.int8)
        board[2, 1:4] = 1  # horizontal blinker
        nxt = reference_life_step(board)
        expected = np.zeros((5, 5), dtype=np.int8)
        expected[1:4, 2] = 1
        assert np.array_equal(nxt, expected)
        assert np.array_equal(reference_life_step(nxt), board)

    def test_glider_translates_on_torus(self):
        after = reference_life_run(GLIDER, 20)  # 4 gens per cell moved, 5 cells
        assert np.array_equal(after, GLIDER)  # full torus lap


class TestLifeMachine:
    def test_seed_loaded(self):
        m = LifeMachine(GLIDER)
        assert np.array_equal(m.board(), GLIDER)
        assert m.done == 1

    @pytest.mark.parametrize("generations", [1, 2, 5])
    def test_matches_reference(self, generations):
        m = LifeMachine(GLIDER)
        got = m.step_generation(generations)
        assert np.array_equal(got, reference_life_run(GLIDER, generations))

    def test_random_seed_matches_reference(self):
        rng = np.random.default_rng(11)
        seed = (rng.random((5, 5)) < 0.4).astype(np.int8)
        m = LifeMachine(seed)
        got = m.step_generation(4)
        assert np.array_equal(got, reference_life_run(seed, 4))

    def test_diagram_connectivity_must_be_complete(self):
        d = hand_placement()  # placed but unrouted
        with pytest.raises(SimulationError, match="route"):
            LifeMachine(GLIDER, diagram=d)
