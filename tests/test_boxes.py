"""Tests for box formation: roots, longest drive strings, levels."""

import pytest

from repro.core.netlist import Network, TermType
from repro.place.boxes import (
    construct_roots,
    drive_edges,
    form_boxes,
    longest_path,
    string_edge,
)
from repro.workloads.examples import example1_string
from repro.workloads.stdlib import instantiate


@pytest.fixture
def chain() -> Network:
    """m0 -> m1 -> m2 -> m3 plus a side branch m1 -> m4."""
    net = Network()
    for name in ("m0", "m1", "m2", "m3", "m4"):
        net.add_module(instantiate("mux2", name))
    net.connect("n0", "m0.y", "m1.a")
    net.connect("n1", "m1.y", "m2.a", "m4.a")
    net.connect("n2", "m2.y", "m3.a")
    return net


class TestDriveEdges:
    def test_direction(self, chain):
        edges = drive_edges(chain, set(chain.modules))
        assert {e.sink for e in edges["m1"]} == {"m2", "m4"}
        assert edges["m3"] == []

    def test_edge_carries_terminals(self, chain):
        edges = drive_edges(chain, set(chain.modules))
        e = next(e for e in edges["m0"] if e.sink == "m1")
        assert e.source_terminal == "y" and e.sink_terminal == "a"
        assert e.net == "n0"

    def test_scoped_to_members(self, chain):
        edges = drive_edges(chain, {"m0", "m1"})
        assert {e.sink for e in edges["m0"]} == {"m1"}
        assert "m2" not in edges

    def test_inout_counts_both_ways(self):
        net = Network()
        net.add_module(instantiate("buf", "u"))
        net.add_module(instantiate("buf", "v"))
        # Abuse: connect output to output; no drive edge since no listener.
        net.connect("n", "u.y", "v.y")
        edges = drive_edges(net, {"u", "v"})
        assert edges["u"] == [] and edges["v"] == []


class TestRoots:
    def test_system_in_makes_root(self):
        net = example1_string()
        roots = construct_roots(net, list(net.modules))
        assert "d0" in roots  # driven by the system input

    def test_single_net_module_is_root(self, chain):
        roots = construct_roots(chain, list(chain.modules))
        # m0, m3 and m4 touch other modules through exactly one net.
        assert {"m0", "m3", "m4"} <= set(roots)

    def test_external_connection_makes_root(self, chain):
        roots = construct_roots(chain, ["m1", "m2"])
        # Both touch modules outside the partition {m1, m2}.
        assert set(roots) == {"m1", "m2"}


class TestLongestPath:
    def test_follows_drive_direction(self, chain):
        edges = drive_edges(chain, set(chain.modules))
        path = longest_path("m0", set(chain.modules), edges, max_length=10)
        assert path == ["m0", "m1", "m2", "m3"]

    def test_respects_max_length(self, chain):
        edges = drive_edges(chain, set(chain.modules))
        path = longest_path("m0", set(chain.modules), edges, max_length=2)
        assert len(path) == 2

    def test_no_revisits(self):
        net = Network()
        for name in ("a", "b"):
            net.add_module(instantiate("mux2", name))
        net.connect("f", "a.y", "b.a")
        net.connect("g", "b.y", "a.a")  # cycle
        edges = drive_edges(net, {"a", "b"})
        path = longest_path("a", {"a", "b"}, edges, max_length=10)
        assert path == ["a", "b"]


class TestFormBoxes:
    def test_partition_covered_exactly(self, chain):
        boxes = form_boxes(chain, sorted(chain.modules), max_box_size=5)
        flat = [m for b in boxes for m in b]
        assert sorted(flat) == sorted(chain.modules)
        assert len(flat) == len(set(flat))

    def test_longest_string_first(self, chain):
        boxes = form_boxes(chain, sorted(chain.modules), max_box_size=5)
        assert ["m0", "m1", "m2", "m3"] in boxes
        assert ["m4"] in boxes

    def test_box_size_one(self, chain):
        boxes = form_boxes(chain, sorted(chain.modules), max_box_size=1)
        assert all(len(b) == 1 for b in boxes)
        assert len(boxes) == 5

    def test_invalid_size(self, chain):
        with pytest.raises(ValueError):
            form_boxes(chain, sorted(chain.modules), max_box_size=0)

    def test_level_assignment_is_string_position(self, chain):
        boxes = form_boxes(chain, sorted(chain.modules), max_box_size=5)
        string = next(b for b in boxes if len(b) == 4)
        edges = drive_edges(chain, set(chain.modules))
        for prev, nxt in zip(string, string[1:]):
            assert any(e.sink == nxt for e in edges[prev])


class TestStringEdge:
    def test_found(self, chain):
        e = string_edge(chain, "m0", "m1", set(chain.modules))
        assert (e.source, e.sink) == ("m0", "m1")

    def test_missing_raises(self, chain):
        with pytest.raises(ValueError):
            string_edge(chain, "m3", "m0", set(chain.modules))
