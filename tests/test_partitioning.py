"""Tests for design partitioning (seed selection, cluster growth)."""

import math

import pytest

from repro.core.netlist import Network
from repro.place.partitioning import (
    PartitionLimits,
    form_partition,
    partition_network,
    take_a_seed,
)
from repro.workloads.examples import example2_controller
from repro.workloads.stdlib import instantiate


@pytest.fixture
def clustered() -> Network:
    """Two tight triangles joined by one weak net."""
    net = Network()
    for name in ("a0", "a1", "a2", "b0", "b1", "b2"):
        net.add_module(instantiate("and2", name))
    net.connect("na0", "a0.y", "a1.a")
    net.connect("na1", "a1.y", "a2.a")
    net.connect("na2", "a2.y", "a0.a")
    net.connect("nb0", "b0.y", "b1.a")
    net.connect("nb1", "b1.y", "b2.a")
    net.connect("nb2", "b2.y", "b0.a")
    net.connect("bridge", "a0.b", "b0.b")
    return net


class TestLimits:
    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            PartitionLimits(max_size=0)


class TestSeed:
    def test_most_connected_wins(self, clustered):
        # a0 and b0 have 3 nets to free modules, others have 2.
        seed = take_a_seed(clustered, set(clustered.modules), set())
        assert seed in ("a0", "b0")

    def test_tie_prefers_fewest_to_placed(self, clustered):
        free = set(clustered.modules) - {"a0"}
        # b0, b1 and b2 tie at two free-connections each, but b0 touches
        # the placed a0 through the bridge net, so b1/b2 win the tie and
        # the lexicographic fallback picks b1.
        assert take_a_seed(clustered, free, {"a0"}) == "b1"


class TestFormPartition:
    def test_grows_cluster_before_bridge(self, clustered):
        free = set(clustered.modules)
        part = form_partition(
            clustered, free, "a0", PartitionLimits(max_size=3)
        )
        assert sorted(part) == ["a0", "a1", "a2"]
        assert free == {"b0", "b1", "b2"}

    def test_size_limit(self, clustered):
        free = set(clustered.modules)
        part = form_partition(clustered, free, "a0", PartitionLimits(max_size=2))
        assert len(part) == 2

    def test_connection_limit_stops_growth(self, clustered):
        free = set(clustered.modules)
        # a0 alone has 3 external nets; the limit of 1 forbids any growth.
        part = form_partition(
            clustered,
            free,
            "a0",
            PartitionLimits(max_size=10, max_connections=1),
        )
        assert part == ["a0"]


class TestPartitionNetwork:
    def test_every_module_in_exactly_one_partition(self, clustered):
        parts = partition_network(clustered, PartitionLimits(max_size=3))
        flat = [m for p in parts for m in p]
        assert sorted(flat) == sorted(clustered.modules)
        assert len(flat) == len(set(flat))

    def test_partition_size_one_is_trivial(self, clustered):
        parts = partition_network(clustered, PartitionLimits(max_size=1))
        assert len(parts) == 6
        assert all(len(p) == 1 for p in parts)

    def test_functional_clusters_found(self, clustered):
        parts = partition_network(clustered, PartitionLimits(max_size=3))
        as_sets = {frozenset(p) for p in parts}
        assert frozenset({"a0", "a1", "a2"}) in as_sets
        assert frozenset({"b0", "b1", "b2"}) in as_sets

    def test_exclude_preplaced(self, clustered):
        parts = partition_network(
            clustered, PartitionLimits(max_size=3), exclude={"a0", "a1", "a2"}
        )
        flat = {m for p in parts for m in p}
        assert flat == {"b0", "b1", "b2"}

    def test_example2_partition5_isolates_clusters(self):
        # Figure 6.3: partition size 5 must yield functional parts whose
        # only common nets come from the central controller.
        net = example2_controller()
        parts = partition_network(net, PartitionLimits(max_size=5))
        assert all(len(p) <= 5 for p in parts)
        # Each datapath cluster's five members stay together (up to the
        # partition that swallowed the controller having one less slot).
        by_module = {m: i for i, p in enumerate(parts) for m in p}
        for i in range(3):
            cluster = [f"reg{i}", f"alu{i}", f"mux{i}", f"out{i}"]
            owners = {by_module[m] for m in cluster}
            assert len(owners) <= 2

    def test_unlimited_partition_takes_everything(self, clustered):
        parts = partition_network(
            clustered, PartitionLimits(max_size=100, max_connections=math.inf)
        )
        assert len(parts) == 1
