"""Unit tests for diagram legality checking and connectivity extraction."""

import pytest

from repro.core.diagram import Diagram
from repro.core.geometry import Point
from repro.core.netlist import Pin
from repro.core.validate import (
    DiagramViolation,
    check_diagram,
    connectivity_matches_netlist,
    connectivity_violations,
    extract_connectivity,
    placement_violations,
    routing_violations,
)


def _route(diagram, name, *paths):
    route = diagram.route_for(name)
    for path in paths:
        route.add_path(list(path))
    return route


class TestPlacementViolations:
    def test_clean(self, two_buffer_diagram):
        assert placement_violations(two_buffer_diagram) == []

    def test_module_overlap(self, two_buffer_network):
        d = Diagram(two_buffer_network)
        d.place_module("u0", Point(0, 0))
        d.place_module("u1", Point(1, 1))
        assert any("overlap" in p for p in placement_violations(d))

    def test_touching_modules_ok(self, two_buffer_network):
        d = Diagram(two_buffer_network)
        d.place_module("u0", Point(0, 0))
        d.place_module("u1", Point(3, 0))  # shares the x=3 border line
        assert placement_violations(d) == []

    def test_terminal_on_module(self, two_buffer_diagram):
        two_buffer_diagram.place_system_terminal("din", Point(1, 1))
        assert any("overlaps module" in p for p in placement_violations(two_buffer_diagram))

    def test_terminals_collide(self, two_buffer_diagram):
        two_buffer_diagram.place_system_terminal("din", Point(20, 20))
        two_buffer_diagram.place_system_terminal("dout", Point(20, 20))
        assert any("terminals" in p for p in placement_violations(two_buffer_diagram))


class TestRoutingViolations:
    def test_clean_cross(self, two_buffer_diagram):
        _route(two_buffer_diagram, "n_mid", [Point(3, 1), Point(8, 1)])
        _route(two_buffer_diagram, "n_in", [Point(-4, 1), Point(-4, 6), Point(5, 6), Point(5, 8)])
        assert routing_violations(two_buffer_diagram) == []

    def test_net_through_module(self, two_buffer_diagram):
        _route(two_buffer_diagram, "n_mid", [Point(-1, 1), Point(10, 1)])
        assert any("inside module" in p or "border" in p for p in routing_violations(two_buffer_diagram))

    def test_net_overlap_parallel(self, two_buffer_diagram):
        _route(two_buffer_diagram, "n_mid", [Point(4, 5), Point(9, 5)])
        _route(two_buffer_diagram, "n_in", [Point(5, 5), Point(7, 5)])
        assert any("not a pure crossing" in p for p in routing_violations(two_buffer_diagram))

    def test_perpendicular_cross_allowed(self, two_buffer_diagram):
        _route(two_buffer_diagram, "n_mid", [Point(4, 5), Point(9, 5)])
        _route(two_buffer_diagram, "n_in", [Point(6, 0) , Point(6, 8)])
        assert routing_violations(two_buffer_diagram) == []

    def test_bend_on_foreign_wire_rejected(self, two_buffer_diagram):
        _route(two_buffer_diagram, "n_mid", [Point(4, 5), Point(9, 5)])
        # n_in bends exactly on n_mid's wire: an overlap, not a crossing.
        _route(two_buffer_diagram, "n_in", [Point(6, 0), Point(6, 5), Point(12, 5)])
        assert any("not a pure crossing" in p for p in routing_violations(two_buffer_diagram))

    def test_endpoint_on_foreign_wire_rejected(self, two_buffer_diagram):
        _route(two_buffer_diagram, "n_mid", [Point(4, 5), Point(9, 5)])
        _route(two_buffer_diagram, "n_in", [Point(6, 0), Point(6, 5)])
        assert any("not a pure crossing" in p for p in routing_violations(two_buffer_diagram))

    def test_net_on_foreign_system_terminal(self, two_buffer_diagram):
        _route(two_buffer_diagram, "n_mid", [Point(-4, 0), Point(-4, 5)])
        # n_mid runs through din's position (-4, 1).
        assert any("foreign system terminal" in p for p in routing_violations(two_buffer_diagram))


class TestConnectivity:
    def test_violations_when_pin_missed(self, two_buffer_diagram):
        _route(two_buffer_diagram, "n_mid", [Point(3, 1), Point(7, 1)])  # stops short
        assert any("does not reach" in p for p in connectivity_violations(two_buffer_diagram))

    def test_disconnected_geometry(self, two_buffer_diagram):
        _route(
            two_buffer_diagram,
            "n_mid",
            [Point(3, 1), Point(4, 1)],
            [Point(7, 1), Point(8, 1)],
        )
        assert any("disconnected" in p for p in connectivity_violations(two_buffer_diagram))

    def test_extract(self, two_buffer_diagram):
        _route(two_buffer_diagram, "n_mid", [Point(3, 1), Point(8, 1)])
        mapping = extract_connectivity(two_buffer_diagram)
        assert mapping[Pin("u0", "y")] == "n_mid"
        assert mapping[Pin("u1", "a")] == "n_mid"
        assert Pin(None, "din") not in mapping

    def test_matches_netlist(self, two_buffer_diagram):
        _route(two_buffer_diagram, "n_mid", [Point(3, 1), Point(8, 1)])
        assert connectivity_matches_netlist(two_buffer_diagram, nets=["n_mid"])
        assert not connectivity_matches_netlist(two_buffer_diagram, nets=["n_in"])


class TestCheckDiagram:
    def test_raises_with_message(self, two_buffer_network):
        d = Diagram(two_buffer_network)
        d.place_module("u0", Point(0, 0))
        d.place_module("u1", Point(0, 0))
        with pytest.raises(DiagramViolation, match="overlap"):
            check_diagram(d, routed=False)

    def test_clean_passes(self, two_buffer_diagram):
        check_diagram(two_buffer_diagram, routed=False)
