"""Tests for the EUREKA routing driver: multipoint nets, claimpoints,
prerouted nets, the retry pass and the driver options."""

import pytest

from repro.core.diagram import Diagram
from repro.core.geometry import Point, Side
from repro.core.metrics import diagram_metrics
from repro.core.netlist import Network, TermType
from repro.core.validate import check_diagram, connectivity_matches_netlist
from repro.route.eureka import RouterOptions, route_diagram
from repro.route.line_expansion import CostOrder
from repro.workloads.stdlib import instantiate, make_module


class TestSimpleRouting:
    def test_two_buffer_chain(self, two_buffer_diagram):
        report = route_diagram(two_buffer_diagram)
        assert report.nets_routed == report.nets_total == 3
        check_diagram(two_buffer_diagram)
        assert connectivity_matches_netlist(two_buffer_diagram)

    def test_report_fields(self, two_buffer_diagram):
        report = route_diagram(two_buffer_diagram)
        assert report.success_rate == 1.0
        assert report.seconds >= 0
        assert report.search.routes >= 3
        assert report.claims_placed > 0

    def test_idempotent_on_routed_diagram(self, two_buffer_diagram):
        route_diagram(two_buffer_diagram)
        before = diagram_metrics(two_buffer_diagram)
        report = route_diagram(two_buffer_diagram)
        assert report.nets_total == 0  # everything already routed
        assert diagram_metrics(two_buffer_diagram) == before


class TestMultipoint:
    @pytest.fixture
    def fanout_diagram(self) -> Diagram:
        net = Network(name="fanout")
        net.add_module(instantiate("buf", "src"))
        for i in range(3):
            net.add_module(instantiate("buf", f"dst{i}"))
        net.connect("fan", "src.y", "dst0.a", "dst1.a", "dst2.a")
        d = Diagram(net)
        d.place_module("src", Point(0, 6))
        d.place_module("dst0", Point(10, 0))
        d.place_module("dst1", Point(10, 6))
        d.place_module("dst2", Point(10, 12))
        return d

    def test_fanout_routes_as_tree(self, fanout_diagram):
        report = route_diagram(fanout_diagram)
        assert report.nets_routed == 1
        route = fanout_diagram.routes["fan"]
        assert len(route.paths) == 3  # init pair + two expansions
        check_diagram(fanout_diagram)
        assert connectivity_matches_netlist(fanout_diagram)

    def test_branch_nodes_counted(self, fanout_diagram):
        route_diagram(fanout_diagram)
        m = diagram_metrics(fanout_diagram)
        assert m.branch_nodes >= 1


class TestPrerouted:
    def test_prerouted_net_kept(self, two_buffer_diagram):
        path = [
            Point(3, 1),
            Point(5, 1),
            Point(5, 4),
            Point(7, 4),
            Point(7, 1),
            Point(8, 1),
        ]
        two_buffer_diagram.route_for("n_mid").add_path(path)
        report = route_diagram(two_buffer_diagram)
        assert report.nets_total == 2  # n_mid already complete
        assert two_buffer_diagram.routes["n_mid"].paths == [path]
        check_diagram(two_buffer_diagram)

    def test_partial_preroute_extended(self):
        net = Network(name="partial")
        net.add_module(instantiate("buf", "src"))
        net.add_module(instantiate("buf", "a"))
        net.add_module(instantiate("buf", "b"))
        net.connect("fan", "src.y", "a.a", "b.a")
        d = Diagram(net)
        d.place_module("src", Point(0, 4))
        d.place_module("a", Point(10, 0))
        d.place_module("b", Point(10, 8))
        # Preroute src -> a only; the router must add the b branch.
        d.route_for("fan").add_path([Point(3, 5), Point(6, 5), Point(6, 1), Point(10, 1)])
        report = route_diagram(d)
        assert report.nets_routed == 1
        check_diagram(d)
        assert connectivity_matches_netlist(d)


class TestClaimpoints:
    @pytest.fixture
    def walled_network(self) -> Diagram:
        """Figure 5.10: terminals that a greedy first net would wall in.

        Modules MO and M1 face each other across a 2-track channel; nets
        A-B and C-D both cross the channel.  Without claims, A-B may take
        the track in front of C, making C-D unroutable.
        """
        net = Network(name="walled")
        net.add_module(
            make_module("MO", 4, 6, [("A", "out", 4, 5), ("C", "out", 4, 2)])
        )
        net.add_module(
            make_module("M1", 4, 6, [("B", "in", 0, 5), ("D", "in", 0, 1)])
        )
        net.connect("nAB", "MO.A", "M1.B")
        net.connect("nCD", "MO.C", "M1.D")
        d = Diagram(net)
        d.place_module("MO", Point(0, 0))
        d.place_module("M1", Point(7, 0))
        return d

    def test_claims_placed_and_released(self, walled_network):
        report = route_diagram(walled_network, RouterOptions(claimpoints=True))
        assert report.claims_placed >= 2
        assert report.nets_routed == 2
        check_diagram(walled_network)

    def test_retry_pass_rescues_after_claims_released(self, walled_network):
        # Even with claims off, the final retry (all claims gone) plus the
        # exhaustive search routes this tiny case; what we assert here is
        # that the option plumbing works and the result is legal.
        report = route_diagram(
            walled_network, RouterOptions(claimpoints=False, retry_failed=True)
        )
        assert report.nets_routed + report.nets_failed == 2
        check_diagram(walled_network)


class TestOptions:
    def test_fixed_sides_clamp_plane(self, two_buffer_diagram):
        report = route_diagram(
            two_buffer_diagram,
            RouterOptions(fixed_sides=frozenset({Side.UP, Side.DOWN}), margin=6),
        )
        assert report.nets_routed == 3
        bbox = two_buffer_diagram.bounding_box(include_routes=False)
        for route in two_buffer_diagram.routes.values():
            for path in route.paths:
                for p in path:
                    assert bbox.y <= p.y <= bbox.y2

    def test_swap_option_constructor(self):
        opts = RouterOptions().with_swap_option()
        assert opts.cost_order is CostOrder.BENDS_LENGTH_CROSSINGS

    def test_net_order_variants(self, two_buffer_diagram):
        for order in ("input", "shortest_first", "fewest_pins_first"):
            d = two_buffer_diagram.copy_placement()
            report = route_diagram(d, RouterOptions(net_order=order))
            assert report.nets_routed == 3

    def test_impossible_net_reported(self):
        net = Network(name="boxed")
        net.add_module(make_module("a", 2, 2, [("y", "out", 2, 1)]))
        net.add_module(make_module("b", 2, 2, [("x", "in", 0, 1)]))
        net.add_module(make_module("wall", 2, 30, [("w", "in", 0, 15)]))
        net.connect("n", "a.y", "b.x")
        net.connect("nw", "wall.w", "a.y")
        d = Diagram(net)
        d.place_module("a", Point(0, 14))
        d.place_module("b", Point(20, 14))
        d.place_module("wall", Point(10, 0))
        # With all four borders pinned to the bounding box, the wall tops
        # out at the plane border: b is unreachable from a.
        report = route_diagram(
            d,
            RouterOptions(fixed_sides=frozenset(Side), margin=0),
        )
        assert "n" in report.failed_nets
        assert report.retried_nets  # the retry pass ran and still failed
