"""Tests for rip-up-and-reroute and the congestion workload."""

from repro.core.generator import route_placed
from repro.core.geometry import Side
from repro.core.metrics import diagram_metrics
from repro.core.validate import check_diagram, placement_violations
from repro.route.eureka import RouterOptions
from repro.route.ripup import reroute_failed
from repro.workloads.congestion import facing_pairs_diagram


class TestCongestionWorkload:
    def test_placement_legal(self):
        d = facing_pairs_diagram(pairs=4, seed=0)
        assert d.is_placed
        assert placement_violations(d) == []

    def test_deterministic(self):
        a = facing_pairs_diagram(pairs=3, seed=5)
        b = facing_pairs_diagram(pairs=3, seed=5)
        assert {m: p.position for m, p in a.placements.items()} == {
            m: p.position for m, p in b.placements.items()
        }

    def test_net_counts(self):
        d = facing_pairs_diagram(pairs=5, nets_per_pair=3, seed=1)
        assert len(d.network.modules) == 10
        assert len(d.network.nets) == 15

    def test_claims_rescue_congested_channels(self):
        opts = dict(
            retry_failed=False,
            margin=1,
            fixed_sides=frozenset({Side.LEFT, Side.RIGHT}),
        )
        failures = {True: 0, False: 0}
        for seed in range(4):
            for claims in (True, False):
                d = facing_pairs_diagram(pairs=6, nets_per_pair=4, seed=seed)
                r = route_placed(d, RouterOptions(claimpoints=claims, **opts))
                failures[claims] += r.metrics.nets_failed
        assert failures[True] < failures[False]


class TestRipup:
    def _congested(self, seed=0):
        return facing_pairs_diagram(pairs=6, nets_per_pair=4, seed=seed)

    def test_completes_failed_diagram(self):
        opts = RouterOptions(
            claimpoints=False,
            retry_failed=False,
            margin=1,
            fixed_sides=frozenset({Side.LEFT, Side.RIGHT}),
        )
        d = self._congested()
        route_placed(d, opts)
        before = diagram_metrics(d)
        assert before.nets_failed > 0  # the scenario really fails
        report = reroute_failed(d, opts)
        after = diagram_metrics(d)
        assert after.nets_failed < before.nets_failed
        if report.complete:
            assert after.nets_failed == 0
        check_diagram(d)

    def test_noop_on_complete_diagram(self, two_buffer_diagram):
        from repro.route.eureka import route_diagram

        route_diagram(two_buffer_diagram)
        report = reroute_failed(two_buffer_diagram)
        assert report.iterations == 0
        assert report.complete
        assert not report.ripped_nets

    def test_result_stays_legal(self):
        opts = RouterOptions(
            retry_failed=False,
            margin=1,
            fixed_sides=frozenset({Side.LEFT, Side.RIGHT}),
        )
        for seed in range(3):
            d = self._congested(seed)
            route_placed(d, opts)
            reroute_failed(d, opts, max_iterations=2)
            check_diagram(d)
