"""Tests for the SVG and ASCII renderers."""

from repro.core.geometry import Point
from repro.render.ascii_art import render_ascii
from repro.render.svg import render_svg, save_svg
from repro.route.eureka import route_diagram


class TestSvg:
    def test_document_structure(self, two_buffer_diagram):
        route_diagram(two_buffer_diagram)
        svg = render_svg(two_buffer_diagram)
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert svg.count("<rect") >= 3  # background + 2 modules
        assert "<polyline" in svg
        assert ">u0<" in svg and ">u1<" in svg
        assert ">din<" in svg  # terminal label

    def test_net_names_optional(self, two_buffer_diagram):
        route_diagram(two_buffer_diagram)
        assert "n_mid" not in render_svg(two_buffer_diagram)
        assert "n_mid" in render_svg(two_buffer_diagram, show_net_names=True)

    def test_save(self, tmp_path, two_buffer_diagram):
        path = save_svg(two_buffer_diagram, tmp_path / "out" / "d.svg")
        assert path.exists()
        assert path.read_text().startswith("<svg")

    def test_escapes_names(self, two_buffer_network):
        two_buffer_network.modules["u0"].name = "u<0>"
        two_buffer_network.modules["u<0>"] = two_buffer_network.modules.pop("u0")
        from repro.core.diagram import Diagram

        d = Diagram(two_buffer_network)
        d.place_module("u<0>", Point(0, 0))
        svg = render_svg(d)
        assert "u<0>" not in svg
        assert "u&lt;0&gt;" in svg


class TestAscii:
    def test_modules_and_wires_drawn(self, two_buffer_diagram):
        route_diagram(two_buffer_diagram)
        art = render_ascii(two_buffer_diagram)
        assert "u0" in art and "u1" in art
        assert "@" in art  # system terminals
        assert "o" in art  # subsystem terminals
        assert "-" in art or "|" in art

    def test_crossings_marked(self, two_buffer_diagram):
        two_buffer_diagram.route_for("n_mid").add_path(
            [Point(4, 4), Point(9, 4)]
        )
        two_buffer_diagram.route_for("n_in").add_path(
            [Point(6, 3), Point(6, 6)]
        )
        art = render_ascii(two_buffer_diagram)
        assert "#" in art

    def test_deterministic(self, two_buffer_diagram):
        route_diagram(two_buffer_diagram)
        assert render_ascii(two_buffer_diagram) == render_ascii(two_buffer_diagram)
