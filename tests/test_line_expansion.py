"""Unit tests for the line-expansion router core."""

from repro.core.geometry import Direction, Point, Rect, path_bends, path_length
from repro.route.line_expansion import (
    CostOrder,
    SearchStats,
    route_connection,
    start_directions_for,
)
from repro.route.plane import Plane


def _plane(w=30, h=30) -> Plane:
    return Plane(bounds=Rect(0, 0, w, h))


def _route(plane, start, targets, net="n", dirs=None, **kw):
    return route_connection(
        plane, net, start, dirs or list(Direction), targets, **kw
    )


class TestBasicPaths:
    def test_straight_line(self):
        r = _route(_plane(), Point(2, 5), [Point(12, 5)])
        assert r is not None
        assert r.path == [Point(2, 5), Point(12, 5)]
        assert (r.bends, r.crossings, r.length) == (0, 0, 10)

    def test_single_bend(self):
        r = _route(_plane(), Point(0, 0), [Point(5, 7)])
        assert r.bends == 1
        assert r.length == 12

    def test_start_equals_target(self):
        r = _route(_plane(), Point(3, 3), [Point(3, 3)])
        assert r.path == [Point(3, 3)] and r.length == 0

    def test_no_targets(self):
        assert _route(_plane(), Point(0, 0), []) is None

    def test_min_bends_preferred_over_length(self):
        # Going over a wall and back down is a 3-bend "U"; the router must
        # find it and report bends/length consistent with the path.
        p = _plane()
        p.block_rect(Rect(5, 0, 2, 10))  # wall open above y=10
        r = _route(p, Point(0, 5), [Point(12, 5)], dirs=[Direction.RIGHT])
        assert r is not None
        assert r.bends == path_bends(r.path) == 3
        assert r.length == path_length(r.path)
        assert all(p_.y >= 11 or p_.x <= 4 or p_.x >= 8 for p_ in r.path)

    def test_unreachable_returns_none(self):
        p = _plane(10, 10)
        p.block_rect(Rect(4, 0, 2, 10))  # full-height wall
        stats = SearchStats()
        r = _route(p, Point(0, 5), [Point(9, 5)], stats=stats)
        assert r is None
        assert stats.failures == 1


class TestObstacleSemantics:
    def test_crosses_foreign_net_when_needed(self):
        p = _plane()
        p.add_net_path("other", [Point(0, 5), Point(20, 5)])
        r = _route(p, Point(10, 0), [Point(10, 10)], dirs=[Direction.UP])
        assert r is not None
        assert r.crossings == 1
        assert r.path == [Point(10, 0), Point(10, 10)]

    def test_prefers_fewer_crossings_same_bends(self):
        # Two vertical foreign wires left of the target, none to the right:
        # both ways around have 2 bends, the right way crosses nothing.
        p = _plane(30, 30)
        p.block_rect(Rect(10, 10, 4, 4))
        p.add_net_path("w1", [Point(8, 0), Point(8, 30)])
        p.add_net_path("w2", [Point(6, 0), Point(6, 30)])
        start, goal = Point(10, 12), Point(14, 12)  # on the block's border
        r = route_connection(
            p,
            "n",
            Point(9, 12),
            [Direction.LEFT],
            {Point(15, 12): None},
            allow=frozenset({Point(9, 12), Point(15, 12)}),
        )
        assert r is not None
        # Must not have gone through the foreign wires on the left.
        assert r.crossings == 0

    def test_swap_option_prefers_length(self):
        # A short path crossing a wire vs a long path around it, equal bends.
        p = _plane(40, 40)
        p.add_net_path("w", [Point(10, 0), Point(10, 21)])
        start, goal = Point(5, 5), Point(15, 5)
        r_cross_first = _route(p, start, [goal], cost_order=CostOrder.BENDS_CROSSINGS_LENGTH)
        r_len_first = _route(p, start, [goal], cost_order=CostOrder.BENDS_LENGTH_CROSSINGS)
        # Straight through: 0 bends, 1 crossing, length 10.
        assert r_len_first.length == 10 and r_len_first.crossings == 1
        # Crossing-averse: must detour over the wire top (bends > 0) — but
        # bends dominate, so it still crosses. Both give the same here;
        # instead check ordering honors length under -s for a same-bend tie.
        assert r_cross_first.bends <= r_len_first.bends

    def test_cannot_bend_on_foreign_wire(self):
        p = _plane()
        p.add_net_path("w", [Point(0, 5), Point(20, 5)])
        # Route must cross at 90 degrees; a bend exactly on y=5 is illegal.
        r = _route(p, Point(3, 0), [Point(10, 10)])
        assert r is not None
        for vertex in r.path[1:-1]:
            assert vertex.y != 5 or vertex.x not in range(0, 21)


class TestTargetDirections:
    def test_arrival_direction_respected(self):
        p = _plane()
        target = Point(10, 10)
        r = route_connection(
            p,
            "n",
            Point(10, 0),
            [Direction.UP],
            {target: frozenset({Direction.RIGHT})},
        )
        assert r is not None
        # Last move into the target must be rightward.
        assert r.path[-2].y == target.y and r.path[-2].x < target.x

    def test_start_directions_for(self):
        assert start_directions_for(None) == list(Direction)
        assert start_directions_for(Direction.LEFT) == [Direction.LEFT]


class TestStats:
    def test_states_counted(self):
        stats = SearchStats()
        _route(_plane(10, 10), Point(0, 0), [Point(5, 5)], stats=stats)
        assert stats.routes == 1
        assert stats.states_expanded > 0
        assert stats.failures == 0
