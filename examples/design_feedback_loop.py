#!/usr/bin/env python3
"""The interactive design loop the paper motivates (chapters 2 and 3).

During synthesis a designer wants quick schematic feedback, tweaks what
displeases them, and regenerates.  This example plays that loop on the
paper's example 2 network (16 modules / 24 nets):

1. generate several diagrams of the *same* network by varying the -p/-b
   options (figures 6.2, 6.3, 6.4) and compare their quality metrics,
2. pick one, manually move a module (figure 6.5) and re-route,
3. preplace a block by hand, let PABLO place the rest around it (the -g
   option), and route.

Run:  python examples/design_feedback_loop.py
"""

from pathlib import Path

from repro import Diagram, PabloOptions, Point, check_diagram, generate
from repro.core.generator import route_placed
from repro.render.svg import save_svg
from repro.workloads.examples import example2_controller

OUT = Path(__file__).resolve().parent.parent / "out" / "examples"


def sweep_options(network) -> dict:
    """Step 1: the paper's 'several schematic diagrams of the same network
    may be examined by changing the sizes'."""
    variants = {
        "clusters (-p1 -b1)": PabloOptions(partition_size=1, box_size=1),
        "partitions (-p5 -b1)": PabloOptions(partition_size=5, box_size=1),
        "strings (-p7 -b5)": PabloOptions(partition_size=7, box_size=5),
    }
    results = {}
    print(f"{'variant':24} {'parts':>5} {'routed':>7} {'len':>5} {'bends':>5} {'cross':>5}")
    for label, options in variants.items():
        result = generate(network, options)
        check_diagram(result.diagram)
        m = result.metrics
        print(
            f"{label:24} {result.placement.partition_count:>5} "
            f"{m.nets_routed:>3}/{m.nets_total:<3} {m.length:>5} "
            f"{m.bends:>5} {m.crossovers:>5}"
        )
        results[label] = result
    return results


def manual_edit(result) -> None:
    """Step 2: figure 6.5 — drag one module away, re-route everything."""
    edited = result.diagram.copy_placement()
    bbox = edited.bounding_box(include_routes=False)
    edited.place_module("buf0", Point(bbox.x - 14, bbox.y2 + 6))
    rerouted = route_placed(edited)
    check_diagram(rerouted.diagram)
    m = rerouted.metrics
    print(
        f"\nafter moving buf0 to the top left: routed {m.nets_routed}/"
        f"{m.nets_total}, length {m.length}, bends {m.bends}"
    )
    save_svg(rerouted.diagram, OUT / "feedback_edited.svg")


def preplaced_block(network) -> None:
    """Step 3: the -g option — a hand-placed controller block stays put
    and the rest of the design grows around it."""
    pre = Diagram(network)
    pre.place_module("ctl", Point(0, 0))
    pre.place_module("reg0", Point(14, 2))
    result = generate(
        network, PabloOptions(partition_size=5, box_size=3), preplaced=pre
    )
    check_diagram(result.diagram)
    assert result.diagram.placements["ctl"].position == Point(0, 0)
    assert result.diagram.placements["reg0"].position == Point(14, 2)
    m = result.metrics
    print(
        f"\nwith ctl/reg0 preplaced: routed {m.nets_routed}/{m.nets_total}, "
        f"the preplaced block kept its position"
    )
    save_svg(result.diagram, OUT / "feedback_preplaced.svg")


def main() -> None:
    OUT.mkdir(parents=True, exist_ok=True)
    network = example2_controller()
    results = sweep_options(network)
    for label, result in results.items():
        stem = label.split()[0]
        save_svg(result.diagram, OUT / f"feedback_{stem}.svg")
    manual_edit(results["clusters (-p1 -b1)"])
    preplaced_block(example2_controller())
    print(f"\nSVGs written under {OUT}")


if __name__ == "__main__":
    main()
