#!/usr/bin/env python3
"""Hierarchical designs (section 3.2): drawing a design level by level.

The paper's problem statement: "A network consists of modules and
interconnections.  Each module contains an internal description
consisting of submodules and interconnections."  This example defines a
two-level design — a 4-bit ripple adder built from a `bit_slice` template
that itself contains a full adder and a result register — then:

1. draws the *top level* (four bit-slice symbols and the carry chain),
2. draws the *inside* of one bit slice,
3. elaborates the whole design to leaf modules, draws that too, and
4. simulates the flat network to check the adder actually adds.

Run:  python examples/hierarchical_design.py
"""

from pathlib import Path

from repro.core.generator import generate
from repro.core.hierarchy import HierarchicalDesign, TemplateDefinition
from repro.core.validate import check_diagram
from repro.place.pablo import PabloOptions
from repro.render.svg import save_svg
from repro.sim.behaviors import default_behaviors
from repro.sim.logic import LogicSimulator
from repro.workloads.stdlib import instantiate, make_module

OUT = Path(__file__).resolve().parent.parent / "out" / "examples"
BITS = 4


def build_design() -> HierarchicalDesign:
    design = HierarchicalDesign()
    design.define_leaf(instantiate("fulladder", "fulladder"))
    design.define_leaf(instantiate("dff", "dff"))

    # One adder bit: full adder + result register.
    slice_symbol = make_module(
        "bit_slice",
        5,
        5,
        [
            ("a", "in", 0, 1),
            ("b", "in", 0, 3),
            ("cin", "in", 2, 0),
            ("s", "out", 5, 2),
            ("cout", "out", 2, 5),
        ],
    )
    bit = TemplateDefinition(symbol=slice_symbol)
    bit.add_instance("fa", "fulladder")
    bit.add_instance("reg", "dff")
    bit.connect("w_a", "fa.a")
    bit.connect("w_b", "fa.b")
    bit.connect("w_cin", "fa.cin")
    bit.connect("w_sum", "fa.sum", "reg.d")
    bit.connect("w_s", "reg.q")
    bit.connect("w_cout", "fa.cout")
    bit.bind_port("a", "w_a")
    bit.bind_port("b", "w_b")
    bit.bind_port("cin", "w_cin")
    bit.bind_port("s", "w_s")
    bit.bind_port("cout", "w_cout")
    design.define(bit)

    # The top level: a ripple-carry chain of bit slices.
    ports = [("cin", "in", 0, 3)]
    for i in range(BITS):
        ports += [
            (f"a{i}", "in", 2 + 2 * i, 0),
            (f"b{i}", "in", 3 + 2 * i, 10),
            (f"s{i}", "out", 10, 2 + 2 * i),
        ]
    top = TemplateDefinition(symbol=make_module("adder4", 10, 10, ports))
    for i in range(BITS):
        top.add_instance(f"bit{i}", "bit_slice")
    for i in range(BITS):
        top.connect(f"t_a{i}", f"bit{i}.a")
        top.connect(f"t_b{i}", f"bit{i}.b")
        top.connect(f"t_s{i}", f"bit{i}.s")
        top.bind_port(f"a{i}", f"t_a{i}")
        top.bind_port(f"b{i}", f"t_b{i}")
        top.bind_port(f"s{i}", f"t_s{i}")
    top.connect("t_cin", "bit0.cin")
    top.bind_port("cin", "t_cin")
    for i in range(BITS - 1):
        top.connect(f"carry{i}", f"bit{i}.cout", f"bit{i + 1}.cin")
    design.define(top)
    return design


def draw(network, name: str, **pablo) -> None:
    result = generate(network, PabloOptions(**pablo))
    check_diagram(result.diagram)
    m = result.metrics
    path = save_svg(result.diagram, OUT / f"{name}.svg")
    print(
        f"{name:18} routed {m.nets_routed}/{m.nets_total} "
        f"(len={m.length} bends={m.bends} cross={m.crossovers}) -> {path.name}"
    )


def simulate_flat(flat) -> None:
    sim = LogicSimulator(flat, default_behaviors(flat))
    a, b = 11, 6  # 1011 + 0110 = 10001 (sum bits 0001, carry out dropped)
    for i in range(BITS):
        sim.set_input(f"a{i}", (a >> i) & 1)
        sim.set_input(f"b{i}", (b >> i) & 1)
    sim.step()  # registers capture the sums
    sim.settle()
    total = sum(sim.read_output(f"s{i}") << i for i in range(BITS))
    expected = (a + b) % 16
    print(f"simulated {a} + {b} = {total} (mod 16, expected {expected})")
    assert total == expected


def main() -> None:
    OUT.mkdir(parents=True, exist_ok=True)
    design = build_design()

    draw(design.network_of("adder4"), "adder_top", partition_size=4, box_size=4)
    draw(design.network_of("bit_slice"), "adder_bit_slice", partition_size=2, box_size=2)

    flat = design.elaborate("adder4")
    print(f"elaborated: {dict(flat.stats)}")
    draw(flat, "adder_flat", partition_size=4, box_size=4)
    simulate_flat(flat)


if __name__ == "__main__":
    main()
