clk in
q0 out
q1 out
q2 out
