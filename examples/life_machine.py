#!/usr/bin/env python3
"""The game "LIFE" flow (chapter 6, example 3) end to end — scaled down.

The full 27-module / 222-net experiment lives in the benchmark harness
(it takes minutes, as it did on the paper's HP9000).  This example runs
the same flow on a hand-placed sub-board quickly:

1. build the LIFE network and place it by hand (figure 6.6 style),
2. route it with EUREKA and finish the stragglers with the rip-up pass
   (the paper's "adjusting some nets by hand"),
3. extract electrical connectivity *from the routed geometry*,
4. simulate the Game of Life on it and compare with the numpy reference
   (the paper's ESCHER+ check: "the results were positive").

Pass ``--full`` to run the real 222-net board instead (several minutes).

Run:  python examples/life_machine.py [--full]
"""

import sys
import time
from pathlib import Path

import numpy as np

from repro.core.metrics import diagram_metrics
from repro.core.validate import check_diagram, connectivity_matches_netlist
from repro.render.svg import save_svg
from repro.route.eureka import RouterOptions, route_diagram
from repro.route.ripup import reroute_failed
from repro.sim.life_sim import LifeMachine
from repro.workloads.life import GLIDER, hand_placement, reference_life_run

OUT = Path(__file__).resolve().parent.parent / "out" / "examples"
GENERATIONS = 3


def run_flow(pitch: int, margin: int) -> None:
    started = time.perf_counter()
    diagram = hand_placement(pitch=pitch)
    options = RouterOptions(margin=margin)

    report = route_diagram(diagram, options)
    print(
        f"first routing pass: {report.nets_routed}/{report.nets_total} nets "
        f"in {report.seconds:.1f}s (paper: 220/222)"
    )
    if report.failed_nets:
        rip = reroute_failed(diagram, options)
        metrics = diagram_metrics(diagram)
        print(
            f"rip-up completion: ripped {len(rip.ripped_nets)} nets, now "
            f"{metrics.nets_routed}/{metrics.nets_total}"
        )

    metrics = diagram_metrics(diagram)
    if metrics.nets_failed:
        print("diagram is still incomplete; cannot simulate — try more margin")
        return
    check_diagram(diagram)
    assert connectivity_matches_netlist(diagram)
    print(
        f"legal diagram: length={metrics.length} bends={metrics.bends} "
        f"crossovers={metrics.crossovers} branch_nodes={metrics.branch_nodes}"
    )

    OUT.mkdir(parents=True, exist_ok=True)
    path = save_svg(diagram, OUT / "life_board.svg")
    print(f"wrote {path}")

    # Simulate the artwork, not the intent: connectivity comes from the
    # routed wires alone.
    machine = LifeMachine(GLIDER, diagram=diagram)
    board = machine.board()
    print("\nseeded board (glider):")
    print(board)
    for g in range(1, GENERATIONS + 1):
        board = machine.step_generation()
        ref = reference_life_run(GLIDER, g)
        status = "OK" if np.array_equal(board, ref) else "MISMATCH"
        print(f"generation {g}: {status}")
    print(f"\ntotal {time.perf_counter() - started:.1f}s — results positive")


def main() -> None:
    if "--full" in sys.argv[1:]:
        run_flow(pitch=24, margin=14)
    else:
        # The tighter pitch routes in about two minutes (the paper's own
        # LIFE routing took 1:32-11:36) and exercises every net class
        # (neighbour, wrap-around, row/column control).
        run_flow(pitch=20, margin=12)


if __name__ == "__main__":
    main()
