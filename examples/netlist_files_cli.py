#!/usr/bin/env python3
"""The file-based flow (Appendices A, B, E, F): net-list files in,
ESCHER + SVG artwork out, all through the same entry points the CLI uses.

1. write a network out as the three Appendix A files,
2. extend a module library with a QUINTO description (Appendix B),
3. place with ``pablo``, route with ``eureka``, render with ``artwork`` —
   invoked as Python functions exactly as the console scripts would.

Run:  python examples/netlist_files_cli.py
"""

import tempfile
from pathlib import Path

from repro.cli import artwork_main, eureka_main, pablo_main, quinto_main
from repro.core.netlist import Network, TermType
from repro.formats.library import ModuleLibrary
from repro.formats.netlist_files import save_network_files


def build_network_with_custom_module(lib_dir: Path) -> Network:
    """A network using one custom template added via QUINTO."""
    desc = lib_dir / "majority.desc"
    desc.write_text(
        "module majority 40 40\n"
        "in a 0 10\n"
        "in b 0 20\n"
        "in c 0 30\n"
        "out y 40 20\n"
    )
    quinto_main([str(desc), "--library", str(lib_dir)])
    # Ship the standard templates alongside so the mixed design loads.
    ModuleLibrary.standard().save(lib_dir)

    lib = ModuleLibrary.load(lib_dir)
    net = Network(name="voter")
    net.add_module(lib("majority", "vote"))
    net.add_module(lib("dff", "s0"))
    net.add_module(lib("dff", "s1"))
    net.add_module(lib("dff", "s2"))
    net.add_module(lib("buf", "drv"))
    net.add_system_terminal("sample", TermType.IN)
    net.add_system_terminal("decision", TermType.OUT)
    net.connect("n_in", "sample", "s0.d")
    net.connect("n_s0", "s0.q", "s1.d", "vote.a")
    net.connect("n_s1", "s1.q", "s2.d", "vote.b")
    net.connect("n_s2", "s2.q", "vote.c")
    net.connect("n_y", "vote.y", "drv.a")
    net.connect("n_out", "drv.y", "decision")
    net.validate()
    return net


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        lib_dir = tmp_path / "user_lib"
        lib_dir.mkdir()
        network = build_network_with_custom_module(lib_dir)
        paths = save_network_files(network, tmp_path)
        print(f"wrote Appendix A files: {sorted(p.name for p in paths.values())}")
        net_args = [
            str(paths["netlist"]),
            str(paths["call"]),
            str(paths["io"]),
            "--library",
            str(lib_dir),
        ]

        placed = tmp_path / "placed.es"
        assert pablo_main(net_args + ["-p", "6", "-b", "5", "-o", str(placed)]) == 0

        routed = tmp_path / "routed.es"
        assert (
            eureka_main([str(placed)] + net_args + ["-o", str(routed)]) == 0
        )

        out_dir = Path(__file__).resolve().parent.parent / "out" / "examples"
        out_dir.mkdir(parents=True, exist_ok=True)
        svg = out_dir / "voter.svg"
        assert artwork_main(net_args + ["-p", "6", "-b", "5", "-o", str(svg)]) == 0
        print(f"wrote {svg}")


if __name__ == "__main__":
    main()
