#!/usr/bin/env python3
"""A scripted editor session (the figure 3.1 system end to end).

Plays the workflow the paper's introduction describes — the designer at
the schematic editor: place a couple of modules by hand, draw one wire,
let the generator place and route the rest, inspect, undo a bad move,
simulate and look at waveforms.

Run:  python examples/editor_session.py
"""

from pathlib import Path

from repro import Editor, extract_connectivity
from repro.place.pablo import PabloOptions
from repro.sim.behaviors import default_behaviors
from repro.sim.logic import LogicSimulator
from repro.sim.trace import record, render_waveforms, write_vcd
from repro.workloads.examples import example1_string

OUT = Path(__file__).resolve().parent.parent / "out" / "examples"


def main() -> None:
    OUT.mkdir(parents=True, exist_ok=True)
    network = example1_string()  # the 6-module / 6-net string of fig 6.1
    editor = Editor(network)

    # The designer seeds the picture by hand...
    editor.place("d0", 0, 0)
    editor.place("d5", 40, 0)
    editor.place_terminal("din", -4, 2)
    print("hand-placed d0, d5 and din")

    # ...changes their mind about d5...
    editor.move("d5", 0, 6)
    print("moved d5 up;", "undoing:", editor.undo())

    # ...and lets PABLO fill in the rest around the seeds (-g flow).
    editor.invoke_placement(PabloOptions(partition_size=7, box_size=7))
    assert editor.diagram.placements["d0"].position.x == 0
    print(f"placement complete: {len(editor.diagram.placements)} modules")

    # One wire drawn by hand, the router adds the rest.
    failed = editor.invoke_routing()
    print(f"routing complete, unroutable: {failed or 'none'}")
    print(f"problems: {editor.problems() or 'none'}")
    m = editor.metrics()
    print(f"quality: length={m.length} bends={m.bends} crossovers={m.crossovers}")

    print("\nthe diagram:")
    print(editor.render())
    editor.save(OUT / "editor_session.es")
    editor.save_svg(OUT / "editor_session.svg")

    # Simulate the artwork and display the results.
    sim = LogicSimulator(
        network,
        default_behaviors(network),
        connectivity=extract_connectivity(editor.diagram),
    )
    sim.set_input("din", 1)
    trace = record(sim, 6)
    print("\nwaveforms (din held high, flip-flops/inverters propagate):")
    print(render_waveforms(trace))
    vcd = write_vcd(trace, OUT / "editor_session.vcd")
    print(f"\nwrote {vcd}")


if __name__ == "__main__":
    main()
