#!/usr/bin/env python3
"""Quickstart: from a network description to a rendered schematic.

Builds a small datapath network with the library API, runs the full
generator (PABLO placement + EUREKA routing), checks the result is a
legal diagram that matches the net-list electrically, and writes SVG and
ESCHER artifacts plus an ASCII view to the terminal.

Run:  python examples/quickstart.py
"""

from pathlib import Path

from repro import (
    Network,
    PabloOptions,
    RouterOptions,
    TermType,
    check_diagram,
    generate,
)
from repro.core.validate import connectivity_matches_netlist
from repro.formats.escher import save_escher
from repro.render.ascii_art import render_ascii
from repro.render.svg import save_svg
from repro.workloads.stdlib import instantiate

OUT = Path(__file__).resolve().parent.parent / "out" / "examples"


def build_network() -> Network:
    """A toy accumulator: two registers feed an ALU, result loops back."""
    net = Network(name="accumulator")
    net.add_module(instantiate("register", "acc"))
    net.add_module(instantiate("register", "operand"))
    net.add_module(instantiate("alu", "alu"))
    net.add_module(instantiate("mux2", "writeback"))
    net.add_module(instantiate("buf", "out_buf"))

    net.add_system_terminal("data_in", TermType.IN)
    net.add_system_terminal("load", TermType.IN)
    net.add_system_terminal("result", TermType.OUT)

    net.connect("n_data", "data_in", "operand.d")
    net.connect("n_load", "load", "operand.en", "writeback.sel")
    net.connect("n_a", "acc.q", "alu.a")
    net.connect("n_b", "operand.q", "alu.b")
    net.connect("n_alu", "alu.y", "writeback.a", "out_buf.a")
    net.connect("n_wb", "writeback.y", "acc.d")
    net.connect("n_out", "out_buf.y", "result")
    net.validate()
    return net


def main() -> None:
    network = build_network()
    print(f"network: {dict(network.stats)}")

    # One call runs the whole figure-3.2 pipeline.
    result = generate(
        network,
        PabloOptions(partition_size=5, box_size=4),
        RouterOptions(margin=6),
    )

    print(
        f"placed {len(result.diagram.placements)} modules in "
        f"{result.placement.partition_count} partition(s), "
        f"routed {result.metrics.nets_routed}/{result.metrics.nets_total} nets "
        f"(length={result.metrics.length}, bends={result.metrics.bends}, "
        f"crossovers={result.metrics.crossovers})"
    )

    # The diagram is geometrically legal and electrically the net-list.
    check_diagram(result.diagram)
    assert connectivity_matches_netlist(result.diagram)
    print("diagram checks: OK (no overlaps, connectivity matches net-list)")

    OUT.mkdir(parents=True, exist_ok=True)
    svg = save_svg(result.diagram, OUT / "quickstart.svg")
    escher = save_escher(result.diagram, OUT / "quickstart.es")
    print(f"wrote {svg}\nwrote {escher}\n")
    print(render_ascii(result.diagram))


if __name__ == "__main__":
    main()
