#TUE-ES-871
temp: 0 1 0 1 1
tname: example1
lname: USER_LIB
repr: 0 0 0 -40 0 440 90 0
contents: 1 1
subsys: 1 1 1 1 0 20 20 0 0 40 40 0 0
instname: d0
tempname: dff
libname: USER_LIB
subsys: 1 1 1 1 0 420 20 400 0 440 40 0 0
instname: d5
tempname: dff
libname: USER_LIB
subsys: 1 1 1 1 0 115 80 100 70 130 90 0 0
instname: b1
tempname: buf
libname: USER_LIB
subsys: 1 1 1 1 0 185 80 170 70 200 90 0 0
instname: i2
tempname: inv
libname: USER_LIB
subsys: 1 1 1 1 0 255 80 240 70 270 90 0 0
instname: b3
tempname: buf
libname: USER_LIB
subsys: 0 1 1 1 0 325 80 310 70 340 90 0 0
instname: i4
tempname: inv
libname: USER_LIB
node: 1 0 2 1 0 1 -40 20 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 3
oname: din
node: 1 0 0 1 0 1 130 80 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 40 0 0 0 3
oname: n2
node: 1 0 0 1 0 1 170 80 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 3
oname: n2
node: 1 0 0 1 0 1 200 80 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 40 0 0 0 3
oname: n3
node: 1 0 0 1 0 1 240 80 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 3
oname: n3
node: 1 0 0 1 0 1 270 80 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 40 0 0 0 3
oname: n4
node: 1 0 0 1 0 1 310 80 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 3
oname: n4
node: 1 0 0 1 0 1 -40 20 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 40 0 0 0 3
oname: n_in
node: 1 0 0 1 0 1 0 20 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 3
oname: n_in
node: 1 0 0 1 0 1 40 20 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 50 0 0 0 3
oname: n1
node: 1 0 0 1 0 1 90 20 0 0 0 60 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 3
oname: n1
node: 1 0 0 1 0 1 90 80 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 10 0 0 0 3
oname: n1
node: 1 0 0 1 0 1 100 80 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 3
oname: n1
node: 1 0 0 1 0 1 340 80 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 50 0 0 0 3
oname: n5
node: 1 0 0 1 0 1 390 20 0 0 0 60 0 0 0 0 0 0 0 0 0 0 0 10 0 0 0 3
oname: n5
node: 1 0 0 1 0 1 390 80 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 3
oname: n5
node: 0 0 0 1 0 1 400 20 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 3
oname: n5
