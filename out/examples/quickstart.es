#TUE-ES-871
temp: 0 1 0 1 1
tname: accumulator
lname: USER_LIB
repr: 0 0 0 0 -10 360 130 0
contents: 1 1
subsys: 1 1 1 1 0 45 95 20 70 70 120 0 0
instname: operand
tempname: register
libname: USER_LIB
subsys: 1 1 1 1 0 150 80 120 50 180 110 0 0
instname: alu
tempname: alu
libname: USER_LIB
subsys: 1 1 1 1 0 240 90 220 70 260 110 0 0
instname: writeback
tempname: mux2
libname: USER_LIB
subsys: 1 1 1 1 0 325 95 300 70 350 120 0 0
instname: acc
tempname: register
libname: USER_LIB
subsys: 0 1 1 1 0 215 20 200 10 230 30 0 0
instname: out_buf
tempname: buf
libname: USER_LIB
node: 1 0 2 1 0 1 140 130 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 3
oname: load
node: 1 0 2 1 0 1 10 80 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 3
oname: data_in
node: 1 0 2 1 0 1 230 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 3
oname: result
node: 1 0 0 1 0 1 10 80 0 0 0 10 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 3
oname: n_data
node: 1 0 0 1 0 1 10 90 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 10 0 0 0 3
oname: n_data
node: 1 0 0 1 0 1 20 90 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 3
oname: n_data
node: 1 0 0 1 0 1 230 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 10 0 0 0 3
oname: n_out
node: 1 0 0 1 0 1 230 20 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 10 0 0 0 3
oname: n_out
node: 1 0 0 1 0 1 240 0 0 0 0 20 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 3
oname: n_out
node: 1 0 0 1 0 1 240 20 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 3
oname: n_out
node: 1 0 0 1 0 1 260 90 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 40 0 0 0 3
oname: n_wb
node: 1 0 0 1 0 1 300 90 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 3
oname: n_wb
node: 1 0 0 1 0 1 70 90 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 50 0 0 0 3
oname: n_b
node: 1 0 0 1 0 1 120 90 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 3
oname: n_b
node: 1 0 0 1 0 1 180 80 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 40 0 0 0 3
oname: n_alu
node: 1 0 0 1 0 1 190 20 0 0 0 60 0 0 0 0 0 0 0 0 0 0 0 10 0 0 0 3
oname: n_alu
node: 1 0 0 1 0 1 190 80 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 3
oname: n_alu
node: 1 0 0 1 0 1 200 20 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 3
oname: n_alu
node: 1 0 0 1 0 1 220 80 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 3
oname: n_alu
node: 1 0 0 1 0 1 110 -10 0 0 0 80 0 0 0 0 0 0 0 0 0 0 0 250 0 0 0 3
oname: n_a
node: 1 0 0 1 0 1 110 70 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 10 0 0 0 3
oname: n_a
node: 1 0 0 1 0 1 120 70 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 3
oname: n_a
node: 1 0 0 1 0 1 350 90 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 10 0 0 0 3
oname: n_a
node: 1 0 0 1 0 1 360 -10 0 0 0 100 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 3
oname: n_a
node: 1 0 0 1 0 1 360 90 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 3
oname: n_a
node: 1 0 0 1 0 1 0 60 0 0 0 70 0 0 0 0 0 0 0 0 0 0 0 40 0 0 0 3
oname: n_load
node: 1 0 0 1 0 1 0 130 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 140 0 0 0 3
oname: n_load
node: 1 0 0 1 0 1 40 40 0 0 0 20 0 0 0 0 0 0 0 0 0 0 0 200 0 0 0 3
oname: n_load
node: 1 0 0 1 0 1 40 60 0 0 0 10 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 3
oname: n_load
node: 1 0 0 1 0 1 40 70 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 3
oname: n_load
node: 1 0 0 1 0 1 140 130 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 3
oname: n_load
node: 1 0 0 1 0 1 240 40 0 0 0 30 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 3
oname: n_load
node: 0 0 0 1 0 1 240 70 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 3
oname: n_load
