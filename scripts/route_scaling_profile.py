"""Routing-scaling profile: serial vs speculative-parallel net routing.

Sweeps grid-placed datapaths (deterministic workloads, no placement
noise) through the serial and the ``parallel_nets`` router and writes a
JSON profile with wall times, expanded states, wave/conflict counts and
a per-size identity check of the routed output.  CI uploads the profile
next to ``BENCH_route.json``.

Usage:
    python scripts/route_scaling_profile.py [-o out/route_scaling.json]
"""

from __future__ import annotations

import argparse
import copy
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import counters  # noqa: E402
from repro.route.eureka import RouterOptions, route_diagram  # noqa: E402
from repro.workloads import datapath_grid_diagram  # noqa: E402

SWEEP = [(2, 6), (4, 12), (6, 18), (10, 25)]


def _run(base, options):
    diagram = copy.deepcopy(base)
    started = time.perf_counter()
    report = route_diagram(diagram, options)
    wall = time.perf_counter() - started
    return diagram, report, wall


def profile() -> dict:
    registry = counters.get_registry()
    rows = []
    for lanes, stages in SWEEP:
        base = datapath_grid_diagram(lanes=lanes, stages=stages)
        serial, s_report, s_wall = _run(base, RouterOptions())
        w0 = registry.get("route.parallel.waves")
        c0 = registry.get("route.parallel.conflicts")
        k0 = registry.get("route.parallel.commits")
        parallel, p_report, p_wall = _run(
            base, RouterOptions(parallel_nets=True)
        )
        identical = all(
            serial.routes[n].paths == parallel.routes[n].paths
            for n in serial.routes
        )
        rows.append(
            {
                "lanes": lanes,
                "stages": stages,
                "nets": s_report.nets_total,
                "routed": s_report.nets_routed,
                "serial_wall_s": round(s_wall, 3),
                "parallel_wall_s": round(p_wall, 3),
                "speedup": round(s_wall / max(1e-9, p_wall), 2),
                "serial_states": s_report.search.states_expanded,
                "parallel_states": p_report.search.states_expanded,
                "waves": registry.get("route.parallel.waves") - w0,
                "commits": registry.get("route.parallel.commits") - k0,
                "conflicts": registry.get("route.parallel.conflicts") - c0,
                "identical_routes": identical,
            }
        )
        print(
            f"{lanes}x{stages}: {s_report.nets_total} nets, "
            f"serial {s_wall:.2f}s vs parallel {p_wall:.2f}s, "
            f"identical={identical}"
        )
    return {
        "profile": "route-scaling serial vs parallel_nets",
        "cores": os.cpu_count() or 1,
        "gil": getattr(sys, "_is_gil_enabled", lambda: True)(),
        "python": sys.version.split()[0],
        "rows": rows,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-o", "--output", default="out/route_scaling.json", help="profile path"
    )
    args = parser.parse_args()
    data = profile()
    out = Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(data, indent=1))
    print(f"wrote {out}")
    bad = [r for r in data["rows"] if not r["identical_routes"]]
    if bad:
        print("parallel routing diverged from serial:", bad, file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
