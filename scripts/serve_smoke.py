#!/usr/bin/env python
"""End-to-end smoke test for ``artwork-serve`` (the CI serve-smoke job).

Starts the daemon as a real subprocess, submits the counter example over
HTTP (with an explicit ``traceparent``, checking the id is echoed back),
streams its WebSocket progress events, checks ``/healthz``,
``/metrics``, ``/v1/stats`` and the per-job Chrome trace export, then
drains the daemon with SIGTERM and verifies it exited cleanly.  Exit
code 0 = all good; diagnostics go to stdout.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py [--runlog PATH] [--trace PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.formats.library import ModuleLibrary  # noqa: E402
from repro.formats.netlist_files import load_network_files  # noqa: E402
from repro.gateway.protocol import HttpClient, WebSocketClient  # noqa: E402
from repro.service.jobs import JobSpec  # noqa: E402


def fail(message: str) -> "SystemExit":
    return SystemExit(f"serve-smoke: FAIL: {message}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runlog", default="serve-smoke-runlog.jsonl")
    parser.add_argument("--trace", default="serve-smoke-trace.json")
    args = parser.parse_args()

    counter = REPO / "examples" / "counter"
    network = load_network_files(
        counter / "counter.net",
        counter / "counter.call",
        counter / "counter.io",
        library=ModuleLibrary.standard(),
    )
    spec = JobSpec.from_network(network, name="counter")

    env = {**os.environ, "PYTHONPATH": str(REPO / "src")}
    daemon = subprocess.Popen(
        [
            sys.executable,
            "-c",
            "import sys; from repro.cli import artwork_serve_main; "
            f"sys.exit(artwork_serve_main(['--port', '0', '--workers', '2', "
            f"'--slow-threshold', '0', '--runlog', {args.runlog!r}]))",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        banner = daemon.stdout.readline()
        if "listening" not in banner:
            raise fail(f"daemon did not come up: {banner!r}")
        port = int(banner.rsplit(":", 1)[1].split()[0])
        print(f"serve-smoke: daemon on port {port}")

        trace_id = "f0" * 16
        with HttpClient("127.0.0.1", port) as client:
            posted = client.request(
                "POST",
                "/v1/jobs",
                spec.to_dict(),
                headers={"traceparent": f"00-{trace_id}-{'1b' * 8}-01"},
            )
            if posted.status != 202:
                raise fail(f"submit got {posted.status}: {posted.body!r}")
            if posted.headers.get("x-request-id") != trace_id:
                raise fail(
                    "traceparent not continued: x-request-id="
                    f"{posted.headers.get('x-request-id')!r}"
                )
            job_id = posted.json()["id"]
            print(f"serve-smoke: submitted {job_id} (trace {trace_id[:8]}…)")

            with WebSocketClient(
                "127.0.0.1", port, f"/v1/jobs/{job_id}/events"
            ) as ws:
                events = []
                while True:
                    event = ws.recv_json()
                    if event is None:
                        break
                    events.append(event["event"])
            print(f"serve-smoke: events {events}")
            if events[0] != "queued" or events[-1] != "done":
                raise fail(f"unexpected event stream: {events}")

            final = client.get(f"/v1/jobs/{job_id}?wait=60").json()
            if final["status"] != "ok":
                raise fail(f"job finished {final['status']}: {final.get('error')}")
            print(
                f"serve-smoke: job ok in {final['seconds']}s, "
                f"{final['metrics'].get('routed')}/{final['metrics'].get('nets')} "
                "nets routed"
            )

            svg = client.get(f"/v1/jobs/{job_id}/svg")
            if svg.status != 200 or not svg.body.startswith(b"<svg"):
                raise fail(f"svg endpoint broken: {svg.status}")

            health = client.get("/healthz").json()
            if health["status"] != "ok" or health["pool"]["alive"] != 2:
                raise fail(f"unhealthy: {health}")
            print(f"serve-smoke: healthz ok, {health['pool']['alive']} workers")

            metrics = client.get("/metrics").body.decode()
            for needle in (
                "repro_service_jobs 1",
                'repro_service_job_wall_s{quantile="0.5"}',
                "repro_gateway_workers_alive 2",
            ):
                if needle not in metrics:
                    raise fail(f"/metrics missing {needle!r}")
            print("serve-smoke: metrics exposition ok")

            stats = client.get("/v1/stats").json()
            post_1m = stats.get("endpoints", {}).get("POST /v1/jobs", {}).get("1m", {})
            if post_1m.get("count", 0) < 1 or post_1m.get("p50", 0.0) <= 0.0:
                raise fail(f"/v1/stats has no live POST window: {post_1m}")
            if "worker.exec" not in stats.get("stages", {}):
                raise fail("/v1/stats missing worker.exec stage window")
            print(
                f"serve-smoke: stats ok ({post_1m['count']} req in 1m, "
                f"p50 {post_1m['p50']}s)"
            )

            trace = client.get(f"/v1/jobs/{job_id}/trace")
            if trace.status != 200:
                raise fail(f"trace endpoint got {trace.status}")
            doc = trace.json()
            names = [e["name"] for e in doc.get("traceEvents", [])]
            if not names or names[0] != "gateway.request":
                raise fail(f"trace not rooted at gateway.request: {names[:3]}")
            for needle in ("queue.wait", "worker.exec", "pablo.place", "eureka.route"):
                if needle not in names:
                    raise fail(f"trace missing {needle!r} span: {names}")
            Path(args.trace).write_text(json.dumps(doc, indent=1))
            print(f"serve-smoke: trace ok ({len(names)} spans -> {args.trace})")

        daemon.send_signal(signal.SIGTERM)
        out, _ = daemon.communicate(timeout=30)
        if daemon.returncode != 0:
            raise fail(f"drain exited {daemon.returncode}: {out}")
        if "stopped" not in out:
            raise fail(f"no graceful stop marker in: {out}")
        print("serve-smoke: drained cleanly")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.communicate()

    if not Path(args.runlog).exists():
        raise fail("daemon wrote no runlog")
    kinds = [
        json.loads(line).get("kind")
        for line in Path(args.runlog).read_text().splitlines()
        if line.strip()
    ]
    if "serve" not in kinds:
        raise fail(f"runlog has no serve record: {kinds}")
    if "slow" not in kinds:  # --slow-threshold 0 captures every request
        raise fail(f"runlog has no slow record: {kinds}")
    print(f"serve-smoke: OK (runlog at {args.runlog}, kinds {sorted(set(kinds))})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
