#!/usr/bin/env python
"""End-to-end smoke test for ``artwork-serve`` (the CI serve-smoke job).

Starts the daemon as a real subprocess, submits the counter example over
HTTP, streams its WebSocket progress events, checks ``/healthz`` and
``/metrics``, then drains the daemon with SIGTERM and verifies it exited
cleanly.  Exit code 0 = all good; diagnostics go to stdout.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py [--runlog PATH]
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.formats.library import ModuleLibrary  # noqa: E402
from repro.formats.netlist_files import load_network_files  # noqa: E402
from repro.gateway.protocol import HttpClient, WebSocketClient  # noqa: E402
from repro.service.jobs import JobSpec  # noqa: E402


def fail(message: str) -> "SystemExit":
    return SystemExit(f"serve-smoke: FAIL: {message}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runlog", default="serve-smoke-runlog.jsonl")
    args = parser.parse_args()

    counter = REPO / "examples" / "counter"
    network = load_network_files(
        counter / "counter.net",
        counter / "counter.call",
        counter / "counter.io",
        library=ModuleLibrary.standard(),
    )
    spec = JobSpec.from_network(network, name="counter")

    env = {**os.environ, "PYTHONPATH": str(REPO / "src")}
    daemon = subprocess.Popen(
        [
            sys.executable,
            "-c",
            "import sys; from repro.cli import artwork_serve_main; "
            f"sys.exit(artwork_serve_main(['--port', '0', '--workers', '2', "
            f"'--runlog', {args.runlog!r}]))",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        banner = daemon.stdout.readline()
        if "listening" not in banner:
            raise fail(f"daemon did not come up: {banner!r}")
        port = int(banner.rsplit(":", 1)[1].split()[0])
        print(f"serve-smoke: daemon on port {port}")

        with HttpClient("127.0.0.1", port) as client:
            posted = client.post("/v1/jobs", spec.to_dict())
            if posted.status != 202:
                raise fail(f"submit got {posted.status}: {posted.body!r}")
            job_id = posted.json()["id"]
            print(f"serve-smoke: submitted {job_id}")

            with WebSocketClient(
                "127.0.0.1", port, f"/v1/jobs/{job_id}/events"
            ) as ws:
                events = []
                while True:
                    event = ws.recv_json()
                    if event is None:
                        break
                    events.append(event["event"])
            print(f"serve-smoke: events {events}")
            if events[0] != "queued" or events[-1] != "done":
                raise fail(f"unexpected event stream: {events}")

            final = client.get(f"/v1/jobs/{job_id}?wait=60").json()
            if final["status"] != "ok":
                raise fail(f"job finished {final['status']}: {final.get('error')}")
            print(
                f"serve-smoke: job ok in {final['seconds']}s, "
                f"{final['metrics'].get('routed')}/{final['metrics'].get('nets')} "
                "nets routed"
            )

            svg = client.get(f"/v1/jobs/{job_id}/svg")
            if svg.status != 200 or not svg.body.startswith(b"<svg"):
                raise fail(f"svg endpoint broken: {svg.status}")

            health = client.get("/healthz").json()
            if health["status"] != "ok" or health["pool"]["alive"] != 2:
                raise fail(f"unhealthy: {health}")
            print(f"serve-smoke: healthz ok, {health['pool']['alive']} workers")

            metrics = client.get("/metrics").body.decode()
            for needle in (
                "repro_service_jobs 1",
                'repro_service_job_wall_s{quantile="0.5"}',
                "repro_gateway_workers_alive 2",
            ):
                if needle not in metrics:
                    raise fail(f"/metrics missing {needle!r}")
            print("serve-smoke: metrics exposition ok")

        daemon.send_signal(signal.SIGTERM)
        out, _ = daemon.communicate(timeout=30)
        if daemon.returncode != 0:
            raise fail(f"drain exited {daemon.returncode}: {out}")
        if "stopped" not in out:
            raise fail(f"no graceful stop marker in: {out}")
        print("serve-smoke: drained cleanly")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.communicate()

    if not Path(args.runlog).exists():
        raise fail("daemon wrote no runlog")
    print(f"serve-smoke: OK (runlog at {args.runlog})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
