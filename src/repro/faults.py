"""Deterministic fault injection: named failpoints for chaos testing.

Every interesting way the serving stack can degrade — a cache read
hitting bad sectors, a worker segfaulting mid-job, the journal losing
its tail in a power cut — is represented by a **named injection point**
compiled into the production code path.  In normal operation a point is
a dict lookup that misses; under a configured :class:`FaultRegistry` it
fires deterministically, so CI can drive the gateway through every
failure mode and assert the recovery invariants instead of hoping an
accident reproduces.

Activation is environment- or test-driven::

    ARTWORK_FAULTS="cache.read=io:0.5,worker.exec=crash:1" artwork-serve ...
    ARTWORK_FAULTS_SEED=42  # per-point RNG seed (default 0)

The spec grammar is ``point=kind[:probability[:arg]]`` joined by commas:

``io``
    raise :class:`FaultInjected` (an ``OSError``) at the point — the
    caller's corruption/IO recovery path must absorb it.
``crash``
    ``os._exit(13)`` — simulates a segfault / OOM kill.  Only sane
    inside worker processes; the pool's supervision must recover.
``sleep``
    ``time.sleep(arg or 1.0)`` — simulates a stall (drives timeout,
    deadline and kill-escalation paths).  ``arg`` is seconds.
``corrupt``
    the point is expected to *partially* apply its effect then raise —
    writers use it to leave a torn record behind (``arg`` unused).

``probability`` defaults to 1.0.  Draws come from a per-point
``random.Random`` seeded with ``(seed, point name)``, so two runs with
the same seed inject the identical fault sequence at every point,
independently of how other points interleave.

Known injection points (grep for ``fault(`` to audit):

========================  ==================================================
``cache.read``            :meth:`repro.service.cache.ResultCache.get`
``cache.write``           :meth:`repro.service.cache.ResultCache.put`
``worker.exec``           :func:`repro.gateway.pool._worker_main`, before
                          the job runs (fires in the *worker* process)
``pool.ipc``              worker→parent result delivery, before the
                          ``done`` message is queued
``journal.append``        :meth:`repro.gateway.journal.JobJournal.append`
``sampler.tick``          :meth:`repro.obs.sampler.Sampler.tick` — the
                          sampler absorbs the fault itself (profiling
                          failures must never break the pipeline)
========================  ==================================================

Worker processes inherit the registry through ``fork`` (or re-read the
environment under ``spawn``), so configuring faults before the pool
starts covers both sides of the process boundary.
"""

from __future__ import annotations

import os
import random
import threading
import time

ENV_FAULTS = "ARTWORK_FAULTS"
ENV_SEED = "ARTWORK_FAULTS_SEED"

#: Fault kinds the registry understands.
KINDS = ("io", "crash", "sleep", "corrupt")

#: Exit code an injected ``crash`` dies with (distinct from real faults
#: in test assertions).
CRASH_EXIT_CODE = 13


class FaultSpecError(ValueError):
    """A malformed ``ARTWORK_FAULTS`` spec string."""


class FaultInjected(OSError):
    """The error an ``io``/``corrupt`` failpoint raises when it fires."""

    def __init__(self, point: str, kind: str = "io"):
        super().__init__(f"injected {kind} fault at {point!r}")
        self.point = point
        self.kind = kind


class Fault:
    """One configured failpoint: kind + firing probability + argument."""

    __slots__ = ("point", "kind", "probability", "arg", "rng", "fired")

    def __init__(
        self,
        point: str,
        kind: str,
        probability: float = 1.0,
        arg: float | None = None,
        seed: int = 0,
    ):
        if kind not in KINDS:
            raise FaultSpecError(
                f"unknown fault kind {kind!r} at {point!r} (want one of {KINDS})"
            )
        if not 0.0 <= probability <= 1.0:
            raise FaultSpecError(
                f"fault probability must be in [0, 1], got {probability} at {point!r}"
            )
        self.point = point
        self.kind = kind
        self.probability = probability
        self.arg = arg
        # Per-point stream: the draw sequence at one point is a pure
        # function of (seed, point), whatever other points do.
        self.rng = random.Random(f"{seed}:{point}")
        self.fired = 0

    def should_fire(self) -> bool:
        if self.probability >= 1.0:
            return True
        return self.rng.random() < self.probability

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Fault({self.point}={self.kind}:{self.probability:g}"
            f"{f':{self.arg:g}' if self.arg is not None else ''})"
        )


def parse_spec(spec: str, *, seed: int = 0) -> dict[str, Fault]:
    """Parse ``point=kind[:prob[:arg]],...`` into a fault table."""
    table: dict[str, Fault] = {}
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "=" not in chunk:
            raise FaultSpecError(f"fault spec {chunk!r} is missing '=' (point=kind)")
        point, _, rhs = chunk.partition("=")
        point = point.strip()
        parts = rhs.strip().split(":")
        kind = parts[0]
        try:
            probability = float(parts[1]) if len(parts) > 1 and parts[1] else 1.0
            arg = float(parts[2]) if len(parts) > 2 and parts[2] else None
        except ValueError as exc:
            raise FaultSpecError(f"bad number in fault spec {chunk!r}") from exc
        if len(parts) > 3:
            raise FaultSpecError(f"too many ':' fields in fault spec {chunk!r}")
        table[point] = Fault(point, kind, probability, arg, seed=seed)
    return table


class FaultRegistry:
    """The active fault table plus fire accounting.

    An empty registry (the default) makes every :func:`fault` call a
    single dict miss — the production fast path.
    """

    def __init__(self, spec: str = "", *, seed: int = 0):
        self.spec = spec
        self.seed = seed
        self._table = parse_spec(spec, seed=seed)
        self._lock = threading.Lock()

    @property
    def active(self) -> bool:
        return bool(self._table)

    def points(self) -> dict[str, str]:
        """``{point: "kind:prob[:arg]"}`` for observability surfaces."""
        return {
            f.point: (
                f"{f.kind}:{f.probability:g}"
                + (f":{f.arg:g}" if f.arg is not None else "")
            )
            for f in self._table.values()
        }

    def fired(self) -> dict[str, int]:
        """How many times each configured point has fired so far."""
        return {f.point: f.fired for f in self._table.values()}

    def check(self, point: str) -> Fault | None:
        """The fault to apply at ``point`` right now, or ``None``.

        Use this instead of :meth:`fire` when the call site implements
        the effect itself (e.g. a writer producing a torn record for
        ``corrupt``); the caller owns honoring the returned kind.
        """
        fault = self._table.get(point)
        if fault is None:
            return None
        with self._lock:
            if not fault.should_fire():
                return None
            fault.fired += 1
        return fault

    def fire(self, point: str) -> None:
        """Apply the configured effect at ``point`` (no-op when inactive).

        ``io``/``corrupt`` raise :class:`FaultInjected`; ``crash`` exits
        the process; ``sleep`` blocks for the configured seconds.
        """
        fault = self.check(point)
        if fault is None:
            return
        if fault.kind == "sleep":
            time.sleep(fault.arg if fault.arg is not None else 1.0)
            return
        if fault.kind == "crash":
            os._exit(CRASH_EXIT_CODE)
        raise FaultInjected(point, fault.kind)


# -- the process-global registry -------------------------------------------

_global: FaultRegistry | None = None
_global_lock = threading.Lock()


def get_faults() -> FaultRegistry:
    """The process's registry, built lazily from the environment.

    Forked workers inherit the parent's initialized registry (same fault
    table, same per-point RNG state at fork time); spawn-started workers
    rebuild the identical table from the inherited environment.
    """
    global _global
    if _global is None:
        with _global_lock:
            if _global is None:
                spec = os.environ.get(ENV_FAULTS, "")
                seed = int(os.environ.get(ENV_SEED, "0") or "0")
                _global = FaultRegistry(spec, seed=seed)
    return _global


def set_faults(registry: FaultRegistry | None) -> FaultRegistry | None:
    """Swap the global registry (tests); returns the previous one."""
    global _global
    with _global_lock:
        previous = _global
        _global = registry
    return previous


def fault(point: str) -> None:
    """Fire ``point`` on the global registry — the one-liner call sites use."""
    get_faults().fire(point)
