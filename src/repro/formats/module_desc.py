"""The simple module description (Appendix B, the QUINTO input).

File format::

    module <MODULE-NAME> <WIDTH> <HEIGHT>
    <TYPE> <TERM-NAME> <X> <Y>
    ...

with ``TYPE in | out | inout``.  All dimensions and coordinates must be
divisible by 10 and terminals must sit on the module outline.  One file
unit of 10 corresponds to one grid unit of the library (``SCALE``).
"""

from __future__ import annotations

from ..core.geometry import Point
from ..core.netlist import Module, NetlistError, TermType

SCALE = 10


def parse_module_description(text: str) -> Module:
    """Parse a QUINTO module description into a library template."""
    lines = [
        line.strip()
        for line in text.splitlines()
        if line.strip() and not line.strip().startswith("#")
    ]
    if not lines:
        raise NetlistError("empty module description")
    head = lines[0].split()
    if len(head) != 4 or head[0] != "module":
        raise NetlistError(f"bad module heading: {lines[0]!r}")
    name = head[1]
    width, height = _scaled(head[2], "width"), _scaled(head[3], "height")
    module = Module(name=name, width=width, height=height, template=name)
    if len(lines) == 1:
        raise NetlistError(f"module {name!r} declares no terminals")
    for line in lines[1:]:
        parts = line.split()
        if len(parts) != 4:
            raise NetlistError(f"bad terminal record: {line!r}")
        ttype = TermType.parse(parts[0])
        x, y = _scaled(parts[2], "x"), _scaled(parts[3], "y")
        module.add_terminal(parts[1], ttype, Point(x, y))
    return module


def _scaled(text: str, what: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise NetlistError(f"{what} is not an integer: {text!r}") from None
    if value % SCALE != 0:
        raise NetlistError(f"{what} {value} is not divisible by {SCALE}")
    return value // SCALE


def write_module_description(module: Module) -> str:
    """Serialise a template back to the Appendix B format."""
    lines = [f"module {module.template} {module.width * SCALE} {module.height * SCALE}"]
    for term in module.terminals.values():
        lines.append(
            f"{term.type.value} {term.name} "
            f"{term.offset.x * SCALE} {term.offset.y * SCALE}"
        )
    return "\n".join(lines) + "\n"
