"""The net-list description of a network (Appendix A).

Three sequential ASCII files describe a network:

* the **call-file** lists the module instances with their templates
  (``<INSTANCE> <TEMPLATE>`` records),
* the **io-file** lists the system terminals with their types
  (``<TERMINAL> <TYPE>`` records, type ``in | out | inout``),
* the **net-list-file** lists the net/pin connections
  (``<NET> <INSTANCE> <TERMINAL>`` records, instance ``root`` for system
  terminals).

Fields are separated by blanks or tabs; records by newlines.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterable

from ..core.netlist import Module, NetlistError, Network, Pin, TermType

ROOT_INSTANCE = "root"


def _records(text: str, fields: int, what: str) -> Iterable[list[str]]:
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != fields:
            raise NetlistError(
                f"{what} line {lineno}: expected {fields} fields, got {len(parts)}: {raw!r}"
            )
        yield parts


# -- call-file ----------------------------------------------------------


def parse_call_file(text: str) -> list[tuple[str, str]]:
    """Parse a call-file into (instance, template) pairs."""
    pairs = []
    seen: set[str] = set()
    for instance, template in _records(text, 2, "call-file"):
        if instance in seen:
            raise NetlistError(f"call-file: duplicate instance {instance!r}")
        seen.add(instance)
        pairs.append((instance, template))
    return pairs


def write_call_file(network: Network) -> str:
    return "".join(
        f"{m.name} {m.template}\n" for m in network.modules.values()
    )


# -- io-file -------------------------------------------------------------


def parse_io_file(text: str) -> list[tuple[str, TermType]]:
    """Parse an io-file into (terminal, type) pairs."""
    return [
        (terminal, TermType.parse(type_text))
        for terminal, type_text in _records(text, 2, "io-file")
    ]


def write_io_file(network: Network) -> str:
    return "".join(
        f"{st.name} {st.type.value}\n" for st in network.system_terminals.values()
    )


# -- net-list-file ---------------------------------------------------------


def parse_netlist_file(text: str) -> list[tuple[str, Pin]]:
    """Parse a net-list-file into (net, pin) records."""
    out = []
    for net, instance, terminal in _records(text, 3, "net-list-file"):
        pin = Pin(None, terminal) if instance == ROOT_INSTANCE else Pin(instance, terminal)
        out.append((net, pin))
    return out


def write_netlist_file(network: Network) -> str:
    lines = []
    for net in network.nets.values():
        for pin in net.pins:
            instance = ROOT_INSTANCE if pin.is_system else pin.module
            lines.append(f"{net.name} {instance} {pin.terminal}\n")
    return "".join(lines)


# -- assembling a Network ---------------------------------------------------


def build_network(
    netlist_text: str,
    call_text: str,
    io_text: str = "",
    *,
    library: Callable[[str, str], Module],
    name: str = "network",
) -> Network:
    """Assemble and validate a :class:`Network` from the three files.

    ``library`` instantiates a template: ``library(template, instance)``
    (e.g. :func:`repro.workloads.stdlib.instantiate` or a
    :class:`repro.formats.library.ModuleLibrary`).
    """
    network = Network(name=name)
    for instance, template in parse_call_file(call_text):
        network.add_module(library(template, instance))
    for terminal, ttype in parse_io_file(io_text):
        network.add_system_terminal(terminal, ttype)
    for net, pin in parse_netlist_file(netlist_text):
        network.connect(net, pin)
    network.validate()
    return network


def load_network_files(
    netlist_path: str | Path,
    call_path: str | Path,
    io_path: str | Path | None = None,
    *,
    library: Callable[[str, str], Module],
    name: str | None = None,
) -> Network:
    """File-based convenience wrapper around :func:`build_network`.

    The io-file may be omitted when the network has no system terminals
    (Appendix E: "If no system terminal appears in the network then the
    io-file may be omitted")."""
    netlist_path = Path(netlist_path)
    io_text = Path(io_path).read_text() if io_path is not None else ""
    return build_network(
        netlist_path.read_text(),
        Path(call_path).read_text(),
        io_text,
        library=library,
        name=name or netlist_path.stem,
    )


def save_network_files(network: Network, directory: str | Path) -> dict[str, Path]:
    """Write the three Appendix A files for a network; returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = {
        "netlist": directory / f"{network.name}.net",
        "call": directory / f"{network.name}.call",
        "io": directory / f"{network.name}.io",
    }
    paths["netlist"].write_text(write_netlist_file(network))
    paths["call"].write_text(write_call_file(network))
    paths["io"].write_text(write_io_file(network))
    return paths
