"""File formats: net-lists (App. A), module descriptions (App. B),
the module library (App. C) and ESCHER diagram files (App. D)."""

from .netlist_files import (
    build_network,
    load_network_files,
    parse_call_file,
    parse_io_file,
    parse_netlist_file,
    save_network_files,
    write_call_file,
    write_io_file,
    write_netlist_file,
)
from .module_desc import parse_module_description, write_module_description
from .library import ModuleLibrary
from .escher import load_escher, read_escher, save_escher, write_escher

__all__ = [
    "build_network",
    "load_network_files",
    "parse_call_file",
    "parse_io_file",
    "parse_netlist_file",
    "save_network_files",
    "write_call_file",
    "write_io_file",
    "write_netlist_file",
    "parse_module_description",
    "write_module_description",
    "ModuleLibrary",
    "load_escher",
    "read_escher",
    "save_escher",
    "write_escher",
]
