"""The module library (Appendix C).

The schematic editor and the generator take module symbols from a library
of templates.  :class:`ModuleLibrary` holds templates in memory, can be
seeded from the built-in standard library, extended from QUINTO module
descriptions (the Appendix B flow), and persisted as a directory with one
description file per template — mirroring the paper's USER_LIB directory
convention.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator

from ..core.netlist import Module, NetlistError
from .module_desc import parse_module_description, write_module_description


class ModuleLibrary:
    """A collection of module templates, instantiable by name.

    The library object is callable with ``(template, instance)`` so it
    plugs straight into :func:`repro.formats.netlist_files.build_network`.
    """

    def __init__(self, templates: Iterable[Module] = ()) -> None:
        self._templates: dict[str, Module] = {}
        for template in templates:
            self.add(template)

    # -- population ---------------------------------------------------

    def add(self, template: Module) -> None:
        if template.template in self._templates:
            raise NetlistError(f"duplicate template {template.template!r}")
        self._templates[template.template] = template

    def add_description(self, text: str) -> Module:
        """QUINTO: add a template from an Appendix B description."""
        template = parse_module_description(text)
        self.add(template)
        return template

    @classmethod
    def standard(cls) -> "ModuleLibrary":
        """The built-in standard template set."""
        from ..workloads.stdlib import TEMPLATES

        return cls(factory(name) for name, factory in TEMPLATES.items())

    # -- access ---------------------------------------------------------

    def __contains__(self, template: str) -> bool:
        return template in self._templates

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._templates))

    def __len__(self) -> int:
        return len(self._templates)

    def template(self, name: str) -> Module:
        try:
            return self._templates[name]
        except KeyError:
            raise NetlistError(f"template {name!r} not in library") from None

    def instantiate(self, template: str, instance: str) -> Module:
        """A fresh module instance of a template."""
        proto = self.template(template)
        return Module(
            name=instance,
            width=proto.width,
            height=proto.height,
            terminals=dict(proto.terminals),
            template=proto.template,
        )

    __call__ = instantiate

    # -- persistence -------------------------------------------------------

    SUFFIX = ".mod"

    def save(self, directory: str | Path) -> list[Path]:
        """Write every template as a description file in ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths = []
        for name in self:
            path = directory / f"{name}{self.SUFFIX}"
            path.write_text(write_module_description(self._templates[name]))
            paths.append(path)
        return paths

    @classmethod
    def load(cls, directory: str | Path) -> "ModuleLibrary":
        """Read a library directory written by :meth:`save` (or by hand)."""
        directory = Path(directory)
        lib = cls()
        for path in sorted(directory.glob(f"*{cls.SUFFIX}")):
            lib.add_description(path.read_text())
        return lib
