"""ESCHER-readable schematic diagram files (Appendix D).

The generator's output had to be readable by the ESCHER schematic editor.
We write the documented record structure: the ``#TUE-ES-871`` magic, a
``temp:`` header with ``tname:``, a ``repr:`` bounding box, a
``contents:`` section with one ``subsys:`` record per placed module
(instname/tempname/libname, center, corners, orientation) and ``node:``
records for system terminals and net geometry.

Net geometry is stored the ESCHER way — as node points with per-direction
arm lengths (fields b11/b15/b19/b23 of the ``node:`` record) — so a
diagram round-trips geometrically: the covered points, modules and
terminals are preserved exactly, while the decomposition of a net into
paths is not (ESCHER has no such notion).  All coordinates are written
multiplied by :data:`SCALE` = 10, matching the "divisible by 10" rule of
the module format.
"""

from __future__ import annotations

from collections import defaultdict
from pathlib import Path

from ..core.diagram import Diagram, DiagramError
from ..core.geometry import Point, path_segments
from ..core.netlist import Network
from ..core.rotation import Rotation

MAGIC = "#TUE-ES-871"
SCALE = 10
LIBNAME = "USER_LIB"

_IO_NET = 3
_ORIGIN_NET = 0
_ORIGIN_CONTACT = 1
_ORIGIN_TERMINAL = 2


def write_escher(diagram: Diagram) -> str:
    """Serialise a diagram to the ESCHER file format."""
    out: list[str] = [MAGIC]
    out.append("temp: 0 1 0 1 1")
    out.append(f"tname: {diagram.network.name}")
    out.append(f"lname: {LIBNAME}")
    bbox = diagram.bounding_box()
    out.append(
        "repr: 0 0 0 "
        f"{bbox.x * SCALE} {bbox.y * SCALE} {bbox.x2 * SCALE} {bbox.y2 * SCALE} 0"
    )
    out.append("contents: 1 1")

    placements = list(diagram.placements.values())
    for i, pm in enumerate(placements):
        more = 1 if i + 1 < len(placements) else 0
        rect = pm.rect
        cx, cy = rect.center
        out.append(
            f"subsys: {more} 1 1 1 0 "
            f"{int(cx * SCALE)} {int(cy * SCALE)} "
            f"{rect.x * SCALE} {rect.y * SCALE} {rect.x2 * SCALE} {rect.y2 * SCALE} "
            f"{pm.rotation.value // 90} 0"
        )
        out.append(f"instname: {pm.name}")
        out.append(f"tempname: {pm.module.template}")
        out.append(f"libname: {LIBNAME}")

    nodes = _terminal_nodes(diagram) + _net_nodes(diagram)
    for i, (point, origin, oname, arms) in enumerate(nodes):
        more = 1 if i + 1 < len(nodes) else 0
        up, down, left, right = (arm * SCALE for arm in arms)
        fields = [
            more,  # b0 next
            0,  # b1 net-flag
            origin,  # b2
            1,  # b3 origin-name follows
            0,  # b4 contact-name
            1,  # b5 electric type
            point.x * SCALE,
            point.y * SCALE,  # b6 b7 position
            0, 0, 0,  # b8..b10
            up, 0, 0, 0,  # b11..b14
            down, 0, 0, 0,  # b15..b18
            left, 0, 0, 0,  # b19..b22
            right, 0, 0, 0,  # b23..b26
            _IO_NET,  # b27
        ]
        out.append("node: " + " ".join(str(f) for f in fields))
        out.append(f"oname: {oname}")
    return "\n".join(out) + "\n"


def _terminal_nodes(diagram: Diagram):
    return [
        (pos, _ORIGIN_TERMINAL, name, (0, 0, 0, 0))
        for name, pos in diagram.terminal_positions.items()
    ]


def _net_nodes(diagram: Diagram):
    """One node per path vertex with arms toward the adjacent vertices.
    To avoid storing each segment twice, only up/right arms are written."""
    nodes = []
    for name, route in diagram.routes.items():
        arms: dict[Point, list[int]] = defaultdict(lambda: [0, 0, 0, 0])
        for path in route.paths:
            if len(path) == 1:
                arms[path[0]]  # isolated point still registers
            for seg in path_segments(path):
                a, b = seg.p1, seg.p2
                if seg.orientation.name == "HORIZONTAL":
                    arms[a][3] = max(arms[a][3], b.x - a.x)  # right arm
                    arms[b]
                else:
                    arms[a][0] = max(arms[a][0], b.y - a.y)  # up arm
                    arms[b]
        for point in sorted(arms):
            up, down, left, right = arms[point]
            nodes.append((point, _ORIGIN_NET, name, (up, down, left, right)))
    return nodes


def read_escher(text: str, network: Network) -> Diagram:
    """Rebuild a diagram from an ESCHER file over a known network.

    Paths are reconstructed segment-by-segment; covered geometry, module
    placement and terminal positions are identical to what was written.
    """
    lines = text.splitlines()
    if not lines or lines[0].strip() != MAGIC:
        raise DiagramError("not an ESCHER file (missing #TUE-ES-871 magic)")
    diagram = Diagram(network)

    pending_subsys: list[int] | None = None
    pending_node: list[int] | None = None
    instname: str | None = None
    for raw in lines[1:]:
        line = raw.strip()
        if not line:
            continue
        key, _, rest = line.partition(":")
        rest = rest.strip()
        if key == "subsys":
            pending_subsys = _int_fields(line, rest, minimum=12)
            instname = None
        elif key == "instname":
            instname = rest
        elif key == "libname" and pending_subsys is not None and instname:
            fields = pending_subsys
            x1, y1 = fields[7] // SCALE, fields[8] // SCALE
            rotation = Rotation((fields[11] % 4) * 90)
            diagram.place_module(instname, Point(x1, y1), rotation)
            pending_subsys = None
        elif key == "node":
            pending_node = _int_fields(line, rest, minimum=24)
        elif key == "oname" and pending_node is not None:
            _apply_node(diagram, pending_node, rest)
            pending_node = None
    return diagram


def _int_fields(line: str, rest: str, *, minimum: int) -> list[int]:
    """Parse a record's integer fields; corrupt records raise
    :class:`DiagramError` so callers (e.g. the result cache) can treat a
    damaged file uniformly instead of seeing bare ``ValueError``s."""
    try:
        fields = [int(f) for f in rest.split()]
    except ValueError:
        raise DiagramError(f"corrupt ESCHER record: {line!r}") from None
    if len(fields) < minimum:
        raise DiagramError(f"truncated ESCHER record: {line!r}")
    return fields


def _apply_node(diagram: Diagram, fields: list[int], oname: str) -> None:
    origin = fields[2]
    point = Point(fields[6] // SCALE, fields[7] // SCALE)
    if origin == _ORIGIN_TERMINAL:
        diagram.place_system_terminal(oname, point)
        return
    if origin != _ORIGIN_NET:
        return
    up, right = fields[11] // SCALE, fields[23] // SCALE
    route = diagram.route_for(oname)
    if up:
        route.add_path([point, Point(point.x, point.y + up)])
    if right:
        route.add_path([point, Point(point.x + right, point.y)])
    if not up and not right and not route.paths:
        route.add_path([point])


def save_escher(diagram: Diagram, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(write_escher(diagram))
    return path


def load_escher(path: str | Path, network: Network) -> Diagram:
    return read_escher(Path(path).read_text(), network)
