"""Parameterised datapath generator for the scaling experiments.

Builds pipelines of ``lanes`` parallel register/ALU/mux chains of
``stages`` stages with a shared controller — structurally the kind of
synthesis intermediate the paper's generator was built for, with size
knobs so the complexity claims of sections 4.6.8 and 5.8 can be measured
as curves instead of anecdotes.
"""

from __future__ import annotations

from ..core.netlist import Network, TermType
from .stdlib import instantiate


def datapath_network(*, lanes: int = 2, stages: int = 3) -> Network:
    """A ``lanes x stages`` pipelined datapath with a controller.

    Modules: lanes*stages registers + (lanes per stage-boundary) muxes +
    one controller; nets: the pipeline chains, per-stage select lines and
    a clock-ish enable per lane.
    """
    if lanes < 1 or stages < 2:
        raise ValueError("need at least 1 lane and 2 stages")
    net = Network(name=f"datapath_{lanes}x{stages}")
    net.add_module(instantiate("controller", "ctl"))
    for lane in range(lanes):
        for stage in range(stages):
            net.add_module(instantiate("register", f"r{lane}_{stage}"))
        for stage in range(stages - 1):
            net.add_module(instantiate("mux2", f"m{lane}_{stage}"))

    net.add_system_terminal("start", TermType.IN)
    for lane in range(lanes):
        net.add_system_terminal(f"in{lane}", TermType.IN)
        net.add_system_terminal(f"out{lane}", TermType.OUT)

    net.connect("n_start", "start", "ctl.run")
    for lane in range(lanes):
        net.connect(f"feed{lane}", f"in{lane}", f"r{lane}_0.d")
        for stage in range(stages - 1):
            net.connect(
                f"q{lane}_{stage}", f"r{lane}_{stage}.q", f"m{lane}_{stage}.a"
            )
            net.connect(
                f"d{lane}_{stage}", f"m{lane}_{stage}.y", f"r{lane}_{stage + 1}.d"
            )
            # Cross-lane bypass into the mux's b input.
            other = (lane + 1) % lanes
            if other != lane:
                net.connect(f"q{other}_{stage}", f"m{lane}_{stage}.b")
        net.connect(
            f"tail{lane}", f"r{lane}_{stages - 1}.q", f"out{lane}"
        )
        # One controller enable per lane, fanned to the lane's registers
        # (the controller has ten enable pins; further lanes share nets
        # without a controller pin).
        for stage in range(stages):
            net.connect(f"en{lane}", (f"r{lane}_{stage}", "en"))
        if lane < 10:
            net.connect(f"en{lane}", ("ctl", f"c{lane}"))
    net.validate()
    return net


def datapath_sizes(points: list[tuple[int, int]] | None = None) -> list[Network]:
    """Networks for a standard scaling sweep."""
    points = points or [(1, 4), (2, 4), (2, 8), (3, 8)]
    return [datapath_network(lanes=lanes, stages=stages) for lanes, stages in points]


def datapath_grid_diagram(*, lanes: int = 2, stages: int = 3) -> "Diagram":
    """A datapath placed on its natural (stage, lane) grid.

    PABLO placement of a many-hundred-net datapath takes minutes and
    scatters the pipeline; the *routing* scaling benchmarks instead
    place registers by their pipeline coordinates — muxes between
    stages, controller and system terminals on the borders — so every
    net routes and the measured time is routing, not placement."""
    from ..core.diagram import Diagram
    from ..core.geometry import Point

    net = datapath_network(lanes=lanes, stages=stages)
    diagram = Diagram(net)
    reg = net.modules["r0_0"]
    mux = net.modules["m0_0"]
    ctl = net.modules["ctl"]
    px = reg.width + mux.width + 14
    py = max(reg.height, mux.height) + 10
    for lane in range(lanes):
        for stage in range(stages):
            diagram.place_module(f"r{lane}_{stage}", Point(stage * px, lane * py))
        for stage in range(stages - 1):
            diagram.place_module(
                f"m{lane}_{stage}", Point(stage * px + reg.width + 7, lane * py)
            )
    diagram.place_module("ctl", Point(-ctl.width - 16, (lanes * py) // 2))
    diagram.place_system_terminal("start", Point(-ctl.width - 24, (lanes * py) // 2))
    for lane in range(lanes):
        diagram.place_system_terminal(f"in{lane}", Point(-14, lane * py + 1))
        diagram.place_system_terminal(
            f"out{lane}", Point((stages - 1) * px + reg.width + 10, lane * py + 1)
        )
    return diagram
