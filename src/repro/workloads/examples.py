"""The paper's example networks (chapter 6).

The report does not publish its net-lists, only their sizes and character,
so these generators synthesize networks with exactly the module and net
counts of Table 6.1 and the structural character visible in the figures
(see DESIGN.md, substitutions).
"""

from __future__ import annotations

from ..core.netlist import Network, TermType
from .stdlib import instantiate


def example1_string() -> Network:
    """Example 1 (figure 6.1): 6 modules, 6 nets, one partition with one
    box — a single string of connected modules."""
    net = Network(name="example1")
    chain = [
        ("d0", "dff"),
        ("b1", "buf"),
        ("i2", "inv"),
        ("b3", "buf"),
        ("i4", "inv"),
        ("d5", "dff"),
    ]
    for name, template in chain:
        net.add_module(instantiate(template, name))
    net.add_system_terminal("din", TermType.IN)

    net.connect("n_in", "din", "d0.d")
    net.connect("n1", "d0.q", "b1.a")
    net.connect("n2", "b1.y", "i2.a")
    net.connect("n3", "i2.y", "b3.a")
    net.connect("n4", "b3.y", "i4.a")
    net.connect("n5", "i4.y", "d5.d")
    net.validate()
    assert len(net.modules) == 6 and len(net.nets) == 6
    return net


def example2_controller() -> Network:
    """Example 2 (figures 6.2–6.5): 16 modules, 24 nets — a controller in
    the center commanding three functional clusters of five modules."""
    net = Network(name="example2")
    net.add_module(instantiate("controller", "ctl"))
    for i in range(3):
        net.add_module(instantiate("register", f"reg{i}"))
        net.add_module(instantiate("alu", f"alu{i}"))
        net.add_module(instantiate("mux2", f"mux{i}"))
        net.add_module(instantiate("register", f"out{i}"))
        net.add_module(instantiate("buf", f"buf{i}"))

    for i in range(3):
        net.add_system_terminal(f"res{i}", TermType.OUT)

    for i in range(3):
        # The cluster datapath string: reg -> alu -> mux -> out -> buf.
        net.connect(f"d{i}_0", f"reg{i}.q", f"alu{i}.a")
        net.connect(f"d{i}_1", f"alu{i}.y", f"mux{i}.a")
        net.connect(f"d{i}_2", f"mux{i}.y", f"out{i}.d")
        net.connect(f"d{i}_3", f"out{i}.q", f"buf{i}.a", f"res{i}")
        # Three control nets from the central controller per cluster.
        net.connect(f"c{i}_en", f"ctl.c{3 * i}", f"reg{i}.en")
        net.connect(f"c{i}_op", f"ctl.c{3 * i + 1}", f"alu{i}.op")
        net.connect(f"c{i}_sel", f"ctl.c{3 * i + 2}", f"mux{i}.sel")
    # The clusters feed each other in a ring through the buffers.
    for i in range(3):
        net.connect(f"x{i}", f"buf{i}.y", f"alu{(i + 1) % 3}.b")

    net.validate()
    assert len(net.modules) == 16 and len(net.nets) == 24
    return net
