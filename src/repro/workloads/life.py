"""The game "LIFE" network (chapter 6, example 3).

The paper routes a network "showing the game LIFE" with 27 modules and
222 nets (figures 6.6 and 6.7).  The original net-list is unpublished; we
synthesize a machine with exactly those counts (see DESIGN.md):

* a 5x5 torus of :data:`~repro.workloads.stdlib.life_cell` modules, each
  with eight per-neighbour buffered outputs, so every neighbour link is
  its own two-pin net — 200 nets,
* a controller distributing per-row clocks and load enables and per-column
  seed data — 15 multipoint nets,
* a clock generator and four system terminals — 7 more nets,

for 25 + 2 = 27 modules and 200 + 15 + 7 = 222 nets.

The module also provides the hand placement used for figure 6.6 and a
numpy reference implementation of Conway's rules on the torus for the
simulation check.
"""

from __future__ import annotations

import numpy as np

from ..core.diagram import Diagram
from ..core.geometry import Point
from ..core.netlist import Network, TermType
from .stdlib import instantiate

ROWS = 5
COLS = 5

#: Neighbour offsets in (row, col), index k and 7-k are opposite.
NEIGHBOUR_OFFSETS: list[tuple[int, int]] = [
    (-1, -1),
    (-1, 0),
    (-1, 1),
    (0, -1),
    (0, 1),
    (1, -1),
    (1, 0),
    (1, 1),
]


def cell_name(row: int, col: int) -> str:
    return f"cell_{row}_{col}"


def life_network() -> Network:
    """The 27-module / 222-net LIFE network."""
    net = Network(name="life")
    for r in range(ROWS):
        for c in range(COLS):
            net.add_module(instantiate("life_cell", cell_name(r, c)))
    net.add_module(instantiate("life_controller", "ctl"))
    net.add_module(instantiate("clock_generator", "clkgen"))

    net.add_system_terminal("clk_in", TermType.IN)
    net.add_system_terminal("run", TermType.IN)
    net.add_system_terminal("reset", TermType.IN)
    net.add_system_terminal("done", TermType.OUT)

    # 200 point-to-point neighbour nets: output o{k} of a cell drives
    # input n{7-k} of its neighbour in direction k (torus wrap-around).
    for r in range(ROWS):
        for c in range(COLS):
            for k, (dr, dc) in enumerate(NEIGHBOUR_OFFSETS):
                nr, nc = (r + dr) % ROWS, (c + dc) % COLS
                net.connect(
                    f"nb_{r}_{c}_{k}",
                    f"{cell_name(r, c)}.o{k}",
                    f"{cell_name(nr, nc)}.n{7 - k}",
                )

    # Row clocks and load enables, column seed data (15 multipoint nets).
    for r in range(ROWS):
        net.connect(f"rowclk{r}", f"ctl.rowclk{r}")
        net.connect(f"load{r}", f"ctl.load{r}")
        for c in range(COLS):
            net.connect(f"rowclk{r}", f"{cell_name(r, c)}.clk")
            net.connect(f"load{r}", f"{cell_name(r, c)}.load")
    for c in range(COLS):
        net.connect(f"data{c}", f"ctl.data{c}")
        for r in range(ROWS):
            net.connect(f"data{c}", f"{cell_name(r, c)}.data")

    # Clocking and the system interface (7 nets).
    net.connect("clk", "clkgen.clk", "ctl.clk")
    net.connect("tick", "clkgen.tick", "ctl.tick")
    net.connect("enable", "ctl.enable", "clkgen.enable")
    net.connect("n_clk_in", "clk_in", "clkgen.clk_in")
    net.connect("n_run", "run", "ctl.run")
    net.connect("n_reset", "reset", "ctl.reset")
    net.connect("n_done", "done", "ctl.done")

    net.validate()
    assert len(net.modules) == 27 and len(net.nets) == 222
    return net


def hand_placement(network: Network | None = None, *, pitch: int = 20) -> Diagram:
    """The figure 6.6 flow: the modules placed by hand on a regular grid
    (cells in a 5x5 array, controller and clock generator on the left),
    leaving the routing to EUREKA.

    Row 0 sits at the top so the torus's north direction is up; the torus
    wrap-around wires run around the array periphery, which the router's
    plane margin must leave room for (use ``RouterOptions(margin>=12)``).
    """
    network = network or life_network()
    diagram = Diagram(network)
    x0 = 24  # room for the controller column and its wiring on the left
    for r in range(ROWS):
        for c in range(COLS):
            diagram.place_module(
                cell_name(r, c), Point(x0 + c * pitch, (ROWS - 1 - r) * pitch)
            )
    mid = ((ROWS - 1) * pitch + 8) // 2
    diagram.place_module("ctl", Point(0, mid + 4))
    diagram.place_module("clkgen", Point(2, mid - 12))

    left = -16  # outside the wrap-wire periphery
    diagram.place_system_terminal("run", Point(left, mid + 8))
    diagram.place_system_terminal("reset", Point(left, mid + 10))
    diagram.place_system_terminal("done", Point(left, mid + 4))
    diagram.place_system_terminal("clk_in", Point(left, mid - 10))
    return diagram


def reference_life_step(board: np.ndarray) -> np.ndarray:
    """One generation of Conway's rules on the 5x5 torus (the model the
    simulated diagram must match)."""
    neighbours = sum(
        np.roll(np.roll(board, dr, axis=0), dc, axis=1)
        for dr, dc in NEIGHBOUR_OFFSETS
    )
    return ((neighbours == 3) | ((board == 1) & (neighbours == 2))).astype(np.int8)


def reference_life_run(seed: np.ndarray, generations: int) -> np.ndarray:
    board = seed.astype(np.int8)
    for _ in range(generations):
        board = reference_life_step(board)
    return board

GLIDER = np.array(
    [
        [0, 1, 0, 0, 0],
        [0, 0, 1, 0, 0],
        [1, 1, 1, 0, 0],
        [0, 0, 0, 0, 0],
        [0, 0, 0, 0, 0],
    ],
    dtype=np.int8,
)
