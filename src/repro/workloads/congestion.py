"""Congestion workloads for the claimpoint experiments (section 5.7).

The failure mode claimpoints fix is the figure 5.10 situation: a terminal
whose only escape track gets taken by an earlier net.  This module builds
placed diagrams full of exactly that pattern — rows of module pairs
facing each other across a channel just wide enough for all their nets,
with pin orderings that invite early nets to wall later terminals in.
"""

from __future__ import annotations

import random

from ..core.diagram import Diagram
from ..core.geometry import Point
from ..core.netlist import Network
from .stdlib import make_module


def facing_pairs_diagram(
    *, pairs: int = 6, nets_per_pair: int = 3, channel: int | None = None, seed: int = 0
) -> Diagram:
    """A placed network of ``pairs`` module pairs facing each other.

    Each pair has ``nets_per_pair`` straight-across connections whose pin
    heights are shuffled so routing them in the driver's order tends to
    block channel tracks in front of unrouted terminals.  ``channel`` is
    the channel width in tracks (default: just enough, ``nets_per_pair``).
    """
    rng = random.Random(seed)
    channel = channel if channel is not None else nets_per_pair
    height = 2 * nets_per_pair + 2
    net_obj = Network(name=f"facing_{pairs}x{nets_per_pair}")
    diagram = Diagram(net_obj)

    y_cursor = 0
    for p in range(pairs):
        left_ys = rng.sample(range(1, height), nets_per_pair)
        right_ys = rng.sample(range(1, height), nets_per_pair)
        left = make_module(
            f"L{p}",
            4,
            height,
            [(f"t{i}", "out", 4, y) for i, y in enumerate(left_ys)],
        )
        right = make_module(
            f"R{p}",
            4,
            height,
            [(f"t{i}", "in", 0, y) for i, y in enumerate(right_ys)],
        )
        net_obj.add_module(left)
        net_obj.add_module(right)
        for i in range(nets_per_pair):
            net_obj.connect(f"n{p}_{i}", f"L{p}.t{i}", f"R{p}.t{i}")
        diagram.place_module(f"L{p}", Point(0, y_cursor))
        diagram.place_module(f"R{p}", Point(4 + channel + 1, y_cursor))
        y_cursor += height + 2
    net_obj.validate()
    return diagram
