"""Seeded random netlist generation.

Used by the property-based tests and the ablation benchmarks: produces
networks of standard-library modules with a mostly feed-forward net
structure (so box formation finds strings) plus optional random
multipoint control nets and system terminals.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.netlist import Network, Pin, TermType
from .stdlib import instantiate

_DATAPATH_TEMPLATES = ["buf", "inv", "and2", "or2", "xor2", "dff", "mux2", "register"]


@dataclass(frozen=True)
class RandomNetworkSpec:
    """Shape of a random network."""

    modules: int = 10
    extra_nets: int = 3
    multipoint_fraction: float = 0.2
    system_terminals: int = 2
    seed: int = 0


def random_network(spec: RandomNetworkSpec | None = None, **overrides) -> Network:
    """Generate a connected, validated random network."""
    spec = spec or RandomNetworkSpec()
    if overrides:
        spec = RandomNetworkSpec(**{**spec.__dict__, **overrides})
    rng = random.Random(spec.seed)
    net = Network(name=f"random_{spec.seed}")

    names = [f"m{i}" for i in range(spec.modules)]
    for name in names:
        net.add_module(instantiate(rng.choice(_DATAPATH_TEMPLATES), name))

    # A spanning feed-forward chain keeps everything connected: each
    # module's output drives a free input of a later module.
    free_inputs: dict[str, list[str]] = {
        name: [t.name for t in net.modules[name].terminals.values() if t.type.listens]
        for name in names
    }
    used_outputs: set[tuple[str, str]] = set()
    net_id = 0
    for i, name in enumerate(names[:-1]):
        sink = names[rng.randrange(i + 1, len(names))]
        if not free_inputs[sink]:
            continue
        out_term = _pick_output(net, name, used_outputs, rng)
        if out_term is None:
            continue
        in_term = free_inputs[sink].pop(rng.randrange(len(free_inputs[sink])))
        net.connect(f"n{net_id}", (name, out_term), (sink, in_term))
        used_outputs.add((name, out_term))
        net_id += 1

    # Extra nets: some point-to-point, some multipoint fanout.
    for _ in range(spec.extra_nets):
        source = rng.choice(names)
        out_term = _pick_output(net, source, used_outputs, rng)
        if out_term is None:
            continue
        fanout = 1
        if rng.random() < spec.multipoint_fraction:
            fanout = rng.randint(2, 3)
        sinks = []
        for _ in range(fanout):
            candidates = [n for n in names if n != source and free_inputs[n]]
            if not candidates:
                break
            sink = rng.choice(candidates)
            in_term = free_inputs[sink].pop(rng.randrange(len(free_inputs[sink])))
            sinks.append((sink, in_term))
        if not sinks:
            continue
        net.connect(f"n{net_id}", (source, out_term), *sinks)
        used_outputs.add((source, out_term))
        net_id += 1

    # System terminals ride on inputs of modules with free input pins.
    for t in range(spec.system_terminals):
        candidates = [n for n in names if free_inputs[n]]
        if not candidates:
            break
        sink = rng.choice(candidates)
        in_term = free_inputs[sink].pop(rng.randrange(len(free_inputs[sink])))
        st = f"ext{t}"
        net.add_system_terminal(st, TermType.IN)
        net.connect(f"n{net_id}", Pin(None, st), (sink, in_term))
        net_id += 1

    _drop_degenerate_nets(net)
    net.validate()
    return net


def _pick_output(
    net: Network, module: str, used: set[tuple[str, str]], rng: random.Random
) -> str | None:
    outs = [
        t.name
        for t in net.modules[module].terminals.values()
        if t.type.drives and (module, t.name) not in used
    ]
    if not outs:
        return None
    return rng.choice(outs)


def _drop_degenerate_nets(net: Network) -> None:
    for name in [n for n, obj in net.nets.items() if len(obj.pins) < 2]:
        del net.nets[name]
