"""Workloads: the paper's example networks, LIFE and random generators."""

from .examples import example1_string, example2_controller
from .life import (
    GLIDER,
    hand_placement,
    life_network,
    reference_life_run,
    reference_life_step,
)
from .random_nets import RandomNetworkSpec, random_network
from .batch import BatchWorkloadSpec, batch_networks, workload_from_dict
from .congestion import facing_pairs_diagram
from .datapath import datapath_grid_diagram, datapath_network, datapath_sizes
from .stdlib import TEMPLATES, instantiate, make_module

__all__ = [
    "example1_string",
    "example2_controller",
    "GLIDER",
    "hand_placement",
    "life_network",
    "reference_life_run",
    "reference_life_step",
    "RandomNetworkSpec",
    "random_network",
    "BatchWorkloadSpec",
    "batch_networks",
    "workload_from_dict",
    "facing_pairs_diagram",
    "datapath_grid_diagram",
    "datapath_network",
    "datapath_sizes",
    "TEMPLATES",
    "instantiate",
    "make_module",
]
