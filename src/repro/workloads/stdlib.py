"""A small standard module library.

The paper's module library (Appendix C) holds box symbols with typed
terminals on their outline.  This module provides the templates the
example networks and generators instantiate: gates, registers, muxes,
adders, an ALU, a controller block and the LIFE cell.

Sizes are in grid units (1 unit = 10 units of the paper's file formats,
which require coordinates divisible by 10).
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..core.geometry import Point
from ..core.netlist import Module, TermType

TermSpec = tuple[str, str, int, int]  # (name, type, x, y)


def make_module(
    name: str, width: int, height: int, terms: Iterable[TermSpec], *, template: str = ""
) -> Module:
    """Build a module from compact terminal specs."""
    module = Module(name=name, width=width, height=height, template=template or name)
    for tname, ttype, x, y in terms:
        module.add_terminal(tname, TermType.parse(ttype), Point(x, y))
    return module


def _template(
    template_name: str, width: int, height: int, terms: list[TermSpec]
) -> Callable[[str], Module]:
    def build(instance: str) -> Module:
        return make_module(instance, width, height, terms, template=template_name)

    build.__name__ = template_name
    build.__doc__ = f"Instantiate the {template_name!r} template ({width}x{height})."
    return build


buf = _template("buf", 3, 2, [("a", "in", 0, 1), ("y", "out", 3, 1)])
inv = _template("inv", 3, 2, [("a", "in", 0, 1), ("y", "out", 3, 1)])
and2 = _template(
    "and2", 3, 3, [("a", "in", 0, 1), ("b", "in", 0, 2), ("y", "out", 3, 2)]
)
or2 = _template(
    "or2", 3, 3, [("a", "in", 0, 1), ("b", "in", 0, 2), ("y", "out", 3, 2)]
)
xor2 = _template(
    "xor2", 3, 3, [("a", "in", 0, 1), ("b", "in", 0, 2), ("y", "out", 3, 2)]
)
dff = _template(
    "dff",
    4,
    4,
    [("d", "in", 0, 2), ("clk", "in", 0, 1), ("q", "out", 4, 2)],
)
mux2 = _template(
    "mux2",
    4,
    4,
    [
        ("a", "in", 0, 1),
        ("b", "in", 0, 3),
        ("sel", "in", 2, 0),
        ("y", "out", 4, 2),
    ],
)
fulladder = _template(
    "fulladder",
    4,
    4,
    [
        ("a", "in", 0, 1),
        ("b", "in", 0, 2),
        ("cin", "in", 0, 3),
        ("sum", "out", 4, 2),
        ("cout", "out", 4, 3),
    ],
)
register = _template(
    "register",
    5,
    5,
    [
        ("d", "in", 0, 2),
        ("clk", "in", 0, 4),
        ("en", "in", 2, 0),
        ("q", "out", 5, 2),
    ],
)
alu = _template(
    "alu",
    6,
    6,
    [
        ("a", "in", 0, 2),
        ("b", "in", 0, 4),
        ("op", "in", 3, 0),
        ("y", "out", 6, 3),
        ("flag", "out", 6, 5),
    ],
)
controller = _template(
    "controller",
    8,
    8,
    [
        ("clk", "in", 0, 1),
        ("run", "in", 0, 3),
        ("status", "in", 0, 5),
        ("ack", "in", 0, 7),
        ("c0", "out", 8, 1),
        ("c1", "out", 8, 3),
        ("c2", "out", 8, 5),
        ("c3", "out", 8, 7),
        ("c4", "out", 2, 8),
        ("c5", "out", 4, 8),
        ("c6", "out", 6, 8),
        ("c7", "out", 2, 0),
        ("c8", "out", 4, 0),
        ("c9", "out", 6, 0),
    ],
)

#: The LIFE cell: eight neighbour inputs (n0..n7) and eight buffered
#: state outputs (o0..o7), one per neighbour direction
#: (0:NW 1:N 2:NE 3:W 4:E 5:SW 6:S 7:SE, see life.NEIGHBOUR_OFFSETS),
#: each on the module side facing its direction — outputs and the matching
#: neighbour inputs are track-aligned so straight links need zero bends.
#: Plus a clock, a row-load enable and a column-data seed input.
life_cell = _template(
    "life_cell",
    8,
    8,
    [
        # west-facing (left) side: W link pair and NW diagonal
        ("o3", "out", 0, 2),
        ("n3", "in", 0, 3),
        ("n0", "in", 0, 5),
        ("o0", "out", 0, 6),
        # east-facing (right) side: E link pair and SE diagonal
        ("n4", "in", 8, 2),
        ("o4", "out", 8, 3),
        ("o7", "out", 8, 5),
        ("n7", "in", 8, 6),
        # north-facing (top) side: N link pair, NE diagonal, seed data
        ("data", "in", 1, 8),
        ("o1", "out", 3, 8),
        ("n1", "in", 4, 8),
        ("n2", "in", 5, 8),
        ("o2", "out", 6, 8),
        # south-facing (bottom) side: S link pair, SW diagonal, control
        ("n5", "in", 1, 0),
        ("o5", "out", 2, 0),
        ("n6", "in", 3, 0),
        ("o6", "out", 4, 0),
        ("clk", "in", 5, 0),
        ("load", "in", 6, 0),
    ],
)

life_controller = _template(
    "life_controller",
    10,
    10,
    [
        # left side: clocking and the system interface
        ("clk", "in", 0, 2),
        ("run", "in", 0, 4),
        ("reset", "in", 0, 6),
        ("tick", "in", 0, 8),
        # right side faces the cell array: row clocks and load enables
        ("rowclk0", "out", 10, 0),
        ("load0", "out", 10, 1),
        ("rowclk1", "out", 10, 2),
        ("load1", "out", 10, 3),
        ("rowclk2", "out", 10, 4),
        ("load2", "out", 10, 5),
        ("rowclk3", "out", 10, 6),
        ("load3", "out", 10, 7),
        ("rowclk4", "out", 10, 8),
        ("load4", "out", 10, 9),
        # top side: column seed data
        ("data0", "out", 1, 10),
        ("data1", "out", 3, 10),
        ("data2", "out", 5, 10),
        ("data3", "out", 7, 10),
        ("data4", "out", 9, 10),
        # bottom side: clock-generator handshake and completion flag
        ("enable", "out", 4, 0),
        ("done", "out", 6, 0),
    ],
)

clock_generator = _template(
    "clock_generator",
    6,
    6,
    [
        ("clk_in", "in", 0, 2),
        ("enable", "in", 0, 4),
        ("clk", "out", 6, 2),
        ("tick", "out", 6, 4),
    ],
)

TEMPLATES: dict[str, Callable[[str], Module]] = {
    "buf": buf,
    "inv": inv,
    "and2": and2,
    "or2": or2,
    "xor2": xor2,
    "dff": dff,
    "mux2": mux2,
    "fulladder": fulladder,
    "register": register,
    "alu": alu,
    "controller": controller,
    "life_cell": life_cell,
    "life_controller": life_controller,
    "clock_generator": clock_generator,
}


def instantiate(template: str, instance: str) -> Module:
    """Create an instance of a named template."""
    try:
        factory = TEMPLATES[template]
    except KeyError:
        raise KeyError(f"unknown template {template!r}") from None
    return factory(instance)
