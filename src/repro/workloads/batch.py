"""Batch workload sources for the job service.

A batch workload is simply *many networks*; this module turns a small
declarative spec (the ``workload`` stanza of an ``artwork-batch``
manifest) into a list of validated networks.  Three generators:

* ``random``   — seeded :func:`random_network` sweeps (seed, seed+1, …),
* ``datapath`` — growing ``lanes x stages`` pipelined datapaths,
* ``examples`` — the paper's two worked examples, cycled.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.netlist import Network
from .datapath import datapath_network
from .examples import example1_string, example2_controller
from .random_nets import RandomNetworkSpec, random_network

KINDS = ("random", "datapath", "examples")


@dataclass(frozen=True)
class BatchWorkloadSpec:
    """Shape of a generated batch of networks."""

    kind: str = "random"
    count: int = 20
    seed: int = 0
    #: ``random`` only: modules per network and extra-net knobs.
    modules: int = 8
    extra_nets: int = 3
    system_terminals: int = 2

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown workload kind {self.kind!r} (know {KINDS})")
        if self.count < 1:
            raise ValueError("workload count must be at least 1")


def batch_networks(spec: BatchWorkloadSpec | None = None, **overrides) -> list[Network]:
    """Generate the networks a workload spec describes."""
    spec = spec or BatchWorkloadSpec()
    if overrides:
        spec = BatchWorkloadSpec(**{**spec.__dict__, **overrides})
    if spec.kind == "random":
        return [
            random_network(
                RandomNetworkSpec(
                    modules=spec.modules,
                    extra_nets=spec.extra_nets,
                    system_terminals=spec.system_terminals,
                    seed=spec.seed + i,
                )
            )
            for i in range(spec.count)
        ]
    if spec.kind == "datapath":
        # Sweep lanes 1..3 and grow stages every full lane cycle.
        return [
            datapath_network(lanes=1 + i % 3, stages=2 + i // 3)
            for i in range(spec.count)
        ]
    makers = (example1_string, example2_controller)
    return [makers[i % len(makers)]() for i in range(spec.count)]


def workload_from_dict(data: dict) -> list[Network]:
    """Build a batch from a manifest's ``workload`` stanza."""
    known = set(BatchWorkloadSpec.__dataclass_fields__)
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown workload key(s): {sorted(unknown)}")
    return batch_networks(BatchWorkloadSpec(**data))
