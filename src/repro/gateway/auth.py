"""Bearer-token authentication for the gateway.

Deliberately simple: a static token set checked with constant-time
comparison.  Tokens arrive either as ``Authorization: Bearer <token>``
or ``X-API-Key: <token>``.  When no tokens are configured the gateway
is open (the default for local/CI use); ``/healthz`` and ``/metrics``
are always unauthenticated so probes and scrapers keep working during
credential rotation.
"""

from __future__ import annotations

import hmac
import os
from typing import Iterable


class TokenAuth:
    """Static-token authorizer (empty token set == auth disabled)."""

    #: Environment variable ``artwork-serve`` reads a token from by default.
    ENV_VAR = "ARTWORK_SERVE_TOKEN"

    def __init__(self, tokens: Iterable[str] = ()):
        self.tokens = tuple(t for t in tokens if t)

    @classmethod
    def from_env(cls, var: str | None = None) -> "TokenAuth":
        value = os.environ.get(var or cls.ENV_VAR, "")
        return cls([value] if value else [])

    @property
    def enabled(self) -> bool:
        return bool(self.tokens)

    def presented_token(self, headers: dict[str, str]) -> str | None:
        """Extract the credential from parsed (lower-cased) headers."""
        authorization = headers.get("authorization", "")
        scheme, _sep, value = authorization.partition(" ")
        if scheme.lower() == "bearer" and value.strip():
            return value.strip()
        return headers.get("x-api-key") or None

    def authorize(self, headers: dict[str, str], query_token: str | None = None) -> bool:
        """True when the request may proceed (always, if auth is off).

        ``query_token`` is the ``?token=`` escape hatch for WebSocket
        clients that cannot set an ``Authorization`` header.
        """
        if not self.enabled:
            return True
        presented = self.presented_token(headers) or query_token
        if presented is None:
            return False
        # Compare against every token so timing never reveals which
        # (if any) prefix-matched.
        ok = False
        for token in self.tokens:
            ok |= hmac.compare_digest(presented, token)
        return ok
