"""Durable write-ahead journal of accepted gateway jobs.

``artwork-serve`` used to hold its job table only in memory: a restart
(deploy, OOM kill, power cut) silently dropped every accepted-but-
unfinished job even though the client had already received its job id.
The journal closes that window.  Before a job is handed to the worker
pool the gateway appends an ``accepted`` record — spec payload, digest,
job id, trace id, optional deadline — and every later transition
(``dispatched``, ``done``) is appended too.  On boot the gateway replays
the journal: jobs with no terminal record are resubmitted **with their
original job ids**, so a client polling ``GET /v1/jobs/{id}`` across a
daemon restart still converges.  Replay is idempotent by construction —
the content digest dedups against the result cache (a job that actually
finished before the crash is served from cache, not re-executed).

Format: one JSON object per line (JSONL), append-only, like
:mod:`repro.obs.runlog`::

    {"op": "accepted", "job": "j000007", "digest": "...", "name": ...,
     "payload": {...JobSpec.to_dict()...}, "trace": "...", "deadline": ...,
     "ts": 1754650000.123}
    {"op": "dispatched", "job": "j000007", "ts": ...}
    {"op": "done", "job": "j000007", "status": "ok", "ts": ...}

Durability is governed by an explicit fsync policy:

``always``
    ``fsync`` after every append — an accepted job survives SIGKILL the
    moment the client has its id (the default; ~100µs per job).
``interval``
    ``flush`` every append, ``fsync`` at most once per
    ``fsync_interval`` seconds — bounded loss window, higher throughput.
``never``
    ``flush`` only; the OS decides (tests, tmpfs).

Loading is corrupt-tolerant the same way the runlog is: an unparsable
*last* line is a torn tail from a mid-append crash and is dropped
silently; unparsable interior lines are skipped and counted.  The
journal compacts itself — terminal jobs are purged by an atomic
rewrite (temp file + ``os.replace``) on boot and every
``compact_threshold`` completions — so the file stays proportional to
the live job count, not traffic history.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..faults import get_faults

#: Journal operations.
OP_ACCEPTED = "accepted"
OP_DISPATCHED = "dispatched"
OP_DONE = "done"

#: fsync policies (see module docstring).
FSYNC_POLICIES = ("always", "interval", "never")


@dataclass
class JournalEntry:
    """One accepted job as reconstructed from (or written to) the journal."""

    job_id: str
    digest: str
    name: str = ""
    payload: dict = field(default_factory=dict)
    trace_id: str | None = None
    #: Absolute epoch deadline (seconds), when the client set one.
    deadline: float | None = None
    accepted_ts: float = 0.0
    #: ``accepted`` or ``dispatched`` while live; terminal jobs leave the table.
    state: str = OP_ACCEPTED

    def to_record(self) -> dict:
        record = {
            "op": OP_ACCEPTED,
            "job": self.job_id,
            "digest": self.digest,
            "name": self.name,
            "payload": self.payload,
            "ts": self.accepted_ts,
        }
        if self.trace_id:
            record["trace"] = self.trace_id
        if self.deadline is not None:
            record["deadline"] = self.deadline
        return record


@dataclass
class JournalStats:
    """Load/compaction accounting, surfaced on ``/v1/stats``."""

    appended: int = 0
    replayed: int = 0
    corrupt_lines: int = 0
    torn_tail: bool = False
    compactions: int = 0
    fsyncs: int = 0


class JobJournal:
    """Append-only journal over one JSONL file; thread-safe appends."""

    def __init__(
        self,
        path: str | Path,
        *,
        fsync: str = "always",
        fsync_interval: float = 0.05,
        compact_threshold: int = 512,
    ):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.fsync_policy = fsync
        self.fsync_interval = fsync_interval
        self.compact_threshold = compact_threshold
        self.stats = JournalStats()
        self._lock = threading.Lock()
        self._live: dict[str, JournalEntry] = {}
        self._terminal_since_compact = 0
        self._last_fsync = 0.0
        self._load()
        self._fh = open(self.path, "ab")

    # -- recovery -------------------------------------------------------

    def _load(self) -> None:
        """Rebuild the live-job table from disk (tolerating a torn tail)."""
        if not self.path.exists():
            return
        lines = self.path.read_bytes().splitlines()
        for i, raw in enumerate(lines):
            if not raw.strip():
                continue
            try:
                record = json.loads(raw)
                op = record["op"]
                job_id = record["job"]
            except (ValueError, KeyError, TypeError):
                if i == len(lines) - 1:
                    # A mid-append crash leaves exactly one torn last line.
                    self.stats.torn_tail = True
                else:
                    self.stats.corrupt_lines += 1
                continue
            if op == OP_ACCEPTED:
                self._live[job_id] = JournalEntry(
                    job_id=job_id,
                    digest=str(record.get("digest", "")),
                    name=str(record.get("name", "")),
                    payload=record.get("payload") or {},
                    trace_id=record.get("trace"),
                    deadline=record.get("deadline"),
                    accepted_ts=float(record.get("ts", 0.0) or 0.0),
                    state=OP_ACCEPTED,
                )
            elif op == OP_DISPATCHED:
                entry = self._live.get(job_id)
                if entry is not None:
                    entry.state = OP_DISPATCHED
            elif op == OP_DONE:
                self._live.pop(job_id, None)

    def replay(self) -> list[JournalEntry]:
        """Jobs accepted but never finished, in acceptance order."""
        with self._lock:
            entries = sorted(self._live.values(), key=lambda e: (e.accepted_ts, e.job_id))
            self.stats.replayed = len(entries)
            return entries

    def max_job_seq(self) -> int:
        """Highest numeric suffix among live job ids (``j000042`` → 42);
        the gateway restarts its id counter above this so replayed and
        fresh jobs never collide."""
        best = 0
        with self._lock:
            for job_id in self._live:
                digits = "".join(ch for ch in job_id if ch.isdigit())
                if digits:
                    best = max(best, int(digits))
        return best

    # -- appends --------------------------------------------------------

    def _append(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":")).encode() + b"\n"
        fault = get_faults().check("journal.append")
        if fault is not None and fault.kind == "corrupt":
            # Simulate a power cut mid-write: half the line, no newline,
            # then the "machine dies" (the caller sees an IO error).
            self._fh.write(line[: max(1, len(line) // 2)])
            self._fh.flush()
            raise OSError(f"injected torn write at {self.path}")
        if fault is not None and fault.kind == "io":
            raise OSError(f"injected io fault appending to {self.path}")
        self._fh.write(line)
        self.stats.appended += 1
        if self.fsync_policy == "always":
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self.stats.fsyncs += 1
        elif self.fsync_policy == "interval":
            self._fh.flush()
            now = time.monotonic()
            if now - self._last_fsync >= self.fsync_interval:
                os.fsync(self._fh.fileno())
                self.stats.fsyncs += 1
                self._last_fsync = now
        else:
            self._fh.flush()

    def accepted(
        self,
        job_id: str,
        digest: str,
        payload: dict,
        *,
        name: str = "",
        trace_id: str | None = None,
        deadline: float | None = None,
    ) -> JournalEntry:
        entry = JournalEntry(
            job_id=job_id,
            digest=digest,
            name=name,
            payload=payload,
            trace_id=trace_id,
            deadline=deadline,
            accepted_ts=time.time(),
        )
        with self._lock:
            self._live[job_id] = entry
            self._append(entry.to_record())
        return entry

    def dispatched(self, job_id: str) -> None:
        with self._lock:
            entry = self._live.get(job_id)
            if entry is None:
                return
            entry.state = OP_DISPATCHED
            self._append({"op": OP_DISPATCHED, "job": job_id, "ts": time.time()})

    def done(self, job_id: str, status: str) -> None:
        with self._lock:
            if self._live.pop(job_id, None) is None:
                return
            self._append(
                {"op": OP_DONE, "job": job_id, "status": status, "ts": time.time()}
            )
            self._terminal_since_compact += 1
            if self._terminal_since_compact >= self.compact_threshold:
                self._compact_locked()

    #: Journal an already-accepted (replayed) entry again without
    #: re-stamping — used only by compaction, which owns the lock.

    # -- compaction -----------------------------------------------------

    def compact(self) -> int:
        """Atomically rewrite the journal keeping only live jobs.

        Returns the number of live entries retained.  Safe at any point;
        the gateway runs it once per boot after replay and the journal
        triggers it itself every ``compact_threshold`` completions.
        """
        with self._lock:
            return self._compact_locked()

    def _compact_locked(self) -> int:
        entries = sorted(self._live.values(), key=lambda e: (e.accepted_ts, e.job_id))
        tmp = self.path.with_suffix(self.path.suffix + ".compact")
        with open(tmp, "wb") as out:
            for entry in entries:
                out.write(json.dumps(entry.to_record(), separators=(",", ":")).encode() + b"\n")
                if entry.state == OP_DISPATCHED:
                    out.write(
                        json.dumps(
                            {"op": OP_DISPATCHED, "job": entry.job_id, "ts": entry.accepted_ts},
                            separators=(",", ":"),
                        ).encode()
                        + b"\n"
                    )
            out.flush()
            os.fsync(out.fileno())
        self._fh.close()
        os.replace(tmp, self.path)
        self._fh = open(self.path, "ab")
        self._terminal_since_compact = 0
        self.stats.compactions += 1
        return len(entries)

    # -- introspection / lifecycle --------------------------------------

    @property
    def live_jobs(self) -> int:
        with self._lock:
            return len(self._live)

    def snapshot(self) -> dict:
        """Stats block for ``/v1/stats`` and ``artwork-inspect journal``."""
        with self._lock:
            return {
                "path": str(self.path),
                "fsync": self.fsync_policy,
                "live_jobs": len(self._live),
                "appended": self.stats.appended,
                "replayed": self.stats.replayed,
                "corrupt_lines": self.stats.corrupt_lines,
                "torn_tail": self.stats.torn_tail,
                "compactions": self.stats.compactions,
                "fsyncs": self.stats.fsyncs,
            }

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()
                try:
                    os.fsync(self._fh.fileno())
                except OSError:  # pragma: no cover - fd already invalid
                    pass
                self._fh.close()

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def read_journal(path: str | Path) -> tuple[list[dict], dict]:
    """Read a journal file without opening it for appends — the
    ``artwork-inspect journal`` view.  Returns ``(records, summary)``
    where records carry every parsed op and the summary aggregates
    per-job state (live vs terminal) plus corruption accounting."""
    path = Path(path)
    records: list[dict] = []
    corrupt = 0
    torn = False
    if path.exists():
        lines = path.read_bytes().splitlines()
        for i, raw in enumerate(lines):
            if not raw.strip():
                continue
            try:
                record = json.loads(raw)
                record["op"], record["job"]
            except (ValueError, KeyError, TypeError):
                if i == len(lines) - 1:
                    torn = True
                else:
                    corrupt += 1
                continue
            records.append(record)
    states: dict[str, str] = {}
    statuses: dict[str, str] = {}
    for record in records:
        if record["op"] == OP_DONE:
            statuses[record["job"]] = str(record.get("status", "?"))
        states[record["job"]] = record["op"]
    live = {job: op for job, op in states.items() if op != OP_DONE}
    summary = {
        "path": str(path),
        "records": len(records),
        "jobs": len(states),
        "live": len(live),
        "live_jobs": dict(sorted(live.items())),
        "statuses": dict(sorted(statuses.items())),
        "corrupt_lines": corrupt,
        "torn_tail": torn,
    }
    return records, summary
