"""Minimal HTTP/1.1 and RFC 6455 WebSocket wire layer (stdlib only).

The gateway deliberately avoids web-framework dependencies: this module
is the whole wire protocol — an asyncio-streams HTTP/1.1 request reader
with keep-alive, a response serializer, and the WebSocket handshake and
frame codec shared by the async server side and the small synchronous
client (:class:`HttpClient` / :class:`WebSocketClient`) the tests,
benchmarks and CI smoke job drive the daemon with.

Scope is intentionally narrow: ``Content-Length`` bodies only (chunked
uploads are answered with 501), a bounded header block and body, and
text WebSocket frames with masking per the RFC (client frames masked,
server frames not).
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import os
import socket
import struct
import time
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

#: Upper bounds keeping one bad client from ballooning gateway memory.
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 4 * 1024 * 1024

#: RFC 6455 handshake GUID.
WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: WebSocket opcodes we speak.
OP_TEXT, OP_CLOSE, OP_PING, OP_PONG = 0x1, 0x8, 0x9, 0xA

REASONS = {
    200: "OK", 201: "Created", 202: "Accepted", 204: "No Content",
    400: "Bad Request", 401: "Unauthorized", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout", 409: "Conflict",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 501: "Not Implemented",
    503: "Service Unavailable",
}


class ProtocolError(ValueError):
    """Malformed request/frame; carries the HTTP status to answer with."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


@dataclass
class HTTPRequest:
    """One parsed request (headers lower-cased, query already decoded)."""

    method: str
    target: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes = b""
    version: str = "HTTP/1.1"
    #: Wall-clock arrival time — anchors the request's root trace span.
    received_at: float = field(default_factory=time.time)

    @property
    def keep_alive(self) -> bool:
        conn = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return conn == "keep-alive"
        return "close" not in conn

    @property
    def wants_websocket(self) -> bool:
        return (
            "websocket" in self.headers.get("upgrade", "").lower()
            and "upgrade" in self.headers.get("connection", "").lower()
        )

    def json(self) -> dict:
        try:
            data = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"body is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ProtocolError("JSON body must be an object")
        return data


async def read_request(
    reader: asyncio.StreamReader, *, max_body: int = MAX_BODY_BYTES
) -> HTTPRequest | None:
    """Read one request off the stream; ``None`` on clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError("header block too large", 413) from exc
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError("header block too large", 413)
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise ProtocolError(f"malformed request line: {lines[0]!r}")
    method, target, version = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise ProtocolError("chunked uploads not supported", 501)
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise ProtocolError("bad Content-Length") from exc
        if length < 0:
            raise ProtocolError("bad Content-Length")
        if length > max_body:
            raise ProtocolError("body too large", 413)
        body = await reader.readexactly(length)
    split = urlsplit(target)
    return HTTPRequest(
        method=method.upper(),
        target=target,
        path=unquote(split.path),
        query={k: v for k, v in parse_qsl(split.query)},
        headers=headers,
        body=body,
        version=version,
    )


def render_response(
    status: int,
    body: bytes | str = b"",
    *,
    content_type: str = "application/json",
    headers: dict[str, str] | None = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialize one HTTP/1.1 response (always with Content-Length)."""
    if isinstance(body, str):
        body = body.encode("utf-8")
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    out_headers = {
        "content-type": content_type,
        "content-length": str(len(body)),
        "connection": "keep-alive" if keep_alive else "close",
    }
    out_headers.update({k.lower(): str(v) for k, v in (headers or {}).items()})
    lines.extend(f"{name}: {value}" for name, value in out_headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_body(data: dict | list, *, indent: int | None = None) -> bytes:
    return json.dumps(data, indent=indent, sort_keys=False).encode("utf-8")


# -- WebSocket framing (shared by server and test client) -------------------


def ws_accept_key(client_key: str) -> str:
    digest = hashlib.sha1((client_key + WS_GUID).encode("latin-1")).digest()
    return base64.b64encode(digest).decode("latin-1")


def ws_handshake_response(
    request: HTTPRequest, *, extra_headers: dict[str, str] | None = None
) -> bytes:
    key = request.headers.get("sec-websocket-key")
    if not key or request.headers.get("sec-websocket-version") != "13":
        raise ProtocolError("bad websocket handshake")
    extra = "".join(
        f"{name.lower()}: {value}\r\n"
        for name, value in (extra_headers or {}).items()
    )
    head = (
        "HTTP/1.1 101 Switching Protocols\r\n"
        "upgrade: websocket\r\n"
        "connection: Upgrade\r\n"
        f"sec-websocket-accept: {ws_accept_key(key)}\r\n" + extra + "\r\n"
    )
    return head.encode("latin-1")


def ws_encode_frame(payload: bytes, *, opcode: int = OP_TEXT, mask: bool = False) -> bytes:
    """One FIN frame.  Clients must mask (RFC 6455 §5.3); servers must not."""
    head = bytearray([0x80 | opcode])
    length = len(payload)
    mask_bit = 0x80 if mask else 0
    if length < 126:
        head.append(mask_bit | length)
    elif length < 1 << 16:
        head.append(mask_bit | 126)
        head += struct.pack(">H", length)
    else:
        head.append(mask_bit | 127)
        head += struct.pack(">Q", length)
    if mask:
        key = os.urandom(4)
        head += key
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(head) + payload


def _ws_parse_head(two: bytes) -> tuple[int, bool, int]:
    opcode = two[0] & 0x0F
    if not two[0] & 0x80:
        raise ProtocolError("fragmented websocket frames not supported")
    return opcode, bool(two[1] & 0x80), two[1] & 0x7F


async def ws_read_frame(reader: asyncio.StreamReader) -> tuple[int, bytes]:
    """Read one frame; returns ``(opcode, unmasked payload)``."""
    opcode, masked, length = _ws_parse_head(await reader.readexactly(2))
    if length == 126:
        (length,) = struct.unpack(">H", await reader.readexactly(2))
    elif length == 127:
        (length,) = struct.unpack(">Q", await reader.readexactly(8))
    if length > MAX_BODY_BYTES:
        raise ProtocolError("websocket frame too large", 413)
    key = await reader.readexactly(4) if masked else b""
    payload = await reader.readexactly(length)
    if masked:
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return opcode, payload


# -- synchronous clients (tests, benchmarks, CI smoke) ----------------------


@dataclass
class HttpResponse:
    status: int
    headers: dict[str, str]
    body: bytes

    def json(self) -> dict:
        return json.loads(self.body.decode("utf-8"))


class HttpClient:
    """Tiny keep-alive HTTP/1.1 client over a plain socket.

    Exists so the benchmarks measure the daemon, not a client library:
    one persistent connection, no redirects, no TLS.
    """

    def __init__(self, host: str, port: int, *, token: str | None = None, timeout: float = 30.0):
        self.host, self.port, self.token, self.timeout = host, port, token, timeout
        self._sock: socket.socket | None = None
        self._buffer = b""

    def _connect(self) -> socket.socket:
        if self._sock is None:
            self._sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        return self._sock

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
                self._buffer = b""

    def __enter__(self) -> "HttpClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def request(
        self,
        method: str,
        path: str,
        body: dict | bytes | None = None,
        *,
        headers: dict[str, str] | None = None,
    ) -> HttpResponse:
        payload = b""
        send_headers = {"host": f"{self.host}:{self.port}"}
        if self.token:
            send_headers["authorization"] = f"Bearer {self.token}"
        if body is not None:
            payload = json_body(body) if isinstance(body, dict) else body
            send_headers["content-type"] = "application/json"
        send_headers["content-length"] = str(len(payload))
        send_headers.update({k.lower(): v for k, v in (headers or {}).items()})
        head = f"{method} {path} HTTP/1.1\r\n" + "".join(
            f"{k}: {v}\r\n" for k, v in send_headers.items()
        )
        message = head.encode("latin-1") + b"\r\n" + payload
        try:
            sock = self._connect()
            sock.sendall(message)
            return self._read_response(sock)
        except (BrokenPipeError, ConnectionResetError):
            # The server timed the idle keep-alive connection out; retry
            # exactly once on a fresh socket.
            self.close()
            sock = self._connect()
            sock.sendall(message)
            return self._read_response(sock)

    def get(self, path: str, **kw) -> HttpResponse:
        return self.request("GET", path, **kw)

    def post(self, path: str, body: dict | bytes, **kw) -> HttpResponse:
        return self.request("POST", path, body, **kw)

    def _read_until(self, sock: socket.socket, marker: bytes) -> bytes:
        while marker not in self._buffer:
            chunk = sock.recv(65536)
            if not chunk:
                raise ConnectionResetError("server closed mid-response")
            self._buffer += chunk
        head, self._buffer = self._buffer.split(marker, 1)
        return head

    def _read_exactly(self, sock: socket.socket, n: int) -> bytes:
        while len(self._buffer) < n:
            chunk = sock.recv(65536)
            if not chunk:
                raise ConnectionResetError("server closed mid-body")
            self._buffer += chunk
        data, self._buffer = self._buffer[:n], self._buffer[n:]
        return data

    def _read_response(self, sock: socket.socket) -> HttpResponse:
        head = self._read_until(sock, b"\r\n\r\n").decode("latin-1")
        lines = head.split("\r\n")
        status = int(lines[0].split(" ")[1])
        headers = {}
        for line in lines[1:]:
            name, _sep, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        body = self._read_exactly(sock, int(headers.get("content-length", "0")))
        if headers.get("connection", "").lower() == "close":
            self.close()
        return HttpResponse(status=status, headers=headers, body=body)


class WebSocketClient:
    """Synchronous WebSocket client for the ``/events`` endpoints."""

    def __init__(
        self,
        host: str,
        port: int,
        path: str,
        *,
        token: str | None = None,
        timeout: float = 30.0,
    ):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        key = base64.b64encode(os.urandom(16)).decode("latin-1")
        auth = f"authorization: Bearer {token}\r\n" if token else ""
        self._sock.sendall(
            (
                f"GET {path} HTTP/1.1\r\n"
                f"host: {host}:{port}\r\n"
                "upgrade: websocket\r\n"
                "connection: Upgrade\r\n"
                f"sec-websocket-key: {key}\r\n"
                "sec-websocket-version: 13\r\n" + auth + "\r\n"
            ).encode("latin-1")
        )
        self._buffer = b""
        head = self._read_until(b"\r\n\r\n").decode("latin-1")
        lines = head.split("\r\n")
        self.status = int(lines[0].split(" ")[1])
        self.headers: dict[str, str] = {}
        for line in lines[1:]:
            name, sep, value = line.partition(":")
            if sep:
                self.headers[name.strip().lower()] = value.strip()
        if self.status == 101:
            if self.headers.get("sec-websocket-accept") != ws_accept_key(key):
                raise ProtocolError("bad handshake accept key")

    def _read_until(self, marker: bytes) -> bytes:
        while marker not in self._buffer:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionResetError("server closed during handshake")
            self._buffer += chunk
        head, self._buffer = self._buffer.split(marker, 1)
        return head

    def _read_exactly(self, n: int) -> bytes:
        while len(self._buffer) < n:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionResetError("server closed mid-frame")
            self._buffer += chunk
        data, self._buffer = self._buffer[:n], self._buffer[n:]
        return data

    def recv(self) -> tuple[int, bytes]:
        """Next frame as ``(opcode, payload)`` (pongs handled here)."""
        while True:
            opcode, masked, length = _ws_parse_head(self._read_exactly(2))
            if length == 126:
                (length,) = struct.unpack(">H", self._read_exactly(2))
            elif length == 127:
                (length,) = struct.unpack(">Q", self._read_exactly(8))
            payload = self._read_exactly(length)
            if masked:  # servers must not mask; tolerate anyway
                key, payload = payload[:4], payload[4:]
                payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
            if opcode == OP_PING:
                self._sock.sendall(ws_encode_frame(payload, opcode=OP_PONG, mask=True))
                continue
            return opcode, payload

    def recv_json(self) -> dict | None:
        """Next text frame as JSON, or ``None`` when the server closed."""
        opcode, payload = self.recv()
        if opcode == OP_CLOSE:
            return None
        return json.loads(payload.decode("utf-8"))

    def close(self) -> None:
        try:
            self._sock.sendall(ws_encode_frame(b"", opcode=OP_CLOSE, mask=True))
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "WebSocketClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
