"""``repro.gateway`` — serving artwork from a warm process.

The batch pipeline (:mod:`repro.service`) pays Python's import +
process-spawn tax on every invocation; for the sub-30ms jobs this
pipeline produces, that tax dominates wall time.  This package keeps a
pool of forked workers resident — imports warm, caches attached — and
puts a small stdlib-only asyncio HTTP/WebSocket front end over it:

* :mod:`repro.gateway.pool` — the persistent :class:`WorkerPool`
  (fork once, dispatch many; crash isolation, per-job timeouts,
  graceful drain).  Also reusable without the server, e.g. by
  ``artwork-batch --keep-warm``.
* :mod:`repro.gateway.protocol` — minimal HTTP/1.1 + RFC 6455
  WebSocket framing, plus the blocking test/bench clients.
* :mod:`repro.gateway.auth` / :mod:`repro.gateway.rate_limit` —
  bearer-token auth and per-client token buckets.
* :mod:`repro.gateway.journal` — the write-ahead :class:`JobJournal`
  that makes accepted jobs survive restarts and SIGKILL.
* :mod:`repro.gateway.server` — :class:`ArtworkGateway`, the daemon
  behind the ``artwork-serve`` CLI.
"""

from .auth import TokenAuth
from .journal import JobJournal, JournalEntry, read_journal
from .pool import CircuitBreaker, PoolClosedError, WorkerPool
from .protocol import HttpClient, HttpResponse, ProtocolError, WebSocketClient
from .rate_limit import RateLimiter, TokenBucket
from .server import (
    ArtworkGateway,
    GatewayConfig,
    GatewayHandle,
    start_gateway,
)

__all__ = [
    "ArtworkGateway",
    "CircuitBreaker",
    "GatewayConfig",
    "GatewayHandle",
    "HttpClient",
    "HttpResponse",
    "JobJournal",
    "JournalEntry",
    "PoolClosedError",
    "ProtocolError",
    "RateLimiter",
    "TokenAuth",
    "TokenBucket",
    "WebSocketClient",
    "WorkerPool",
    "read_journal",
    "start_gateway",
]
