"""Persistent worker pool: fork once, keep imports and caches warm.

``BENCH_service.json`` showed the per-batch :class:`ProcessPoolExecutor`
does not scale — pool spin-up and per-job pickling dominate sub-30ms
jobs (42.5 jobs/s at 1 worker vs 38.3 at 4).  :class:`WorkerPool` fixes
the structural half of that: worker processes are forked **once** (so
the ``repro`` imports, module library and interned geometry all arrive
warm via copy-on-write), live for the pool's lifetime, and take jobs
one at a time from per-worker inboxes under parent-side dispatch.

Parent-side, one-at-a-time dispatch buys exact failure attribution: the
parent always knows which job a dead worker was holding, so a crashed
worker (segfault, ``os._exit``, OOM kill) is replaced with a fresh fork
and its job is retried once — no poisoned-pool collateral like the
executor rounds had.  Per-job timeouts are enforced inside the worker
via ``SIGALRM`` (:func:`repro.service.scheduler.run_with_timeout`) with
a parent-side hard kill as the backstop for workers stuck outside the
interpreter.

The pool is consumer-agnostic: :class:`~repro.service.scheduler.
BatchScheduler` borrows it for ``artwork-batch --keep-warm``, and the
``artwork-serve`` gateway (:mod:`repro.gateway.server`) drives it from
an asyncio loop via the completion callbacks (which fire on the pool's
collector thread — hop loops before touching loop state).
"""

from __future__ import annotations

import inspect
import multiprocessing
import os
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from ..obs.trace import TraceContext, set_trace_context
from ..service.scheduler import execute_job, run_with_timeout

#: Sentinel for "use the pool's default timeout" in :meth:`WorkerPool.submit`.
_DEFAULT = object()

#: Message tags on the shared results queue (worker -> parent).
_MSG_DONE = "done"
_MSG_EVENT = "event"

#: A job is retried after a worker crash at most this many attempts total.
MAX_ATTEMPTS = 2

ResultCallback = Callable[[dict, int], None]
EventCallback = Callable[[dict], None]


class PoolClosedError(RuntimeError):
    """Submit was called on a closed (or draining) pool."""


def _error_payload(payload: dict, status: str, error: str) -> dict:
    return {
        "status": status,
        "name": payload.get("name", "?"),
        "error": error,
        "metrics": {},
        "timing": {},
        "seconds": 0.0,
    }


def _worker_main(inbox, results, worker, wants_progress) -> None:
    """Child process body: pull one job at a time until the sentinel."""
    while True:
        item = inbox.get()
        if item is None:
            break
        ticket, timeout, payload, trace = item
        pid = os.getpid()
        if wants_progress:
            def emit(stage: str) -> None:
                results.put((_MSG_EVENT, ticket, pid, {"type": "stage", "stage": str(stage)}))

            fn = lambda p: worker(p, progress=emit)  # noqa: E731 - tiny shim
        else:
            fn = worker
        # Install the request's trace context for the duration of the job
        # so worker-side spans carry the gateway's trace id.
        previous = set_trace_context(
            TraceContext.from_dict(trace) if trace else None
        )
        try:
            result = run_with_timeout(fn, timeout, payload)
        except Exception as exc:  # noqa: BLE001 - the loop must survive bad workers
            result = _error_payload(payload, "error", f"{type(exc).__name__}: {exc}")
        finally:
            set_trace_context(previous)
        results.put((_MSG_DONE, ticket, pid, result))


@dataclass
class _Ticket:
    """Parent-side bookkeeping for one submitted job."""

    ticket: int
    payload: dict
    timeout: float | None
    callback: ResultCallback | None
    events: EventCallback | None
    trace: dict | None = None
    attempts: int = 0
    dispatched_at: float | None = None


@dataclass
class _Worker:
    """One live child process plus its private inbox."""

    proc: multiprocessing.process.BaseProcess
    inbox: Any
    busy: _Ticket | None = None
    spawned_at: float = field(default_factory=time.monotonic)

    @property
    def pid(self) -> int | None:
        return self.proc.pid


class WorkerPool:
    """A long-lived fleet of warm worker processes.

    ``worker`` is a picklable module-level callable taking the job
    payload dict (plus an optional ``progress`` keyword — detected by
    signature — for streaming per-stage events back to the parent).
    Completion/event callbacks run on the pool's collector thread.
    """

    def __init__(
        self,
        workers: int = 1,
        *,
        worker: Callable[..., dict] = execute_job,
        timeout: float | None = None,
        retry_crashed: bool = True,
        poll_interval: float = 0.1,
        kill_grace: float = 2.0,
        start_method: str | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.size = workers
        self.worker_fn = worker
        self.timeout = timeout
        self.retry_crashed = retry_crashed
        self.poll_interval = poll_interval
        self.kill_grace = kill_grace
        if start_method is None:
            start_method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        self._ctx = multiprocessing.get_context(start_method)
        self.start_method = start_method
        try:
            params = inspect.signature(worker).parameters
            self._wants_progress = "progress" in params
        except (TypeError, ValueError):  # builtins / C callables
            self._wants_progress = False

        self._lock = threading.RLock()
        self._idle_changed = threading.Condition(self._lock)
        self._workers: list[_Worker] = []
        self._backlog: deque[_Ticket] = deque()
        self._inflight: dict[int, _Ticket] = {}
        self._results: Any = None
        self._collector: threading.Thread | None = None
        self._next_ticket = 0
        self._started = False
        self._closing = False
        self._stopped = threading.Event()
        self.started_at = 0.0
        # Lifetime tallies surfaced by health()/healthz.
        self.dispatched = 0
        self.completed = 0
        self.crashed_jobs = 0
        self.worker_restarts = 0

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "WorkerPool":
        with self._lock:
            if self._started:
                return self
            self._started = True
            self.started_at = time.monotonic()
            self._results = self._ctx.Queue()
            for _ in range(self.size):
                self._workers.append(self._spawn())
            self._collector = threading.Thread(
                target=self._collect, name="pool-collector", daemon=True
            )
            self._collector.start()
        return self

    def _spawn(self) -> _Worker:
        inbox = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(inbox, self._results, self.worker_fn, self._wants_progress),
            daemon=True,
            name="artwork-worker",
        )
        proc.start()
        return _Worker(proc=proc, inbox=inbox)

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- submission -----------------------------------------------------

    def submit(
        self,
        payload: dict,
        *,
        timeout: Any = _DEFAULT,
        callback: ResultCallback | None = None,
        events: EventCallback | None = None,
        trace: dict | None = None,
    ) -> int:
        """Queue one job payload; returns its ticket number.

        ``callback(result_dict, attempts)`` fires exactly once per job on
        the collector thread; ``events`` receives ``{"type": ...}`` dicts
        (a ``dispatched`` marker from the parent, ``stage`` markers from
        inside the worker) as they happen.  ``trace`` is an optional
        serialized :class:`~repro.obs.trace.TraceContext` installed in
        the worker for the job's duration, so worker-side spans join the
        submitting request's trace.
        """
        if not self._started:
            self.start()
        with self._lock:
            if self._closing:
                raise PoolClosedError("pool is draining; not accepting jobs")
            self._next_ticket += 1
            ticket = _Ticket(
                ticket=self._next_ticket,
                payload=payload,
                timeout=self.timeout if timeout is _DEFAULT else timeout,
                callback=callback,
                events=events,
                trace=trace,
            )
            self._inflight[ticket.ticket] = ticket
            self._backlog.append(ticket)
            self._dispatch_locked()
            return ticket.ticket

    def _dispatch_locked(self) -> None:
        """Hand backlog jobs to idle live workers (call with the lock held)."""
        if not self._backlog:
            return
        for worker in self._workers:
            if not self._backlog:
                break
            if worker.busy is not None or not worker.proc.is_alive():
                continue
            ticket = self._backlog.popleft()
            ticket.attempts += 1
            ticket.dispatched_at = time.monotonic()
            worker.busy = ticket
            self.dispatched += 1
            worker.inbox.put(
                (ticket.ticket, ticket.timeout, ticket.payload, ticket.trace)
            )
            if ticket.events is not None:
                self._safe_event(ticket, {"type": "dispatched", "attempt": ticket.attempts})

    @staticmethod
    def _safe_event(ticket: _Ticket, data: dict) -> None:
        try:
            ticket.events(data)  # type: ignore[misc]
        except Exception:  # noqa: BLE001 - consumer bugs must not kill the pool
            pass

    # -- collection and liveness ---------------------------------------

    def _collect(self) -> None:
        last_reap = time.monotonic()
        while True:
            try:
                tag, ticket_id, pid, data = self._results.get(timeout=self.poll_interval)
            except queue.Empty:
                if self._stopped.is_set():
                    break
                self.reap()
                last_reap = time.monotonic()
                continue
            if tag == _MSG_EVENT:
                with self._lock:
                    ticket = self._inflight.get(ticket_id)
                if ticket is not None and ticket.events is not None:
                    self._safe_event(ticket, data)
            elif tag == _MSG_DONE:
                self._finish(ticket_id, pid, data)
            if time.monotonic() - last_reap >= self.poll_interval:
                self.reap()
                last_reap = time.monotonic()

    def _finish(self, ticket_id: int, pid: int | None, result: dict) -> None:
        with self._lock:
            ticket = self._inflight.pop(ticket_id, None)
            if ticket is None:  # duplicate delivery after a crash-retry race
                return
            for worker in self._workers:
                if worker.busy is ticket:
                    worker.busy = None
            self.completed += 1
            if result.get("status") == "crashed":
                self.crashed_jobs += 1
            self._dispatch_locked()
            self._idle_changed.notify_all()
        if ticket.callback is not None:
            try:
                ticket.callback(result, ticket.attempts)
            except Exception:  # noqa: BLE001 - consumer bugs must not kill the pool
                pass

    def reap(self) -> None:
        """One liveness pass: bury dead workers, respawn replacements,
        retry (once) or fail the jobs they were holding, and hard-kill
        workers stuck past their budget.  Cheap; ``/healthz`` calls it
        synchronously so a killed worker is visible within one interval.
        """
        lost: list[tuple[_Ticket, str]] = []
        with self._lock:
            if not self._started or self._stopped.is_set():
                return
            now = time.monotonic()
            for worker in self._workers:
                ticket = worker.busy
                if (
                    worker.proc.is_alive()
                    and ticket is not None
                    and ticket.timeout
                    and ticket.dispatched_at is not None
                    and now - ticket.dispatched_at > ticket.timeout + self.kill_grace
                ):
                    # SIGALRM failed to fire (blocked outside the
                    # interpreter) — the parent-side backstop.
                    worker.proc.kill()
                    worker.proc.join(timeout=5.0)
            for i, worker in enumerate(self._workers):
                if worker.proc.is_alive():
                    continue
                worker.proc.join(timeout=0)
                self.worker_restarts += 1
                if worker.busy is not None:
                    lost.append((worker.busy, "worker process died"))
                    worker.busy = None
                if not self._closing:
                    self._workers[i] = self._spawn()
            for ticket, _why in lost:
                budget = ticket.timeout
                timed_out = (
                    budget is not None
                    and ticket.dispatched_at is not None
                    and now - ticket.dispatched_at > budget
                )
                if timed_out:
                    ticket.attempts = MAX_ATTEMPTS  # a kill is not retried
                elif self.retry_crashed and ticket.attempts < MAX_ATTEMPTS:
                    self._backlog.append(ticket)
                    continue
                status = "timeout" if timed_out else "crashed"
                error = (
                    f"exceeded {budget:g}s budget (worker killed)"
                    if timed_out
                    else "worker process died"
                )
                self._deliver_locked(ticket, _error_payload(ticket.payload, status, error))
            self._dispatch_locked()
            self._idle_changed.notify_all()

    def _deliver_locked(self, ticket: _Ticket, result: dict) -> None:
        self._inflight.pop(ticket.ticket, None)
        self.completed += 1
        if result.get("status") in ("crashed", "cancelled"):
            self.crashed_jobs += 1
        if ticket.callback is not None:
            try:
                ticket.callback(result, ticket.attempts)
            except Exception:  # noqa: BLE001
                pass

    # -- introspection --------------------------------------------------

    def health(self) -> dict:
        """Liveness and load snapshot (the ``/healthz`` body)."""
        with self._lock:
            workers = [
                {
                    "pid": w.pid,
                    "alive": w.proc.is_alive(),
                    "busy": w.busy.ticket if w.busy is not None else None,
                    "state": (
                        "dead"
                        if not w.proc.is_alive()
                        else "busy" if w.busy is not None else "idle"
                    ),
                    "age_s": round(time.monotonic() - w.spawned_at, 3),
                }
                for w in self._workers
            ]
            running = sum(1 for w in self._workers if w.busy is not None)
            return {
                "size": self.size,
                "alive": sum(1 for w in workers if w["alive"]),
                "workers": workers,
                "queued": len(self._backlog),
                "running": running,
                "in_flight": len(self._inflight),
                "dispatched": self.dispatched,
                "completed": self.completed,
                "crashed_jobs": self.crashed_jobs,
                "worker_restarts": self.worker_restarts,
                "start_method": self.start_method,
                "draining": self._closing,
            }

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return len(self._backlog)

    @property
    def in_flight(self) -> int:
        with self._lock:
            return len(self._inflight)

    # -- draining and shutdown ------------------------------------------

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until no jobs are queued or running (True) or until
        ``timeout`` elapses (False)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle_changed:
            while self._inflight:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._idle_changed.wait(timeout=remaining if remaining else 0.25)
            return True

    def close(self, *, drain: bool = True, grace: float = 30.0) -> None:
        """Stop the pool: optionally drain in-flight jobs, then retire
        every worker.  Safe to call twice."""
        with self._lock:
            if not self._started or self._stopped.is_set():
                self._closing = True
                return
            self._closing = True
        if drain:
            self.wait_idle(timeout=grace)
        with self._lock:
            # Anything still pending after the grace period is cancelled.
            for ticket in list(self._inflight.values()):
                self._deliver_locked(
                    ticket, _error_payload(ticket.payload, "cancelled", "pool closed")
                )
            self._backlog.clear()
            workers = list(self._workers)
        for worker in workers:
            try:
                worker.inbox.put(None)
            except (OSError, ValueError):  # queue already torn down
                pass
        for worker in workers:
            worker.proc.join(timeout=2.0)
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(timeout=2.0)
        self._stopped.set()
        if self._collector is not None:
            self._collector.join(timeout=5.0)
        for worker in workers:
            worker.inbox.close()
        if self._results is not None:
            self._results.close()
