"""Persistent worker pool: fork once, keep imports and caches warm.

``BENCH_service.json`` showed the per-batch :class:`ProcessPoolExecutor`
does not scale — pool spin-up and per-job pickling dominate sub-30ms
jobs (42.5 jobs/s at 1 worker vs 38.3 at 4).  :class:`WorkerPool` fixes
the structural half of that: worker processes are forked **once** (so
the ``repro`` imports, module library and interned geometry all arrive
warm via copy-on-write), live for the pool's lifetime, and take jobs
one at a time from per-worker inboxes under parent-side dispatch.

Parent-side, one-at-a-time dispatch buys exact failure attribution: the
parent always knows which job a dead worker was holding, so a crashed
worker (segfault, ``os._exit``, OOM kill) is replaced with a fresh fork
and its job is retried once — no poisoned-pool collateral like the
executor rounds had.  Per-job timeouts are enforced inside the worker
via ``SIGALRM`` (:func:`repro.service.scheduler.run_with_timeout`) with
a parent-side hard kill as the backstop for workers stuck outside the
interpreter.  Results travel over **per-worker pipes** — one writer per
stream — so a SIGKILL/OOM kill can tear only the dead worker's own
channel (a clean EOF to the parent), never a shared lock or the framing
of a queue other workers still depend on.

The pool is *supervised*, not merely self-healing.  Worker deaths feed
a :class:`CircuitBreaker`: repeated unexpected deaths are respawned
under exponential backoff, and a crash loop (``breaker_threshold``
deaths inside ``breaker_window`` seconds) trips the breaker **open** —
respawning stops, and consumers (the gateway) flip into cache-only
degraded mode.  After ``breaker_cooldown`` seconds the breaker goes
**half-open**: one probe worker is forked and the next job's survival
decides — a delivered result closes the breaker and restores the fleet,
another death re-opens it.  Deliberate parent kills (the timeout
backstop, ``close()``) never count against the breaker.

Jobs may carry an absolute **deadline** (epoch seconds): still-queued
jobs whose deadline passed are cancelled before dispatch, and the
worker clamps its ``SIGALRM`` budget to the remaining time, so a
client's patience bounds the compute spent on its behalf end to end.

The pool is consumer-agnostic: :class:`~repro.service.scheduler.
BatchScheduler` borrows it for ``artwork-batch --keep-warm``, and the
``artwork-serve`` gateway (:mod:`repro.gateway.server`) drives it from
an asyncio loop via the completion callbacks (which fire on the pool's
collector thread — hop loops before touching loop state).
"""

from __future__ import annotations

import inspect
import multiprocessing
import os
import threading
import time
from collections import deque
from multiprocessing import connection as mp_connection
from dataclasses import dataclass, field
from typing import Any, Callable

from ..faults import CRASH_EXIT_CODE, get_faults
from ..obs.counters import get_registry
from ..obs.sampler import ensure_sampler, label_thread, set_sampler
from ..obs.trace import TraceContext, set_trace_context
from ..service.scheduler import execute_job, run_with_timeout

#: Sentinel for "use the pool's default timeout" in :meth:`WorkerPool.submit`.
_DEFAULT = object()

#: Message tags on the shared results queue (worker -> parent).
_MSG_DONE = "done"
_MSG_EVENT = "event"

#: A job is retried after a worker crash at most this many attempts total.
MAX_ATTEMPTS = 2

ResultCallback = Callable[[dict, int], None]
EventCallback = Callable[[dict], None]


class PoolClosedError(RuntimeError):
    """Submit was called on a closed (or draining) pool."""


class CircuitBreaker:
    """Crash-loop detector with the classic three-state machine.

    * **closed** — healthy; unexpected worker deaths are tolerated (and
      respawned under backoff) until ``threshold`` of them land inside
      ``window`` seconds.
    * **open** — crash loop declared: no respawns, consumers degrade to
      cache-only.  After ``cooldown`` seconds :meth:`poll` moves on.
    * **half_open** — one probe worker is allowed; the next delivered
      result closes the breaker, another death re-opens it.

    The clock is injectable so tests drive transitions deterministically.
    Not thread-safe by itself — the pool calls it under its own lock.
    """

    def __init__(
        self,
        threshold: int = 5,
        window: float = 30.0,
        cooldown: float = 5.0,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        self.threshold = threshold
        self.window = window
        self.cooldown = cooldown
        self.clock = clock
        self.state = "closed"
        self.trips = 0
        self.heals = 0
        self.opened_at: float | None = None
        self._failures: deque[float] = deque()

    def _prune(self, now: float) -> None:
        while self._failures and now - self._failures[0] > self.window:
            self._failures.popleft()

    def record_failure(self) -> bool:
        """Count one unexpected worker death; True when this trips open."""
        now = self.clock()
        self._prune(now)
        self._failures.append(now)
        if self.state == "half_open" or (
            self.state == "closed" and len(self._failures) >= self.threshold
        ):
            self.state = "open"
            self.opened_at = now
            self.trips += 1
            return True
        return False

    def record_success(self) -> bool:
        """A worker delivered a result; True when this *healed* the breaker."""
        healed = self.state != "closed"
        if healed:
            self.heals += 1
        self.state = "closed"
        self.opened_at = None
        self._failures.clear()
        return healed

    def poll(self) -> str:
        """Advance time-driven transitions (open → half_open); returns state."""
        if (
            self.state == "open"
            and self.opened_at is not None
            and self.clock() - self.opened_at >= self.cooldown
        ):
            self.state = "half_open"
        return self.state

    def allow_respawn(self, alive: int) -> bool:
        """May the pool fork a replacement right now, given ``alive``
        workers already up?  Open: never.  Half-open: one probe only."""
        if self.state == "open":
            return False
        if self.state == "half_open":
            return alive < 1
        return True

    def snapshot(self) -> dict:
        now = self.clock()
        self._prune(now)
        return {
            "state": self.state,
            "failures_in_window": len(self._failures),
            "threshold": self.threshold,
            "window_s": self.window,
            "cooldown_s": self.cooldown,
            "trips": self.trips,
            "heals": self.heals,
            "open_age_s": (
                round(now - self.opened_at, 3) if self.opened_at is not None else None
            ),
        }


def _error_payload(payload: dict, status: str, error: str) -> dict:
    return {
        "status": status,
        "name": payload.get("name", "?"),
        "error": error,
        "metrics": {},
        "timing": {},
        "seconds": 0.0,
    }


def _worker_main(inbox, results, worker, wants_progress) -> None:
    """Child process body: pull one job at a time until the sentinel.

    ``results`` is this worker's **private** pipe connection to the
    parent.  One writer per stream means a SIGKILL (or OOM kill) can
    tear at most this worker's own channel — it can never wedge a lock
    or corrupt framing that other workers depend on, which a shared
    queue's cross-process write lock cannot guarantee.
    """

    def post(msg) -> bool:
        try:
            results.send(msg)
            return True
        except (BrokenPipeError, OSError):  # parent is gone — stop working
            return False

    # Fresh always-on sampler for this child: the forked-in parent
    # sampler is a dead thread holding the *parent's* windows, which
    # must not leak into this worker's job payloads.
    set_sampler(None)
    ensure_sampler()
    label_thread("worker.main")
    while True:
        item = inbox.get()
        if item is None:
            break
        ticket, timeout, payload, trace, deadline = item
        pid = os.getpid()
        if deadline is not None:
            # Clamp the SIGALRM budget to the client's remaining patience;
            # a job whose deadline already passed is not worth starting.
            remaining = deadline - time.time()
            if remaining <= 0.0:
                if not post((
                    _MSG_DONE, ticket, pid,
                    _error_payload(payload, "cancelled", "deadline expired before execution"),
                )):
                    break
                continue
            timeout = min(timeout, remaining) if timeout else remaining
        if wants_progress:
            def emit(stage: str) -> None:
                post((_MSG_EVENT, ticket, pid, {"type": "stage", "stage": str(stage)}))

            fn = lambda p: worker(p, progress=emit)  # noqa: E731 - tiny shim
        else:
            fn = worker
        # Install the request's trace context for the duration of the job
        # so worker-side spans carry the gateway's trace id.
        previous = set_trace_context(
            TraceContext.from_dict(trace) if trace else None
        )
        try:
            # "worker.exec" failpoint: crash kills this process (the
            # supervisor must recover), io surfaces as an error payload,
            # sleep stalls outside the SIGALRM window (the parent-side
            # kill backstop must fire).
            get_faults().fire("worker.exec")
            result = run_with_timeout(fn, timeout, payload)
        except Exception as exc:  # noqa: BLE001 - the loop must survive bad workers
            result = _error_payload(payload, "error", f"{type(exc).__name__}: {exc}")
        finally:
            set_trace_context(previous)
        # "pool.ipc" failpoint: crash = die after doing the work (the
        # parent's retry must dedup), io = the result message is lost
        # (the parent's timeout backstop must reclaim the worker).
        ipc_fault = get_faults().check("pool.ipc")
        if ipc_fault is not None and ipc_fault.kind == "crash":
            os._exit(CRASH_EXIT_CODE)
        if ipc_fault is not None and ipc_fault.kind == "io":
            continue
        if not post((_MSG_DONE, ticket, pid, result)):
            break


@dataclass
class _Ticket:
    """Parent-side bookkeeping for one submitted job."""

    ticket: int
    payload: dict
    timeout: float | None
    callback: ResultCallback | None
    events: EventCallback | None
    trace: dict | None = None
    #: Absolute epoch deadline (``time.time()`` scale, shared with workers).
    deadline: float | None = None
    attempts: int = 0
    dispatched_at: float | None = None


@dataclass
class _Worker:
    """One live child process plus its private inbox and result pipe."""

    proc: multiprocessing.process.BaseProcess
    inbox: Any
    #: Parent-side read end of this worker's result pipe; ``None`` once
    #: the stream hit EOF (worker dead) and was discarded.
    conn: Any = None
    busy: _Ticket | None = None
    spawned_at: float = field(default_factory=time.monotonic)
    #: Set when the parent killed this worker on purpose (timeout
    #: backstop) — deliberate kills never count against the breaker.
    deliberate_kill: bool = False
    #: The death has been accounted (restart tally, breaker, job rescue).
    buried: bool = False
    #: Earliest monotonic time a replacement may be forked (backoff).
    respawn_at: float = 0.0

    @property
    def pid(self) -> int | None:
        return self.proc.pid


class WorkerPool:
    """A long-lived fleet of warm worker processes.

    ``worker`` is a picklable module-level callable taking the job
    payload dict (plus an optional ``progress`` keyword — detected by
    signature — for streaming per-stage events back to the parent).
    Completion/event callbacks run on the pool's collector thread.
    """

    def __init__(
        self,
        workers: int = 1,
        *,
        worker: Callable[..., dict] = execute_job,
        timeout: float | None = None,
        retry_crashed: bool = True,
        poll_interval: float = 0.1,
        kill_grace: float = 2.0,
        start_method: str | None = None,
        restart_backoff: float = 0.5,
        backoff_max: float = 30.0,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.size = workers
        self.worker_fn = worker
        self.timeout = timeout
        self.retry_crashed = retry_crashed
        self.poll_interval = poll_interval
        self.kill_grace = kill_grace
        self.restart_backoff = restart_backoff
        self.backoff_max = backoff_max
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        if start_method is None:
            start_method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        self._ctx = multiprocessing.get_context(start_method)
        self.start_method = start_method
        try:
            params = inspect.signature(worker).parameters
            self._wants_progress = "progress" in params
        except (TypeError, ValueError):  # builtins / C callables
            self._wants_progress = False

        self._lock = threading.RLock()
        self._idle_changed = threading.Condition(self._lock)
        self._workers: list[_Worker] = []
        self._backlog: deque[_Ticket] = deque()
        self._inflight: dict[int, _Ticket] = {}
        self._collector: threading.Thread | None = None
        self._next_ticket = 0
        self._started = False
        self._closing = False
        self._stopped = threading.Event()
        self.started_at = 0.0
        # Lifetime tallies surfaced by health()/healthz.
        self.dispatched = 0
        self.completed = 0
        self.crashed_jobs = 0
        self.worker_restarts = 0
        self.kill_escalated = 0
        self.deadline_cancelled = 0
        #: Unexpected worker deaths since the last delivered result —
        #: drives the exponential respawn backoff.
        self._consecutive_deaths = 0

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "WorkerPool":
        with self._lock:
            if self._started:
                return self
            self._started = True
            self.started_at = time.monotonic()
            for _ in range(self.size):
                self._workers.append(self._spawn())
            self._collector = threading.Thread(
                target=self._collect, name="pool-collector", daemon=True
            )
            self._collector.start()
        return self

    def _spawn(self) -> _Worker:
        inbox = self._ctx.Queue()
        # One private result pipe per worker: results cannot be lost or
        # wedged by *another* worker's death, and this worker's own death
        # turns into a clean EOF on our read end.
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(inbox, send_conn, self.worker_fn, self._wants_progress),
            daemon=True,
            name="artwork-worker",
        )
        proc.start()
        send_conn.close()  # the child holds the only write end now
        return _Worker(proc=proc, inbox=inbox, conn=recv_conn)

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- submission -----------------------------------------------------

    def submit(
        self,
        payload: dict,
        *,
        timeout: Any = _DEFAULT,
        callback: ResultCallback | None = None,
        events: EventCallback | None = None,
        trace: dict | None = None,
        deadline: float | None = None,
    ) -> int:
        """Queue one job payload; returns its ticket number.

        ``callback(result_dict, attempts)`` fires exactly once per job on
        the collector thread; ``events`` receives ``{"type": ...}`` dicts
        (a ``dispatched`` marker from the parent, ``stage`` markers from
        inside the worker) as they happen.  ``trace`` is an optional
        serialized :class:`~repro.obs.trace.TraceContext` installed in
        the worker for the job's duration, so worker-side spans join the
        submitting request's trace.  ``deadline`` is an absolute epoch
        time past which the job is worthless: expired-but-queued jobs are
        cancelled instead of dispatched, and the worker's budget is
        clamped to the remaining time.
        """
        if not self._started:
            self.start()
        with self._lock:
            if self._closing:
                raise PoolClosedError("pool is draining; not accepting jobs")
            self._next_ticket += 1
            ticket = _Ticket(
                ticket=self._next_ticket,
                payload=payload,
                timeout=self.timeout if timeout is _DEFAULT else timeout,
                callback=callback,
                events=events,
                trace=trace,
                deadline=deadline,
            )
            self._inflight[ticket.ticket] = ticket
            self._backlog.append(ticket)
            self._dispatch_locked()
            return ticket.ticket

    def _cancel_expired_locked(self, ticket: _Ticket) -> bool:
        """Cancel ``ticket`` when its deadline already passed (lock held)."""
        if ticket.deadline is None or time.time() <= ticket.deadline:
            return False
        self.deadline_cancelled += 1
        get_registry().inc("pool.deadline_cancelled")
        self._deliver_locked(
            ticket,
            _error_payload(ticket.payload, "cancelled", "deadline expired before dispatch"),
        )
        return True

    def _dispatch_locked(self) -> None:
        """Hand backlog jobs to idle live workers (call with the lock held)."""
        if not self._backlog:
            return
        for worker in self._workers:
            if not self._backlog:
                break
            if worker.busy is not None or not worker.proc.is_alive():
                continue
            while self._backlog:
                ticket = self._backlog.popleft()
                if self._cancel_expired_locked(ticket):
                    continue  # this worker is still free for the next job
                ticket.attempts += 1
                ticket.dispatched_at = time.monotonic()
                worker.busy = ticket
                self.dispatched += 1
                worker.inbox.put(
                    (ticket.ticket, ticket.timeout, ticket.payload,
                     ticket.trace, ticket.deadline)
                )
                if ticket.events is not None:
                    self._safe_event(
                        ticket, {"type": "dispatched", "attempt": ticket.attempts}
                    )
                break

    @staticmethod
    def _safe_event(ticket: _Ticket, data: dict) -> None:
        try:
            ticket.events(data)  # type: ignore[misc]
        except Exception:  # noqa: BLE001 - consumer bugs must not kill the pool
            pass

    # -- collection and liveness ---------------------------------------

    def _collect(self) -> None:
        label_thread("pool.collector")
        last_reap = time.monotonic()
        while True:
            with self._lock:
                conns = [w.conn for w in self._workers if w.conn is not None]
            if conns:
                try:
                    ready = mp_connection.wait(conns, timeout=self.poll_interval)
                except OSError:  # a conn was closed mid-wait by a reaper
                    ready = []
            else:
                time.sleep(self.poll_interval)
                ready = []
            for conn in ready:
                self._pump(conn)
            if self._stopped.is_set() and not ready:
                break
            if not ready or time.monotonic() - last_reap >= self.poll_interval:
                self.reap()
                last_reap = time.monotonic()

    def _pump(self, conn) -> None:
        """Drain every complete frame currently buffered on one worker's
        result pipe.  A torn stream (the worker died, possibly mid-send)
        surfaces as EOF/garbage on *this* channel only — it is discarded
        and :meth:`reap` buries the corpse; no other worker is affected.
        """
        torn = False
        while True:
            try:
                if not conn.poll():
                    break
                msg = conn.recv()
            except (EOFError, OSError):
                torn = True
                break
            except Exception:  # noqa: BLE001 - unpicklable / torn frame
                torn = True
                break
            self._handle_msg(msg)
        if not torn:
            return
        with self._lock:
            for worker in self._workers:
                if worker.conn is conn:
                    worker.conn = None
        try:
            conn.close()
        except OSError:
            pass

    def _handle_msg(self, msg) -> None:
        try:
            tag, ticket_id, pid, data = msg
        except (TypeError, ValueError):  # malformed frame — drop it
            return
        if tag == _MSG_EVENT:
            with self._lock:
                ticket = self._inflight.get(ticket_id)
            if ticket is not None and ticket.events is not None:
                self._safe_event(ticket, data)
        elif tag == _MSG_DONE:
            self._finish(ticket_id, pid, data)

    def _finish(self, ticket_id: int, pid: int | None, result: dict) -> None:
        with self._lock:
            ticket = self._inflight.pop(ticket_id, None)
            if ticket is None:  # duplicate delivery after a crash-retry race
                return
            for worker in self._workers:
                if worker.busy is ticket:
                    worker.busy = None
            self.completed += 1
            if result.get("status") == "crashed":
                self.crashed_jobs += 1
            # A delivered result is proof of a live, working fleet: reset
            # the respawn backoff and heal the breaker if it was tripped.
            self._consecutive_deaths = 0
            if self.breaker.record_success():
                get_registry().inc("pool.breaker_healed")
                for worker in self._workers:
                    worker.respawn_at = 0.0  # restore the fleet now
            self._dispatch_locked()
            self._idle_changed.notify_all()
        if ticket.callback is not None:
            try:
                ticket.callback(result, ticket.attempts)
            except Exception:  # noqa: BLE001 - consumer bugs must not kill the pool
                pass

    def _backoff_delay(self) -> float:
        """Respawn delay after ``_consecutive_deaths`` unexplained deaths:
        the first two are forgiven (instant respawn — transient crashes
        should not add latency), then exponential from ``restart_backoff``."""
        deaths = self._consecutive_deaths
        if deaths <= 2:
            return 0.0
        return min(self.backoff_max, self.restart_backoff * (2.0 ** (deaths - 3)))

    def reap(self) -> None:
        """One supervision pass: hard-kill workers stuck past their
        budget, bury dead workers (feeding the breaker), respawn
        replacements under backoff where the breaker allows, cancel
        expired-deadline backlog jobs, and retry (once) or fail the jobs
        the dead were holding.  Cheap; ``/healthz`` calls it
        synchronously so a killed worker is visible within one interval.
        """
        lost: list[tuple[_Ticket, bool]] = []
        with self._lock:
            if not self._started or self._stopped.is_set():
                return
            now = time.monotonic()
            for worker in self._workers:
                ticket = worker.busy
                if (
                    worker.proc.is_alive()
                    and ticket is not None
                    and ticket.timeout
                    and ticket.dispatched_at is not None
                    and now - ticket.dispatched_at > ticket.timeout + self.kill_grace
                ):
                    # SIGALRM failed to fire (blocked outside the
                    # interpreter) — the parent-side backstop.  Never
                    # block the reaping thread on the corpse: if the
                    # kernel is slow to reap, count the escalation and
                    # collect the body on a later pass.
                    worker.deliberate_kill = True
                    worker.proc.kill()
                    worker.proc.join(timeout=0.5)
                    if worker.proc.is_alive():
                        self.kill_escalated += 1
                        get_registry().inc("pool.kill_escalated")
            for worker in self._workers:
                if worker.proc.is_alive() or worker.buried:
                    continue
                if worker.conn is not None:
                    # The collector has not yet drained this corpse's
                    # result pipe to EOF.  A result sent in the worker's
                    # last instant may still be in flight — burying now
                    # would retry a job that actually finished.  The EOF
                    # makes the pipe readable, so the drain is at most
                    # one poll interval away.
                    continue
                worker.proc.join(timeout=0)
                worker.buried = True
                self.worker_restarts += 1
                if worker.busy is not None:
                    lost.append((worker.busy, worker.deliberate_kill))
                    worker.busy = None
                if not worker.deliberate_kill:
                    self._consecutive_deaths += 1
                    if self.breaker.record_failure():
                        get_registry().inc("pool.breaker_tripped")
                    worker.respawn_at = now + self._backoff_delay()
            self.breaker.poll()
            alive = sum(1 for w in self._workers if w.proc.is_alive())
            for i, worker in enumerate(self._workers):
                if worker.proc.is_alive() or self._closing:
                    continue
                if not worker.buried:
                    # Still waiting on the result-pipe drain; replacing
                    # the corpse now would drop its in-flight ticket.
                    continue
                if now < worker.respawn_at or not self.breaker.allow_respawn(alive):
                    continue
                self._workers[i] = self._spawn()
                alive += 1
            # Queued jobs whose deadline already lapsed will never be
            # worth dispatching — cancel them while they still have a
            # caller to notice.
            if self._backlog:
                still_live = [
                    t for t in self._backlog if not self._cancel_expired_locked(t)
                ]
                if len(still_live) != len(self._backlog):
                    self._backlog = deque(still_live)
            for ticket, deliberate in lost:
                budget = ticket.timeout
                timed_out = deliberate or (
                    budget is not None
                    and ticket.dispatched_at is not None
                    and now - ticket.dispatched_at > budget
                )
                if timed_out:
                    ticket.attempts = MAX_ATTEMPTS  # a kill is not retried
                elif self.retry_crashed and ticket.attempts < MAX_ATTEMPTS:
                    self._backlog.append(ticket)
                    continue
                status = "timeout" if timed_out else "crashed"
                error = (
                    f"exceeded {budget:g}s budget (worker killed)"
                    if timed_out and budget is not None
                    else "worker process died"
                )
                self._deliver_locked(ticket, _error_payload(ticket.payload, status, error))
            self._dispatch_locked()
            self._idle_changed.notify_all()

    def _deliver_locked(self, ticket: _Ticket, result: dict) -> None:
        self._inflight.pop(ticket.ticket, None)
        self.completed += 1
        if result.get("status") in ("crashed", "cancelled"):
            self.crashed_jobs += 1
        if ticket.callback is not None:
            try:
                ticket.callback(result, ticket.attempts)
            except Exception:  # noqa: BLE001
                pass

    # -- introspection --------------------------------------------------

    def health(self) -> dict:
        """Liveness and load snapshot (the ``/healthz`` body)."""
        with self._lock:
            workers = [
                {
                    "pid": w.pid,
                    "alive": w.proc.is_alive(),
                    "busy": w.busy.ticket if w.busy is not None else None,
                    "state": (
                        "dead"
                        if not w.proc.is_alive()
                        else "busy" if w.busy is not None else "idle"
                    ),
                    "age_s": round(time.monotonic() - w.spawned_at, 3),
                }
                for w in self._workers
            ]
            running = sum(1 for w in self._workers if w.busy is not None)
            return {
                "size": self.size,
                "alive": sum(1 for w in workers if w["alive"]),
                "workers": workers,
                "queued": len(self._backlog),
                "running": running,
                "in_flight": len(self._inflight),
                "dispatched": self.dispatched,
                "completed": self.completed,
                "crashed_jobs": self.crashed_jobs,
                "worker_restarts": self.worker_restarts,
                "kill_escalated": self.kill_escalated,
                "deadline_cancelled": self.deadline_cancelled,
                "consecutive_deaths": self._consecutive_deaths,
                "breaker": self.breaker.snapshot(),
                "start_method": self.start_method,
                "draining": self._closing,
            }

    @property
    def degraded(self) -> bool:
        """True while the breaker is open: the fleet is in a crash loop
        and consumers should serve from cache only."""
        with self._lock:
            self.breaker.poll()
            return self.breaker.state == "open"

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return len(self._backlog)

    @property
    def in_flight(self) -> int:
        with self._lock:
            return len(self._inflight)

    # -- draining and shutdown ------------------------------------------

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until no jobs are queued or running (True) or until
        ``timeout`` elapses (False)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle_changed:
            while self._inflight:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._idle_changed.wait(timeout=remaining if remaining else 0.25)
            return True

    def close(self, *, drain: bool = True, grace: float = 30.0) -> None:
        """Stop the pool: optionally drain in-flight jobs, then retire
        every worker.  Safe to call twice."""
        with self._lock:
            if not self._started or self._stopped.is_set():
                self._closing = True
                return
            self._closing = True
        if drain:
            self.wait_idle(timeout=grace)
        with self._lock:
            # Anything still pending after the grace period is cancelled.
            for ticket in list(self._inflight.values()):
                self._deliver_locked(
                    ticket, _error_payload(ticket.payload, "cancelled", "pool closed")
                )
            self._backlog.clear()
            workers = list(self._workers)
        for worker in workers:
            try:
                worker.inbox.put(None)
            except (OSError, ValueError):  # queue already torn down
                pass
        for worker in workers:
            worker.proc.join(timeout=2.0)
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(timeout=2.0)
        self._stopped.set()
        if self._collector is not None:
            self._collector.join(timeout=5.0)
        for worker in workers:
            worker.inbox.close()
            if worker.conn is not None:
                try:
                    worker.conn.close()
                except OSError:
                    pass
                worker.conn = None
