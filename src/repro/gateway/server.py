"""``artwork-serve``: the persistent asyncio gateway over a warm pool.

One process, two planes:

* the **asyncio plane** (this module) — an HTTP/1.1 + WebSocket front
  end built on :mod:`repro.gateway.protocol`, owning the job table,
  auth, rate limiting, backpressure and the observability endpoints;
* the **worker plane** — a :class:`~repro.gateway.pool.WorkerPool` of
  forked-once processes that keep ``repro`` imports warm and execute
  :func:`~repro.service.scheduler.execute_job` payloads.

Endpoints::

    POST /v1/jobs             submit a JobSpec JSON -> {"id": ...}
                              (content-digest dedup against the result
                              cache and against in-flight jobs)
    GET  /v1/jobs             recent jobs, newest first
    GET  /v1/jobs/{id}        status + metrics row (?wait=SECONDS to
                              long-poll for completion)
    GET  /v1/jobs/{id}/result full payload (ESCHER text included)
    GET  /v1/jobs/{id}/svg    rendered artwork (image/svg+xml)
    GET  /v1/jobs/{id}/trace  the request's span tree as Chrome trace
                              JSON (gateway -> queue -> worker stages)
    WS   /v1/jobs/{id}/events streamed progress: queued -> running ->
                              stage:placement -> stage:routing -> done
    GET  /v1/stats            windowed RED telemetry (1m/5m/15m qps,
                              error %, p50/p95) + live gauges + the
                              always-on profiler snapshot, JSON
    POST /v1/profile          on-demand high-hz capture (?seconds=N);
                              returns a self-contained flamegraph HTML
    GET  /healthz             worker liveness + queue depth (always open)
    GET  /metrics             Prometheus text from the obs registry

Every request carries a trace id — taken from an incoming
``traceparent`` header or minted here — echoed as ``X-Request-Id`` on
responses (WebSocket handshakes included), stamped on progress events,
log lines and run records, and threaded through the worker pool so the
spans a worker ships back re-parent under the request's root span.

Completed jobs are folded into the obs registry exactly like the batch
scheduler does (worker counters merged, ``service.job_wall_s``
observed) and each served job appends a ``kind="serve"`` RunRecord so
``artwork-inspect`` reports and regression gates cover service traffic.
On SIGTERM the CLI drains: submissions get 503, in-flight jobs finish
(bounded by ``drain_grace``), workers retire, then the loop exits.
"""

from __future__ import annotations

import asyncio
import itertools
import random
import re
import threading
import time
from dataclasses import dataclass, field
from typing import Iterator

from .. import __version__
from ..core.netlist import NetlistError
from ..faults import get_faults
from ..formats.escher import read_escher
from ..obs import Registry, RunLog, get_logger, get_registry, span
from ..obs.prometheus import render_prometheus
from ..obs.runlog import stages_from_spans
from ..obs.sampler import (
    CAPTURE_HZ,
    capture,
    ensure_sampler,
    get_sampler,
    label_thread,
    render_flamegraph_html,
)
from ..obs.trace import (
    Span,
    TraceContext,
    chrome_trace_document,
    trace_context_from_headers,
)
from ..obs.window import WINDOWS, RollingWindow
from ..render.svg import render_svg
from ..service.cache import ResultCache
from ..service.jobs import JobError, JobSpec
from ..service.scheduler import BatchScheduler
from .auth import TokenAuth
from .journal import JobJournal
from .pool import PoolClosedError, WorkerPool
from .protocol import (
    OP_CLOSE,
    OP_PING,
    OP_PONG,
    HTTPRequest,
    ProtocolError,
    json_body,
    read_request,
    render_response,
    ws_encode_frame,
    ws_handshake_response,
    ws_read_frame,
)
from .rate_limit import RateLimiter

#: Longest ``?wait=`` long-poll the server will hold a request open for.
MAX_WAIT_S = 60.0

#: Longest on-demand profile capture (``POST /v1/profile?seconds=``).
MAX_PROFILE_S = 30.0

#: Job states that will never change again.
TERMINAL = ("ok", "error", "timeout", "crashed", "cancelled")

#: Pipeline span names fed into the per-stage rolling windows (the
#: coarse stages an operator watches — per-net spans stay out, they
#: would dwarf everything else in cardinality).
STAGE_WINDOW_SPANS = frozenset({
    "pablo.place", "pablo.partitioning", "pablo.box_formation",
    "pablo.module_placement", "pablo.box_placement",
    "pablo.partition_placement", "pablo.terminal_placement",
    "eureka.route", "eureka.plane", "eureka.claims",
    "eureka.first_pass", "eureka.retry",
})

_SERVER = f"artwork-serve/{__version__}"

#: Jitter source for Retry-After hints (module-level so tests can seed it).
_retry_rng = random.Random()


def _retry_after(seconds: float) -> str:
    """A ``Retry-After`` value with additive jitter (up to +50% plus one
    second) so a burst of rejected clients doesn't retry in lockstep.
    Never below the hinted wait — a 429's token really does need that
    long to exist — and never below 1."""
    jittered = seconds + _retry_rng.uniform(0.0, seconds * 0.5 + 1.0)
    return str(max(1, round(jittered)))


def _walk_span_dicts(roots: list) -> Iterator[dict]:
    """Depth-first walk over serialized span-tree dicts."""
    stack = [r for r in roots if isinstance(r, dict)]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(c for c in node.get("children", []) if isinstance(c, dict))


@dataclass
class GatewayConfig:
    """Everything ``artwork-serve`` is configured by."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port lands on gateway.port
    workers: int = 1
    job_timeout: float | None = 120.0
    auth: TokenAuth = field(default_factory=TokenAuth)
    rate_limit: RateLimiter | None = None
    #: Jobs allowed to wait in the pool backlog before submissions 503.
    max_queue: int = 64
    cache: ResultCache | None = None
    runlog: RunLog | None = None
    #: Write-ahead journal of accepted jobs; replayed on boot so queued
    #: and in-flight work survives a restart or SIGKILL.
    journal: JobJournal | None = None
    drain_grace: float = 10.0
    max_body: int = 4 * 1024 * 1024
    #: Finished jobs kept for status/result queries (oldest evicted).
    max_finished_jobs: int = 4096
    #: Jobs whose end-to-end gateway latency reaches this many seconds
    #: persist their full span tree to the runlog as ``kind="slow"``
    #: exemplars (``None`` disables capture; ``0.0`` captures everything).
    slow_threshold: float | None = 1.0


@dataclass
class Response:
    """What a route handler returns; the connection loop serializes it."""

    status: int
    body: bytes | str = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)


def _json_response(status: int, data: dict | list, **headers: str) -> Response:
    return Response(status, json_body(data), headers=dict(headers))


def _error(status: int, message: str, **headers: str) -> Response:
    return _json_response(status, {"error": message}, **headers)


@dataclass
class RequestContext:
    """Per-request state the connection loop threads through dispatch:
    the trace identity plus gateway-side timing breakdowns."""

    trace: TraceContext
    #: Gateway-side phase durations (``auth_s``, ``parse_s``) measured
    #: as the request moves through dispatch.
    timings: dict[str, float] = field(default_factory=dict)


class ServedJob:
    """Gateway-side record of one submitted job."""

    def __init__(
        self,
        job_id: str,
        spec: JobSpec,
        digest: str,
        *,
        trace: TraceContext | None = None,
        received_at: float | None = None,
        gw_timings: dict[str, float] | None = None,
        deadline: float | None = None,
    ):
        self.id = job_id
        self.spec = spec
        self.digest = digest
        self.status = "queued"
        self.payload: dict | None = None
        self.from_cache = False
        self.attempts = 0
        #: Absolute epoch deadline the client set (None = unbounded).
        self.deadline = deadline
        #: True when this job was resurrected from the journal on boot.
        self.replayed = False
        #: When the submitting HTTP request hit the socket (root span start).
        self.received_at = time.time() if received_at is None else received_at
        self.submitted_at = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.trace = trace
        self.gw_timings = dict(gw_timings or {})
        self.events: list[dict] = []
        self.subscribers: set[asyncio.Queue] = set()
        self.done = asyncio.Event()

    @property
    def finished(self) -> bool:
        return self.status in TERMINAL

    @property
    def trace_id(self) -> str | None:
        return self.trace.trace_id if self.trace is not None else None

    def add_event(self, event: str, **data) -> None:
        entry = {"seq": len(self.events), "event": event, "job": self.id, **data}
        if self.trace is not None:
            entry.setdefault("trace", self.trace.trace_id)
        self.events.append(entry)
        for queue in self.subscribers:
            queue.put_nowait(entry)

    def summary(self) -> dict:
        payload = self.payload or {}
        body = {
            "id": self.id,
            "name": self.spec.name,
            "digest": self.digest,
            "status": self.status,
            "cached": self.from_cache,
            "attempts": self.attempts,
            "trace_id": self.trace_id,
            "deadline": self.deadline,
            "replayed": self.replayed,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "events": len(self.events),
            "links": {
                "self": f"/v1/jobs/{self.id}",
                "result": f"/v1/jobs/{self.id}/result",
                "svg": f"/v1/jobs/{self.id}/svg",
                "events": f"/v1/jobs/{self.id}/events",
                "trace": f"/v1/jobs/{self.id}/trace",
            },
        }
        if self.finished:
            body["seconds"] = payload.get("seconds", 0.0)
            body["metrics"] = payload.get("metrics", {})
            body["timing"] = payload.get("timing", {})
            body["failed_nets"] = payload.get("failed_nets", [])
            if payload.get("error"):
                body["error"] = payload["error"]
        return body

    # -- the per-request span tree --------------------------------------

    def trace_tree(self) -> Span | None:
        """The job's whole life as one span tree: the gateway request at
        the root, auth/parse/queue-wait/worker-exec beneath it, and the
        worker-shipped pipeline spans re-parented under ``worker.exec``
        (shifted from the worker's private timebase onto this one).
        All starts are wall-clock epoch seconds."""
        if not self.finished or self.finished_at is None:
            return None
        root = Span(
            name="gateway.request",
            start=self.received_at,
            duration=max(0.0, self.finished_at - self.received_at),
            attrs={
                "trace_id": self.trace_id or "",
                "method": "POST",
                "path": "/v1/jobs",
                "job": self.id,
                "name": self.spec.name,
                "status": self.status,
                "cached": self.from_cache,
            },
        )
        cursor = self.received_at
        for phase in ("auth", "parse"):
            seconds = float(self.gw_timings.get(f"{phase}_s", 0.0) or 0.0)
            if seconds > 0.0:
                root.children.append(
                    Span(name=f"gateway.{phase}", start=cursor, duration=seconds)
                )
                cursor += seconds
        if self.from_cache:
            root.children.append(
                Span(
                    name="cache.hit",
                    start=self.submitted_at,
                    duration=max(0.0, self.finished_at - self.submitted_at),
                )
            )
            return root
        exec_start = self.started_at if self.started_at is not None else self.finished_at
        worker_roots = [
            Span.from_dict(d)
            for d in (self.payload or {}).get("trace") or []
            if isinstance(d, dict)
        ]
        if worker_roots:
            # ``started_at`` is stamped when the event loop *notices* the
            # pool's dispatched marker, which can lag the worker's actual
            # start; if the shipped forest is wider than the observed exec
            # window, pull exec start back so the forest still ends by
            # ``finished_at`` (the hard wall-clock bound).
            extent = max(r.start + r.duration for r in worker_roots) - min(
                r.start for r in worker_roots
            )
            exec_start = max(
                self.submitted_at, min(exec_start, self.finished_at - extent)
            )
        root.children.append(
            Span(
                name="queue.wait",
                start=self.submitted_at,
                duration=max(0.0, exec_start - self.submitted_at),
            )
        )
        exec_span = Span(
            name="worker.exec",
            start=exec_start,
            duration=max(0.0, self.finished_at - exec_start),
            attrs={"attempts": self.attempts},
        )
        if worker_roots:
            # One shift for the whole forest keeps the worker spans'
            # relative timing intact while anchoring them at exec start.
            offset = exec_start - min(r.start for r in worker_roots)
            exec_span.children.extend(r.shifted(offset) for r in worker_roots)
        root.children.append(exec_span)
        return root


class ArtworkGateway:
    """The daemon: connection handling, job table, worker pool glue."""

    def __init__(self, config: GatewayConfig | None = None, *, pool: WorkerPool | None = None):
        self.config = config or GatewayConfig()
        self.pool = pool or WorkerPool(
            self.config.workers, timeout=self.config.job_timeout
        )
        #: Gateway-local registry backing ``/metrics`` (also mirrored into
        #: the process-global registry, like the batch scheduler does).
        self.registry = Registry()
        #: Rolling RED windows: per endpoint (every HTTP response) and per
        #: pipeline stage (fed as jobs finish).  Swappable attributes so
        #: tests can inject fake-clock windows.
        self.windows = RollingWindow()
        self.stage_windows = RollingWindow()
        self.log = get_logger("gateway")
        self.port: int | None = None
        self.started_at = 0.0
        self._jobs: dict[str, ServedJob] = {}
        self._by_digest: dict[str, str] = {}
        self._finished_ids: list[str] = []
        self._job_counter = itertools.count(1)
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._draining = False
        self._stopped = asyncio.Event()
        self._routes = [
            ("POST", re.compile(r"^/v1/jobs$"), "/v1/jobs", self._post_job),
            ("GET", re.compile(r"^/v1/jobs$"), "/v1/jobs", self._list_jobs),
            ("GET", re.compile(r"^/v1/jobs/([^/]+)$"), "/v1/jobs/{id}", self._job_status),
            ("GET", re.compile(r"^/v1/jobs/([^/]+)/result$"), "/v1/jobs/{id}/result",
             self._job_result),
            ("GET", re.compile(r"^/v1/jobs/([^/]+)/svg$"), "/v1/jobs/{id}/svg",
             self._job_svg),
            ("GET", re.compile(r"^/v1/jobs/([^/]+)/trace$"), "/v1/jobs/{id}/trace",
             self._job_trace),
            ("GET", re.compile(r"^/v1/jobs/([^/]+)/events$"), "/v1/jobs/{id}/events",
             self._job_events_poll),
            ("GET", re.compile(r"^/v1/stats$"), "/v1/stats", self._stats),
            ("POST", re.compile(r"^/v1/profile$"), "/v1/profile", self._profile),
            ("GET", re.compile(r"^/healthz$"), "/healthz", self._healthz),
            ("GET", re.compile(r"^/metrics$"), "/metrics", self._metrics),
        ]
        self._ws_route = re.compile(r"^/v1/jobs/([^/]+)/events$")

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> "ArtworkGateway":
        self._loop = asyncio.get_running_loop()
        # Always-on low-hz profiling of the gateway process itself; the
        # event-loop thread carries no spans while it waits, so label it.
        label_thread("gateway.loop")
        ensure_sampler()
        self.pool.start()
        self._replay_journal()
        self._server = await asyncio.start_server(
            self._on_client, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.time()
        self.log.info(
            "gateway up",
            extra={"fields": {"host": self.config.host, "port": self.port,
                              "workers": self.pool.size}},
        )
        return self

    # -- crash recovery --------------------------------------------------

    def _journal_op(self, op, *args, **kwargs) -> None:
        """Apply one journal operation, absorbing journal IO failures:
        durability must degrade before availability does."""
        if self.config.journal is None:
            return
        try:
            op(*args, **kwargs)
        except OSError as exc:
            self._inc("gateway.journal_errors")
            self.log.warning(
                "journal write failed",
                extra={"fields": {"error": str(exc)}},
            )

    def _replay_journal(self) -> None:
        """Resurrect accepted-but-unfinished jobs from the journal.

        Replayed jobs keep their original ids (clients polling across
        the restart still converge) and go back through the normal
        submission path: the content digest first checks the result
        cache — work that actually finished before the crash is served
        from cache, not executed twice — then the pool.  Runs before the
        listening socket opens, so no fresh submission can race a replay.
        """
        journal = self.config.journal
        if journal is None:
            return
        entries = journal.replay()
        seq = journal.max_job_seq()
        if seq:
            self._job_counter = itertools.count(seq + 1)
        replayed = 0
        for entry in entries:
            try:
                spec = JobSpec.from_dict(entry.payload)
            except Exception as exc:  # noqa: BLE001 - a bad record must not block boot
                self._inc("gateway.journal_replay_failed")
                self.log.warning(
                    "journal entry not replayable",
                    extra={"fields": {"job": entry.job_id, "error": str(exc)}},
                )
                self._journal_op(journal.done, entry.job_id, "error")
                continue
            trace = TraceContext.from_dict({"trace_id": entry.trace_id or ""})
            job = ServedJob(
                entry.job_id, spec, entry.digest or spec.digest,
                trace=trace, received_at=entry.accepted_ts or None,
                deadline=entry.deadline,
            )
            job.replayed = True
            if self._resubmit(job):
                replayed += 1
        journal.compact()
        if entries:
            self._inc("gateway.journal_replayed", replayed)
            self.log.info(
                "journal replayed",
                extra={"fields": {"jobs": len(entries), "resubmitted": replayed,
                                  "path": str(journal.path)}},
            )

    def _resubmit(self, job: ServedJob) -> bool:
        """Install a replayed job and route it to cache or pool; returns
        True when it went back to the pool."""
        journal = self.config.journal
        if self.config.cache is not None:
            payload = self._cache_get(job.spec)
            if payload is not None:
                job.from_cache = True
                self._install_job(job)
                job.add_event("queued", cached=True, replayed=True)
                self._finish_job(job, payload, attempts=0)
                return False
        existing_id = self._by_digest.get(job.digest)
        if existing_id is not None:
            # Two live journal entries with one digest (possible only
            # after journal corruption): the earlier replay owns the
            # work, this id is retired.
            self._journal_op(journal.done, job.id, "cancelled")
            return False
        self._install_job(job)
        self._by_digest[job.digest] = job.id
        job.add_event("queued", digest=job.digest, replayed=True)
        self._submit_to_pool(job)
        return True

    def begin_drain(self) -> None:
        self._draining = True

    async def stop(self, *, drain: bool = True) -> None:
        """Graceful shutdown: refuse new work, finish in-flight jobs,
        retire workers, close connections."""
        self.begin_drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Pool close blocks (it joins processes); keep the loop alive so
        # completion callbacks scheduled via call_soon_threadsafe land.
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None,
            lambda: self.pool.close(drain=drain, grace=self.config.drain_grace),
        )
        # After the drain every surviving job has journaled its terminal
        # record; compact so the next boot replays only what truly hangs.
        if self.config.journal is not None:
            self._journal_op(self.config.journal.compact)
            self.config.journal.close()
        # Give in-flight responses a beat, then drop idle keep-alives.
        await asyncio.sleep(0.05)
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._stopped.set()

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    # -- connection plumbing --------------------------------------------

    async def _on_client(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        peer = writer.get_extra_info("peername") or ("?", 0)
        try:
            while True:
                try:
                    request = await read_request(reader, max_body=self.config.max_body)
                except ProtocolError as exc:
                    writer.write(
                        render_response(
                            exc.status,
                            json_body({"error": str(exc)}),
                            headers={"server": _SERVER},
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                ctx = RequestContext(trace=trace_context_from_headers(request.headers))
                started = time.perf_counter()
                response = await self._dispatch(
                    request, reader, writer, str(peer[0]), ctx
                )
                if response is None:
                    return  # connection consumed (WebSocket stream)
                self._observe_request(request, response, time.perf_counter() - started)
                headers = {
                    "server": _SERVER,
                    "x-request-id": ctx.trace.trace_id,
                    "traceparent": ctx.trace.traceparent(),
                    **response.headers,
                }
                writer.write(
                    render_response(
                        response.status,
                        response.body,
                        content_type=response.content_type,
                        headers=headers,
                        keep_alive=request.keep_alive,
                    )
                )
                await writer.drain()
                if not request.keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass  # drain in progress
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    def _route_template(self, request: HTTPRequest) -> str:
        """The request's endpoint label (``"POST /v1/jobs"``-style) for
        the rolling windows — templates, not raw paths, so per-job URLs
        don't explode series cardinality."""
        if (
            request.method == "GET"
            and request.wants_websocket
            and self._ws_route.match(request.path)
        ):
            return "WS /v1/jobs/{id}/events"
        for method, pattern, template, _handler in self._routes:
            if method == request.method and pattern.match(request.path):
                return f"{method} {template}"
        return "(other)"

    def _observe_request(self, request: HTTPRequest, response: Response, seconds: float) -> None:
        for reg in (self.registry, get_registry()):
            reg.inc("gateway.http_requests")
            reg.inc(f"gateway.http_status.{response.status // 100}xx")
            reg.observe("gateway.request_s", seconds)
        self.windows.observe(
            self._route_template(request), seconds, error=response.status >= 500
        )

    async def _dispatch(
        self,
        request: HTTPRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        peer_host: str,
        ctx: RequestContext,
    ) -> Response | None:
        guarded = request.path.startswith("/v1/")
        if guarded:
            auth_started = time.perf_counter()
            token = self.config.auth.presented_token(request.headers)
            authorized = self.config.auth.authorize(
                request.headers, query_token=request.query.get("token")
            )
            ctx.timings["auth_s"] = time.perf_counter() - auth_started
            if not authorized:
                self.registry.inc("gateway.auth_rejections")
                get_registry().inc("gateway.auth_rejections")
                return _error(
                    401, "missing or invalid token",
                    **{"www-authenticate": 'Bearer realm="artwork-serve"'},
                )
            # /v1/stats is a monitoring read like /healthz: a dashboard
            # polling it must never eat the API clients' token budget.
            if self.config.rate_limit is not None and request.path != "/v1/stats":
                wait = self.config.rate_limit.check(token or peer_host)
                if wait > 0.0:
                    self.registry.inc("gateway.rate_limited")
                    get_registry().inc("gateway.rate_limited")
                    return _error(
                        429, "rate limit exceeded",
                        **{"retry-after": _retry_after(wait)},
                    )
        ws_match = self._ws_route.match(request.path)
        if ws_match and request.method == "GET" and request.wants_websocket:
            with span("gateway.request", method="WS", path=request.path):
                return await self._job_events_ws(
                    request, reader, writer, ws_match.group(1), ctx
                )
        allowed: set[str] = set()
        for method, pattern, _template, handler in self._routes:
            match = pattern.match(request.path)
            if not match:
                continue
            if method != request.method:
                allowed.add(method)
                continue
            with span("gateway.request", method=request.method, path=request.path):
                try:
                    return await handler(request, match, ctx)
                except ProtocolError as exc:  # e.g. a non-JSON body
                    return _error(exc.status, str(exc))
        if allowed:
            return _error(405, "method not allowed", allow=", ".join(sorted(allowed)))
        return _error(404, f"no such endpoint: {request.path}")

    # -- job submission and the pool glue -------------------------------

    def _new_job_id(self) -> str:
        return f"j{next(self._job_counter):06d}"

    def _find_job(self, job_id: str) -> ServedJob | None:
        return self._jobs.get(job_id)

    def _retire_finished(self) -> None:
        excess = len(self._finished_ids) - self.config.max_finished_jobs
        for job_id in self._finished_ids[: max(0, excess)]:
            self._jobs.pop(job_id, None)
        if excess > 0:
            del self._finished_ids[:excess]

    def _inc(self, name: str, n: int = 1) -> None:
        self.registry.inc(name, n)
        get_registry().inc(name, n)

    def _parse_deadline(
        self, request: HTTPRequest, data: dict
    ) -> tuple[float | None, Response | None]:
        """The request's absolute deadline (epoch seconds) from the
        ``X-Deadline-Ms`` header or a top-level ``deadline_ms`` body
        field, anchored at socket arrival time."""
        raw = request.headers.get("x-deadline-ms")
        if raw is None and isinstance(data, dict):
            raw = data.pop("deadline_ms", None)
        if raw is None:
            return None, None
        try:
            ms = float(raw)
        except (TypeError, ValueError):
            return None, _error(400, f"deadline must be a number of ms, got {raw!r}")
        if ms <= 0:
            return None, _error(400, "deadline must be positive milliseconds")
        return request.received_at + ms / 1000.0, None

    async def _post_job(self, request: HTTPRequest, _match, ctx: RequestContext) -> Response:
        if self._draining:
            return _error(503, "gateway is draining", **{"retry-after": _retry_after(5)})
        parse_started = time.perf_counter()
        data = request.json()  # ProtocolError -> 400 upstream
        deadline, bad_deadline = self._parse_deadline(request, data)
        if bad_deadline is not None:
            return bad_deadline
        try:
            spec = JobSpec.from_dict(data)
        except (JobError, NetlistError, ValueError, KeyError, TypeError) as exc:
            return _error(400, f"bad job spec: {exc}")
        finally:
            ctx.timings["parse_s"] = time.perf_counter() - parse_started
        digest = spec.digest

        # Dedup 1: the content-addressed result cache (completed earlier).
        if self.config.cache is not None:
            payload = self._cache_get(spec)
            if payload is not None:
                job = ServedJob(
                    self._new_job_id(), spec, digest,
                    trace=ctx.trace, received_at=request.received_at,
                    gw_timings=ctx.timings, deadline=deadline,
                )
                job.from_cache = True
                self._install_job(job)
                job.add_event("queued", cached=True)
                self._finish_job(job, payload, attempts=0)
                body = {**job.summary(), "deduped": False}
                return _json_response(200, body)

        # Dedup 2: an identical spec already queued or running.
        existing_id = self._by_digest.get(digest)
        if existing_id is not None:
            existing = self._jobs.get(existing_id)
            if existing is not None and not existing.finished:
                self._inc("gateway.jobs_deduped")
                return _json_response(202, {**existing.summary(), "deduped": True})

        # A deadline that lapsed during parsing is not worth queueing.
        if deadline is not None and time.time() >= deadline:
            self._inc("gateway.deadline_rejections")
            return _error(504, "deadline already expired")

        # Degraded (cache-only) mode: the worker fleet is in a crash
        # loop and the breaker is open — misses are refused outright so
        # the backlog can't grow against a dead pool.
        if self.pool.degraded:
            self._inc("gateway.degraded_rejections")
            return _error(
                503,
                "workers unavailable (circuit breaker open); serving cache only",
                **{"retry-after": _retry_after(self.pool.breaker.cooldown)},
            )

        # Backpressure: bounded pool backlog.
        depth = self.pool.queue_depth
        if depth >= self.config.max_queue:
            self._inc("gateway.queue_rejections")
            return _error(
                503,
                f"job queue is full ({depth} waiting)",
                **{"retry-after": _retry_after(max(1.0, depth * 0.1))},
            )

        job = ServedJob(
            self._new_job_id(), spec, digest,
            trace=ctx.trace, received_at=request.received_at,
            gw_timings=ctx.timings, deadline=deadline,
        )
        self._install_job(job)
        self._by_digest[digest] = job.id
        # Durability point: once journaled (fsync policy permitting), the
        # job survives any crash between here and its terminal state.
        if self.config.journal is not None:
            self._journal_op(
                self.config.journal.accepted,
                job.id, digest, spec.to_dict(),
                name=spec.name, trace_id=ctx.trace.trace_id, deadline=deadline,
            )
        try:
            self._submit_to_pool(job)
        except PoolClosedError:
            self._forget_job(job)
            if self.config.journal is not None:
                self._journal_op(self.config.journal.done, job.id, "cancelled")
            return _error(503, "gateway is draining", **{"retry-after": _retry_after(5)})
        job.add_event("queued", digest=digest)
        self._inc("gateway.jobs_submitted")
        return _json_response(202, {**job.summary(), "deduped": False})

    def _submit_to_pool(self, job: ServedJob) -> None:
        """Hand one installed job to the worker pool (completion and
        progress callbacks hop back onto the event loop)."""
        loop = self._loop
        assert loop is not None
        job_id = job.id

        def on_done(result: dict, attempts: int) -> None:
            loop.call_soon_threadsafe(self._on_pool_done, job_id, result, attempts)

        def on_event(event: dict) -> None:
            loop.call_soon_threadsafe(self._on_pool_event, job_id, event)

        self.pool.submit(
            job.spec.to_dict(),
            callback=on_done,
            events=on_event,
            trace=job.trace.to_dict() if job.trace is not None else None,
            deadline=job.deadline,
        )

    def _cache_get(self, spec: JobSpec):
        """Cache lookup that treats cache IO failure as a miss — a bad
        disk must degrade the hit rate, not availability."""
        try:
            return self.config.cache.get(spec)
        except OSError as exc:
            self._inc("gateway.cache_errors")
            self.log.warning(
                "cache read failed", extra={"fields": {"error": str(exc)}}
            )
            return None

    def _install_job(self, job: ServedJob) -> None:
        self._jobs[job.id] = job

    def _forget_job(self, job: ServedJob) -> None:
        self._jobs.pop(job.id, None)
        if self._by_digest.get(job.digest) == job.id:
            del self._by_digest[job.digest]

    def _on_pool_event(self, job_id: str, event: dict) -> None:
        job = self._jobs.get(job_id)
        if job is None or job.finished:
            return
        if event.get("type") == "dispatched":
            job.status = "running"
            job.started_at = time.time()
            if event.get("attempt", 1) == 1 and self.config.journal is not None:
                self._journal_op(self.config.journal.dispatched, job.id)
            job.add_event("running", attempt=event.get("attempt", 1))
        elif event.get("type") == "stage":
            job.add_event("stage", stage=event.get("stage", "?"))

    def _on_pool_done(self, job_id: str, result: dict, attempts: int) -> None:
        job = self._jobs.get(job_id)
        if job is None:
            return
        self._finish_job(job, result, attempts=attempts)

    def _finish_job(self, job: ServedJob, payload: dict, *, attempts: int) -> None:
        job.payload = payload
        job.status = payload.get("status", "error")
        job.attempts = attempts
        job.finished_at = time.time()
        if self._by_digest.get(job.digest) == job.id:
            del self._by_digest[job.digest]
        self._record_job(job)  # cache first: the terminal journal record
        # must only land after the result is durably cached, or a crash
        # in between would lose a finished job.
        if self.config.journal is not None:
            self._journal_op(self.config.journal.done, job.id, job.status)
        self._finished_ids.append(job.id)
        self._observe_stages(job)
        total = max(0.0, job.finished_at - job.received_at)
        self._maybe_record_slow(job, total)
        self.log.info(
            "served job",
            extra={"fields": {"job": job.spec.name, "id": job.id,
                              "trace": job.trace_id or "",
                              "status": job.status, "cached": job.from_cache,
                              "seconds": round(total, 4)}},
        )
        job.add_event(
            "done",
            status=job.status,
            seconds=payload.get("seconds", 0.0),
            cached=job.from_cache,
            attempts=attempts,
        )
        job.done.set()
        self._retire_finished()

    def _observe_stages(self, job: ServedJob) -> None:
        """Feed one finished job into the per-stage rolling windows."""
        if job.from_cache or job.finished_at is None:
            return
        exec_start = job.started_at if job.started_at is not None else job.finished_at
        self.stage_windows.observe(
            "queue.wait", max(0.0, exec_start - job.submitted_at)
        )
        self.stage_windows.observe(
            "worker.exec",
            max(0.0, job.finished_at - exec_start),
            error=job.status != "ok",
        )
        for node in _walk_span_dicts((job.payload or {}).get("trace") or []):
            name = node.get("name", "")
            if name in STAGE_WINDOW_SPANS:
                self.stage_windows.observe(name, float(node.get("duration", 0.0)))

    def _maybe_record_slow(self, job: ServedJob, total: float) -> None:
        """Persist a ``kind="slow"`` exemplar when the job's end-to-end
        latency reached the configured threshold: the full span tree plus
        the queue/worker breakdown, browsable via ``artwork-inspect``."""
        threshold = self.config.slow_threshold
        if threshold is None or total < threshold:
            return
        self.registry.inc("gateway.slow_requests")
        get_registry().inc("gateway.slow_requests")
        if self.config.runlog is None:
            return
        payload = job.payload or {}
        exec_start = job.started_at if job.started_at is not None else job.finished_at
        breakdown = {
            "auth_s": round(float(job.gw_timings.get("auth_s", 0.0) or 0.0), 6),
            "parse_s": round(float(job.gw_timings.get("parse_s", 0.0) or 0.0), 6),
            "queue_wait_s": round(max(0.0, (exec_start or 0.0) - job.submitted_at), 6),
            "worker_exec_s": round(
                max(0.0, (job.finished_at or 0.0) - (exec_start or 0.0)), 6
            ),
            "total_s": round(total, 6),
        }
        root = job.trace_tree()
        # The profile windows that overlapped the slow request: the
        # gateway's own, plus any the worker shipped with the result.
        windows: list[dict] = []
        sampler = get_sampler()
        if sampler is not None and job.finished_at is not None:
            windows.extend(
                w.to_dict()
                for w in sampler.windows_overlapping(job.received_at, job.finished_at)
            )
        for w in payload.get("profile") or []:
            if (
                isinstance(w, dict)
                and job.finished_at is not None
                and w.get("started_at", 0.0) <= job.finished_at
                and w.get("ended_at", 0.0) >= job.received_at
            ):
                windows.append(w)
        self.config.runlog.record(
            kind="slow",
            name=job.spec.name,
            wall_seconds=round(total, 4),
            spec_digest=job.digest,
            stages=stages_from_spans(payload.get("trace") or []),
            # An explicit empty snapshot: the default would capture the
            # whole process-global registry per exemplar.
            counters={"counters": {}, "histograms": {}},
            profile="",
            profile_windows=windows,
            extra={
                "trace_id": job.trace_id,
                "job_id": job.id,
                "status": job.status,
                "from_cache": job.from_cache,
                "threshold": threshold,
                "breakdown": breakdown,
                "spans": [root.to_dict()] if root is not None else [],
            },
        )

    def _record_job(self, job: ServedJob) -> None:
        """Fold one finished job into obs state, the result cache and the
        run registry — the daemon twin of ``BatchScheduler._record``."""
        payload = job.payload or {}
        wall = float(payload.get("seconds", 0.0) or 0.0)
        for reg in (self.registry, get_registry()):
            reg.inc("service.jobs")
            reg.inc(f"service.status.{job.status}")
            reg.inc("service.cache_hits" if job.from_cache else "service.cache_misses")
            if not job.from_cache:
                reg.observe("service.job_wall_s", wall)
        worker_counters = payload.get("counters")
        if worker_counters and not job.from_cache:
            self.registry.merge(worker_counters)
            get_registry().merge(worker_counters)
        if (
            self.config.cache is not None
            and job.status == "ok"
            and not job.from_cache
        ):
            try:
                self.config.cache.put(
                    job.spec,
                    {
                        k: v
                        for k, v in payload.items()
                        if k not in BatchScheduler.TRANSIENT_KEYS
                    },
                )
            except OSError as exc:
                # A full/broken disk costs the cache entry, not the job.
                self._inc("gateway.cache_errors")
                self.log.warning(
                    "cache write failed",
                    extra={"fields": {"job": job.id, "error": str(exc)}},
                )
        if self.config.runlog is not None:
            self.config.runlog.record(
                kind="serve",
                name=job.spec.name,
                wall_seconds=wall,
                spec_digest=job.digest,
                stages=stages_from_spans(payload.get("trace") or []),
                counters=worker_counters or {"counters": {}, "histograms": {}},
                metrics=dict(payload.get("metrics", {}) or {}),
                failures={
                    net: {"reason": reason}
                    for net, reason in (payload.get("failure_reasons") or {}).items()
                },
                congestion=dict(payload.get("congestion", {}) or {}),
                profile="",
                profile_windows=list(payload.get("profile") or []),
                extra={
                    "status": job.status,
                    "from_cache": job.from_cache,
                    "attempts": job.attempts,
                    "job_id": job.id,
                    "trace_id": job.trace_id,
                    **(
                        {"search": payload["search"]}
                        if payload.get("search") else {}
                    ),
                },
            )
        if job.status != "ok":
            self.log.warning(
                "served job did not finish ok",
                extra={"fields": {"job": job.spec.name, "id": job.id,
                                  "status": job.status,
                                  "error": payload.get("error", "")}},
            )

    # -- job queries -----------------------------------------------------

    async def _job_status(self, request: HTTPRequest, match, _ctx) -> Response:
        job = self._find_job(match.group(1))
        if job is None:
            return _error(404, f"no such job: {match.group(1)}")
        if "wait" in request.query and not job.finished:
            try:
                wait_s = min(float(request.query["wait"]), MAX_WAIT_S)
            except ValueError:
                return _error(400, "wait must be a number of seconds")
            try:
                await asyncio.wait_for(job.done.wait(), timeout=max(0.0, wait_s))
            except asyncio.TimeoutError:
                pass
        return _json_response(200, job.summary())

    async def _list_jobs(self, _request: HTTPRequest, _match, _ctx) -> Response:
        jobs = sorted(self._jobs.values(), key=lambda j: j.submitted_at, reverse=True)
        return _json_response(
            200, {"jobs": [j.summary() for j in jobs[:100]], "total": len(self._jobs)}
        )

    async def _job_result(self, _request: HTTPRequest, match, _ctx) -> Response:
        job = self._find_job(match.group(1))
        if job is None:
            return _error(404, f"no such job: {match.group(1)}")
        if not job.finished:
            return _error(409, f"job {job.id} is {job.status}; result not ready")
        return _json_response(200, {**job.summary(), "payload": job.payload})

    async def _job_svg(self, _request: HTTPRequest, match, _ctx) -> Response:
        job = self._find_job(match.group(1))
        if job is None:
            return _error(404, f"no such job: {match.group(1)}")
        if not job.finished:
            return _error(409, f"job {job.id} is {job.status}; artwork not ready")
        payload = job.payload or {}
        if job.status != "ok" or "escher" not in payload:
            return _error(409, f"job {job.id} finished {job.status}; no artwork")
        diagram = read_escher(payload["escher"], job.spec.build_network())
        return Response(200, render_svg(diagram), content_type="image/svg+xml")

    async def _job_trace(self, _request: HTTPRequest, match, _ctx) -> Response:
        """The job's connected span tree as a Chrome trace-event document
        (opens directly in ``chrome://tracing`` / Perfetto)."""
        job = self._find_job(match.group(1))
        if job is None:
            return _error(404, f"no such job: {match.group(1)}")
        if not job.finished:
            return _error(409, f"job {job.id} is {job.status}; trace not ready")
        root = job.trace_tree()
        if root is None:
            return _error(409, f"job {job.id} has no trace")
        return _json_response(200, chrome_trace_document([root]))

    # -- progress streaming ----------------------------------------------

    async def _job_events_poll(self, _request: HTTPRequest, match, _ctx) -> Response:
        """Plain-HTTP fallback for the events endpoint (no Upgrade header):
        the full event history so far."""
        job = self._find_job(match.group(1))
        if job is None:
            return _error(404, f"no such job: {match.group(1)}")
        return _json_response(200, {"id": job.id, "events": job.events})

    async def _job_events_ws(
        self,
        request: HTTPRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        job_id: str,
        ctx: RequestContext,
    ) -> Response | None:
        job = self._find_job(job_id)
        if job is None:
            return _error(404, f"no such job: {job_id}")
        try:
            writer.write(
                ws_handshake_response(
                    request,
                    extra_headers={
                        "x-request-id": ctx.trace.trace_id,
                        "traceparent": ctx.trace.traceparent(),
                    },
                )
            )
            await writer.drain()
        except ProtocolError as exc:
            return _error(exc.status, str(exc))
        self.registry.inc("gateway.ws_connections")
        get_registry().inc("gateway.ws_connections")

        queue: asyncio.Queue = asyncio.Queue()
        job.subscribers.add(queue)
        closed = asyncio.Event()

        async def watch_client() -> None:
            try:
                while True:
                    opcode, payload = await ws_read_frame(reader)
                    if opcode == OP_CLOSE:
                        break
                    if opcode == OP_PING:
                        writer.write(ws_encode_frame(payload, opcode=OP_PONG))
                        await writer.drain()
            except (ProtocolError, asyncio.IncompleteReadError,
                    ConnectionResetError, OSError):
                pass
            closed.set()

        watcher = asyncio.create_task(watch_client())
        try:
            # History first (subscribe-then-replay, so nothing is missed);
            # the queue filter below drops anything replayed twice.
            history = list(job.events)
            last_seq = history[-1]["seq"] if history else -1
            for event in history:
                writer.write(ws_encode_frame(json_body(event)))
            await writer.drain()
            finished = bool(history) and history[-1]["event"] == "done"
            while not finished and not closed.is_set():
                getter = asyncio.ensure_future(queue.get())
                closer = asyncio.ensure_future(closed.wait())
                done, _pending = await asyncio.wait(
                    {getter, closer}, return_when=asyncio.FIRST_COMPLETED
                )
                closer.cancel()
                if getter not in done:
                    getter.cancel()
                    break
                event = getter.result()
                if event["seq"] <= last_seq:
                    continue
                last_seq = event["seq"]
                writer.write(ws_encode_frame(json_body(event)))
                await writer.drain()
                if event["event"] == "done":
                    finished = True
            writer.write(ws_encode_frame(b"", opcode=OP_CLOSE))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            job.subscribers.discard(queue)
            watcher.cancel()
        return None  # connection consumed

    # -- observability endpoints -----------------------------------------

    async def _healthz(self, _request: HTTPRequest, _match, _ctx) -> Response:
        # Force a liveness pass so a freshly killed worker is visible in
        # this very response, not one poll interval later.
        self.pool.reap()
        health = self.pool.health()
        queued = sum(1 for j in self._jobs.values() if j.status == "queued")
        running = sum(1 for j in self._jobs.values() if j.status == "running")
        breaker_state = health.get("breaker", {}).get("state", "closed")
        degraded = health["alive"] < health["size"] or breaker_state == "open"
        status = "draining" if self._draining else ("degraded" if degraded else "ok")
        body = {
            "status": status,
            "version": __version__,
            "uptime_s": round(time.time() - self.started_at, 3),
            "pool": health,
            "jobs": {
                "tracked": len(self._jobs),
                "queued": queued,
                "running": running,
                "finished": len(self._finished_ids),
            },
        }
        if self.config.journal is not None:
            body["journal"] = {"live_jobs": self.config.journal.live_jobs}
        return _json_response(200 if status == "ok" else 503, body)

    def _worker_states(self, health: dict) -> dict[str, int]:
        states = {"idle": 0, "busy": 0, "dead": 0}
        for worker in health["workers"]:
            states[worker.get("state", "dead")] = states.get(worker.get("state", "dead"), 0) + 1
        return states

    def _window_series(self) -> dict[str, list[tuple[dict, float]]]:
        """The rolling windows as labeled Prometheus series (zero-count
        window entries are skipped to bound exposition size)."""
        series: dict[str, list[tuple[dict, float]]] = {}

        def emit(prefix: str, label_key: str, snapshot: dict) -> None:
            for key, per_window in sorted(snapshot.items()):
                for window, stats in per_window.items():
                    if not stats["count"]:
                        continue
                    labels = {label_key: key, "window": window}
                    series.setdefault(f"{prefix}_qps", []).append(
                        (labels, stats["qps"])
                    )
                    series.setdefault(f"{prefix}_error_ratio", []).append(
                        (labels, stats["error_ratio"])
                    )
                    for quantile in ("p50", "p95"):
                        series.setdefault(f"{prefix}_seconds", []).append(
                            ({**labels, "quantile": quantile}, stats[quantile])
                        )

        emit("gateway.request", "endpoint", self.windows.snapshot())
        emit("gateway.stage", "stage", self.stage_windows.snapshot())
        return series

    async def _metrics(self, _request: HTTPRequest, _match, _ctx) -> Response:
        health = self.pool.health()
        states = self._worker_states(health)
        gauges = {
            "gateway.queue_depth": health["queued"],
            "gateway.jobs_in_flight": health["in_flight"],
            "gateway.workers_alive": health["alive"],
            "gateway.workers_size": health["size"],
            "gateway.worker_restarts_total": health["worker_restarts"],
            "gateway.uptime_s": round(time.time() - self.started_at, 3),
            "gateway.jobs_tracked": len(self._jobs),
            "gateway.draining": 1 if self._draining else 0,
        }
        breaker = health.get("breaker", {})
        if breaker:
            gauges["gateway.breaker_open"] = 1 if breaker.get("state") == "open" else 0
            gauges["gateway.breaker_trips_total"] = breaker.get("trips", 0)
            gauges["gateway.breaker_heals_total"] = breaker.get("heals", 0)
        gauges["gateway.kill_escalated_total"] = health.get("kill_escalated", 0)
        gauges["gateway.deadline_cancelled_total"] = health.get("deadline_cancelled", 0)
        sampler = get_sampler()
        if sampler is not None:
            snap = sampler.snapshot()
            gauges["gateway.sampler_running"] = 1 if snap["running"] else 0
            gauges["gateway.sampler_hz"] = snap["hz"]
            gauges["gateway.sampler_ticks_total"] = snap["ticks"]
            gauges["gateway.sampler_errors_total"] = snap["errors"]
            gauges["gateway.sampler_overhead_ratio"] = snap["overhead_ratio"]
            gauges["gateway.sampler_attributed_ratio"] = snap["attributed_ratio"]
        if self.config.journal is not None:
            snap = self.config.journal.snapshot()
            gauges["gateway.journal_live_jobs"] = snap["live_jobs"]
            gauges["gateway.journal_appended_total"] = snap["appended"]
            gauges["gateway.journal_compactions_total"] = snap["compactions"]
        series = self._window_series()
        series["gateway.workers"] = [
            ({"state": state}, count) for state, count in sorted(states.items())
        ]
        if breaker:
            series["gateway.breaker"] = [
                ({"state": state}, 1 if breaker.get("state") == state else 0)
                for state in ("closed", "open", "half_open")
            ]
        if self.config.cache is not None:
            stats = self.config.cache.stats
            gauges["gateway.cache_entries"] = len(self.config.cache)
            gauges["gateway.cache_hit_rate"] = round(stats.hit_rate, 4)
        if self.config.rate_limit is not None:
            limiter = self.config.rate_limit
            levels = limiter.levels(limit=32)
            gauges["gateway.rate_clients"] = len(limiter.levels())
            gauges["gateway.rate_allowed_total"] = limiter.allowed
            gauges["gateway.rate_rejected_total"] = limiter.rejected
            if levels:
                series["gateway.rate_tokens"] = [
                    ({"client": client}, tokens)
                    for client, tokens in sorted(levels.items())
                ]
        text = render_prometheus(
            self.registry.snapshot(), gauges=gauges, series=series
        )
        return Response(200, text, content_type="text/plain; version=0.0.4")

    async def _stats(self, _request: HTTPRequest, _match, _ctx) -> Response:
        """Live telemetry JSON: windowed RED per endpoint and per stage,
        plus instantaneous gauges — what ``artwork-top`` polls."""
        health = self.pool.health()
        states = self._worker_states(health)
        body = {
            "version": __version__,
            "uptime_s": round(time.time() - self.started_at, 3),
            "draining": self._draining,
            "windows": dict(WINDOWS),
            "endpoints": self.windows.snapshot(),
            "stages": self.stage_windows.snapshot(),
            "gauges": {
                "queue_depth": health["queued"],
                "in_flight": health["in_flight"],
                "jobs_tracked": len(self._jobs),
                "workers": {
                    "size": health["size"],
                    "alive": health["alive"],
                    **states,
                },
            },
            "breaker": health.get("breaker", {}),
            "totals": {
                name: self.registry.get(name)
                for name in (
                    "gateway.http_requests",
                    "gateway.jobs_submitted",
                    "gateway.jobs_deduped",
                    "gateway.slow_requests",
                    "gateway.rate_limited",
                    "gateway.auth_rejections",
                    "gateway.queue_rejections",
                    "gateway.degraded_rejections",
                    "gateway.deadline_rejections",
                    "gateway.journal_errors",
                    "gateway.journal_replayed",
                    "gateway.cache_errors",
                    "gateway.ws_connections",
                    "service.jobs",
                    "service.cache_hits",
                    "service.cache_misses",
                    "route.heur_escalations",
                    "route.parallel.waves",
                    "route.parallel.commits",
                    "route.parallel.conflicts",
                    "route.parallel.rollbacks",
                )
            },
        }
        sampler = get_sampler()
        body["profile"] = (
            sampler.snapshot() if sampler is not None else {"running": False}
        )
        if self.config.journal is not None:
            body["journal"] = self.config.journal.snapshot()
        faults = get_faults()
        if faults.active:
            body["faults"] = {
                "spec": faults.spec,
                "seed": faults.seed,
                "points": faults.points(),
                "fired": faults.fired(),
            }
        if self.config.cache is not None:
            body["gauges"]["cache"] = {
                "entries": len(self.config.cache),
                "hit_rate": round(self.config.cache.stats.hit_rate, 4),
            }
        if self.config.rate_limit is not None:
            limiter = self.config.rate_limit
            body["gauges"]["rate_limiter"] = {
                "clients": len(limiter.levels()),
                "allowed": limiter.allowed,
                "rejected": limiter.rejected,
            }
        return _json_response(200, body)

    async def _profile(self, request: HTTPRequest, _match, _ctx) -> Response:
        """On-demand high-hz capture of the gateway process: sample for
        ``?seconds=N`` (clamped to :data:`MAX_PROFILE_S`) off the event
        loop and return a self-contained flamegraph HTML page.  The
        always-on windows collected so far ride along in the page too,
        so a single POST shows both the burst and the trailing minute."""
        try:
            seconds = float(request.query.get("seconds", "1"))
        except ValueError:
            return _error(400, "seconds must be a number")
        seconds = min(max(seconds, 0.05), MAX_PROFILE_S)
        try:
            hz = float(request.query.get("hz", str(CAPTURE_HZ)))
        except ValueError:
            return _error(400, "hz must be a number")
        hz = min(max(hz, 1.0), 997.0)
        self._inc("gateway.profile_captures")
        window = await asyncio.to_thread(capture, seconds, hz=hz)
        html = render_flamegraph_html(
            [window],
            title=f"artwork-serve profile — {seconds:g}s at {hz:g} hz",
        )
        return Response(
            200,
            html,
            content_type="text/html; charset=utf-8",
            headers={"x-profile-samples": str(window.samples)},
        )


# -- embedding helpers (tests, benchmarks, notebooks) -----------------------


class GatewayHandle:
    """A gateway running on a daemon thread, controlled from the caller."""

    def __init__(self) -> None:
        self.gateway: ArtworkGateway | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self.thread: threading.Thread | None = None
        self.error: BaseException | None = None
        self._ready = threading.Event()

    @property
    def port(self) -> int:
        assert self.gateway is not None and self.gateway.port is not None
        return self.gateway.port

    @property
    def base_url(self) -> str:
        assert self.gateway is not None
        return f"http://{self.gateway.config.host}:{self.port}"

    def stop(self, *, drain: bool = True, timeout: float = 60.0) -> None:
        if self.loop is None or self.gateway is None or self.loop.is_closed():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.gateway.stop(drain=drain), self.loop
        )
        future.result(timeout=timeout)
        if self.thread is not None:
            self.thread.join(timeout=timeout)

    def __enter__(self) -> "GatewayHandle":
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()


def start_gateway(
    config: GatewayConfig | None = None, *, pool: WorkerPool | None = None
) -> GatewayHandle:
    """Run an :class:`ArtworkGateway` on a background thread; returns once
    it is accepting connections.  The caller owns ``handle.stop()``."""
    handle = GatewayHandle()

    async def main() -> None:
        gateway = ArtworkGateway(config, pool=pool)
        try:
            await gateway.start()
        except BaseException as exc:  # bind errors land on the caller
            handle.error = exc
            handle._ready.set()
            raise
        handle.gateway = gateway
        handle.loop = asyncio.get_running_loop()
        handle._ready.set()
        await gateway.wait_stopped()

    def runner() -> None:
        try:
            asyncio.run(main())
        except BaseException as exc:  # noqa: BLE001 - surfaced via handle.error
            if handle.error is None:
                handle.error = exc
            handle._ready.set()

    handle.thread = threading.Thread(target=runner, name="artwork-serve", daemon=True)
    handle.thread.start()
    handle._ready.wait(timeout=30.0)
    if handle.error is not None:
        raise RuntimeError(f"gateway failed to start: {handle.error}") from handle.error
    if handle.gateway is None:
        raise RuntimeError("gateway failed to start within 30s")
    return handle
