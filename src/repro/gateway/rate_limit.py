"""Token-bucket rate limiting for the gateway's ``/v1`` API.

One bucket per client key (the auth token when presented, else the
peer address): ``burst`` tokens of capacity refilled at ``rate`` tokens
per second.  A rejected request learns exactly how long to back off —
the limiter returns the seconds until a token exists again, which the
server surfaces as a ``Retry-After`` header on the 429.

With ``jitter`` set, the advertised wait is stretched by a random
fraction of itself so a burst of rejected clients doesn't come back in
lockstep and re-collide on the same refill instant (the thundering-herd
failure mode).  Jitter is strictly additive: the true wait is a floor —
advertising less would guarantee a second 429.

The clock is injectable so tests drive the refill deterministically.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable

#: Buckets tracked before the least-recently-seen clients are dropped
#: (a dropped client simply starts over with a full burst).
MAX_CLIENTS = 4096


@dataclass
class TokenBucket:
    """Classic token bucket: capacity ``burst``, refill ``rate``/s."""

    rate: float
    burst: float
    tokens: float
    updated: float

    def take(self, now: float) -> float:
        """Consume one token; 0.0 when allowed, else seconds to wait."""
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate if self.rate > 0 else float("inf")


class RateLimiter:
    """Per-client token buckets behind one lock (requests are cheap)."""

    def __init__(
        self,
        rate: float,
        burst: int,
        *,
        clock: Callable[[], float] = time.monotonic,
        jitter: float = 0.0,
        rng: random.Random | None = None,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive (omit the limiter to disable)")
        if burst < 1:
            raise ValueError("burst must be at least 1")
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        self.rate = float(rate)
        self.burst = float(burst)
        self.clock = clock
        self.jitter = float(jitter)
        self._rng = rng if rng is not None else random.Random()
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}
        self.allowed = 0
        self.rejected = 0

    def check(self, key: str) -> float:
        """0.0 when the request may proceed; else the retry-after seconds."""
        now = self.clock()
        with self._lock:
            bucket = self._buckets.pop(key, None)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, self.burst, now)
            # Re-insert (at dict tail) so iteration order is LRU-ish and
            # pruning drops the coldest clients first.
            self._buckets[key] = bucket
            if len(self._buckets) > MAX_CLIENTS:
                for stale in list(self._buckets)[: len(self._buckets) - MAX_CLIENTS]:
                    del self._buckets[stale]
            wait = bucket.take(now)
            if wait > 0.0:
                self.rejected += 1
                if self.jitter > 0.0:
                    wait += self._rng.uniform(0.0, wait * self.jitter)
            else:
                self.allowed += 1
            return wait

    def levels(self, *, limit: int | None = None) -> dict[str, float]:
        """Current token level per tracked client, refill applied.

        Read-only: buckets are not mutated, so scraping ``/metrics``
        never perturbs limiting decisions.  With ``limit``, only the
        ``limit`` *lowest* levels (the clients closest to throttling)
        are returned — bounds exposition size under many clients.
        """
        now = self.clock()
        with self._lock:
            levels = {
                key: min(
                    bucket.burst,
                    bucket.tokens + max(0.0, now - bucket.updated) * bucket.rate,
                )
                for key, bucket in self._buckets.items()
            }
        if limit is not None and len(levels) > limit:
            levels = dict(sorted(levels.items(), key=lambda kv: kv[1])[:limit])
        return {key: round(value, 3) for key, value in levels.items()}
