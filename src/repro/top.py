"""``artwork-top``: a live terminal dashboard for ``artwork-serve``.

Polls the gateway's ``GET /v1/stats`` endpoint and redraws a compact
ANSI screen: per-endpoint RED rows (qps, error %, p50/p95) for the
selected window, pipeline stage latencies, queue depth, worker states,
circuit-breaker/journal health, cache/rate-limiter gauges, and — when
the always-on profiler is up — the hottest self-time frames from its
most recent sampling window.  Stdlib only — plain ANSI escapes on the
alternate screen, no curses dependency — so it runs anywhere the
gateway does::

    artwork-top --port 8571                # live, redrawn every 2s
    artwork-top --port 8571 --once         # one plain-text snapshot
    artwork-top --port 8571 --window 5m    # watch the 5m window

Rendering is a pure function of the stats payload
(:func:`render_dashboard`), so tests drive it without a terminal.
"""

from __future__ import annotations

import argparse
import sys
import time

from .gateway.protocol import HttpClient

#: ANSI: clear screen + home, enter/leave the alternate screen.
_CLEAR = "\x1b[2J\x1b[H"
_ALT_ON = "\x1b[?1049h\x1b[?25l"
_ALT_OFF = "\x1b[?1049l\x1b[?25h"


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 10.0:
        return f"{seconds:.1f}s"
    if seconds >= 0.0995:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.1f}ms"


def _red_rows(table: dict, window: str) -> list[tuple[str, dict]]:
    """(key, stats) rows for one window, busiest first, idle keys last."""
    rows = []
    for key, per_window in table.items():
        stats = per_window.get(window)
        if stats is None:
            continue
        rows.append((key, stats))
    rows.sort(key=lambda kv: (-kv[1]["count"], kv[0]))
    return rows


def _red_section(title: str, table: dict, window: str, width: int) -> list[str]:
    lines = [f"{title}  ({window} window)"]
    header = f"  {'':<{width}}  {'qps':>8}  {'err%':>6}  {'p50':>8}  {'p95':>8}  {'n':>6}"
    lines.append(header)
    rows = _red_rows(table, window)
    if not rows:
        lines.append("  (no traffic yet)")
        return lines
    for key, stats in rows:
        lines.append(
            f"  {key:<{width}}  {stats['qps']:>8.3f}  "
            f"{100.0 * stats['error_ratio']:>5.1f}%  "
            f"{_fmt_seconds(stats['p50']):>8}  {_fmt_seconds(stats['p95']):>8}  "
            f"{stats['count']:>6}"
        )
    return lines


def render_dashboard(stats: dict, *, window: str = "1m") -> str:
    """The whole dashboard as plain text (no ANSI) for one stats payload."""
    gauges = stats.get("gauges", {})
    workers = gauges.get("workers", {})
    totals = stats.get("totals", {})
    lines = [
        f"artwork-serve {stats.get('version', '?')}"
        f"  up {stats.get('uptime_s', 0.0):.0f}s"
        + ("  DRAINING" if stats.get("draining") else ""),
        "",
        f"queue {gauges.get('queue_depth', 0)}"
        f"  in-flight {gauges.get('in_flight', 0)}"
        f"  jobs tracked {gauges.get('jobs_tracked', 0)}"
        f"  workers {workers.get('alive', 0)}/{workers.get('size', 0)}"
        f" (busy {workers.get('busy', 0)}, idle {workers.get('idle', 0)}"
        + (f", dead {workers['dead']}" if workers.get("dead") else "")
        + ")",
    ]
    cache = gauges.get("cache")
    limiter = gauges.get("rate_limiter")
    extras = []
    if cache is not None:
        extras.append(
            f"cache {cache.get('entries', 0)} entries,"
            f" {100.0 * cache.get('hit_rate', 0.0):.0f}% hit"
        )
    hits = totals.get("service.cache_hits", 0)
    jobs = totals.get("service.jobs", 0)
    if jobs:
        extras.append(f"dedup/cache served {hits}/{jobs} jobs")
    if limiter is not None:
        extras.append(
            f"rate-limiter {limiter.get('clients', 0)} clients,"
            f" {limiter.get('rejected', 0)} rejected"
        )
    if totals.get("gateway.slow_requests"):
        extras.append(f"slow requests {totals['gateway.slow_requests']}")
    if extras:
        lines.append("  ".join(extras))
    health = []
    breaker = stats.get("breaker") or {}
    if breaker:
        state = breaker.get("state", "closed")
        health.append(
            f"breaker {state.upper() if state != 'closed' else state}"
            f" ({breaker.get('failures_in_window', 0)}/{breaker.get('threshold', '?')}"
            f" deaths, {breaker.get('trips', 0)} trips,"
            f" {breaker.get('heals', 0)} heals)"
        )
    journal = stats.get("journal") or {}
    if journal:
        health.append(
            f"journal {journal.get('live_jobs', 0)} live,"
            f" {journal.get('appended', 0)} appended,"
            f" {journal.get('compactions', 0)} compactions"
        )
    if health:
        lines.append("  ".join(health))
    key_width = max(
        [len(k) for k in stats.get("endpoints", {})]
        + [len(k) for k in stats.get("stages", {})]
        + [24]
    )
    lines.append("")
    lines.extend(_red_section("endpoints", stats.get("endpoints", {}), window, key_width))
    lines.append("")
    lines.extend(_red_section("stages", stats.get("stages", {}), window, key_width))
    profile = stats.get("profile") or {}
    if profile.get("running"):
        lines.append("")
        lines.extend(_profile_section(profile, key_width))
    return "\n".join(lines)


def _profile_section(profile: dict, width: int) -> list[str]:
    """The always-on profiler pane: hottest self-time frames over the
    sampler's most recent window."""
    lines = [
        f"profiler  ({profile.get('hz', 0):g} hz, "
        f"{profile.get('ticks', 0)} ticks, "
        f"overhead {100.0 * profile.get('overhead_ratio', 0.0):.2f}%, "
        f"{100.0 * profile.get('attributed_ratio', 0.0):.0f}% attributed"
        + (f", {profile['errors']} errors" if profile.get("errors") else "")
        + ")"
    ]
    last = profile.get("last_window") or {}
    frames = last.get("top_frames") or []
    if not frames:
        lines.append("  (no samples in the last window)")
        return lines
    samples = max(1, int(last.get("samples", 0)))
    lines.append(f"  {'frame (self time)':<{width}}  {'samples':>8}  {'share':>6}")
    for name, count in frames[:5]:
        shown = name if len(name) <= width else "…" + name[-(width - 1):]
        lines.append(
            f"  {shown:<{width}}  {count:>8}  {100.0 * count / samples:>5.1f}%"
        )
    return lines


def _fetch_stats(client: HttpClient) -> dict:
    response = client.get("/v1/stats")
    if response.status != 200:
        raise RuntimeError(f"/v1/stats returned {response.status}: {response.body!r}")
    return response.json()


def top_main(argv: list[str] | None = None) -> int:
    """Live serving telemetry for an ``artwork-serve`` daemon: qps,
    latency percentiles, error rates, queue depth and worker states,
    refreshed from ``GET /v1/stats``."""
    parser = argparse.ArgumentParser(prog="artwork-top", description=top_main.__doc__)
    parser.add_argument("--host", default="127.0.0.1", help="gateway host")
    parser.add_argument("--port", type=int, default=8571, help="gateway port")
    parser.add_argument("--token", default=None, help="API token (if auth is on)")
    parser.add_argument(
        "--interval", type=float, default=2.0, help="refresh period in seconds"
    )
    parser.add_argument(
        "--window",
        default="1m",
        choices=("1m", "5m", "15m"),
        help="which rolling window to display",
    )
    parser.add_argument(
        "--once", action="store_true", help="print one snapshot and exit (no ANSI)"
    )
    args = parser.parse_args(argv)

    client = HttpClient(args.host, args.port, token=args.token)
    try:
        if args.once:
            print(render_dashboard(_fetch_stats(client), window=args.window))
            return 0
        sys.stdout.write(_ALT_ON)
        sys.stdout.flush()
        try:
            while True:
                board = render_dashboard(_fetch_stats(client), window=args.window)
                sys.stdout.write(
                    _CLEAR + board
                    + f"\n\nrefresh {args.interval:g}s — ctrl-c to quit\n"
                )
                sys.stdout.flush()
                time.sleep(max(0.1, args.interval))
        finally:
            sys.stdout.write(_ALT_OFF)
            sys.stdout.flush()
    except KeyboardInterrupt:
        return 0
    except (ConnectionError, OSError, RuntimeError) as exc:
        print(f"artwork-top: {exc}", file=sys.stderr)
        return 2
    finally:
        client.close()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(top_main())
