"""Min-cut bipartitioning placement (section 4.2.3) — baseline.

Lauther-style top-down placement: recursively split the module set in two
roughly equal halves minimising the number of nets crossing the cut, while
splitting the available slot region along alternating directions.  The
paper credits this class with good routability but rejects it for
schematics because it ignores signal-flow direction — the baseline exists
to measure exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.diagram import Diagram
from ..core.geometry import Point
from ..core.netlist import Network
from .terminal_place import place_terminals

IMPROVEMENT_PASSES = 4


@dataclass(frozen=True)
class _SlotRegion:
    """A rectangular region of placement slots."""

    col: int
    row: int
    cols: int
    rows: int


def cut_count(network: Network, left: set[str], right: set[str]) -> int:
    """Nets with modules on both sides of the cut."""
    count = 0
    for net in network.nets.values():
        mods = {p.module for p in net.pins if not p.is_system}
        if mods & left and mods & right:
            count += 1
    return count


def bipartition(
    network: Network, members: list[str], left_size: int | None = None
) -> tuple[list[str], list[str]]:
    """Split ``members`` into halves (``left_size`` on the left, default
    half/half) with a small cut, by a seeded split plus greedy
    pairwise-exchange improvement."""
    half = (len(members) + 1) // 2 if left_size is None else left_size
    if not 0 < half < len(members):
        raise ValueError(f"cannot split {len(members)} members {half}/{len(members) - half}")
    ordered = _connectivity_order(network, members)
    left, right = set(ordered[:half]), set(ordered[half:])

    for _ in range(IMPROVEMENT_PASSES):
        best_gain = 0
        best_swap: tuple[str, str] | None = None
        current = cut_count(network, left, right)
        for a in sorted(left):
            for b in sorted(right):
                left2 = (left - {a}) | {b}
                right2 = (right - {b}) | {a}
                gain = current - cut_count(network, left2, right2)
                if gain > best_gain:
                    best_gain, best_swap = gain, (a, b)
        if best_swap is None:
            break
        a, b = best_swap
        left.remove(a)
        right.remove(b)
        left.add(b)
        right.add(a)
    return sorted(left), sorted(right)


def _connectivity_order(network: Network, members: list[str]) -> list[str]:
    """BFS over the connectivity graph so the initial halves are clumps,
    not arbitrary slices."""
    remaining = set(members)
    order: list[str] = []
    while remaining:
        seed = max(
            sorted(remaining),
            key=lambda m: network.connections_to_set(m, remaining - {m}),
        )
        queue = [seed]
        remaining.discard(seed)
        while queue:
            m = queue.pop(0)
            order.append(m)
            neighbours = sorted(
                n for n in remaining if network.connection_count(m, n) > 0
            )
            for n in neighbours:
                remaining.discard(n)
                queue.append(n)
    return order


def mincut_placement(network: Network, *, spacing: int = 4) -> Diagram:
    """Recursive min-cut placement of all modules on a slot grid."""
    diagram = Diagram(network)
    names = sorted(network.modules)
    if not names:
        return diagram
    pitch_x = max(m.width for m in network.modules.values()) + spacing
    pitch_y = max(m.height for m in network.modules.values()) + spacing

    side = 1
    while side * side < len(names):
        side += 1
    slots: dict[str, tuple[int, int]] = {}

    def split(members: list[str], region: _SlotRegion, horizontal: bool) -> None:
        if len(members) == 1:
            slots[members[0]] = (region.col, region.row)
            return
        # Cut the region first (down the middle of the chosen direction),
        # then size the module halves to the sub-region capacities — this
        # is always feasible and keeps the halves near-balanced.
        if (horizontal and region.cols >= 2) or region.rows < 2:
            lc = max(1, region.cols // 2)
            ra = _SlotRegion(region.col, region.row, lc, region.rows)
            rb = _SlotRegion(region.col + lc, region.row, region.cols - lc, region.rows)
        else:
            lr = max(1, region.rows // 2)
            ra = _SlotRegion(region.col, region.row, region.cols, lr)
            rb = _SlotRegion(region.col, region.row + lr, region.cols, region.rows - lr)
        cap_a, cap_b = ra.cols * ra.rows, rb.cols * rb.rows
        n = len(members)
        left_size = max(n - cap_b, min(cap_a, (n + 1) // 2))
        left, right = bipartition(network, members, left_size)
        split(left, ra, not horizontal)
        split(right, rb, not horizontal)

    split(names, _SlotRegion(0, 0, side, side), horizontal=True)

    for name, (col, row) in slots.items():
        module = network.modules[name]
        x = col * pitch_x + (pitch_x - module.width) // 2
        y = row * pitch_y + (pitch_y - module.height) // 2
        diagram.place_module(name, Point(x, y))
    place_terminals(diagram)
    return diagram
