"""Partitioning the design (section 4.6.3).

The placement first decomposes the module set into functional partitions:
pick a seed (the free module most heavily connected to the remaining free
modules), then grow a cluster around it until the partition size limit or
the external-connection limit is hit, then start over with a new seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.netlist import Network


@dataclass(frozen=True)
class PartitionLimits:
    """The -p and -c options of PABLO (Appendix E)."""

    max_size: int = 1
    max_connections: float = math.inf

    def __post_init__(self) -> None:
        if self.max_size < 1:
            raise ValueError("partition size limit must be at least 1")


def take_a_seed(network: Network, free: set[str], placed: set[str]) -> str:
    """TAKE_A_SEED: the free module with the most nets to other free
    modules; ties prefer fewest nets to already-partitioned modules, then
    lexicographic order for determinism."""

    def key(module: str) -> tuple[int, int, str]:
        to_free = network.connections_to_set(module, free - {module})
        to_placed = network.connections_to_set(module, placed)
        return (-to_free, to_placed, module)

    return min(free, key=key)


def form_partition(
    network: Network, free: set[str], seed: str, limits: PartitionLimits
) -> list[str]:
    """FORM_PARTITION: grow a cluster around ``seed`` out of ``free``
    (which the call consumes) until a limit trips."""
    partition = [seed]
    free.discard(seed)
    connections = network.external_connections(partition)
    while (
        free
        and len(partition) < limits.max_size
        and connections < limits.max_connections
    ):
        member_set = set(partition)

        def key(module: str) -> tuple[int, int, str]:
            inward = network.connections_to_set(module, member_set)
            outward = network.connections_to_set(
                module, set(network.modules) - member_set - {module}
            )
            return (-inward, outward, module)

        best = min(free, key=key)
        partition.append(best)
        free.discard(best)
        connections = network.external_connections(partition)
    return partition


def partition_network(
    network: Network,
    limits: PartitionLimits | None = None,
    *,
    exclude: set[str] | None = None,
) -> list[list[str]]:
    """PARTITIONING: split all modules (minus ``exclude``, the preplaced
    part) into functional partitions."""
    limits = limits or PartitionLimits()
    free = set(network.modules) - (exclude or set())
    placed: set[str] = set()
    partitions: list[list[str]] = []
    while free:
        seed = take_a_seed(network, free, placed)
        partition = form_partition(network, free, seed, limits)
        partitions.append(partition)
        placed.update(partition)
    return partitions
