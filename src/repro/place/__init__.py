"""Placement: PABLO and the baseline placers."""

from .partitioning import PartitionLimits, form_partition, partition_network, take_a_seed
from .boxes import construct_roots, drive_edges, form_boxes, longest_path
from .module_place import BoxLayout, place_box
from .box_place import PartitionLayout, place_partition
from .partition_place import FixedPart, place_partitions
from .terminal_place import place_terminals
from .gravity import GravityItem, place_by_gravity
from .pablo import PabloOptions, PlacementReport, place_network
from .epitaxial import epitaxial_placement
from .mincut import bipartition, cut_count, mincut_placement
from .logic_columns import levelize, logic_columns_placement
from .improvement import ImprovementReport, estimated_wire_length, improve_placement

__all__ = [
    "PartitionLimits",
    "form_partition",
    "partition_network",
    "take_a_seed",
    "construct_roots",
    "drive_edges",
    "form_boxes",
    "longest_path",
    "BoxLayout",
    "place_box",
    "PartitionLayout",
    "place_partition",
    "FixedPart",
    "place_partitions",
    "place_terminals",
    "GravityItem",
    "place_by_gravity",
    "PabloOptions",
    "PlacementReport",
    "place_network",
    "epitaxial_placement",
    "bipartition",
    "cut_count",
    "mincut_placement",
    "levelize",
    "logic_columns_placement",
    "ImprovementReport",
    "estimated_wire_length",
    "improve_placement",
]
