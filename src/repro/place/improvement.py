"""Iterative placement improvement (section 4.2.1) — baseline.

The paper describes, and rejects, the class of placement-improvement
algorithms: "They deal with local changes such as the pair wise exchange
of modules.  Typically, there are a large number of such trials, so this
results in very greedy algorithms ... Their greediness is unacceptable
for generating diagrams automatically.  A diagram should be produced in
no time."

This module implements exactly that rejected class — pairwise module
exchange minimising estimated wire length — as an optional post-pass over
any placement, so the trade-off (quality gained vs time spent) can be
measured instead of argued (see benchmarks/test_bench_improvement.py).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.diagram import Diagram
from ..core.netlist import Network


@dataclass
class ImprovementReport:
    """Outcome of one improvement run."""

    passes: int = 0
    swaps: int = 0
    trials: int = 0
    initial_cost: int = 0
    final_cost: int = 0
    seconds: float = 0.0

    @property
    def gain(self) -> float:
        if self.initial_cost == 0:
            return 0.0
        return 1.0 - self.final_cost / self.initial_cost


def estimated_wire_length(diagram: Diagram) -> int:
    """Half-perimeter wire length over all nets — the classic placement
    cost model (the router's real costs are much richer, which is exactly
    why greedy improvement on this model can mislead)."""
    total = 0
    for net in diagram.network.nets.values():
        xs: list[int] = []
        ys: list[int] = []
        for pin in net.pins:
            if pin.is_system and pin.terminal not in diagram.terminal_positions:
                continue
            if not pin.is_system and pin.module not in diagram.placements:
                continue
            p = diagram.pin_position(pin)
            xs.append(p.x)
            ys.append(p.y)
        if len(xs) >= 2:
            total += (max(xs) - min(xs)) + (max(ys) - min(ys))
    return total


def _swappable_pairs(network: Network, diagram: Diagram) -> list[tuple[str, str]]:
    """Module pairs whose symbols have the same footprint (swapping
    different-size modules would need replacement legality checks; the
    classic exchange algorithms restrict themselves to equal slots)."""
    names = sorted(diagram.placements)
    pairs = []
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            if diagram.placements[a].size == diagram.placements[b].size:
                pairs.append((a, b))
    return pairs


def _swap(diagram: Diagram, a: str, b: str) -> None:
    pa, pb = diagram.placements[a], diagram.placements[b]
    pa.position, pb.position = pb.position, pa.position
    pa.rotation, pb.rotation = pb.rotation, pa.rotation


def improve_placement(
    diagram: Diagram, *, max_passes: int = 10
) -> ImprovementReport:
    """Greedy pairwise exchange until no swap reduces the estimated wire
    length (or ``max_passes`` sweeps).  Mutates the diagram in place."""
    report = ImprovementReport()
    started = time.perf_counter()
    report.initial_cost = estimated_wire_length(diagram)
    cost = report.initial_cost
    pairs = _swappable_pairs(diagram.network, diagram)

    for _ in range(max_passes):
        report.passes += 1
        improved = False
        for a, b in pairs:
            report.trials += 1
            _swap(diagram, a, b)
            new_cost = estimated_wire_length(diagram)
            if new_cost < cost:
                cost = new_cost
                report.swaps += 1
                improved = True
            else:
                _swap(diagram, a, b)  # undo
        if not improved:
            break

    report.final_cost = cost
    report.seconds = time.perf_counter() - started
    return report
