"""Center-of-gravity constructive placement (sections 4.6.5 and 4.6.6).

Box placement inside a partition and partition placement of the whole
design follow the same scheme: place the largest item first, then
repeatedly take the unplaced item most heavily connected to the placed
ones, compute the gravity center of its shared-net terminals and of the
matching terminals already placed, and put the item at the free position
that brings the two centers closest without overlap.

This module implements the scheme generically over :class:`GravityItem`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.geometry import Point, Rect


@dataclass
class GravityItem:
    """An abstract placeable rectangle with connected terminals.

    ``net_points`` maps a net name to the item-local positions of the
    item's terminals on that net; ``weight`` ranks the item for
    first-placement (the paper uses the module count).
    """

    key: str
    width: int
    height: int
    net_points: dict[str, list[Point]] = field(default_factory=dict)
    weight: int = 1

    @property
    def nets(self) -> set[str]:
        return set(self.net_points)


def _shared_centers(
    item: GravityItem,
    placed: dict[str, Point],
    items: dict[str, GravityItem],
) -> tuple[tuple[float, float], tuple[float, float]] | None:
    """(g0, g1): gravity of the candidate's shared-net terminals in local
    coordinates, and of the placed items' terminals on those nets in
    absolute coordinates.  ``None`` when no net is shared."""
    sx0 = sy0 = n0 = 0.0
    sx1 = sy1 = n1 = 0.0
    for net, local_pts in item.net_points.items():
        contributions = []
        for key, pos in placed.items():
            for p in items[key].net_points.get(net, ()):
                contributions.append(Point(pos.x + p.x, pos.y + p.y))
        if not contributions:
            continue
        for p in local_pts:
            sx0 += p.x
            sy0 += p.y
            n0 += 1
        for p in contributions:
            sx1 += p.x
            sy1 += p.y
            n1 += 1
    if n0 == 0 or n1 == 0:
        return None
    return (sx0 / n0, sy0 / n0), (sx1 / n1, sy1 / n1)


def _connection_weight(
    item: GravityItem, placed: dict[str, Point], items: dict[str, GravityItem]
) -> int:
    placed_nets: set[str] = set()
    for key in placed:
        placed_nets |= items[key].nets
    return len(item.nets & placed_nets)


def _feasible(
    pos: Point, item: GravityItem, placed_rects: list[Rect], spacing: int
) -> bool:
    candidate = Rect(
        pos.x - spacing, pos.y - spacing, item.width + 2 * spacing, item.height + 2 * spacing
    )
    return not any(candidate.overlaps(r) for r in placed_rects)


def _nearest_free_position(
    ideal: Point, item: GravityItem, placed_rects: list[Rect], spacing: int
) -> Point:
    """Free position nearest to ``ideal`` (ring search by growing
    Chebyshev radius, exact within each ring)."""
    if _feasible(ideal, item, placed_rects, spacing):
        return ideal
    extent = sum(max(r.w, r.h) + max(item.width, item.height) + spacing + 2 for r in placed_rects)
    max_radius = max(extent, 8)
    for radius in range(1, max_radius + 1):
        best: Point | None = None
        best_d = None
        for p in _ring(ideal, radius):
            if _feasible(p, item, placed_rects, spacing):
                d = (p.x - ideal.x) ** 2 + (p.y - ideal.y) ** 2
                if best_d is None or d < best_d:
                    best, best_d = p, d
        if best is not None:
            return best
    raise RuntimeError("gravity placement found no free position")  # pragma: no cover


def _ring(center: Point, radius: int):
    x, y = center
    for dx in range(-radius, radius + 1):
        yield Point(x + dx, y + radius)
        yield Point(x + dx, y - radius)
    for dy in range(-radius + 1, radius):
        yield Point(x + radius, y + dy)
        yield Point(x - radius, y + dy)


def place_by_gravity(
    items: list[GravityItem],
    *,
    spacing: int = 0,
    preplaced: dict[str, Point] | None = None,
) -> dict[str, Point]:
    """Place all items; returns absolute lower-left positions.

    ``preplaced`` items keep their given positions and act as the initial
    seed of the placement (PABLO's -g option: the preplaced part forms a
    partition of its own and the rest is placed around it).
    """
    by_key = {item.key: item for item in items}
    placed: dict[str, Point] = dict(preplaced or {})
    for key in placed:
        if key not in by_key:
            raise KeyError(f"preplaced item {key!r} is not among the items")
    remaining = [item for item in items if item.key not in placed]

    if not placed and remaining:
        first = max(remaining, key=lambda i: (i.weight, i.width * i.height, i.key))
        remaining.remove(first)
        placed[first.key] = Point(0, 0)

    while remaining:
        item = max(
            remaining,
            key=lambda i: (_connection_weight(i, placed, by_key), i.weight, i.key),
        )
        remaining.remove(item)
        placed_rects = [
            Rect(pos.x, pos.y, by_key[k].width, by_key[k].height)
            for k, pos in placed.items()
        ]
        centers = _shared_centers(item, placed, by_key)
        if centers is None:
            # Unconnected item: aim right of the current placement.
            bbox = placed_rects[0]
            for r in placed_rects[1:]:
                bbox = bbox.union(r)
            ideal = Point(bbox.x2 + spacing + 1, bbox.y)
        else:
            (g0x, g0y), (g1x, g1y) = centers
            ideal = Point(round(g1x - g0x), round(g1y - g0y))
        placed[item.key] = _nearest_free_position(ideal, item, placed_rects, spacing)
    return placed
