"""Epitaxial-growth placement (section 4.2.2) — baseline.

The classic constructive layout placement: seed the placement with the
most-connected module, then repeatedly take the unplaced module with the
most connections to the placed structure and put it on the free grid slot
minimising total estimated wire length.  This is the class PABLO's own
placement descends from; the baseline lacks partitioning, strings,
rotation and signal-flow control, which is what the comparison measures.
"""

from __future__ import annotations

from ..core.diagram import Diagram
from ..core.geometry import Point
from ..core.netlist import Network
from .terminal_place import place_terminals


def epitaxial_placement(
    network: Network,
    *,
    seed: str | None = None,
    spacing: int = 4,
) -> Diagram:
    """Place all modules on a slot grid by epitaxial growth.

    ``seed`` optionally names the manually planted seed module (the paper:
    "by planting such a seed, the designer determines indirectly the
    placement of the whole part"); default is the most-connected module.
    """
    if not network.modules:
        return Diagram(network)
    pitch_x = max(m.width for m in network.modules.values()) + spacing
    pitch_y = max(m.height for m in network.modules.values()) + spacing

    names = sorted(network.modules)
    if seed is None:
        seed = max(
            names, key=lambda m: (network.connections_to_set(m, names), m)
        )
    placed_slots: dict[str, tuple[int, int]] = {seed: (0, 0)}
    unplaced = [n for n in names if n != seed]

    while unplaced:
        module = max(
            unplaced,
            key=lambda m: (network.connections_to_set(m, placed_slots), m),
        )
        unplaced.remove(module)
        slot = _best_slot(network, module, placed_slots)
        placed_slots[module] = slot

    diagram = Diagram(network)
    for name, (sx, sy) in placed_slots.items():
        module = network.modules[name]
        # Center the module in its slot.
        x = sx * pitch_x + (pitch_x - module.width) // 2
        y = sy * pitch_y + (pitch_y - module.height) // 2
        diagram.place_module(name, Point(x, y))
    place_terminals(diagram)
    return diagram


def _best_slot(
    network: Network, module: str, placed: dict[str, tuple[int, int]]
) -> tuple[int, int]:
    """Try every free slot in and around the placed bounding box and keep
    the one with the smallest total connection length."""
    taken = set(placed.values())
    xs = [s[0] for s in placed.values()]
    ys = [s[1] for s in placed.values()]
    candidates = [
        (x, y)
        for x in range(min(xs) - 1, max(xs) + 2)
        for y in range(min(ys) - 1, max(ys) + 2)
        if (x, y) not in taken
    ]

    weights = {
        other: network.connection_count(module, other) for other in placed
    }

    def cost(slot: tuple[int, int]) -> int:
        return sum(
            w * (abs(slot[0] - placed[o][0]) + abs(slot[1] - placed[o][1]))
            for o, w in weights.items()
            if w
        )

    return min(candidates, key=lambda s: (cost(s), s))
