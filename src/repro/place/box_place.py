"""Box placement within a partition (section 4.6.5)."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.geometry import Point
from ..core.netlist import Network
from ..core.rotation import Rotation
from .gravity import GravityItem, place_by_gravity
from .module_place import BoxLayout


@dataclass
class PartitionLayout:
    """A placed partition: its boxes with positions, and its dimension."""

    boxes: list[BoxLayout]
    box_positions: list[Point] = field(default_factory=list)
    width: int = 0
    height: int = 0

    @property
    def size(self) -> tuple[int, int]:
        return (self.width, self.height)

    @property
    def module_count(self) -> int:
        return sum(len(b.modules) for b in self.boxes)

    def module_placements(self) -> dict[str, tuple[Point, Rotation]]:
        """Partition-local module lower-left positions and rotations."""
        out: dict[str, tuple[Point, Rotation]] = {}
        for box, origin in zip(self.boxes, self.box_positions):
            for module in box.modules:
                pos = box.positions[module]
                out[module] = (
                    Point(origin.x + pos.x, origin.y + pos.y),
                    box.rotations[module],
                )
        return out

    def net_points(self, network: Network) -> dict[str, list[Point]]:
        """Partition-local connected-terminal positions per net."""
        out: dict[str, list[Point]] = {}
        for box, origin in zip(self.boxes, self.box_positions):
            for net, pts in box.net_points(network).items():
                out.setdefault(net, []).extend(
                    Point(origin.x + p.x, origin.y + p.y) for p in pts
                )
        return out


def place_partition(
    network: Network, boxes: list[BoxLayout], *, spacing: int = 0
) -> PartitionLayout:
    """BOX_PLACEMENT: arrange the boxes of one partition by gravity and
    normalise so the partition's lower-left corner is the local origin."""
    items = [
        GravityItem(
            key=str(i),
            width=box.width,
            height=box.height,
            net_points=box.net_points(network),
            weight=len(box.modules),
        )
        for i, box in enumerate(boxes)
    ]
    positions = place_by_gravity(items, spacing=spacing)
    xs = [positions[str(i)].x for i in range(len(boxes))]
    ys = [positions[str(i)].y for i in range(len(boxes))]
    x0, y0 = min(xs), min(ys)
    layout = PartitionLayout(boxes=list(boxes))
    layout.box_positions = [
        Point(positions[str(i)].x - x0, positions[str(i)].y - y0)
        for i in range(len(boxes))
    ]
    layout.width = max(
        pos.x + box.width for pos, box in zip(layout.box_positions, boxes)
    )
    layout.height = max(
        pos.y + box.height for pos, box in zip(layout.box_positions, boxes)
    )
    return layout
