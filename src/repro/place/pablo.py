"""PABLO — the placement driver (chapter 4 and Appendix E).

Pipeline: partition the design (-p / -c), form boxes (strings) inside
every partition (-b), place modules inside their boxes (extra white space
-s), place boxes by gravity inside partitions (-i), place partitions by
gravity (-e), and finally place the system terminals around the bounding
box.  A preplaced (optionally prerouted) diagram may be passed in (-g);
it stays untouched, forms a partition of its own, and the rest of the
design is placed around it.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from ..core.diagram import Diagram
from ..core.geometry import Point
from ..core.netlist import Network
from ..obs import counters, get_logger, span
from .box_place import PartitionLayout, place_partition
from .boxes import form_boxes
from .module_place import place_box
from .partition_place import FixedPart, place_partitions
from .partitioning import PartitionLimits, partition_network
from .terminal_place import place_terminals


@dataclass(frozen=True)
class PabloOptions:
    """The PABLO command-line options (Appendix E)."""

    partition_size: int = 1  # -p
    box_size: int = 1  # -b
    max_connections: float = math.inf  # -c
    partition_spacing: int = 0  # -e
    box_spacing: int = 0  # -i
    module_extra_space: int = 0  # -s

    @property
    def limits(self) -> PartitionLimits:
        return PartitionLimits(
            max_size=self.partition_size, max_connections=self.max_connections
        )


@dataclass
class PlacementReport:
    """What the placement did (for the experiments)."""

    partitions: list[list[str]] = field(default_factory=list)
    boxes: list[list[list[str]]] = field(default_factory=list)  # per partition
    seconds: float = 0.0

    @property
    def partition_count(self) -> int:
        return len(self.partitions)

    @property
    def box_count(self) -> int:
        return sum(len(b) for b in self.boxes)


def place_network(
    network: Network,
    options: PabloOptions | None = None,
    *,
    preplaced: Diagram | None = None,
) -> tuple[Diagram, PlacementReport]:
    """Produce a fully placed (unrouted beyond ``preplaced``) diagram."""
    options = options or PabloOptions()
    report = PlacementReport()
    started = time.perf_counter()

    exclude: set[str] = set()
    if preplaced is not None:
        if preplaced.network is not network:
            raise ValueError("preplaced diagram must be over the same network")
        exclude = set(preplaced.placements)

    with span("pablo.place", modules=len(network.modules)):
        with span("pablo.partitioning"):
            report.partitions = partition_network(
                network, options.limits, exclude=exclude
            )

        with span("pablo.box_formation"):
            for partition in report.partitions:
                report.boxes.append(
                    form_boxes(network, partition, options.box_size)
                )

        with span("pablo.module_placement"):
            partition_box_layouts = [
                [
                    place_box(network, box, extra_space=options.module_extra_space)
                    for box in boxes
                ]
                for boxes in report.boxes
            ]

        with span("pablo.box_placement"):
            layouts: list[PartitionLayout] = [
                place_partition(network, box_layouts, spacing=options.box_spacing)
                for box_layouts in partition_box_layouts
            ]

        with span("pablo.partition_placement"):
            fixed = _fixed_part(preplaced) if preplaced is not None else None
            positions = place_partitions(
                network, layouts, spacing=options.partition_spacing, fixed=fixed
            )

        diagram = (
            preplaced.copy_placement() if preplaced is not None else Diagram(network)
        )
        if preplaced is not None:
            for name, route in preplaced.routes.items():
                target = diagram.route_for(name)
                for path in route.paths:
                    target.add_path(path)
        for layout, origin in zip(layouts, positions):
            for module, (pos, rotation) in layout.module_placements().items():
                diagram.place_module(
                    module, Point(origin.x + pos.x, origin.y + pos.y), rotation
                )

        with span("pablo.terminal_placement"):
            place_terminals(diagram)

    report.seconds = time.perf_counter() - started
    counters.inc("place.runs")
    counters.inc("place.partitions", report.partition_count)
    counters.inc("place.boxes", report.box_count)
    counters.inc("place.modules", len(diagram.placements))
    counters.observe("place.seconds", report.seconds)
    get_logger("place.pablo").info(
        "placement done",
        extra={
            "fields": {
                "modules": len(diagram.placements),
                "partitions": report.partition_count,
                "boxes": report.box_count,
                "seconds": round(report.seconds, 3),
            }
        },
    )
    return diagram, report


PREPLACED_RING = 2  # white-space tracks kept clear around a preplaced part


def _fixed_part(preplaced: Diagram) -> FixedPart:
    # Normal partitions carry per-box white space; the preplaced block is
    # raw module geometry, so give it a ring of clear tracks too —
    # otherwise the gravity placement packs other partitions right against
    # its terminals and walls them in.
    bbox = preplaced.bounding_box(include_routes=True).expand(PREPLACED_RING)
    net_points: dict[str, list[Point]] = {}
    for net in preplaced.network.nets.values():
        for pin in net.pins:
            if not pin.is_system and pin.module in preplaced.placements:
                p = preplaced.pin_position(pin)
                net_points.setdefault(net.name, []).append(
                    Point(p.x - bbox.x, p.y - bbox.y)
                )
    return FixedPart(
        key="<preplaced>",
        position=bbox.lower_left,
        width=bbox.w,
        height=bbox.h,
        net_points=net_points,
    )
