"""System terminal placement (section 4.6.7).

System terminals go on the ring one track outside the placement bounding
box.  Each terminal is put at the free ring position nearest to the
gravity center of the subsystem terminals sharing its net — so inputs,
which connect to string heads on the left, naturally land on the left
border and outputs on the right, preserving left-to-right signal flow.
"""

from __future__ import annotations

from ..core.diagram import Diagram
from ..core.geometry import Point, Rect


def _gravity(diagram: Diagram, terminal: str) -> tuple[float, float]:
    """GRAVITY_TERMINAL: mean position of the module terminals on the same
    net; falls back to the placement center for unconnected terminals."""
    points: list[Point] = []
    for net in diagram.network.nets.values():
        if any(p.is_system and p.terminal == terminal for p in net.pins):
            for pin in net.pins:
                if not pin.is_system and pin.module in diagram.placements:
                    points.append(diagram.pin_position(pin))
    if not points:
        return diagram.bounding_box(include_routes=False).center
    return (
        sum(p.x for p in points) / len(points),
        sum(p.y for p in points) / len(points),
    )


def _ring_positions(bbox: Rect, offset: int = 1) -> list[Point]:
    ring = bbox.expand(offset)
    out: list[Point] = []
    for x in range(ring.x, ring.x2 + 1):
        out.append(Point(x, ring.y))
        out.append(Point(x, ring.y2))
    for y in range(ring.y + 1, ring.y2):
        out.append(Point(ring.x, y))
        out.append(Point(ring.x2, y))
    return out


def _escape_points(diagram: Diagram) -> dict[Point, set[str]]:
    """The track points directly outside connected subsystem terminals,
    mapped to the nets owning them.

    A module terminal's only access is the point one step off its module
    side; parking a *foreign* system terminal there would wall the pin in
    (the failure the claimpoints of section 5.7 guard against).  A system
    terminal of the same net may sit there — that is the ideal spot.
    """
    out: dict[Point, set[str]] = {}
    for net in diagram.network.nets.values():
        for pin in net.pins:
            if pin.is_system or pin.module not in diagram.placements:
                continue
            side = diagram.pin_side(pin)
            if side is not None:
                point = diagram.pin_position(pin).step(side.outward)
                out.setdefault(point, set()).add(net.name)
    return out


def place_terminals(diagram: Diagram, *, offset: int = 1) -> None:
    """TERMINAL_PLACEMENT: place every still-unplaced system terminal on
    the free ring position nearest its net's gravity center."""
    unplaced = [
        name
        for name in diagram.network.system_terminals
        if name not in diagram.terminal_positions
    ]
    if not unplaced:
        return
    bbox = diagram.bounding_box(include_routes=False)
    escapes = _escape_points(diagram)
    ring = _ring_positions(bbox, offset)
    taken = set(diagram.terminal_positions.values())

    def nets_of(terminal: str) -> set[str]:
        return {
            net.name
            for net in diagram.network.nets.values()
            if any(p.is_system and p.terminal == terminal for p in net.pins)
        }

    # Strongly connected terminals first so they get the best positions.
    def pin_count(name: str) -> int:
        return sum(
            len(net.pins)
            for net in diagram.network.nets.values()
            if any(p.is_system and p.terminal == name for p in net.pins)
        )

    for name in sorted(unplaced, key=lambda n: (-pin_count(n), n)):
        own_nets = nets_of(name)
        gx, gy = _gravity(diagram, name)
        candidates = [
            p
            for p in ring
            if p not in taken
            and (p not in escapes or escapes[p] <= own_nets)
        ]
        best = min(
            candidates,
            key=lambda p: (p.x - gx) ** 2 + (p.y - gy) ** 2,
        )
        taken.add(best)
        diagram.place_system_terminal(name, best)
