"""Partition placement (section 4.6.6).

Proceeds exactly like box placement one level up: the partition with the
most modules is placed first, then the partition most heavily connected to
the placed ones goes to the free position minimising the distance between
the shared-net gravity centers.  A preplaced part (PABLO -g) enters as a
fixed partition the rest is placed around.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.geometry import Point
from ..core.netlist import Network
from .box_place import PartitionLayout
from .gravity import GravityItem, place_by_gravity


@dataclass(frozen=True)
class FixedPart:
    """An immovable preplaced region participating in gravity placement."""

    key: str
    position: Point
    width: int
    height: int
    net_points: dict[str, list[Point]]  # local coordinates


def place_partitions(
    network: Network,
    layouts: list[PartitionLayout],
    *,
    spacing: int = 0,
    fixed: FixedPart | None = None,
) -> list[Point]:
    """Absolute lower-left positions for the partitions, in order."""
    items = [
        GravityItem(
            key=f"part{i}",
            width=layout.width,
            height=layout.height,
            net_points=layout.net_points(network),
            weight=layout.module_count,
        )
        for i, layout in enumerate(layouts)
    ]
    preplaced: dict[str, Point] = {}
    if fixed is not None:
        items.append(
            GravityItem(
                key=fixed.key,
                width=fixed.width,
                height=fixed.height,
                net_points=fixed.net_points,
                weight=1_000_000,  # the preplaced part anchors the design
            )
        )
        preplaced[fixed.key] = fixed.position
    positions = place_by_gravity(items, spacing=spacing, preplaced=preplaced)
    return [positions[f"part{i}"] for i in range(len(layouts))]
