"""Column-based logic-schematic placement (section 4.3) — baseline.

The standard technique for *logic* schematics: assign every module to a
column by signal level (sources in column 0, a module joins column k+1
when all its drivers sit in columns <= k), then permute the rows within
each column to reduce net crossings (barycenter sweeps — the practical
substitute for exhaustive permutation the paper mentions).  The paper
deems the approach too constrained for general schematics; the baseline
lets the experiments show where it works and where it degenerates.
"""

from __future__ import annotations

from collections import defaultdict

from ..core.diagram import Diagram
from ..core.geometry import Point
from ..core.netlist import Network
from .boxes import drive_edges
from .terminal_place import place_terminals

BARYCENTER_SWEEPS = 3


def levelize(network: Network) -> list[list[str]]:
    """Assign modules to columns by drive level.

    Feedback loops (which the logic-schematic literature "often excludes
    for reasons of simplicity") are broken by force-placing the remaining
    module with the fewest unplaced drivers.
    """
    names = sorted(network.modules)
    edges = drive_edges(network, set(names))
    drivers: dict[str, set[str]] = defaultdict(set)
    for source, lst in edges.items():
        for edge in lst:
            drivers[edge.sink].add(source)

    placed: set[str] = set()
    columns: list[list[str]] = []
    remaining = set(names)
    while remaining:
        ready = sorted(
            m for m in remaining if drivers.get(m, set()) <= placed
        )
        if not ready:
            victim = min(
                sorted(remaining),
                key=lambda m: len(drivers.get(m, set()) - placed),
            )
            ready = [victim]
        columns.append(ready)
        placed.update(ready)
        remaining -= set(ready)
    return columns


def _barycenter_order(
    network: Network, columns: list[list[str]]
) -> list[list[str]]:
    """Reduce crossings by ordering each column by the mean row index of
    its connected modules in the previous column (then a reverse sweep)."""
    rows: dict[str, int] = {}
    for column in columns:
        for i, m in enumerate(column):
            rows[m] = i

    def sweep(order: range) -> None:
        for ci in order:
            column = columns[ci]

            def barycenter(m: str) -> float:
                connected = [
                    rows[o]
                    for o in rows
                    if o != m and network.connection_count(m, o) > 0
                ]
                return sum(connected) / len(connected) if connected else rows[m]

            column.sort(key=lambda m: (barycenter(m), m))
            for i, m in enumerate(column):
                rows[m] = i

    for _ in range(BARYCENTER_SWEEPS):
        sweep(range(1, len(columns)))
        sweep(range(len(columns) - 2, -1, -1))
    return columns


def logic_columns_placement(network: Network, *, spacing: int = 4) -> Diagram:
    """Columnar placement of all modules: levelize, order, stack."""
    diagram = Diagram(network)
    if not network.modules:
        return diagram
    columns = _barycenter_order(network, levelize(network))

    x = 0
    for column in columns:
        width = max(network.modules[m].width for m in column)
        y = 0
        for name in column:
            module = network.modules[name]
            diagram.place_module(name, Point(x, y))
            y += module.height + spacing
        x += width + spacing * 2
    place_terminals(diagram)
    return diagram
