"""Box formation (section 4.6.3): strings of connected modules.

Inside every partition, boxes are formed: continuous strings of modules
where each successor is driven by its predecessor (a net runs from an
out/inout terminal of the predecessor to an in/inout terminal of the
successor).  Root candidates seed a longest-path search; the longest
string found becomes a box and the search repeats on the leftovers.  The
position in the string is the module's *level* and enforces left-to-right
signal flow.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.netlist import Network, TermType


@dataclass(frozen=True)
class DriveEdge:
    """``source`` drives ``sink`` through ``net`` (out/inout → in/inout)."""

    source: str
    sink: str
    net: str
    source_terminal: str
    sink_terminal: str


def drive_edges(network: Network, members: set[str]) -> dict[str, list[DriveEdge]]:
    """All drive edges between modules of ``members``, per source."""
    edges: dict[str, list[DriveEdge]] = {m: [] for m in members}
    for net in network.nets.values():
        drivers = []
        sinks = []
        for pin in net.pins:
            if pin.is_system or pin.module not in members:
                continue
            ttype = network.modules[pin.module].terminals[pin.terminal].type
            if ttype.drives:
                drivers.append(pin)
            if ttype.listens:
                sinks.append(pin)
        for d in drivers:
            for s in sinks:
                if d.module != s.module:
                    edges[d.module].append(
                        DriveEdge(d.module, s.module, net.name, d.terminal, s.terminal)
                    )
    for lst in edges.values():
        lst.sort(key=lambda e: (e.sink, e.net, e.sink_terminal))
    return edges


def construct_roots(network: Network, partition: list[str]) -> list[str]:
    """CONSTRUCT_ROOTS: a module may head a string when it

    * connects to a module outside the partition, or
    * connects to an ``in``/``inout`` system terminal, or
    * connects to other modules through exactly one net.
    """
    members = set(partition)
    roots: list[str] = []
    for module in partition:
        external = network.connections_to_set(
            module, set(network.modules) - members
        )
        system_in = any(
            any(
                p.is_system
                and network.system_terminals[p.terminal].type
                in (TermType.IN, TermType.INOUT)
                for p in net.pins
            )
            for net, pin in network.pins_of_module(module)
        )
        inter_module_nets = {
            net.name
            for net, _ in network.pins_of_module(module)
            if any(p.module not in (None, module) for p in net.pins)
        }
        if external > 0 or system_in or len(inter_module_nets) == 1:
            roots.append(module)
    return roots


def longest_path(
    root: str,
    remaining: set[str],
    edges: dict[str, list[DriveEdge]],
    max_length: int,
) -> list[str]:
    """LONGEST_PATH: depth-first search for the longest drive string from
    ``root`` through ``remaining`` modules, capped at ``max_length``."""
    best: list[str] = [root]

    def extend(path: list[str], available: set[str]) -> None:
        nonlocal best
        if len(path) > len(best):
            best = list(path)
        if len(path) >= max_length:
            return
        head = path[-1]
        seen_sinks = set()
        for edge in edges.get(head, ()):
            if edge.sink in available and edge.sink not in seen_sinks:
                seen_sinks.add(edge.sink)
                path.append(edge.sink)
                available.discard(edge.sink)
                extend(path, available)
                available.add(edge.sink)
                path.pop()

    extend([root], remaining - {root})
    return best


def form_boxes(
    network: Network, partition: list[str], max_box_size: int = 1
) -> list[list[str]]:
    """BOX_FORMATION for one partition: repeatedly peel off the longest
    string reachable from a root.  Every module ends up in exactly one
    box; leftovers with no usable root become singleton boxes."""
    if max_box_size < 1:
        raise ValueError("box size limit must be at least 1")
    remaining = set(partition)
    edges = drive_edges(network, set(partition))
    roots = construct_roots(network, partition)
    boxes: list[list[str]] = []
    while remaining:
        usable_roots = [r for r in roots if r in remaining] or sorted(remaining)
        best: list[str] = []
        for root in usable_roots:
            path = longest_path(root, remaining, edges, max_box_size)
            if len(path) > len(best) or (
                len(path) == len(best) and best and path < best
            ):
                best = path
        boxes.append(best)
        remaining -= set(best)
    # Keep input order among boxes deterministic: by first-module position
    # in the original partition list.
    index = {m: i for i, m in enumerate(partition)}
    boxes.sort(key=lambda b: min(index[m] for m in b))
    return boxes


def string_edge(
    network: Network, prev: str, nxt: str, members: set[str]
) -> DriveEdge:
    """The drive edge the placement aligns two string neighbours on."""
    for edge in drive_edges(network, members).get(prev, ()):
        if edge.sink == nxt:
            return edge
    raise ValueError(f"no drive edge from {prev!r} to {nxt!r}")
