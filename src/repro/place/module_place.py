"""Module placement inside a box (section 4.6.4).

The modules of a string are laid out left to right.  Every module is
rotated so the terminal connecting it to its predecessor faces left (the
first module faces its driving terminal right), and shifted vertically so
the connecting net needs at most two bends — by the paper's lemma this
makes the intra-string nets minimum-bend for the fixed level assignment.
White space is added around each module: the number of tracks on a side
equals the number of connected terminals on that side plus one (Appendix
E), plus a user-controlled extra.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.geometry import Point, Side
from ..core.netlist import Module, Network
from ..core.rotation import Rotation
from .boxes import DriveEdge, string_edge


@dataclass
class BoxLayout:
    """A placed string: module positions relative to the box lower-left
    corner, per-module rotations, and the box dimension."""

    modules: list[str]
    positions: dict[str, Point] = field(default_factory=dict)
    rotations: dict[str, Rotation] = field(default_factory=dict)
    width: int = 0
    height: int = 0

    @property
    def size(self) -> tuple[int, int]:
        return (self.width, self.height)

    def terminal_point(self, network: Network, module: str, terminal: str) -> Point:
        """Box-local position of a terminal of a member module."""
        mod = network.modules[module]
        rot = self.rotations[module]
        off = rot.apply(mod.terminals[terminal].offset, mod.width, mod.height)
        pos = self.positions[module]
        return Point(pos.x + off.x, pos.y + off.y)

    def net_points(self, network: Network) -> dict[str, list[Point]]:
        """Box-local connected-terminal positions per net (for gravity)."""
        out: dict[str, list[Point]] = {}
        for module in self.modules:
            for net, pin in network.pins_of_module(module):
                out.setdefault(net.name, []).append(
                    self.terminal_point(network, module, pin.terminal)
                )
        return out


def connected_terminals_on(
    network: Network, module: Module, rotation: Rotation, side: Side
) -> int:
    """Number of net-connected terminals facing ``side`` after rotation."""
    connected = {
        pin.terminal for _net, pin in network.pins_of_module(module.name)
    }
    count = 0
    for name in connected:
        if rotation.side(module.side(name)) is side:
            count += 1
    return count


def _space(network: Network, module: Module, rot: Rotation, side: Side, extra: int) -> int:
    """The white-space function f: connected terminals on the side + 1."""
    return connected_terminals_on(network, module, rot, side) + 1 + extra


def place_box(
    network: Network, box: list[str], *, extra_space: int = 0
) -> BoxLayout:
    """MODULE_PLACEMENT for one box (string) of modules."""
    layout = BoxLayout(modules=list(box))
    members = set(box)
    edges: list[DriveEdge | None] = [
        string_edge(network, prev, nxt, members) for prev, nxt in zip(box, box[1:])
    ]

    first = network.modules[box[0]]
    if edges:
        out_side = first.side(edges[0].source_terminal)
        rot0 = Rotation.taking(out_side, Side.RIGHT)
    else:
        rot0 = Rotation.R0
    layout.rotations[box[0]] = rot0
    w0, h0 = rot0.size(first.width, first.height)
    x = _space(network, first, rot0, Side.LEFT, extra_space)
    y = _space(network, first, rot0, Side.DOWN, extra_space)
    layout.positions[box[0]] = Point(x, y)
    left, down = 0, 0
    right = x + w0 + _space(network, first, rot0, Side.RIGHT, extra_space)
    up = y + h0 + _space(network, first, rot0, Side.UP, extra_space)

    for edge in edges:
        assert edge is not None
        prev = network.modules[edge.source]
        mod = network.modules[edge.sink]
        prev_rot = layout.rotations[edge.source]
        rot = Rotation.taking(mod.side(edge.sink_terminal), Side.LEFT)
        layout.rotations[edge.sink] = rot

        prev_pos = layout.positions[edge.source]
        prev_w, prev_h = prev_rot.size(prev.width, prev.height)
        t_prev_off = prev_rot.apply(
            prev.terminals[edge.source_terminal].offset, prev.width, prev.height
        )
        t_off = rot.apply(
            mod.terminals[edge.sink_terminal].offset, mod.width, mod.height
        )
        prev_side = prev_rot.side(prev.side(edge.source_terminal))

        if prev_side is Side.RIGHT:
            y = prev_pos.y + t_prev_off.y - t_off.y
        elif prev_side is Side.UP:
            y = prev_pos.y + t_prev_off.y - t_off.y + 1
        elif prev_side is Side.DOWN:
            y = prev_pos.y - 1 - t_off.y
        else:  # LEFT: route around the shorter way
            if prev_h - t_prev_off.y > t_prev_off.y:
                y = prev_pos.y - 1 - t_off.y
            else:
                y = prev_pos.y + prev_h + 1 - t_off.y

        x = right + _space(network, mod, rot, Side.LEFT, extra_space)
        layout.positions[edge.sink] = Point(x, y)
        w, h = rot.size(mod.width, mod.height)
        right = x + w + _space(network, mod, rot, Side.RIGHT, extra_space)
        up = max(up, y + h + _space(network, mod, rot, Side.UP, extra_space))
        down = min(down, y - _space(network, mod, rot, Side.DOWN, extra_space))

    # Translate so the box lower-left corner is the local origin.
    dx, dy = -left, -down
    for name, pos in layout.positions.items():
        layout.positions[name] = Point(pos.x + dx, pos.y + dy)
    layout.width = right - left
    layout.height = up - down
    return layout
