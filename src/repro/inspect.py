"""``artwork-inspect`` — query the run registry, render diagnostics,
gate regressions.

Subcommands over the append-only JSONL registry the pipeline commands
write with ``--runlog`` (the benchmarks append to it automatically, and
``artwork-serve --runlog`` adds one ``kind="serve"`` record per job it
serves, so daemon traffic shows up alongside batch and bench runs —
``list --kind serve`` filters down to it):

* ``record``  — run the generator on network files and append a RunRecord,
* ``list``    — the run trajectory as a table,
* ``show``    — one record in full (profile, quality, failures, span tree;
  ``--trace`` exports the span tree as Chrome trace JSON),
* ``slow``    — the gateway's ``kind="slow"`` latency exemplars with their
  auth/parse/queue/worker breakdowns,
* ``flame``   — render a run's shipped profile windows as a standalone
  flamegraph HTML page,
* ``explain`` — the router's search introspection for one net: pops vs.
  the initial bound estimate, escalations, footprint area, and any
  parallel-wave conflicts/rollbacks that involved it,
* ``diff``    — metric deltas between two runs,
* ``report``  — self-contained HTML diagnostics report for a run,
* ``regress`` — compare the latest (or freshly captured) run per workload
  against the committed baselines in ``benchmarks/baselines/`` and exit
  non-zero on quality (bends/crossovers/failures) or wall-time
  regressions.

Exit codes: 0 ok, 1 regression found, 2 usage/input errors — matching
the other front ends.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .core.generator import generate
from .obs import enable_tracing, setup_logging
from .obs.trace import Span, chrome_trace_document
from .obs.congestion import CongestionMap
from .obs.report import write_html_report
from .obs.runlog import (
    DEFAULT_RUNLOG,
    Regression,
    RunLog,
    RunRecord,
    check_regressions,
    diff_records,
    git_rev,
)
from .obs.sampler import merge_windows, write_flamegraph_html
from .render.svg import save_svg
from .service.jobs import pablo_from_dict, router_from_dict
from .cli import (
    _eureka_args,
    _eureka_options,
    _fail,
    _load_network,
    _network_args,
    _pablo_args,
    _pablo_options,
    _print_table,
    _run_guarded,
    _version_arg,
)

DEFAULT_BASELINES = Path("benchmarks") / "baselines"


def _runlog_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--runlog",
        metavar="FILE",
        default=str(DEFAULT_RUNLOG),
        help=f"run registry to read/write (default: {DEFAULT_RUNLOG})",
    )


def _load_log(args: argparse.Namespace) -> RunLog:
    return RunLog(args.runlog)


def _resolve(log: RunLog, run_id: str) -> RunRecord:
    record = log.find(run_id)
    if record is None:
        raise _fail(f"no run matching {run_id!r} in {log.path}")
    return record


def _when(record: RunRecord) -> str:
    return record.timestamp.replace("T", " ").rstrip("Z")


def _run_row(record: RunRecord) -> dict:
    q = record.quality_row
    return {
        "id": record.run_id,
        "kind": record.kind,
        "name": record.name,
        "when": _when(record),
        "rev": record.git_rev,
        "routed": f"{q['routed']}/{q['nets']}",
        "bends": q["bends"],
        "crossovers": q["crossovers"],
        "wall_s": f"{record.wall_seconds:.3f}",
    }


# -- record ----------------------------------------------------------------


def _cmd_record(args: argparse.Namespace) -> int:
    setup_logging(args.log_level)
    enable_tracing()  # stage timings belong in the record
    log = _load_log(args)
    network = _load_network(args)
    result = generate(
        network,
        _pablo_options(args),
        _eureka_options(args),
        runlog=log,
        run_name=args.name,
    )
    record = result.run_record
    assert record is not None
    if args.svg:
        heat = CongestionMap.from_dict(record.congestion).heat_cells()
        save_svg(result.diagram, args.svg, heat=heat)
        print(f"schematic + congestion overlay -> {args.svg}")
    q = record.quality_row
    print(
        f"recorded {record.run_id} ({record.kind}/{record.name}): "
        f"routed {q['routed']}/{q['nets']} bends={q['bends']} "
        f"crossovers={q['crossovers']} wall={record.wall_seconds:.3f}s "
        f"-> {log.path}"
    )
    return 0 if not result.routing.failed_nets else 1


# -- list / show / diff ----------------------------------------------------


def _cmd_list(args: argparse.Namespace) -> int:
    log = _load_log(args)
    records = log.runs(kind=args.kind, name=args.name)
    if args.limit and len(records) > args.limit:
        records = records[-args.limit :]
    if not records:
        print(f"no runs in {log.path}")
        return 0
    _print_table(f"run registry ({log.path})", [_run_row(r) for r in records])
    if log.corrupt_lines:
        print(f"warning: skipped {log.corrupt_lines} corrupt line(s)", file=sys.stderr)
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    log = _load_log(args)
    record = _resolve(log, args.run)
    for key, value in _run_row(record).items():
        print(f"{key:<12}{value}")
    print(f"{'digest':<12}{record.spec_digest[:16] or '—'}")
    if record.profile:
        print("\nprofile:")
        print(record.profile)
    if record.failures:
        print("\nfailures:")
        for net, info in sorted(record.failures.items()):
            print(
                f"  {net}: {info.get('reason', '?')} "
                f"(unconnected pins: {info.get('unconnected_pins', 0)})"
            )
    if record.congestion:
        cmap = CongestionMap.from_dict(record.congestion)
        print(
            f"\ncongestion: {len(cmap.cells)} occupied points, "
            f"peak occupancy {cmap.max_occupancy}, "
            f"{cmap.crossover_total} crossovers"
        )
    counters = (record.counters or {}).get("counters", {})
    if counters:
        print("\ncounters:")
        width = max(len(k) for k in counters)
        for key in sorted(counters):
            print(f"  {key:<{width}}  {counters[key]}")
    extra = record.extra or {}
    if extra.get("trace_id"):
        print(f"\ntrace_id    {extra['trace_id']}")
    if extra.get("breakdown"):
        print("breakdown:")
        for key, value in extra["breakdown"].items():
            print(f"  {key:<16}{value:.6f}s")
    spans = extra.get("spans") or []
    if spans:
        print("\nspans:")
        for root in spans:
            _print_span_tree(root)
    if getattr(args, "trace", None):
        if not spans:
            raise _fail(f"run {record.run_id} carries no span tree")
        roots = [Span.from_dict(s) for s in spans]
        out = Path(args.trace)
        out.write_text(json.dumps(chrome_trace_document(roots), indent=1))
        print(f"\nchrome trace -> {out}")
    return 0


def _print_span_tree(node: dict, depth: int = 0) -> None:
    duration = float(node.get("duration", 0.0))
    print(f"  {'  ' * depth}{node.get('name', '?'):<{max(1, 40 - 2 * depth)}}"
          f"{duration * 1e3:9.1f}ms")
    for child in node.get("children", []):
        _print_span_tree(child, depth + 1)


# -- slow ------------------------------------------------------------------


def _cmd_slow(args: argparse.Namespace) -> int:
    """The gateway's slow-request exemplars, worst first."""
    log = _load_log(args)
    records = log.runs(kind="slow", name=args.name)
    if not records:
        print(f"no slow-request records in {log.path}")
        return 0
    records.sort(key=lambda r: r.wall_seconds, reverse=True)
    if args.limit and len(records) > args.limit:
        records = records[: args.limit]
    rows = []
    for record in records:
        extra = record.extra or {}
        breakdown = extra.get("breakdown", {})
        rows.append(
            {
                "id": record.run_id,
                "name": record.name,
                "when": _when(record),
                "trace": (extra.get("trace_id") or "—")[:16],
                "status": extra.get("status", "?"),
                "total_s": f"{record.wall_seconds:.3f}",
                "queue_s": f"{breakdown.get('queue_wait_s', 0.0):.3f}",
                "worker_s": f"{breakdown.get('worker_exec_s', 0.0):.3f}",
            }
        )
    _print_table(f"slow requests ({log.path})", rows)
    print("\nuse `artwork-inspect show <id> --trace out.json` for the span tree")
    return 0


def _cmd_flame(args: argparse.Namespace) -> int:
    """Render one run's profile windows as a flamegraph HTML page."""
    log = _load_log(args)
    record = _resolve(log, args.run)
    windows = record.profile_windows or []
    if not windows:
        raise _fail(
            f"run {record.run_id} carries no profile windows "
            "(was the sampler disabled? ARTWORK_SAMPLER_HZ=0)"
        )
    out = Path(args.output or f"flame_{record.run_id}.html")
    write_flamegraph_html(
        out, windows, title=f"{record.name} — {record.run_id}"
    )
    merged = merge_windows(windows)
    print(
        f"flamegraph -> {out} ({merged.samples} samples over "
        f"{len(windows)} window(s), "
        f"{100.0 * merged.attributed_ratio():.1f}% attributed)"
    )
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """Explain the router's search effort for one net of a recorded run."""
    log = _load_log(args)
    record = _resolve(log, args.run)
    search = (record.extra or {}).get("search") or {}
    nets = search.get("nets") or {}
    if not nets:
        raise _fail(
            f"run {record.run_id} carries no search introspection "
            "(recorded before it existed, or not a routing run)"
        )
    if args.net is None:
        rows = [
            {
                "net": net,
                "conns": agg.get("connections", 0),
                "pops": agg.get("pops", 0),
                "bound_est": agg.get("bound_est", 0),
                "escalations": agg.get("escalations", 0),
                "area": agg.get("area", 0),
                "seconds": f"{agg.get('seconds', 0.0):.4f}",
                "outcome": agg.get("outcome", "?"),
            }
            for net, agg in sorted(
                nets.items(), key=lambda kv: -kv[1].get("pops", 0)
            )[: args.limit or len(nets)]
        ]
        _print_table(f"search effort by net ({record.run_id})", rows)
        tightness = search.get("bound_tightness") or {}
        if tightness:
            print("\nbound tightness (estimate/actual, 1.0 = exact):")
            for bucket in sorted(tightness):
                print(f"  {bucket:<12}{tightness[bucket]}")
        print("\nuse `artwork-inspect explain <run> <net>` for one net's detail")
        return 0
    agg = nets.get(args.net)
    if agg is None:
        sample = ", ".join(sorted(nets)[:8])
        raise _fail(
            f"run {record.run_id} has no net {args.net!r} "
            f"(nets include: {sample}{'...' if len(nets) > 8 else ''})"
        )
    print(f"net {args.net} ({record.run_id}/{record.name}): {agg.get('outcome', '?')}")
    for key in ("connections", "pops", "pruned", "bound_est",
                "escalations", "failures", "area"):
        print(f"  {key:<14}{agg.get(key, 0)}")
    print(f"  {'seconds':<14}{agg.get('seconds', 0.0):.4f}")
    detail = [
        row for row in (search.get("connections") or [])
        if row.get("net") == args.net
    ]
    if detail:
        rows = [
            {
                "start": f"{row.get('start', ['?', '?'])}",
                "targets": row.get("targets", 0),
                "pops": row.get("pops", 0),
                "pruned": row.get("pruned", 0),
                "bound": f"{row.get('bound') or '—'}",
                "cost": f"{row.get('cost') or '—'}",
                "escalated": "yes" if row.get("escalated") else "",
                "found": "yes" if row.get("found") else "NO",
                "seconds": f"{row.get('seconds', 0.0):.4f}",
            }
            for row in detail
        ]
        _print_table("per-connection search detail", rows)
    else:
        print(
            "\n(no per-connection rows persisted for this net — only the "
            f"top {len(search.get('connections') or [])} by pops are kept)"
        )
    events = [
        e for e in (search.get("parallel") or []) if e.get("net") == args.net
    ]
    if events:
        print("\nparallel-wave events:")
        for event in events:
            rollback = " (rolled back committed paths)" if event.get("rollback") else ""
            print(
                f"  wave {event.get('wave', '?')}: {event.get('outcome', '?')} — "
                f"{event.get('cause', '?')}{rollback}"
            )
    return 0


def _cmd_journal(args: argparse.Namespace) -> int:
    """Summarize a gateway write-ahead journal: per-job state, what a
    restart would replay, and any corruption the loader tolerated."""
    from .gateway.journal import read_journal

    records, summary = read_journal(args.path)
    print(f"journal {summary['path']}")
    print(
        f"  records {summary['records']}  jobs {summary['jobs']}  "
        f"live {summary['live']}  corrupt_lines {summary['corrupt_lines']}  "
        f"torn_tail {summary['torn_tail']}"
    )
    if summary["live_jobs"]:
        rows = []
        by_job = {r["job"]: r for r in records if r["op"] == "accepted"}
        for job_id, state in summary["live_jobs"].items():
            accepted = by_job.get(job_id, {})
            rows.append(
                {
                    "job": job_id,
                    "state": state,
                    "name": accepted.get("name", "?"),
                    "digest": str(accepted.get("digest", ""))[:12],
                    "trace": str(accepted.get("trace") or "—")[:16],
                    "deadline": (
                        f"{accepted['deadline']:.3f}"
                        if accepted.get("deadline") is not None
                        else "—"
                    ),
                }
            )
        _print_table("live jobs (replayed on next boot)", rows)
    else:
        print("  no live jobs — a restart replays nothing")
    if summary["statuses"]:
        counts: dict[str, int] = {}
        for status in summary["statuses"].values():
            counts[status] = counts.get(status, 0) + 1
        done = "  ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        print(f"  terminal: {done}")
    if args.ops:
        for record in records:
            print(f"  {json.dumps(record, sort_keys=True)}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    log = _load_log(args)
    base = _resolve(log, args.base)
    run = _resolve(log, args.run)
    rows = []
    for metric, d in diff_records(base, run).items():
        rows.append(
            {
                "metric": metric,
                "base": d["base"],
                "run": d["run"],
                "delta": f"{d['delta']:+g}" if d["delta"] else "=",
                "pct": f"{d['pct']:+.1f}%" if d["pct"] is not None else "—",
            }
        )
    _print_table(f"{base.run_id} -> {run.run_id} ({run.name})", rows)
    return 0


# -- report ----------------------------------------------------------------


def _baseline_record(log: RunLog, spec: str) -> RunRecord:
    """A baseline for the report: a run id, or a baseline JSON file."""
    path = Path(spec)
    if path.suffix == ".json" and path.exists():
        data = _read_baseline(path)
        return RunRecord(
            run_id=f"baseline:{path.stem}",
            kind="baseline",
            name=str(data.get("name", path.stem)),
            timestamp=str(data.get("recorded", "")),
            git_rev=str(data.get("git_rev", "")),
            metrics=dict(data.get("metrics", {})),
            wall_seconds=float(data.get("wall_seconds", 0.0)),
        )
    return _resolve(log, spec)


def _cmd_report(args: argparse.Namespace) -> int:
    log = _load_log(args)
    if args.run:
        record = _resolve(log, args.run)
    else:
        record = log.latest(name=args.name)
        if record is None:
            raise _fail(f"no runs{f' named {args.name!r}' if args.name else ''} in {log.path}")
    baseline = _baseline_record(log, args.baseline) if args.baseline else None
    out = Path(args.output or f"report_{record.run_id}.html")
    write_html_report(out, record, baseline=baseline)
    print(f"report -> {out}")
    return 0


# -- regress ---------------------------------------------------------------


def _read_baseline(path: Path) -> dict:
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise _fail(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(data, dict) or "name" not in data or "metrics" not in data:
        raise _fail(f"baseline {path} needs at least 'name' and 'metrics'")
    return data


def _baseline_network(source: dict, root: Path):
    """Rebuild the workload a baseline gates: a named example generator,
    explicit network files, or a workload spec."""
    if "example" in source:
        from . import workloads

        fn = getattr(workloads, str(source["example"]), None)
        if fn is None:
            raise _fail(f"unknown example workload {source['example']!r}")
        return fn(**source.get("args", {}))
    if "files" in source:
        files = source["files"]
        ns = argparse.Namespace(
            netlist=str(root / files["netlist"]),
            call=str(root / files["call"]),
            io=str(root / files["io"]) if files.get("io") else None,
            library=str(root / files["library"]) if files.get("library") else None,
        )
        return _load_network(ns)
    if "workload" in source:
        from .workloads.batch import workload_from_dict

        try:
            networks = workload_from_dict(dict(source["workload"]))
        except (ValueError, KeyError) as exc:
            raise _fail(f"bad baseline workload spec: {exc}") from exc
        if not networks:
            raise _fail("baseline workload produced no networks")
        return networks[0]
    raise _fail("baseline source needs 'example', 'files' or 'workload'")


def _capture_run(baseline: dict, root: Path, log: RunLog) -> RunRecord:
    """Run the baseline's workload now and append the record."""
    source = baseline.get("source")
    if not isinstance(source, dict):
        raise _fail(
            f"baseline {baseline['name']!r} has no 'source' to capture from"
        )
    try:
        pablo = pablo_from_dict(baseline.get("pablo", {}))
        eureka = router_from_dict(baseline.get("eureka", {}))
    except ValueError as exc:
        raise _fail(f"bad baseline options: {exc}") from exc
    network = _baseline_network(source, root)
    result = generate(
        network, pablo, eureka,
        runlog=log, run_name=str(baseline["name"]), run_kind="regress",
    )
    assert result.run_record is not None
    return result.run_record


def _cmd_regress(args: argparse.Namespace) -> int:
    setup_logging(args.log_level)
    if args.capture:
        enable_tracing()
    log = _load_log(args)
    baselines_dir = Path(args.baselines)
    baseline_files = sorted(baselines_dir.glob("*.json"))
    if not baseline_files:
        raise _fail(f"no baseline files in {baselines_dir}")
    root = Path(args.root)

    rows = []
    violations: list[Regression] = []
    compared = 0
    for path in baseline_files:
        baseline = _read_baseline(path)
        name = str(baseline["name"])
        if args.capture:
            record = _capture_run(baseline, root, log)
        else:
            record = log.latest(name=name)
        if record is None:
            rows.append({"workload": name, "run": "—", "status": "no run", "wall_s": "—"})
            print(
                f"warning: no recorded run named {name!r} in {log.path} "
                "(use --capture to run it now)",
                file=sys.stderr,
            )
            continue
        compared += 1
        found = check_regressions(
            baseline,
            record,
            quality_tolerance=args.tolerance,
            time_tolerance=args.time_tolerance,
            time_floor=args.time_floor,
        )
        violations.extend(found)
        rows.append(
            {
                "workload": name,
                "run": record.run_id,
                "status": "REGRESSED" if found else "ok",
                "wall_s": f"{record.wall_seconds:.3f}",
            }
        )
        if args.update:
            baseline.update(
                metrics={
                    k: record.metrics.get(k, 0)
                    for k in ("nets", "routed", "failed", "length", "bends",
                              "crossovers", "branch_nodes")
                },
                wall_seconds=round(record.wall_seconds, 4),
                git_rev=git_rev(),
                recorded=record.timestamp,
            )
            path.write_text(json.dumps(baseline, indent=1, sort_keys=True) + "\n")

    _print_table(
        f"regression gate vs {baselines_dir} "
        f"(quality tol {args.tolerance:g}, time tol {args.time_tolerance:g})",
        rows,
    )
    for violation in violations:
        print(f"REGRESSION  {violation}", file=sys.stderr)
    if args.update:
        print(f"baselines refreshed in {baselines_dir}")
    if not compared:
        raise _fail("no baseline had a matching recorded run")
    if violations:
        print(f"{len(violations)} regression(s) found", file=sys.stderr)
        return 1
    print(f"{compared} workload(s) within tolerance")
    return 0


# -- parser ----------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="artwork-inspect", description=__doc__.split("\n\n")[0]
    )
    _version_arg(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    p_record = sub.add_parser("record", help="run the generator and record it")
    _network_args(p_record)
    _pablo_args(p_record)
    _eureka_args(p_record, short_swap=False)
    _runlog_arg(p_record)
    p_record.add_argument("--name", help="record name (default: network name)")
    p_record.add_argument(
        "--svg", metavar="FILE", help="write the schematic with a congestion overlay"
    )
    p_record.add_argument("--log-level", default="warning")
    p_record.set_defaults(func=_cmd_record)

    p_list = sub.add_parser("list", help="list recorded runs")
    _runlog_arg(p_list)
    p_list.add_argument("--kind", help="filter by record kind")
    p_list.add_argument("--name", help="filter by workload name")
    p_list.add_argument("-n", "--limit", type=int, default=0, help="last N runs only")
    p_list.set_defaults(func=_cmd_list)

    p_show = sub.add_parser("show", help="show one run in full")
    p_show.add_argument("run", help="run id (or unique prefix)")
    _runlog_arg(p_show)
    p_show.add_argument(
        "--trace",
        metavar="FILE",
        help="export the record's span tree as Chrome trace JSON "
        "(slow-request exemplars carry one)",
    )
    p_show.set_defaults(func=_cmd_show)

    p_slow = sub.add_parser(
        "slow", help="list the gateway's slow-request exemplars"
    )
    _runlog_arg(p_slow)
    p_slow.add_argument("--name", help="filter by workload name")
    p_slow.add_argument("-n", "--limit", type=int, default=20, help="worst N only")
    p_slow.set_defaults(func=_cmd_slow)

    p_flame = sub.add_parser(
        "flame", help="render a run's profile windows as flamegraph HTML"
    )
    p_flame.add_argument("run", help="run id (or unique prefix)")
    _runlog_arg(p_flame)
    p_flame.add_argument("-o", "--output", help="output HTML path")
    p_flame.set_defaults(func=_cmd_flame)

    p_explain = sub.add_parser(
        "explain", help="explain the router's search effort for one net"
    )
    p_explain.add_argument("run", help="run id (or unique prefix)")
    p_explain.add_argument(
        "net", nargs="?", help="net name (omit for the per-net overview)"
    )
    _runlog_arg(p_explain)
    p_explain.add_argument(
        "-n", "--limit", type=int, default=30,
        help="overview rows (default: 30 hottest nets by pops)",
    )
    p_explain.set_defaults(func=_cmd_explain)

    p_journal = sub.add_parser(
        "journal", help="summarize a gateway write-ahead journal file"
    )
    p_journal.add_argument("path", help="journal file (artwork-serve --journal)")
    p_journal.add_argument(
        "--ops", action="store_true", help="also dump every parsed journal record"
    )
    p_journal.set_defaults(func=_cmd_journal)

    p_diff = sub.add_parser("diff", help="metric deltas between two runs")
    p_diff.add_argument("base", help="baseline run id")
    p_diff.add_argument("run", help="run id to compare")
    _runlog_arg(p_diff)
    p_diff.set_defaults(func=_cmd_diff)

    p_report = sub.add_parser("report", help="write the HTML diagnostics report")
    p_report.add_argument("run", nargs="?", help="run id (default: latest)")
    _runlog_arg(p_report)
    p_report.add_argument("--name", help="pick the latest run with this name")
    p_report.add_argument(
        "--baseline", help="run id or baseline JSON file to diff against"
    )
    p_report.add_argument("-o", "--output", help="output HTML path")
    p_report.set_defaults(func=_cmd_report)

    p_regress = sub.add_parser(
        "regress", help="gate the latest runs against committed baselines"
    )
    _runlog_arg(p_regress)
    p_regress.add_argument(
        "--baselines",
        default=str(DEFAULT_BASELINES),
        help=f"baseline directory (default: {DEFAULT_BASELINES})",
    )
    p_regress.add_argument(
        "--root", default=".", help="root for baseline source file paths"
    )
    p_regress.add_argument(
        "--tolerance",
        type=float,
        default=0.0,
        help="relative tolerance on bends/crossovers/failures (default: 0, "
        "the pipeline is deterministic)",
    )
    p_regress.add_argument(
        "--time-tolerance",
        type=float,
        default=2.0,
        help="relative wall-time tolerance (default: 2.0 = 3x the baseline)",
    )
    p_regress.add_argument(
        "--time-floor",
        type=float,
        default=0.5,
        help="absolute wall-time slack in seconds (default: 0.5)",
    )
    p_regress.add_argument(
        "--capture",
        action="store_true",
        help="run every baseline workload now (and record it) before comparing",
    )
    p_regress.add_argument(
        "--update",
        action="store_true",
        help="refresh the baseline files from the compared runs",
    )
    p_regress.add_argument("--log-level", default="warning")
    p_regress.set_defaults(func=_cmd_regress)
    return parser


def inspect_main(argv: list[str] | None = None) -> int:
    """Entry point for ``artwork-inspect``."""
    return _run_guarded(_inspect_body, argv)


def _inspect_body(argv: list[str] | None) -> int:
    args = _build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(inspect_main())
