"""Hierarchical network descriptions.

The paper's problem statement (section 3.2): "A network consists of
modules and interconnections.  Each module contains an internal
description consisting of submodules and interconnections."  The
generator itself draws one level at a time, but the surrounding system
(ESCHER's templates with ``contents``) is hierarchical.

This module provides that substrate: a :class:`HierarchicalDesign` maps
template names to :class:`TemplateDefinition` s — a leaf symbol or a body
of submodule instances and internal nets with port bindings — and can

* ``elaborate`` any template into a flat :class:`Network` (for the
  generator and the simulator), and
* ``network_of`` a template's *own* level (its direct submodules only),
  which is exactly what the generator draws for that template.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .netlist import Module, NetlistError, Network, Pin


@dataclass(frozen=True)
class PortBinding:
    """Connects a port of the template to an internal net."""

    port: str  # a terminal name of the template's symbol
    net: str  # an internal net name


@dataclass
class TemplateDefinition:
    """A template: a symbol plus (optionally) an internal description."""

    symbol: Module
    instances: dict[str, str] = field(default_factory=dict)  # instance -> template
    internal_nets: dict[str, list[Pin]] = field(default_factory=dict)
    port_bindings: list[PortBinding] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.symbol.template

    @property
    def is_leaf(self) -> bool:
        return not self.instances

    def add_instance(self, instance: str, template: str) -> None:
        if instance in self.instances:
            raise NetlistError(f"duplicate instance {instance!r} in {self.name!r}")
        self.instances[instance] = template

    def connect(self, net: str, *pins: Pin | str) -> None:
        bucket = self.internal_nets.setdefault(net, [])
        for raw in pins:
            pin = self._coerce(raw)
            if pin not in bucket:
                bucket.append(pin)

    def bind_port(self, port: str, net: str) -> None:
        if port not in self.symbol.terminals:
            raise NetlistError(f"{self.name!r} has no port {port!r}")
        self.port_bindings.append(PortBinding(port, net))
        self.internal_nets.setdefault(net, [])

    @staticmethod
    def _coerce(raw: Pin | str) -> Pin:
        if isinstance(raw, Pin):
            return raw
        module, _, terminal = raw.partition(".")
        if not terminal:
            raise NetlistError(f"internal pins must be 'instance.terminal': {raw!r}")
        return Pin(module, terminal)


class HierarchicalDesign:
    """A library of template definitions with an elaborator."""

    def __init__(self) -> None:
        self._templates: dict[str, TemplateDefinition] = {}

    def define(self, definition: TemplateDefinition) -> TemplateDefinition:
        if definition.name in self._templates:
            raise NetlistError(f"template {definition.name!r} already defined")
        self._templates[definition.name] = definition
        return definition

    def define_leaf(self, symbol: Module) -> TemplateDefinition:
        return self.define(TemplateDefinition(symbol=symbol))

    def template(self, name: str) -> TemplateDefinition:
        try:
            return self._templates[name]
        except KeyError:
            raise NetlistError(f"unknown template {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._templates

    # -- single level -----------------------------------------------------

    def network_of(self, name: str) -> Network:
        """The network of one template's own level: its direct submodule
        instances, its internal nets, and its ports as system terminals —
        the input the generator draws for that template."""
        definition = self.template(name)
        network = Network(name=name)
        for instance, template in definition.instances.items():
            symbol = self.template(template).symbol
            network.add_module(
                Module(
                    name=instance,
                    width=symbol.width,
                    height=symbol.height,
                    terminals=dict(symbol.terminals),
                    template=symbol.template,
                )
            )
        bound_ports = {b.port: b.net for b in definition.port_bindings}
        for port, term in definition.symbol.terminals.items():
            if port in bound_ports:
                network.add_system_terminal(port, term.type)
        for net, pins in definition.internal_nets.items():
            for pin in pins:
                network.connect(net, pin)
        for binding in definition.port_bindings:
            network.connect(binding.net, Pin(None, binding.port))
        return network

    # -- full elaboration -------------------------------------------------

    def elaborate(self, name: str) -> Network:
        """Flatten a template into a single-level :class:`Network` of leaf
        instances (named ``a/b/c`` by hierarchy path).  The top template's
        bound ports become the network's system terminals."""
        definition = self.template(name)
        network = Network(name=f"{name}_flat")
        for port, term in definition.symbol.terminals.items():
            if any(b.port == port for b in definition.port_bindings):
                network.add_system_terminal(port, term.type)

        # net alias resolution: hierarchical net id -> canonical id
        parent: dict[str, str] = {}

        def find(x: str) -> str:
            while parent.get(x, x) != x:
                parent[x] = parent.get(parent[x], parent[x])
                x = parent[x]
            return x

        def union(a: str, b: str) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        leaf_pins: list[tuple[str, Pin]] = []  # (hierarchical net id, pin)

        def walk(defn: TemplateDefinition, path: str, port_env: dict[str, str]) -> None:
            """``port_env`` maps this template's port names to the parent's
            hierarchical net ids."""
            local = {net: f"{path}/{net}" if path else net for net in defn.internal_nets}
            for binding in defn.port_bindings:
                union(local[binding.net], port_env[binding.port])
            for net, pins in defn.internal_nets.items():
                for pin in pins:
                    instance = pin.module or ""
                    sub_name = defn.instances.get(instance)
                    if sub_name is None:
                        raise NetlistError(
                            f"{defn.name!r} connects unknown instance {instance!r}"
                        )
                    sub = self.template(sub_name)
                    inst_path = f"{path}/{instance}" if path else instance
                    if sub.is_leaf:
                        leaf_pins.append((local[net], Pin(inst_path, pin.terminal)))
                    else:
                        # Descend later; remember the port wiring now.
                        pending.setdefault(inst_path, (sub, {}))[1][pin.terminal] = local[net]

            for instance, sub_name in defn.instances.items():
                sub = self.template(sub_name)
                inst_path = f"{path}/{instance}" if path else instance
                if sub.is_leaf:
                    symbol = sub.symbol
                    network.add_module(
                        Module(
                            name=inst_path,
                            width=symbol.width,
                            height=symbol.height,
                            terminals=dict(symbol.terminals),
                            template=symbol.template,
                        )
                    )
                else:
                    sub_def, env = pending.get(inst_path, (sub, {}))
                    # Unbound ports get fresh (dangling) hierarchical nets.
                    full_env = {
                        b.port: env.get(b.port, f"{inst_path}:{b.port}")
                        for b in sub_def.port_bindings
                    }
                    walk(sub_def, inst_path, full_env)

        pending: dict[str, tuple[TemplateDefinition, dict[str, str]]] = {}
        top_env = {b.port: f":{b.port}" for b in definition.port_bindings}
        walk(definition, "", top_env)

        # Materialise: canonical net id -> flat net name.
        flat_names: dict[str, str] = {}
        for port in network.system_terminals:
            flat_names[find(f":{port}")] = f"n_{port}"
            network.connect(f"n_{port}", Pin(None, port))
        counter = 0
        for net_id, pin in leaf_pins:
            root = find(net_id)
            name_ = flat_names.get(root)
            if name_ is None:
                name_ = f"n{counter}"
                counter += 1
                flat_names[root] = name_
            network.connect(name_, pin)
        _drop_single_pin_nets(network)
        return network


def _drop_single_pin_nets(network: Network) -> None:
    for name in [n for n, obj in network.nets.items() if len(obj.pins) < 2]:
        del network.nets[name]
