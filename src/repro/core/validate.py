"""Diagram legality checking and connectivity extraction.

Implements the postcondition of section 3.2:

* no module symbol or net path overlaps another module symbol or net path,
* a system terminal does not overlap a module or another system terminal,
* different nets only share pure crossing points,

plus the validation step the paper performed with the ESCHER+ simulator:
rebuilding the electrical connectivity from the routed geometry and
checking it equals the input net-list.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from .diagram import Diagram
from .geometry import Orientation, Point, path_segments
from .netlist import Pin


class DiagramViolation(AssertionError):
    """Raised by :func:`check_diagram` when a diagram breaks the rules."""


def _net_geometry(diagram: Diagram):
    """Per net: covered points with orientations, and node points
    (path endpoints, bends and branch points block other nets there)."""
    covered: dict[str, dict[Point, set[Orientation]]] = {}
    nodes: dict[str, set[Point]] = {}
    for name, route in diagram.routes.items():
        pts: dict[Point, set[Orientation]] = defaultdict(set)
        node_set: set[Point] = set()
        for path in route.paths:
            if len(path) >= 1:
                node_set.add(path[0])
                node_set.add(path[-1])
            for vertex in path[1:-1]:
                node_set.add(vertex)  # normalized paths bend at every vertex
            for seg in path_segments(path):
                for p in seg.points():
                    pts[p].add(seg.orientation)
            if len(path) == 1:
                pts[path[0]]  # register the point with no orientation
        covered[name] = dict(pts)
        nodes[name] = node_set
    return covered, nodes


def placement_violations(diagram: Diagram) -> list[str]:
    """Rule violations of the placement alone (ignores routes)."""
    problems: list[str] = []
    placed = list(diagram.placements.values())
    for i, a in enumerate(placed):
        for b in placed[i + 1 :]:
            if a.rect.overlaps(b.rect):
                problems.append(
                    f"modules {a.name!r} and {b.name!r} overlap "
                    f"({a.rect} vs {b.rect})"
                )
    seen_terms: dict[Point, str] = {}
    for name, pos in diagram.terminal_positions.items():
        if pos in seen_terms:
            problems.append(
                f"system terminals {seen_terms[pos]!r} and {name!r} overlap at {pos}"
            )
        seen_terms[pos] = name
        for pm in placed:
            if pm.rect.contains(pos):
                problems.append(
                    f"system terminal {name!r} at {pos} overlaps module {pm.name!r}"
                )
    return problems


def routing_violations(diagram: Diagram) -> list[str]:
    """Rule violations of the routed nets."""
    problems: list[str] = []
    covered, nodes = _net_geometry(diagram)

    own_touchpoints: dict[str, set[Point]] = {}
    for name in covered:
        net = diagram.network.nets[name]
        own_touchpoints[name] = {diagram.pin_position(p) for p in net.pins}

    rects = diagram.module_rects()
    terminal_points = {
        pos: name for name, pos in diagram.terminal_positions.items()
    }
    for name, pts in covered.items():
        net = diagram.network.nets[name]
        allowed = own_touchpoints[name]
        net_system_terms = {p.terminal for p in net.system_pins}
        for p in pts:
            for mod_name, rect in rects.items():
                if rect.contains(p, strict=True):
                    problems.append(f"net {name!r} runs inside module {mod_name!r} at {p}")
                elif rect.contains(p) and p not in allowed:
                    problems.append(
                        f"net {name!r} touches module {mod_name!r} border at {p} "
                        "which is not one of its terminals"
                    )
            term = terminal_points.get(p)
            if term is not None and term not in net_system_terms:
                problems.append(
                    f"net {name!r} overlaps foreign system terminal {term!r} at {p}"
                )

    names = sorted(covered)
    point_to_nets: dict[Point, list[str]] = defaultdict(list)
    for name in names:
        for p in covered[name]:
            point_to_nets[p].append(name)
    for p, here in point_to_nets.items():
        if len(here) < 2:
            continue
        for i, a in enumerate(here):
            for b in here[i + 1 :]:
                ori_a, ori_b = covered[a][p], covered[b][p]
                pure_cross = (
                    len(ori_a) == 1
                    and len(ori_b) == 1
                    and ori_a != ori_b
                    and p not in nodes[a]
                    and p not in nodes[b]
                )
                if not pure_cross:
                    problems.append(
                        f"nets {a!r} and {b!r} overlap at {p} (not a pure crossing)"
                    )
    return problems


def connectivity_violations(diagram: Diagram) -> list[str]:
    """Check each routed net is one connected tree touching all its pins
    (this is what simulating the diagram would reveal)."""
    problems: list[str] = []
    for name, route in diagram.routes.items():
        net = diagram.network.nets[name]
        if route.failed_pins:
            continue  # incompleteness is reported by metrics, not here
        pts = route.points()
        if not pts and len(net.pins) >= 2:
            positions = {diagram.pin_position(p) for p in net.pins}
            if len(positions) > 1:
                problems.append(f"net {name!r} has no geometry but {len(net.pins)} pins")
            continue
        for pin in net.pins:
            if diagram.pin_position(pin) not in pts:
                problems.append(f"net {name!r} does not reach pin {pin}")
        if pts and not _is_connected(pts):
            problems.append(f"net {name!r} geometry is disconnected")
    return problems


def _is_connected(points: set[Point]) -> bool:
    if not points:
        return True
    start = next(iter(points))
    seen = {start}
    stack = [start]
    while stack:
        p = stack.pop()
        for q in (
            Point(p.x + 1, p.y),
            Point(p.x - 1, p.y),
            Point(p.x, p.y + 1),
            Point(p.x, p.y - 1),
        ):
            if q in points and q not in seen:
                seen.add(q)
                stack.append(q)
    return seen == points


def check_diagram(diagram: Diagram, *, routed: bool = True) -> None:
    """Raise :class:`DiagramViolation` on any rule break."""
    problems = placement_violations(diagram)
    if routed:
        problems += routing_violations(diagram)
        problems += connectivity_violations(diagram)
    if problems:
        raise DiagramViolation("; ".join(problems[:20]))


def extract_connectivity(diagram: Diagram) -> dict[Pin, str]:
    """Rebuild pin→net connectivity from routed geometry alone.

    This is the reproduction of the paper's ESCHER+ check: the generator's
    output is electrically correct iff this mapping equals the net-list.
    Pins of unrouted or two-pin-degenerate nets are absent from the map.
    """
    mapping: dict[Pin, str] = {}
    geometry = {name: route.points() for name, route in diagram.routes.items()}
    all_pins: list[Pin] = [
        pin for net in diagram.network.nets.values() for pin in net.pins
    ]
    for pin in all_pins:
        pos = diagram.pin_position(pin)
        touching = [name for name, pts in geometry.items() if pos in pts]
        if len(touching) == 1:
            mapping[pin] = touching[0]
        elif len(touching) > 1:
            # A pin touched by several nets is electrically ambiguous.
            mapping[pin] = "<conflict>"
    return mapping


def connectivity_matches_netlist(diagram: Diagram, *, nets: Iterable[str] | None = None) -> bool:
    """True iff extracted connectivity equals the net-list for the given
    nets (default: all fully routed nets)."""
    extracted = extract_connectivity(diagram)
    if nets is None:
        nets = [
            name
            for name, route in diagram.routes.items()
            if route.complete and len(route.net.pins) >= 2
        ]
    for name in nets:
        net = diagram.network.nets[name]
        for pin in net.pins:
            if extracted.get(pin) != name:
                return False
    return True
