"""The schematic diagram model.

A :class:`Diagram` is the artifact the generator produces (figure 3.2 of
the paper): every module and system terminal has a position, and — after
routing — every net has a rectilinear path.  The placement phase produces
a diagram with empty routes; the routing phase fills them in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from .geometry import (
    Point,
    Rect,
    Side,
    bounding_rect,
    normalize_path,
    path_bends,
    path_length,
    path_segments,
)
from .netlist import Module, Net, Network, Pin
from .rotation import Rotation


class DiagramError(ValueError):
    """Raised for geometrically inconsistent diagrams."""


@dataclass
class PlacedModule:
    """A module instance with a position and rotation in the plane."""

    module: Module
    position: Point
    rotation: Rotation = Rotation.R0

    @property
    def name(self) -> str:
        return self.module.name

    @property
    def size(self) -> tuple[int, int]:
        return self.rotation.size(self.module.width, self.module.height)

    @property
    def rect(self) -> Rect:
        w, h = self.size
        return Rect(self.position.x, self.position.y, w, h)

    def terminal_offset(self, terminal: str) -> Point:
        """Rotated offset of a terminal relative to the lower-left corner."""
        term = self.module.terminals[terminal]
        return self.rotation.apply(term.offset, self.module.width, self.module.height)

    def terminal_position(self, terminal: str) -> Point:
        off = self.terminal_offset(terminal)
        return Point(self.position.x + off.x, self.position.y + off.y)

    def terminal_side(self, terminal: str) -> Side:
        return self.rotation.side(self.module.side(terminal))


@dataclass
class RoutedNet:
    """The drawn geometry of one net: a union of rectilinear paths.

    The first path connects two pins; each further path connects one more
    pin to the geometry routed so far (section 5.5.3), so the union forms
    a tree whose leaves are terminal positions.
    """

    net: Net
    paths: list[list[Point]] = field(default_factory=list)
    failed_pins: list[Pin] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not self.failed_pins and bool(self.paths or len(self.net.pins) < 2)

    @property
    def name(self) -> str:
        return self.net.name

    def add_path(self, path: Sequence[Point]) -> None:
        norm = normalize_path(path)
        if len(norm) < 1:
            raise DiagramError(f"empty path on net {self.net.name!r}")
        self.paths.append(norm)

    @property
    def length(self) -> int:
        return sum(path_length(p) for p in self.paths)

    @property
    def bends(self) -> int:
        return sum(path_bends(p) for p in self.paths)

    def segments(self) -> Iterator:
        for path in self.paths:
            yield from path_segments(path)

    def points(self) -> set[Point]:
        out: set[Point] = set()
        for path in self.paths:
            for seg in path_segments(path):
                out.update(seg.points())
            if len(path) == 1:
                out.add(path[0])
        return out


@dataclass
class Diagram:
    """A (partially) realised schematic: placement plus routed nets."""

    network: Network
    placements: dict[str, PlacedModule] = field(default_factory=dict)
    terminal_positions: dict[str, Point] = field(default_factory=dict)
    routes: dict[str, RoutedNet] = field(default_factory=dict)

    # -- construction -------------------------------------------------

    def place_module(
        self, name: str, position: Point, rotation: Rotation = Rotation.R0
    ) -> PlacedModule:
        module = self.network.modules.get(name)
        if module is None:
            raise DiagramError(f"unknown module {name!r}")
        placed = PlacedModule(module, position, rotation)
        self.placements[name] = placed
        return placed

    def place_system_terminal(self, name: str, position: Point) -> None:
        if name not in self.network.system_terminals:
            raise DiagramError(f"unknown system terminal {name!r}")
        self.terminal_positions[name] = position

    def route_for(self, net_name: str) -> RoutedNet:
        route = self.routes.get(net_name)
        if route is None:
            net = self.network.nets.get(net_name)
            if net is None:
                raise DiagramError(f"unknown net {net_name!r}")
            route = RoutedNet(net)
            self.routes[net_name] = route
        return route

    # -- geometry queries ----------------------------------------------

    def pin_position(self, pin: Pin) -> Point:
        if pin.is_system:
            try:
                return self.terminal_positions[pin.terminal]
            except KeyError:
                raise DiagramError(
                    f"system terminal {pin.terminal!r} is not placed"
                ) from None
        placed = self.placements.get(pin.module or "")
        if placed is None:
            raise DiagramError(f"module {pin.module!r} is not placed")
        return placed.terminal_position(pin.terminal)

    def pin_side(self, pin: Pin) -> Side | None:
        """Module side the pin faces, or ``None`` for system terminals
        (which may expand in every direction, section 5.6.3)."""
        if pin.is_system:
            return None
        return self.placements[pin.module].terminal_side(pin.terminal)

    @property
    def is_placed(self) -> bool:
        return set(self.placements) == set(self.network.modules) and set(
            self.terminal_positions
        ) == set(self.network.system_terminals)

    def module_rects(self) -> dict[str, Rect]:
        return {name: pm.rect for name, pm in self.placements.items()}

    def bounding_box(self, *, include_routes: bool = True) -> Rect:
        """Smallest rect enclosing modules, terminals and (optionally)
        routed nets."""
        rects = [pm.rect for pm in self.placements.values()]
        rects += [Rect(p.x, p.y, 0, 0) for p in self.terminal_positions.values()]
        if include_routes:
            for route in self.routes.values():
                for path in route.paths:
                    rects += [Rect(p.x, p.y, 0, 0) for p in path]
        if not rects:
            return Rect(0, 0, 0, 0)
        return bounding_rect(rects)

    # -- bookkeeping ----------------------------------------------------

    @property
    def unrouted_nets(self) -> list[str]:
        """Nets with no complete route yet (multi-pin nets only)."""
        out = []
        for net in self.network.nets.values():
            if len(net.pins) < 2:
                continue
            route = self.routes.get(net.name)
            if route is None or not route.complete:
                out.append(net.name)
        return out

    @property
    def failed_nets(self) -> list[str]:
        return [name for name, r in self.routes.items() if r.failed_pins]

    def copy_placement(self) -> "Diagram":
        """A fresh diagram sharing the network with this placement and no
        routes (used to re-route after manual edits, figure 6.5)."""
        out = Diagram(self.network)
        out.placements = {
            name: PlacedModule(pm.module, pm.position, pm.rotation)
            for name, pm in self.placements.items()
        }
        out.terminal_positions = dict(self.terminal_positions)
        return out
