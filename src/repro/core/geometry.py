"""Integer-grid geometry primitives.

Everything in the generator lives on an integer grid (the paper's module
format requires coordinates divisible by 10; one grid unit here stands for
ten paper units).  Modules are axis-aligned rectangles, terminals are grid
points on module perimeters and net paths are rectilinear polylines whose
vertices are grid points.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, NamedTuple, Sequence


class Orientation(enum.Enum):
    """Axis of a segment: horizontal (constant y) or vertical (constant x)."""

    HORIZONTAL = "horizontal"
    VERTICAL = "vertical"

    @property
    def perpendicular(self) -> "Orientation":
        if self is Orientation.HORIZONTAL:
            return Orientation.VERTICAL
        return Orientation.HORIZONTAL


class Side(enum.Enum):
    """Side of a module a terminal sits on (paper: left/right/up/down)."""

    LEFT = "left"
    RIGHT = "right"
    UP = "up"
    DOWN = "down"

    @property
    def opposite(self) -> "Side":
        return _OPPOSITE_SIDE[self]

    @property
    def outward(self) -> "Direction":
        """Direction pointing away from the module across this side."""
        return Direction[self.name]


class Direction(enum.Enum):
    """Unit step direction on the grid."""

    LEFT = (-1, 0)
    RIGHT = (1, 0)
    UP = (0, 1)
    DOWN = (0, -1)

    @property
    def dx(self) -> int:
        return self.value[0]

    @property
    def dy(self) -> int:
        return self.value[1]

    @property
    def opposite(self) -> "Direction":
        return _OPPOSITE_DIR[self]

    @property
    def orientation(self) -> Orientation:
        """Orientation of a segment drawn while moving in this direction."""
        if self.dy == 0:
            return Orientation.HORIZONTAL
        return Orientation.VERTICAL

    @property
    def perpendiculars(self) -> tuple["Direction", "Direction"]:
        if self.orientation is Orientation.HORIZONTAL:
            return (Direction.UP, Direction.DOWN)
        return (Direction.LEFT, Direction.RIGHT)


_OPPOSITE_SIDE = {
    Side.LEFT: Side.RIGHT,
    Side.RIGHT: Side.LEFT,
    Side.UP: Side.DOWN,
    Side.DOWN: Side.UP,
}

_OPPOSITE_DIR = {
    Direction.LEFT: Direction.RIGHT,
    Direction.RIGHT: Direction.LEFT,
    Direction.UP: Direction.DOWN,
    Direction.DOWN: Direction.UP,
}


class Point(NamedTuple):
    """A grid point."""

    x: int
    y: int

    def step(self, direction: Direction, amount: int = 1) -> "Point":
        return Point(self.x + direction.dx * amount, self.y + direction.dy * amount)

    def manhattan(self, other: "Point") -> int:
        return abs(self.x - other.x) + abs(self.y - other.y)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.x},{self.y})"


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle with integer lower-left corner and size.

    A ``Rect`` covers the closed range ``[x, x+w] x [y, y+h]`` of grid
    coordinates; two rects that merely share a border are considered
    touching, not overlapping.
    """

    x: int
    y: int
    w: int
    h: int

    def __post_init__(self) -> None:
        if self.w < 0 or self.h < 0:
            raise ValueError(f"negative rect size: {self.w}x{self.h}")

    @property
    def x2(self) -> int:
        return self.x + self.w

    @property
    def y2(self) -> int:
        return self.y + self.h

    @property
    def lower_left(self) -> Point:
        return Point(self.x, self.y)

    @property
    def upper_right(self) -> Point:
        return Point(self.x2, self.y2)

    @property
    def center(self) -> tuple[float, float]:
        return (self.x + self.w / 2.0, self.y + self.h / 2.0)

    @property
    def area(self) -> int:
        return self.w * self.h

    def contains(self, p: Point, *, strict: bool = False) -> bool:
        """Whether ``p`` is inside the rect (``strict`` excludes the border)."""
        if strict:
            return self.x < p.x < self.x2 and self.y < p.y < self.y2
        return self.x <= p.x <= self.x2 and self.y <= p.y <= self.y2

    def overlaps(self, other: "Rect", *, touching_ok: bool = True) -> bool:
        """Whether the two rects overlap with positive area.

        With ``touching_ok=False`` rects that share a border (or corner)
        also count as overlapping.
        """
        if touching_ok:
            return (
                self.x < other.x2
                and other.x < self.x2
                and self.y < other.y2
                and other.y < self.y2
            )
        return (
            self.x <= other.x2
            and other.x <= self.x2
            and self.y <= other.y2
            and other.y <= self.y2
        )

    def expand(self, margin: int) -> "Rect":
        return Rect(self.x - margin, self.y - margin, self.w + 2 * margin, self.h + 2 * margin)

    def translate(self, dx: int, dy: int) -> "Rect":
        return Rect(self.x + dx, self.y + dy, self.w, self.h)

    def union(self, other: "Rect") -> "Rect":
        x = min(self.x, other.x)
        y = min(self.y, other.y)
        return Rect(x, y, max(self.x2, other.x2) - x, max(self.y2, other.y2) - y)

    def side_of(self, p: Point) -> Side | None:
        """Which side of the rect's border ``p`` lies on (corners prefer
        left/right, matching the paper's ``side`` function), or ``None``."""
        if p.x == self.x and self.y <= p.y <= self.y2:
            return Side.LEFT
        if p.x == self.x2 and self.y <= p.y <= self.y2:
            return Side.RIGHT
        if p.y == self.y2 and self.x < p.x < self.x2:
            return Side.UP
        if p.y == self.y and self.x < p.x < self.x2:
            return Side.DOWN
        return None


def bounding_rect(rects: Iterable[Rect]) -> Rect:
    """Smallest rect enclosing all ``rects`` (which must be non-empty)."""
    rects = list(rects)
    if not rects:
        raise ValueError("bounding_rect of no rectangles")
    out = rects[0]
    for r in rects[1:]:
        out = out.union(r)
    return out


@dataclass(frozen=True)
class Segment:
    """An axis-aligned grid segment (possibly a single point).

    ``index`` is the fixed coordinate (y for horizontal, x for vertical),
    ``lo``/``hi`` the inclusive varying range.
    """

    orientation: Orientation
    index: int
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"segment range reversed: [{self.lo}, {self.hi}]")

    @property
    def length(self) -> int:
        return self.hi - self.lo

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi

    @property
    def p1(self) -> Point:
        if self.orientation is Orientation.HORIZONTAL:
            return Point(self.lo, self.index)
        return Point(self.index, self.lo)

    @property
    def p2(self) -> Point:
        if self.orientation is Orientation.HORIZONTAL:
            return Point(self.hi, self.index)
        return Point(self.index, self.hi)

    def contains_point(self, p: Point) -> bool:
        if self.orientation is Orientation.HORIZONTAL:
            return p.y == self.index and self.lo <= p.x <= self.hi
        return p.x == self.index and self.lo <= p.y <= self.hi

    def points(self) -> Iterator[Point]:
        for v in range(self.lo, self.hi + 1):
            if self.orientation is Orientation.HORIZONTAL:
                yield Point(v, self.index)
            else:
                yield Point(self.index, v)

    def crosses(self, other: "Segment") -> Point | None:
        """Interior crossing point of two perpendicular segments, if any."""
        if self.orientation is other.orientation:
            return None
        if other.lo <= self.index <= other.hi and self.lo <= other.index <= self.hi:
            if self.orientation is Orientation.HORIZONTAL:
                return Point(other.index, self.index)
            return Point(self.index, other.index)
        return None

    @staticmethod
    def between(a: Point, b: Point) -> "Segment":
        """Segment connecting two points on a common grid line."""
        if a.y == b.y:
            return Segment(Orientation.HORIZONTAL, a.y, min(a.x, b.x), max(a.x, b.x))
        if a.x == b.x:
            return Segment(Orientation.VERTICAL, a.x, min(a.y, b.y), max(a.y, b.y))
        raise ValueError(f"points {a} and {b} are not axis-aligned")


# ---------------------------------------------------------------------------
# Rectilinear path helpers.  A path is a sequence of vertices; consecutive
# vertices must share a coordinate.


def normalize_path(path: Sequence[Point]) -> list[Point]:
    """Drop duplicate and collinear intermediate vertices from a path.

    Only vertices continuing in the *same* direction are merged; a
    doubling-back vertex (degenerate but possible in hand-made paths) is
    kept so length and bend counts are preserved.
    """
    out: list[Point] = []
    for p in path:
        if out and p == out[-1]:
            continue
        if len(out) >= 2:
            a, b = out[-2], out[-1]
            same_axis = (a.x == b.x == p.x) or (a.y == b.y == p.y)
            if same_axis:
                keeps_direction = (
                    (p.x - b.x) * (b.x - a.x) > 0 or (p.y - b.y) * (b.y - a.y) > 0
                )
                if keeps_direction:
                    out[-1] = p
                    continue
        out.append(p)
    return out


def path_segments(path: Sequence[Point]) -> list[Segment]:
    """The axis-aligned segments making up a path."""
    return [Segment.between(a, b) for a, b in zip(path, path[1:]) if a != b]


def path_length(path: Sequence[Point]) -> int:
    return sum(a.manhattan(b) for a, b in zip(path, path[1:]))


def path_bends(path: Sequence[Point]) -> int:
    """Number of direction changes along a path."""
    norm = normalize_path(path)
    return max(0, len(norm) - 2)


def path_points(path: Sequence[Point]) -> Iterator[Point]:
    """Every grid point covered by the path, in order (vertices included
    once at segment joints)."""
    if not path:
        return
    yield path[0]
    for a, b in zip(path, path[1:]):
        if a == b:
            continue
        dx = (b.x > a.x) - (b.x < a.x)
        dy = (b.y > a.y) - (b.y < a.y)
        p = a
        while p != b:
            p = Point(p.x + dx, p.y + dy)
            yield p
