"""The network (net-list) data model.

This is the paper's nine-tuple design representation (section 4.6.2):

    (M, N, ST, T, terms, type, position-terminal, net, size)

realised as plain Python objects:

* :class:`Module` — a subsystem instance with a size and a set of
  :class:`Terminal` s positioned on its perimeter,
* :class:`SystemTerminal` — an external connection point of the network,
* :class:`Net` — a set of :class:`Pin` references (subsystem and/or system
  terminals) that must become electrically common,
* :class:`Network` — the whole design, with the derived ``side`` and
  ``connected`` functions from the paper as methods.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import enum
from typing import Iterable, Iterator, Mapping

from .geometry import Point, Rect, Side


class TermType(enum.Enum):
    """Electrical direction of a terminal."""

    IN = "in"
    OUT = "out"
    INOUT = "inout"

    @classmethod
    def parse(cls, text: str) -> "TermType":
        try:
            return cls(text.strip().lower())
        except ValueError:
            raise NetlistError(f"unknown terminal type {text!r}") from None

    @property
    def drives(self) -> bool:
        return self is not TermType.IN

    @property
    def listens(self) -> bool:
        return self is not TermType.OUT


class NetlistError(ValueError):
    """Raised for malformed or inconsistent network descriptions."""


@dataclass(frozen=True)
class Terminal:
    """A subsystem terminal: a named connection point on a module border.

    ``offset`` is the position relative to the module's lower-left corner
    (the paper's ``position-terminal``) and must lie on the module outline.
    """

    name: str
    type: TermType
    offset: Point


@dataclass
class Module:
    """A subsystem instance: a rectangle with terminals on its outline."""

    name: str
    width: int
    height: int
    terminals: dict[str, Terminal] = field(default_factory=dict)
    template: str = ""

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise NetlistError(f"module {self.name!r} has non-positive size")
        for term in self.terminals.values():
            self._check_terminal(term)
        if not self.template:
            self.template = self.name

    def _check_terminal(self, term: Terminal) -> None:
        if self.outline.side_of(term.offset) is None:
            raise NetlistError(
                f"terminal {term.name!r} of module {self.name!r} at "
                f"{term.offset} is not on the module outline "
                f"({self.width}x{self.height})"
            )

    @property
    def outline(self) -> Rect:
        return Rect(0, 0, self.width, self.height)

    @property
    def size(self) -> tuple[int, int]:
        return (self.width, self.height)

    def add_terminal(self, name: str, type: TermType, offset: Point) -> Terminal:
        if name in self.terminals:
            raise NetlistError(f"duplicate terminal {name!r} on module {self.name!r}")
        term = Terminal(name, type, offset)
        self._check_terminal(term)
        self.terminals[name] = term
        return term

    def side(self, terminal: str) -> Side:
        """The module side a terminal sits on (paper's ``side`` function)."""
        side = self.outline.side_of(self.terminals[terminal].offset)
        assert side is not None  # enforced at construction
        return side

    def terminals_on(self, side: Side) -> list[Terminal]:
        return [t for t in self.terminals.values() if self.side(t.name) is side]


@dataclass(frozen=True)
class SystemTerminal:
    """An external terminal of the whole network."""

    name: str
    type: TermType


@dataclass(frozen=True, order=True)
class Pin:
    """A reference to a connection point of a net.

    ``module is None`` means the pin is the system terminal ``terminal``
    (the net-list files spell this with the instance name ``root``).
    """

    module: str | None
    terminal: str

    @property
    def is_system(self) -> bool:
        return self.module is None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.terminal if self.module is None else f"{self.module}.{self.terminal}"


@dataclass
class Net:
    """A net: the set of pins that must be interconnected."""

    name: str
    pins: list[Pin] = field(default_factory=list)

    def add_pin(self, pin: Pin) -> None:
        if pin not in self.pins:
            self.pins.append(pin)

    @property
    def module_pins(self) -> list[Pin]:
        return [p for p in self.pins if not p.is_system]

    @property
    def system_pins(self) -> list[Pin]:
        return [p for p in self.pins if p.is_system]


@dataclass
class Network:
    """A complete design: modules, system terminals and nets."""

    name: str = "network"
    modules: dict[str, Module] = field(default_factory=dict)
    system_terminals: dict[str, SystemTerminal] = field(default_factory=dict)
    nets: dict[str, Net] = field(default_factory=dict)

    # -- construction -------------------------------------------------

    def add_module(self, module: Module) -> Module:
        if module.name in self.modules:
            raise NetlistError(f"duplicate module {module.name!r}")
        self.modules[module.name] = module
        return module

    def add_system_terminal(self, name: str, type: TermType) -> SystemTerminal:
        if name in self.system_terminals:
            raise NetlistError(f"duplicate system terminal {name!r}")
        st = SystemTerminal(name, type)
        self.system_terminals[name] = st
        return st

    def connect(self, net_name: str, *pins: Pin | str | tuple[str, str]) -> Net:
        """Attach pins to a net, creating the net if needed.

        Pins may be :class:`Pin` objects, ``"module.terminal"`` strings, a
        bare system-terminal name, or ``(module, terminal)`` tuples.
        """
        net = self.nets.get(net_name)
        if net is None:
            net = Net(net_name)
            self.nets[net_name] = net
        for raw in pins:
            net.add_pin(self._coerce_pin(raw))
        return net

    def _coerce_pin(self, raw: Pin | str | tuple[str, str]) -> Pin:
        if isinstance(raw, Pin):
            pin = raw
        elif isinstance(raw, tuple):
            pin = Pin(raw[0], raw[1])
        elif "." in raw:
            module, terminal = raw.split(".", 1)
            pin = Pin(module, terminal)
        else:
            pin = Pin(None, raw)
        self._check_pin(pin)
        return pin

    def _check_pin(self, pin: Pin) -> None:
        if pin.is_system:
            if pin.terminal not in self.system_terminals:
                raise NetlistError(f"unknown system terminal {pin.terminal!r}")
        else:
            module = self.modules.get(pin.module or "")
            if module is None:
                raise NetlistError(f"unknown module {pin.module!r}")
            if pin.terminal not in module.terminals:
                raise NetlistError(
                    f"unknown terminal {pin.terminal!r} on module {pin.module!r}"
                )

    # -- lookups ------------------------------------------------------

    def pin_type(self, pin: Pin) -> TermType:
        if pin.is_system:
            return self.system_terminals[pin.terminal].type
        return self.modules[pin.module].terminals[pin.terminal].type

    def net_of(self, pin: Pin) -> Net | None:
        """The net attached to a pin (the paper's ``net`` relation)."""
        for net in self.nets.values():
            if pin in net.pins:
                return net
        return None

    def pins_of_module(self, module: str) -> Iterator[tuple[Net, Pin]]:
        for net in self.nets.values():
            for pin in net.pins:
                if pin.module == module:
                    yield net, pin

    def nets_of_module(self, module: str) -> set[str]:
        return {net.name for net, _pin in self.pins_of_module(module)}

    def connected(self, m0: str, m1: str, net: str) -> bool:
        """The paper's ``connected`` relation: do ``m0`` and ``m1`` both
        have a terminal on ``net``?"""
        pins = self.nets[net].pins
        return any(p.module == m0 for p in pins) and any(p.module == m1 for p in pins)

    def connection_count(self, m0: str, m1: str) -> int:
        """Number of nets connecting two distinct modules."""
        if m0 == m1:
            return 0
        return sum(1 for net in self.nets.values() if self.connected(m0, m1, net.name))

    def connections_to_set(self, module: str, others: Iterable[str]) -> int:
        """Number of nets connecting ``module`` to any module in ``others``."""
        others = set(others) - {module}
        count = 0
        for net in self.nets.values():
            mods = {p.module for p in net.pins if not p.is_system}
            if module in mods and mods & others:
                count += 1
        return count

    def external_connections(self, members: Iterable[str]) -> int:
        """Number of nets leaving the module set ``members`` (paper's
        partition ``connections`` limit)."""
        members = set(members)
        count = 0
        for net in self.nets.values():
            mods = {p.module for p in net.pins if not p.is_system}
            inside = mods & members
            outside = (mods - members) | ({"<system>"} if net.system_pins else set())
            if inside and outside:
                count += 1
        return count

    # -- validation ---------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`NetlistError` on dangling pins or empty nets."""
        for net in self.nets.values():
            if len(net.pins) < 2:
                raise NetlistError(f"net {net.name!r} connects fewer than two pins")
            for pin in net.pins:
                self._check_pin(pin)
        seen: dict[Pin, str] = {}
        for net in self.nets.values():
            for pin in net.pins:
                if pin in seen and seen[pin] != net.name:
                    raise NetlistError(
                        f"pin {pin} is on both net {seen[pin]!r} and net {net.name!r}"
                    )
                seen[pin] = net.name

    @property
    def stats(self) -> Mapping[str, int]:
        return {
            "modules": len(self.modules),
            "nets": len(self.nets),
            "system_terminals": len(self.system_terminals),
            "pins": sum(len(n.pins) for n in self.nets.values()),
        }
