"""Module rotations.

The placement rotates modules in multiples of 90 degrees so that the
terminal connecting a module to its predecessor in a string faces left
(section 4.6.4).  A rotation maps local terminal offsets and sides into
the rotated frame; the rotated module keeps its lower-left corner at the
local origin.
"""

from __future__ import annotations

import enum

from .geometry import Point, Side


class Rotation(enum.Enum):
    """Counterclockwise rotation applied to a module symbol."""

    R0 = 0
    R90 = 90
    R180 = 180
    R270 = 270

    def compose(self, other: "Rotation") -> "Rotation":
        return Rotation((self.value + other.value) % 360)

    @property
    def inverse(self) -> "Rotation":
        return Rotation((360 - self.value) % 360)

    @property
    def swaps_axes(self) -> bool:
        return self in (Rotation.R90, Rotation.R270)

    def size(self, width: int, height: int) -> tuple[int, int]:
        """Size of the module's bounding box after rotation."""
        if self.swaps_axes:
            return (height, width)
        return (width, height)

    def apply(self, offset: Point, width: int, height: int) -> Point:
        """Map a local offset on an unrotated ``width x height`` module to
        its offset on the rotated module (lower-left corner fixed at 0,0)."""
        x, y = offset
        if self is Rotation.R0:
            return Point(x, y)
        if self is Rotation.R90:
            return Point(height - y, x)
        if self is Rotation.R180:
            return Point(width - x, height - y)
        return Point(y, width - x)  # R270

    def side(self, side: Side) -> Side:
        """The module side that ``side`` becomes after rotation."""
        order = [Side.LEFT, Side.DOWN, Side.RIGHT, Side.UP]  # CCW cycle
        steps = self.value // 90
        return order[(order.index(side) + steps) % 4]

    @staticmethod
    def taking(side: Side, to: Side) -> "Rotation":
        """The rotation that maps module side ``side`` onto side ``to``."""
        order = [Side.LEFT, Side.DOWN, Side.RIGHT, Side.UP]
        steps = (order.index(to) - order.index(side)) % 4
        return Rotation(steps * 90)
