"""Quality metrics for schematic diagrams.

The paper's readability objectives (section 3.2, rules 5 and 6) are
quantified here: total path length, number of bends, number of crossovers
between different nets, and number of branching nodes.  These are the
numbers the placement/routing experiments report.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Mapping

from .diagram import Diagram, RoutedNet
from .geometry import Orientation, Point, path_segments


@dataclass(frozen=True)
class NetMetrics:
    """Per-net quality numbers."""

    length: int
    bends: int
    branch_nodes: int


@dataclass(frozen=True)
class DiagramMetrics:
    """Whole-diagram quality numbers."""

    nets_total: int
    nets_routed: int
    nets_failed: int
    length: int
    bends: int
    crossovers: int
    branch_nodes: int

    def as_row(self) -> Mapping[str, int]:
        return {
            "nets": self.nets_total,
            "routed": self.nets_routed,
            "failed": self.nets_failed,
            "length": self.length,
            "bends": self.bends,
            "crossovers": self.crossovers,
            "branch_nodes": self.branch_nodes,
        }


def net_branch_nodes(route: RoutedNet) -> int:
    """Points of the net tree where three or more wire arms meet."""
    neighbours: dict[Point, set[Point]] = defaultdict(set)
    for path in route.paths:
        for seg in path_segments(path):
            pts = list(seg.points())
            for a, b in zip(pts, pts[1:]):
                neighbours[a].add(b)
                neighbours[b].add(a)
    return sum(1 for adj in neighbours.values() if len(adj) >= 3)


def net_metrics(route: RoutedNet) -> NetMetrics:
    return NetMetrics(
        length=route.length,
        bends=route.bends,
        branch_nodes=net_branch_nodes(route),
    )


def _net_usage(
    diagram: Diagram,
) -> dict[Point, dict[str, set[Orientation]]]:
    """For every grid point, which nets run through it and in which
    orientation(s).  Single-point paths register with no orientation."""
    usage: dict[Point, dict[str, set[Orientation]]] = defaultdict(dict)
    for name, route in diagram.routes.items():
        for path in route.paths:
            if len(path) == 1:
                usage[path[0]].setdefault(name, set())
            for seg in path_segments(path):
                for p in seg.points():
                    usage[p].setdefault(name, set()).add(seg.orientation)
    return usage


def count_crossovers(diagram: Diagram) -> int:
    """Number of points where two different nets cross each other.

    Every unordered pair of distinct nets sharing a grid point counts as
    one crossover at that point.
    """
    crossings = 0
    for nets in _net_usage(diagram).values():
        k = len(nets)
        if k >= 2:
            crossings += k * (k - 1) // 2
    return crossings


def diagram_metrics(diagram: Diagram) -> DiagramMetrics:
    multi_pin = [n for n in diagram.network.nets.values() if len(n.pins) >= 2]
    routed = sum(
        1
        for n in multi_pin
        if n.name in diagram.routes and diagram.routes[n.name].complete
    )
    length = bends = branches = 0
    for route in diagram.routes.values():
        m = net_metrics(route)
        length += m.length
        bends += m.bends
        branches += m.branch_nodes
    return DiagramMetrics(
        nets_total=len(multi_pin),
        nets_routed=routed,
        nets_failed=len(multi_pin) - routed,
        length=length,
        bends=bends,
        crossovers=count_crossovers(diagram),
        branch_nodes=branches,
    )
