"""The automatic schematic diagram generator (figure 3.2).

``generate`` is the whole pipeline: PABLO placement followed by EUREKA
routing, returning the finished diagram together with the reports and
quality metrics the experiments tabulate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..obs import span
from ..place.pablo import PabloOptions, PlacementReport, place_network
from ..route.eureka import RouterOptions, RoutingReport, route_diagram
from .diagram import Diagram
from .metrics import DiagramMetrics, diagram_metrics
from .netlist import Network

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.runlog import RunLog, RunRecord


@dataclass
class GenerationResult:
    """Everything one generator run produced."""

    diagram: Diagram
    placement: PlacementReport
    routing: RoutingReport
    metrics: DiagramMetrics
    #: Filled when the run was recorded into a run registry.
    run_record: "RunRecord | None" = None

    @property
    def timing_row(self) -> dict[str, float | int]:
        """One row of Table 6.1: module/net counts and phase times."""
        return {
            "modules": len(self.diagram.network.modules),
            "nets": self.metrics.nets_total,
            "placement_seconds": round(self.placement.seconds, 3),
            "routing_seconds": round(self.routing.seconds, 3),
            "total_seconds": round(self.placement.seconds + self.routing.seconds, 3),
        }


def generate(
    network: Network,
    pablo: PabloOptions | None = None,
    eureka: RouterOptions | None = None,
    *,
    preplaced: Diagram | None = None,
    runlog: "RunLog | None" = None,
    run_name: str | None = None,
    run_kind: str = "artwork",
    progress: Callable[[str], None] | None = None,
) -> GenerationResult:
    """Run placement then routing on a network description.

    With ``runlog`` set, the run appends a :class:`~repro.obs.runlog.
    RunRecord` (stage timings, counters, quality metrics, failure
    reasons, congestion heatmap) to that registry before returning.
    ``progress`` is called with the stage name ("placement", "routing")
    as each phase begins — the gateway streams these over WebSockets.
    """
    with span("artwork.generate", network=network.name) as root:
        network.validate()
        if progress is not None:
            progress("placement")
        diagram, placement_report = place_network(network, pablo, preplaced=preplaced)
        if progress is not None:
            progress("routing")
        routing_report = route_diagram(diagram, eureka)
        root.set(
            modules=len(network.modules),
            nets_routed=routing_report.nets_routed,
            nets_failed=routing_report.nets_failed,
        )
    result = GenerationResult(
        diagram=diagram,
        placement=placement_report,
        routing=routing_report,
        metrics=diagram_metrics(diagram),
    )
    if runlog is not None:
        from ..service.jobs import JobSpec  # deferred: service is optional here

        result.run_record = runlog.record_result(
            result,
            kind=run_kind,
            name=run_name or network.name,
            spec_digest=JobSpec.from_network(network, pablo, eureka).digest,
        )
    return result


def route_placed(
    diagram: Diagram, eureka: RouterOptions | None = None
) -> GenerationResult:
    """Routing-only run over an existing (hand or tool) placement — the
    figure 6.5/6.6 flow."""
    routing_report = route_diagram(diagram, eureka)
    return GenerationResult(
        diagram=diagram,
        placement=PlacementReport(),
        routing=routing_report,
        metrics=diagram_metrics(diagram),
    )
