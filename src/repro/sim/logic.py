"""An event-free cycle-based logic simulator.

The paper validated routed diagrams by simulating them with the ESCHER+
simulator ("the results were positive").  This simulator plays that role:
it can run over the net-list connectivity *or* over connectivity extracted
from routed geometry (:func:`repro.core.validate.extract_connectivity`),
so a diagram simulating correctly proves the drawn artwork is electrically
the input network.

The model is synchronous: every module has a :class:`Behavior` with a
combinational ``evaluate`` (settled to a fixpoint each cycle) and a
``tick`` called on the global clock edge.
"""

from __future__ import annotations

from typing import Mapping, Protocol

from ..core.netlist import Network, Pin, TermType


class SimulationError(RuntimeError):
    """Raised on driver conflicts or non-converging combinational loops."""


class Behavior(Protocol):
    """The behavioural model of one module."""

    def evaluate(self, inputs: Mapping[str, int]) -> Mapping[str, int]:
        """Combinational outputs given current input terminal values."""
        ...

    def tick(self, inputs: Mapping[str, int]) -> None:
        """State update on the global clock edge."""
        ...


class LogicSimulator:
    """Simulate a network with per-module behaviours.

    ``connectivity`` maps every pin to its net name; by default it is
    taken from the net-list, but passing the mapping extracted from a
    routed diagram simulates the *artwork* instead of the intent.
    """

    MAX_SETTLE_ITERATIONS = 64

    def __init__(
        self,
        network: Network,
        behaviors: Mapping[str, Behavior],
        *,
        connectivity: Mapping[Pin, str] | None = None,
    ) -> None:
        self.network = network
        missing = set(network.modules) - set(behaviors)
        if missing:
            raise SimulationError(f"no behaviour for modules: {sorted(missing)}")
        self.behaviors = dict(behaviors)
        if connectivity is None:
            connectivity = {
                pin: net.name
                for net in network.nets.values()
                for pin in net.pins
            }
        self.connectivity = dict(connectivity)
        self.net_values: dict[str, int] = {}
        self.system_inputs: dict[str, int] = {
            name: 0
            for name, st in network.system_terminals.items()
            if st.type is not TermType.OUT
        }
        self.cycles = 0

    # -- wiring helpers ---------------------------------------------------

    def _module_inputs(self, module: str) -> dict[str, int]:
        values: dict[str, int] = {}
        for tname, term in self.network.modules[module].terminals.items():
            if not term.type.listens:
                continue
            net = self.connectivity.get(Pin(module, tname))
            values[tname] = self.net_values.get(net, 0) if net else 0
        return values

    def set_input(self, terminal: str, value: int) -> None:
        if terminal not in self.system_inputs:
            raise SimulationError(f"{terminal!r} is not a system input")
        self.system_inputs[terminal] = int(value)

    def read_output(self, terminal: str) -> int:
        net = self.connectivity.get(Pin(None, terminal))
        if net is None:
            raise SimulationError(f"system terminal {terminal!r} is unconnected")
        return self.net_values.get(net, 0)

    # -- simulation ------------------------------------------------------

    def settle(self) -> dict[str, int]:
        """Propagate combinational values to a fixpoint; returns net values."""
        for _ in range(self.MAX_SETTLE_ITERATIONS):
            new_values: dict[str, list[int]] = {}
            for name, value in self.system_inputs.items():
                net = self.connectivity.get(Pin(None, name))
                if net is not None:
                    new_values.setdefault(net, []).append(value)
            for module, behavior in self.behaviors.items():
                outputs = behavior.evaluate(self._module_inputs(module))
                for tname, value in outputs.items():
                    term = self.network.modules[module].terminals.get(tname)
                    if term is None or not term.type.drives:
                        raise SimulationError(
                            f"behaviour of {module!r} drives non-output {tname!r}"
                        )
                    net = self.connectivity.get(Pin(module, tname))
                    if net is not None:
                        new_values.setdefault(net, []).append(int(value))
            resolved: dict[str, int] = {}
            for net, drivers in new_values.items():
                distinct = set(drivers)
                if len(distinct) > 1:
                    raise SimulationError(
                        f"net {net!r} driven to conflicting values {sorted(distinct)}"
                    )
                resolved[net] = drivers[0]
            if resolved == self.net_values:
                return dict(self.net_values)
            self.net_values = resolved
        raise SimulationError("combinational values did not settle (loop?)")

    def step(self, **inputs: int) -> dict[str, int]:
        """One clock cycle: apply inputs, settle, tick; returns net values."""
        for name, value in inputs.items():
            self.set_input(name, value)
        values = self.settle()
        for module, behavior in self.behaviors.items():
            behavior.tick(self._module_inputs(module))
        self.cycles += 1
        return values

    def run(self, cycles: int, **inputs: int) -> dict[str, int]:
        values: dict[str, int] = {}
        for _ in range(cycles):
            values = self.step(**inputs)
        return values
