"""Simulating the LIFE machine (chapter 6, example 3).

Builds a :class:`~repro.sim.logic.LogicSimulator` over the LIFE network —
either from the net-list, or from the connectivity extracted from a routed
diagram (the ESCHER+ check).  The machine seeds itself in the first five
cycles (one row per cycle through the load/data nets), then every further
cycle is one Game-of-Life generation.
"""

from __future__ import annotations

import numpy as np

from ..core.diagram import Diagram
from ..core.netlist import Network
from ..core.validate import extract_connectivity
from ..workloads.life import COLS, ROWS, cell_name, life_network
from .behaviors import default_behaviors
from .logic import LogicSimulator, SimulationError

SEED_CYCLES = ROWS


class LifeMachine:
    """Convenience wrapper: seed, run generations, read the board."""

    def __init__(
        self,
        seed: np.ndarray,
        *,
        network: Network | None = None,
        diagram: Diagram | None = None,
    ) -> None:
        """With ``diagram`` given, connectivity comes from its routed
        geometry — every pin of every net must be reached by the routing
        (the paper's fully-routed precondition for simulation)."""
        if network is None:
            network = diagram.network if diagram is not None else life_network()
        connectivity = None
        if diagram is not None:
            connectivity = extract_connectivity(diagram)
            expected = {
                pin for net in network.nets.values() for pin in net.pins
            }
            missing = expected - set(connectivity)
            if missing:
                raise SimulationError(
                    f"diagram does not connect {len(missing)} pins "
                    f"(e.g. {sorted(missing, key=str)[:3]}); "
                    "route the remaining nets before simulating"
                )
        self.sim = LogicSimulator(
            network,
            default_behaviors(network, life_seed=seed),
            connectivity=connectivity,
        )
        self.sim.run(SEED_CYCLES, clk_in=1, run=1)

    def board(self) -> np.ndarray:
        """The current cell states as a 5x5 array (row 0 = top)."""
        out = np.zeros((ROWS, COLS), dtype=np.int8)
        for r in range(ROWS):
            for c in range(COLS):
                out[r, c] = self.sim.behaviors[cell_name(r, c)].state
        return out

    def step_generation(self, generations: int = 1) -> np.ndarray:
        self.sim.run(generations, clk_in=1, run=1)
        return self.board()

    @property
    def done(self) -> int:
        self.sim.settle()
        return self.sim.read_output("done")
