"""Logic simulation: the ESCHER+ substitute used to validate diagrams."""

from .logic import Behavior, LogicSimulator, SimulationError
from .behaviors import Combinational, DFlipFlop, LifeCell, default_behaviors
from .life_sim import LifeMachine
from .trace import Trace, record, render_waveforms, write_vcd

__all__ = [
    "Behavior",
    "LogicSimulator",
    "SimulationError",
    "Combinational",
    "DFlipFlop",
    "LifeCell",
    "default_behaviors",
    "LifeMachine",
    "Trace",
    "record",
    "render_waveforms",
    "write_vcd",
]
