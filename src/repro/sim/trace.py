"""Signal tracing for the logic simulator.

The paper's editor "invoke[s] the simulator and ... display[s] the
results"; this module records per-cycle net values while the simulator
runs and renders them as ASCII waveforms or a VCD file any waveform
viewer opens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from .logic import LogicSimulator


@dataclass
class Trace:
    """Recorded net values, one sample per simulated cycle."""

    signals: dict[str, list[int]] = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        return max((len(v) for v in self.signals.values()), default=0)

    def sample(self, values: Mapping[str, int], nets: Iterable[str]) -> None:
        for net in nets:
            self.signals.setdefault(net, []).append(int(values.get(net, 0)))

    def changes(self, net: str) -> list[tuple[int, int]]:
        """(cycle, new value) pairs where the net toggles."""
        out: list[tuple[int, int]] = []
        previous: int | None = None
        for cycle, value in enumerate(self.signals.get(net, [])):
            if value != previous:
                out.append((cycle, value))
                previous = value
        return out


def record(
    sim: LogicSimulator,
    cycles: int,
    *,
    nets: Iterable[str] | None = None,
    inputs: Mapping[str, int] | None = None,
) -> Trace:
    """Run the simulator for ``cycles`` steps recording net values.

    ``nets`` defaults to every net of the network; ``inputs`` are applied
    on every step (drive changing stimuli by calling ``record`` again).
    """
    watch = list(nets) if nets is not None else sorted(sim.network.nets)
    trace = Trace()
    for _ in range(cycles):
        values = sim.step(**(inputs or {}))
        trace.sample(values, watch)
    return trace


def render_waveforms(trace: Trace, *, nets: Iterable[str] | None = None) -> str:
    """ASCII waveforms: one row per net, high/low drawn per cycle."""
    names = list(nets) if nets is not None else sorted(trace.signals)
    if not names:
        return "(no signals)"
    width = max(len(n) for n in names)
    rows = []
    for name in names:
        values = trace.signals.get(name, [])
        wave = "".join("▔" if v else "▁" for v in values)
        rows.append(f"{name.ljust(width)} {wave}")
    return "\n".join(rows)


def write_vcd(
    trace: Trace,
    path: str | Path,
    *,
    design: str = "repro",
    timescale: str = "1 ns",
) -> Path:
    """Write the trace as a Value Change Dump file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    names = sorted(trace.signals)
    codes = {name: _vcd_code(i) for i, name in enumerate(names)}
    lines = [
        "$date repro trace $end",
        f"$timescale {timescale} $end",
        f"$scope module {design} $end",
    ]
    for name in names:
        lines.append(f"$var wire 1 {codes[name]} {name} $end")
    lines += ["$upscope $end", "$enddefinitions $end"]
    lines.append("$dumpvars")
    for name in names:
        first = trace.signals[name][0] if trace.signals[name] else 0
        lines.append(f"{first}{codes[name]}")
    lines.append("$end")
    for cycle in range(trace.cycles):
        emitted: list[str] = []
        for name in names:
            values = trace.signals[name]
            if cycle < len(values) and (
                cycle == 0 or values[cycle] != values[cycle - 1]
            ):
                if cycle > 0:
                    emitted.append(f"{values[cycle]}{codes[name]}")
        if emitted:
            lines.append(f"#{cycle}")
            lines.extend(emitted)
    lines.append(f"#{trace.cycles}")
    path.write_text("\n".join(lines) + "\n")
    return path


_VCD_ALPHABET = "".join(chr(c) for c in range(33, 127))


def _vcd_code(index: int) -> str:
    """Short printable identifier codes, VCD style."""
    out = ""
    index += 1
    while index:
        index, digit = divmod(index - 1, len(_VCD_ALPHABET))
        out = _VCD_ALPHABET[digit] + out
    return out
