"""Behavioural models for the standard module library.

Every template of :mod:`repro.workloads.stdlib` gets a :class:`Behavior`
so any network built from the library can be simulated — including the
LIFE machine (cells, controller, clock generator).
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from ..core.netlist import Module, Network


class Combinational:
    """A stateless module computed by a function of its inputs."""

    def __init__(self, fn: Callable[[Mapping[str, int]], Mapping[str, int]]) -> None:
        self._fn = fn

    def evaluate(self, inputs: Mapping[str, int]) -> Mapping[str, int]:
        return self._fn(inputs)

    def tick(self, inputs: Mapping[str, int]) -> None:
        pass


class DFlipFlop:
    """One-bit register; samples ``d`` on every global tick."""

    def __init__(self, data_in: str = "d", data_out: str = "q") -> None:
        self.state = 0
        self._in = data_in
        self._out = data_out

    def evaluate(self, inputs: Mapping[str, int]) -> Mapping[str, int]:
        return {self._out: self.state}

    def tick(self, inputs: Mapping[str, int]) -> None:
        self.state = int(inputs.get(self._in, 0))


class EnabledRegister:
    """Register with enable: loads ``d`` on tick when ``en`` is high."""

    def __init__(self) -> None:
        self.state = 0

    def evaluate(self, inputs: Mapping[str, int]) -> Mapping[str, int]:
        return {"q": self.state}

    def tick(self, inputs: Mapping[str, int]) -> None:
        if inputs.get("en", 0):
            self.state = int(inputs.get("d", 0))


class LifeCell:
    """A LIFE cell: loads the seed bit when ``load`` is high, otherwise
    applies Conway's rules to its eight neighbour inputs on every tick.
    All eight outputs mirror the registered state."""

    def __init__(self) -> None:
        self.state = 0

    def evaluate(self, inputs: Mapping[str, int]) -> Mapping[str, int]:
        return {f"o{k}": self.state for k in range(8)}

    def tick(self, inputs: Mapping[str, int]) -> None:
        if inputs.get("load", 0):
            self.state = int(inputs.get("data", 0))
            return
        if not inputs.get("clk", 0):
            return  # row clock gated off (e.g. while other rows seed)
        alive = sum(int(inputs.get(f"n{k}", 0)) for k in range(8))
        self.state = 1 if alive == 3 or (self.state == 1 and alive == 2) else 0


class LifeController:
    """Seeds the board row by row (cycles 0..4: assert ``load{row}`` and
    drive the columns' seed bits), then lets the array run freely and
    raises ``done``."""

    def __init__(self, seed: np.ndarray) -> None:
        if seed.shape != (5, 5):
            raise ValueError("LIFE seed must be a 5x5 array")
        self.seed = seed.astype(int)
        self.cycle = 0

    def evaluate(self, inputs: Mapping[str, int]) -> Mapping[str, int]:
        out: dict[str, int] = {"enable": 1}
        loading = self.cycle < 5
        clk = int(inputs.get("clk", 0))
        for r in range(5):
            out[f"load{r}"] = 1 if (loading and r == self.cycle) else 0
            # Row clocks stay gated off until the whole board is seeded.
            out[f"rowclk{r}"] = 0 if loading else clk
        for c in range(5):
            out[f"data{c}"] = int(self.seed[self.cycle, c]) if loading else 0
        out["done"] = 0 if loading else 1
        return out

    def tick(self, inputs: Mapping[str, int]) -> None:
        self.cycle += 1


class ClockGenerator:
    """Forwards the external clock when enabled and emits a tick pulse."""

    def __init__(self) -> None:
        self.phase = 0

    def evaluate(self, inputs: Mapping[str, int]) -> Mapping[str, int]:
        enabled = int(inputs.get("enable", 1))
        clk = int(inputs.get("clk_in", 0)) & enabled
        return {"clk": clk, "tick": self.phase & 1}

    def tick(self, inputs: Mapping[str, int]) -> None:
        self.phase += 1


def _gate(fn: Callable[[int, int], int]) -> Combinational:
    return Combinational(lambda ins: {"y": fn(ins.get("a", 0), ins.get("b", 0))})


def _alu(ins: Mapping[str, int]) -> Mapping[str, int]:
    a, b, op = ins.get("a", 0), ins.get("b", 0), ins.get("op", 0)
    y = (a ^ b) if op else (a & b)
    return {"y": y, "flag": int(a == b)}


def _fulladder(ins: Mapping[str, int]) -> Mapping[str, int]:
    total = ins.get("a", 0) + ins.get("b", 0) + ins.get("cin", 0)
    return {"sum": total & 1, "cout": total >> 1}


def _mux(ins: Mapping[str, int]) -> Mapping[str, int]:
    return {"y": ins.get("b", 0) if ins.get("sel", 0) else ins.get("a", 0)}


def _controller(ins: Mapping[str, int]) -> Mapping[str, int]:
    run = ins.get("run", 0)
    return {f"c{k}": run for k in range(10)}


def behavior_for(module: Module, **context) -> object:
    """Default behaviour for a standard-library module instance.

    ``context`` may carry ``life_seed`` (numpy 5x5) for LIFE controllers.
    """
    template = module.template
    if template in ("buf",):
        return Combinational(lambda ins: {"y": ins.get("a", 0)})
    if template == "inv":
        return Combinational(lambda ins: {"y": 1 - (ins.get("a", 0) & 1)})
    if template == "and2":
        return _gate(lambda a, b: a & b)
    if template == "or2":
        return _gate(lambda a, b: a | b)
    if template == "xor2":
        return _gate(lambda a, b: a ^ b)
    if template == "dff":
        return DFlipFlop()
    if template == "mux2":
        return Combinational(_mux)
    if template == "fulladder":
        return Combinational(_fulladder)
    if template == "register":
        return EnabledRegister()
    if template == "alu":
        return Combinational(_alu)
    if template == "controller":
        return Combinational(_controller)
    if template == "life_cell":
        return LifeCell()
    if template == "life_controller":
        return LifeController(context.get("life_seed", np.zeros((5, 5))))
    if template == "clock_generator":
        return ClockGenerator()
    raise KeyError(f"no default behaviour for template {template!r}")


def default_behaviors(network: Network, **context) -> dict[str, object]:
    """Behaviours for every module of a standard-library network."""
    return {
        name: behavior_for(module, **context)
        for name, module in network.modules.items()
    }
