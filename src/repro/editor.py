"""ESCHER — the schematic editor of the system diagram (figure 3.1).

"The schematic editor forms the interface between the user of the system
and the CAD-system ... it enables the user to construct diagrams by hand
or to invoke the simulator and to display the results or to invoke the
generator."

This is a headless (scriptable) editor over a :class:`Diagram`: place,
move and rotate modules, place terminals, draw and erase wires by hand,
invoke PABLO on the unplaced rest (the -g flow), invoke EUREKA on the
unrouted nets, validate, render, save/load ESCHER files — with undo.
Every mutating command validates its preconditions and records an inverse
operation, so an interactive front end can sit directly on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from .core.diagram import Diagram, PlacedModule
from .core.geometry import Point, normalize_path
from .core.metrics import DiagramMetrics, diagram_metrics
from .core.netlist import Network
from .core.rotation import Rotation
from .core.validate import placement_violations, routing_violations
from .formats.escher import load_escher, save_escher
from .place.pablo import PabloOptions, place_network
from .render.ascii_art import render_ascii
from .render.svg import save_svg
from .route.eureka import RouterOptions, route_diagram


class EditorError(ValueError):
    """Raised when a command's preconditions fail (nothing is changed)."""


@dataclass
class _UndoEntry:
    description: str
    inverse: Callable[[], None]


@dataclass
class Editor:
    """A command-driven editing session on one diagram."""

    network: Network
    diagram: Diagram = field(init=False)
    _undo_stack: list[_UndoEntry] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        self.diagram = Diagram(self.network)

    # -- session -------------------------------------------------------

    @classmethod
    def open(cls, path: str | Path, network: Network) -> "Editor":
        """Resume editing a saved ESCHER diagram."""
        editor = cls(network)
        editor.diagram = load_escher(path, network)
        return editor

    def save(self, path: str | Path) -> Path:
        return save_escher(self.diagram, path)

    def save_svg(self, path: str | Path) -> Path:
        return save_svg(self.diagram, path)

    def render(self) -> str:
        return render_ascii(self.diagram)

    @property
    def can_undo(self) -> bool:
        return bool(self._undo_stack)

    def undo(self) -> str:
        """Revert the latest command; returns its description."""
        if not self._undo_stack:
            raise EditorError("nothing to undo")
        entry = self._undo_stack.pop()
        entry.inverse()
        return entry.description

    def _record(self, description: str, inverse: Callable[[], None]) -> None:
        self._undo_stack.append(_UndoEntry(description, inverse))

    # -- module commands --------------------------------------------------

    def place(
        self, module: str, x: int, y: int, rotation: Rotation = Rotation.R0
    ) -> None:
        """Place (or re-place) a module symbol."""
        if module not in self.network.modules:
            raise EditorError(f"unknown module {module!r}")
        previous = self.diagram.placements.get(module)
        self.diagram.place_module(module, Point(x, y), rotation)
        overlap = [
            p
            for p in placement_violations(self.diagram)
            if f"{module}'" in p or f"'{module}'" in p
        ]
        if overlap:
            # Roll straight back: the editor refuses illegal placements.
            if previous is None:
                del self.diagram.placements[module]
            else:
                self.diagram.placements[module] = previous
            raise EditorError(overlap[0])

        def inverse() -> None:
            if previous is None:
                self.diagram.placements.pop(module, None)
            else:
                self.diagram.placements[module] = previous

        self._record(f"place {module} at ({x},{y})", inverse)

    def move(self, module: str, dx: int, dy: int) -> None:
        pm = self._placed(module)
        self.place(
            module, pm.position.x + dx, pm.position.y + dy, pm.rotation
        )
        self._undo_stack[-1].description = f"move {module} by ({dx},{dy})"

    def rotate(self, module: str, quarter_turns: int = 1) -> None:
        """Rotate a placed module counterclockwise in 90-degree steps."""
        pm = self._placed(module)
        rotation = pm.rotation.compose(Rotation((quarter_turns % 4) * 90))
        self.place(module, pm.position.x, pm.position.y, rotation)
        self._undo_stack[-1].description = f"rotate {module} x{quarter_turns}"

    def _placed(self, module: str) -> PlacedModule:
        pm = self.diagram.placements.get(module)
        if pm is None:
            raise EditorError(f"module {module!r} is not placed")
        return pm

    def place_terminal(self, terminal: str, x: int, y: int) -> None:
        if terminal not in self.network.system_terminals:
            raise EditorError(f"unknown system terminal {terminal!r}")
        previous = self.diagram.terminal_positions.get(terminal)
        self.diagram.place_system_terminal(terminal, Point(x, y))

        def inverse() -> None:
            if previous is None:
                self.diagram.terminal_positions.pop(terminal, None)
            else:
                self.diagram.terminal_positions[terminal] = previous

        self._record(f"place terminal {terminal} at ({x},{y})", inverse)

    # -- wire commands -----------------------------------------------------

    def draw_wire(self, net: str, points: Sequence[tuple[int, int] | Point]) -> None:
        """Hand-draw one rectilinear path of a net.  The path must be
        legal in the current diagram (the editor "makes the schematic
        diagram become real" — it never lets it become wrong)."""
        if net not in self.network.nets:
            raise EditorError(f"unknown net {net!r}")
        path = normalize_path([Point(*p) for p in points])
        if len(path) < 2:
            raise EditorError("a wire needs at least two distinct points")
        for a, b in zip(path, path[1:]):
            if a.x != b.x and a.y != b.y:
                raise EditorError(f"wire corner {a} -> {b} is not rectilinear")
        route = self.diagram.route_for(net)
        route.add_path(path)
        problems = routing_violations(self.diagram)
        if problems:
            route.paths.pop()
            if not route.paths:
                del self.diagram.routes[net]
            raise EditorError(problems[0])

        def inverse() -> None:
            r = self.diagram.routes.get(net)
            if r is not None and path in r.paths:
                r.paths.remove(path)
                if not r.paths:
                    del self.diagram.routes[net]

        self._record(f"draw wire on {net} ({len(path)} points)", inverse)

    def erase_net(self, net: str) -> None:
        """Remove a net's drawn geometry (for manual rip-up)."""
        route = self.diagram.routes.pop(net, None)
        if route is None:
            raise EditorError(f"net {net!r} has no drawn geometry")

        def inverse() -> None:
            self.diagram.routes[net] = route

        self._record(f"erase net {net}", inverse)

    # -- invoking the tools (figure 3.1 arcs) ------------------------------

    def invoke_placement(self, options: PabloOptions | None = None) -> None:
        """Run PABLO on the modules not placed yet, around the current
        (preplaced, possibly prerouted) content."""
        if self.diagram.placements or self.diagram.terminal_positions:
            placed, _ = place_network(
                self.network, options, preplaced=self.diagram
            )
        else:
            placed, _ = place_network(self.network, options)
        previous = self.diagram
        self.diagram = placed

        def inverse() -> None:
            self.diagram = previous

        self._record("invoke placement", inverse)

    def invoke_routing(self, options: RouterOptions | None = None) -> list[str]:
        """Run EUREKA on the unrouted nets; returns the unroutable ones."""
        if not self.diagram.is_placed:
            raise EditorError("place every module and terminal before routing")
        before = {
            name: [list(p) for p in route.paths]
            for name, route in self.diagram.routes.items()
        }
        report = route_diagram(self.diagram, options)

        def inverse() -> None:
            self.diagram.routes.clear()
            for name, paths in before.items():
                route = self.diagram.route_for(name)
                for path in paths:
                    route.add_path(path)

        self._record("invoke routing", inverse)
        return report.failed_nets

    def invoke_simulator(self, behaviors, **inputs: int) -> dict[str, int]:
        """Simulate the diagram's routed connectivity for one settle
        (the editor's 'invoke the simulator and display the results')."""
        from .core.validate import extract_connectivity
        from .sim.logic import LogicSimulator

        sim = LogicSimulator(
            self.network, behaviors, connectivity=extract_connectivity(self.diagram)
        )
        for name, value in inputs.items():
            sim.set_input(name, value)
        return sim.settle()

    # -- status ---------------------------------------------------------------

    def metrics(self) -> DiagramMetrics:
        return diagram_metrics(self.diagram)

    def problems(self) -> list[str]:
        return placement_violations(self.diagram) + routing_violations(self.diagram)
