"""repro — From Network to Artwork (Koster & Stok, 1989).

Automatic schematic diagram generation: PABLO placement, EUREKA
line-expansion routing, file formats, rendering, baselines and a logic
simulator for validating routed diagrams.

Quickstart::

    from repro import generate, example2_controller, PabloOptions
    result = generate(example2_controller(), PabloOptions(partition_size=5))
    print(result.metrics)
"""

from .core import (
    Diagram,
    DiagramMetrics,
    Module,
    Net,
    NetlistError,
    Network,
    Pin,
    Point,
    Rect,
    Rotation,
    Side,
    SystemTerminal,
    Terminal,
    TermType,
    check_diagram,
    diagram_metrics,
    extract_connectivity,
)
from .core.generator import GenerationResult, generate, route_placed
from .editor import Editor, EditorError
from .service import BatchScheduler, JobOutcome, JobSpec, ResultCache
from .place import PabloOptions, PlacementReport, place_network
from .route import CostOrder, RouterOptions, RoutingReport, route_diagram
from .workloads import (
    example1_string,
    example2_controller,
    hand_placement,
    life_network,
    random_network,
)

__version__ = "1.0.0"

__all__ = [
    "Diagram",
    "DiagramMetrics",
    "Module",
    "Net",
    "NetlistError",
    "Network",
    "Pin",
    "Point",
    "Rect",
    "Rotation",
    "Side",
    "SystemTerminal",
    "Terminal",
    "TermType",
    "check_diagram",
    "diagram_metrics",
    "extract_connectivity",
    "GenerationResult",
    "generate",
    "route_placed",
    "Editor",
    "EditorError",
    "BatchScheduler",
    "JobOutcome",
    "JobSpec",
    "ResultCache",
    "PabloOptions",
    "PlacementReport",
    "place_network",
    "CostOrder",
    "RouterOptions",
    "RoutingReport",
    "route_diagram",
    "example1_string",
    "example2_controller",
    "hand_placement",
    "life_network",
    "random_network",
    "__version__",
]
