"""SVG rendering of schematic diagrams (the chapter 6 figures)."""

from __future__ import annotations

import html
from pathlib import Path
from typing import Iterable

from ..core.diagram import Diagram

_NET_COLORS = [
    "#1b6ca8",
    "#b33939",
    "#218c5c",
    "#8e5aa8",
    "#b97a1a",
    "#3a7ca5",
    "#7a5c3a",
    "#4a6b2a",
]


def render_svg(
    diagram: Diagram,
    *,
    unit: int = 12,
    margin: int = 2,
    show_net_names: bool = False,
    heat: Iterable[tuple[int, int, float]] | None = None,
) -> str:
    """Render the diagram as a standalone SVG document.

    ``unit`` is the pixel size of one grid unit; the y axis is flipped so
    the schematic's up is the screen's up.  ``heat`` is an optional
    congestion underlay — ``(x, y, intensity 0..1)`` grid cells (see
    :meth:`repro.obs.congestion.CongestionMap.heat_cells`) drawn behind
    the wires and modules.
    """
    bbox = diagram.bounding_box().expand(margin)

    def sx(x: int | float) -> float:
        return (x - bbox.x) * unit

    def sy(y: int | float) -> float:
        return (bbox.y2 - y) * unit

    parts: list[str] = []
    width, height = (bbox.w) * unit, (bbox.h) * unit
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" font-family="monospace">'
    )
    parts.append(f'<rect width="{width}" height="{height}" fill="#fdfcf8"/>')

    # Congestion underlay sits beneath everything else.
    if heat:
        half = unit / 2
        for hx, hy, intensity in heat:
            opacity = 0.12 + 0.68 * max(0.0, min(1.0, intensity))
            parts.append(
                f'<rect x="{sx(hx) - half:.1f}" y="{sy(hy) - half:.1f}" '
                f'width="{unit}" height="{unit}" fill="#d9534f" '
                f'fill-opacity="{opacity:.2f}"/>'
            )

    # Nets first so module bodies overdraw their touch points cleanly.
    for i, (name, route) in enumerate(sorted(diagram.routes.items())):
        color = _NET_COLORS[i % len(_NET_COLORS)]
        for path in route.paths:
            if len(path) == 1:
                continue
            points = " ".join(f"{sx(p.x):.1f},{sy(p.y):.1f}" for p in path)
            parts.append(
                f'<polyline points="{points}" fill="none" stroke="{color}" '
                f'stroke-width="1.5"/>'
            )
        if show_net_names and route.paths and len(route.paths[0]) > 1:
            p = route.paths[0][0]
            parts.append(
                f'<text x="{sx(p.x) + 2:.1f}" y="{sy(p.y) - 2:.1f}" '
                f'font-size="{unit * 0.6:.0f}" fill="{color}">{html.escape(name)}</text>'
            )

    for pm in diagram.placements.values():
        rect = pm.rect
        parts.append(
            f'<rect x="{sx(rect.x):.1f}" y="{sy(rect.y2):.1f}" '
            f'width="{rect.w * unit}" height="{rect.h * unit}" '
            'fill="#ffffff" stroke="#222222" stroke-width="1.8"/>'
        )
        cx, cy = rect.center
        parts.append(
            f'<text x="{sx(cx):.1f}" y="{sy(cy) + unit * 0.3:.1f}" '
            f'font-size="{unit * 0.8:.0f}" text-anchor="middle" '
            f'fill="#222222">{html.escape(pm.name)}</text>'
        )
        for tname in pm.module.terminals:
            tp = pm.terminal_position(tname)
            parts.append(
                f'<circle cx="{sx(tp.x):.1f}" cy="{sy(tp.y):.1f}" r="{unit * 0.18:.1f}" '
                'fill="#222222"/>'
            )

    for name, pos in diagram.terminal_positions.items():
        r = unit * 0.35
        parts.append(
            f'<rect x="{sx(pos.x) - r:.1f}" y="{sy(pos.y) - r:.1f}" '
            f'width="{2 * r:.1f}" height="{2 * r:.1f}" '
            f'fill="#ffffff" stroke="#444444" transform="rotate(45 {sx(pos.x):.1f} '
            f'{sy(pos.y):.1f})"/>'
        )
        parts.append(
            f'<text x="{sx(pos.x):.1f}" y="{sy(pos.y) - r - 2:.1f}" '
            f'font-size="{unit * 0.7:.0f}" text-anchor="middle" '
            f'fill="#444444">{html.escape(name)}</text>'
        )

    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(diagram: Diagram, path: str | Path, **kwargs) -> Path:
    """Render and write an SVG file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_svg(diagram, **kwargs))
    return path
