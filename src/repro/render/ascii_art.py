"""Plain-text rendering of schematic diagrams.

Useful in tests and terminals: modules are drawn as boxes, wires as
``-``/``|`` runs with ``+`` at bends and junctions, crossings as ``#``,
subsystem terminals as ``o`` and system terminals as ``@``.
"""

from __future__ import annotations

from ..core.diagram import Diagram
from ..core.geometry import Orientation, Point, path_segments


def render_ascii(diagram: Diagram, *, margin: int = 1) -> str:
    bbox = diagram.bounding_box().expand(margin)
    width, height = bbox.w + 1, bbox.h + 1
    grid = [[" "] * width for _ in range(height)]

    def put(p: Point, ch: str) -> None:
        col, row = p.x - bbox.x, bbox.y2 - p.y
        if 0 <= row < height and 0 <= col < width:
            grid[row][col] = ch

    def at(p: Point) -> str:
        col, row = p.x - bbox.x, bbox.y2 - p.y
        if 0 <= row < height and 0 <= col < width:
            return grid[row][col]
        return " "

    # Wires.
    for route in diagram.routes.values():
        for path in route.paths:
            for seg in path_segments(path):
                ch = "-" if seg.orientation is Orientation.HORIZONTAL else "|"
                other = "|" if ch == "-" else "-"
                for p in seg.points():
                    cur = at(p)
                    if cur == other or cur == "#":
                        put(p, "#")  # a crossing
                    elif cur == "+":
                        put(p, "+")
                    else:
                        put(p, ch)
            for vertex in path if len(path) == 1 else path[1:-1]:
                put(vertex, "+")
            if len(path) > 1:
                put(path[0], "+")
                put(path[-1], "+")

    # Module boxes overdraw wires (wires never legally enter them).
    for pm in diagram.placements.values():
        rect = pm.rect
        for x in range(rect.x, rect.x2 + 1):
            put(Point(x, rect.y), "-")
            put(Point(x, rect.y2), "-")
        for y in range(rect.y, rect.y2 + 1):
            put(Point(rect.x, y), "|")
            put(Point(rect.x2, y), "|")
        for corner in (
            rect.lower_left,
            Point(rect.x2, rect.y),
            Point(rect.x, rect.y2),
            rect.upper_right,
        ):
            put(corner, "+")
        for x in range(rect.x + 1, rect.x2):
            for y in range(rect.y + 1, rect.y2):
                put(Point(x, y), " ")
        label = pm.name[: max(0, rect.w - 1)]
        ly = (rect.y + rect.y2) // 2
        lx = rect.x + max(1, (rect.w - len(label)) // 2)
        for i, ch in enumerate(label):
            put(Point(lx + i, ly), ch)
        for tname in pm.module.terminals:
            put(pm.terminal_position(tname), "o")

    for pos in diagram.terminal_positions.values():
        put(pos, "@")

    return "\n".join("".join(row).rstrip() for row in grid)
