"""HTML experiment reports.

Bundles one or more diagrams with their quality metrics into a single
standalone HTML page (SVGs inlined) — the "graphical feedback to the
designer" the paper's introduction motivates, in a form a browser shows.
"""

from __future__ import annotations

import html
from dataclasses import dataclass, field
from pathlib import Path

from ..core.diagram import Diagram
from ..core.metrics import diagram_metrics
from .svg import render_svg

_STYLE = """
body { font-family: sans-serif; margin: 2em; color: #222; }
h1 { border-bottom: 2px solid #1b6ca8; padding-bottom: 0.2em; }
section { margin-bottom: 3em; }
table { border-collapse: collapse; margin: 1em 0; }
td, th { border: 1px solid #bbb; padding: 0.3em 0.8em; text-align: right; }
th { background: #f0f4f8; }
figure { margin: 1em 0; border: 1px solid #ddd; padding: 0.5em;
         overflow: auto; max-height: 720px; }
figcaption { color: #666; font-size: 0.9em; margin-bottom: 0.5em; }
.note { color: #555; max-width: 60em; }
"""


@dataclass
class Report:
    """A collection of titled diagram sections rendered to one page."""

    title: str
    sections: list[tuple[str, str, Diagram, str]] = field(default_factory=list)

    def add(self, heading: str, diagram: Diagram, *, note: str = "", unit: int = 10) -> None:
        """Add a diagram section with an optional explanatory note."""
        svg = render_svg(diagram, unit=unit)
        self.sections.append((heading, note, diagram, svg))

    def to_html(self) -> str:
        parts = [
            "<!DOCTYPE html>",
            "<html><head><meta charset='utf-8'>",
            f"<title>{html.escape(self.title)}</title>",
            f"<style>{_STYLE}</style>",
            "</head><body>",
            f"<h1>{html.escape(self.title)}</h1>",
        ]
        for heading, note, diagram, svg in self.sections:
            metrics = diagram_metrics(diagram)
            parts.append("<section>")
            parts.append(f"<h2>{html.escape(heading)}</h2>")
            if note:
                parts.append(f"<p class='note'>{html.escape(note)}</p>")
            parts.append(_metrics_table(metrics.as_row()))
            parts.append(
                f"<figure><figcaption>{html.escape(heading)}</figcaption>{svg}</figure>"
            )
            parts.append("</section>")
        parts.append("</body></html>")
        return "\n".join(parts)

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_html())
        return path


def _metrics_table(row) -> str:
    headers = "".join(f"<th>{html.escape(str(k))}</th>" for k in row)
    values = "".join(f"<td>{html.escape(str(v))}</td>" for v in row.values())
    return f"<table><tr>{headers}</tr><tr>{values}</tr></table>"
