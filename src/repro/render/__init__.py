"""Rendering: SVG and plain-text views of diagrams."""

from .ascii_art import render_ascii
from .svg import render_svg, save_svg
from .report import Report

__all__ = ["render_ascii", "render_svg", "save_svg", "Report"]
