"""Command-line front ends: ``pablo``, ``eureka``, ``quinto``, ``artwork``.

These mirror the paper's programs (Appendices B, E and F):

* ``pablo``   — place a network described by net-list/call/io files,
* ``eureka``  — route a placed diagram (ESCHER file) against a net-list,
* ``quinto``  — add a module description to a library directory,
* ``artwork`` — the whole pipeline: network files in, SVG/ESCHER out.
"""

from __future__ import annotations

import argparse
import math
import sys
from pathlib import Path

from .core.generator import generate
from .core.metrics import diagram_metrics
from .core.netlist import Network
from .formats.escher import load_escher, save_escher
from .formats.library import ModuleLibrary
from .formats.module_desc import parse_module_description, write_module_description
from .formats.netlist_files import load_network_files
from .core.geometry import Side
from .place.pablo import PabloOptions, place_network
from .render.svg import save_svg
from .route.eureka import RouterOptions, route_diagram
from .route.line_expansion import CostOrder


def _library(path: str | None) -> ModuleLibrary:
    if path is None:
        return ModuleLibrary.standard()
    return ModuleLibrary.load(path)


def _load_network(args: argparse.Namespace) -> Network:
    return load_network_files(
        args.netlist, args.call, args.io, library=_library(args.library)
    )


def _network_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("netlist", help="net-list-file (Appendix A)")
    parser.add_argument("call", help="call-file (instances and templates)")
    parser.add_argument("io", nargs="?", default=None, help="io-file (system terminals)")
    parser.add_argument("--library", help="module library directory (default: built-in)")


def _pablo_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("-p", type=int, default=1, help="max modules per partition")
    parser.add_argument("-b", type=int, default=1, help="max modules per box (string)")
    parser.add_argument("-c", type=float, default=math.inf, help="max outgoing nets per partition")
    parser.add_argument("-e", type=int, default=0, help="extra tracks around partitions")
    parser.add_argument("-i", type=int, default=0, help="extra tracks around boxes")
    parser.add_argument("-s", type=int, default=0, dest="module_space", help="extra tracks around modules")


def _pablo_options(args: argparse.Namespace) -> PabloOptions:
    return PabloOptions(
        partition_size=args.p,
        box_size=args.b,
        max_connections=args.c,
        partition_spacing=args.e,
        box_spacing=args.i,
        module_extra_space=args.module_space,
    )


def _eureka_args(parser: argparse.ArgumentParser, *, short_swap: bool = True) -> None:
    parser.add_argument("-u", action="store_true", help="pin the upper plane border")
    parser.add_argument("-d", action="store_true", help="pin the lower plane border")
    parser.add_argument("-r", action="store_true", help="pin the right plane border")
    parser.add_argument("-l", action="store_true", help="pin the left plane border")
    # ``artwork`` combines both programs, where PABLO already owns -s.
    swap_flags = ["-s", "--swap"] if short_swap else ["--swap"]
    parser.add_argument(
        *swap_flags,
        action="store_true",
        dest="swap",
        help="tie-break minimum-bend paths on length before crossings",
    )
    parser.add_argument("--no-claims", action="store_true", help="disable claimpoints")
    parser.add_argument("--margin", type=int, default=4, help="routing border margin")


def _eureka_options(args: argparse.Namespace) -> RouterOptions:
    fixed = set()
    if args.u:
        fixed.add(Side.UP)
    if args.d:
        fixed.add(Side.DOWN)
    if args.r:
        fixed.add(Side.RIGHT)
    if args.l:
        fixed.add(Side.LEFT)
    order = (
        CostOrder.BENDS_LENGTH_CROSSINGS if args.swap else CostOrder.BENDS_CROSSINGS_LENGTH
    )
    return RouterOptions(
        claimpoints=not args.no_claims,
        cost_order=order,
        margin=args.margin,
        fixed_sides=frozenset(fixed),
    )


def _report(diagram) -> None:
    metrics = diagram_metrics(diagram)
    print(
        f"nets routed: {metrics.nets_routed}/{metrics.nets_total}  "
        f"length={metrics.length} bends={metrics.bends} "
        f"crossovers={metrics.crossovers} branch_nodes={metrics.branch_nodes}"
    )


def pablo_main(argv: list[str] | None = None) -> int:
    """Place a network and write the placed diagram as an ESCHER file."""
    parser = argparse.ArgumentParser(prog="pablo", description=pablo_main.__doc__)
    _network_args(parser)
    _pablo_args(parser)
    parser.add_argument("-o", "--output", default="placed.es", help="output ESCHER file")
    args = parser.parse_args(argv)
    network = _load_network(args)
    diagram, report = place_network(network, _pablo_options(args))
    save_escher(diagram, args.output)
    print(
        f"placed {len(diagram.placements)} modules in "
        f"{report.partition_count} partitions / {report.box_count} boxes "
        f"({report.seconds:.2f}s) -> {args.output}"
    )
    return 0


def eureka_main(argv: list[str] | None = None) -> int:
    """Route the unrouted nets of a placed ESCHER diagram."""
    parser = argparse.ArgumentParser(prog="eureka", description=eureka_main.__doc__)
    parser.add_argument("graphic", help="placed diagram (ESCHER file)")
    _network_args(parser)
    _eureka_args(parser)
    parser.add_argument("-o", "--output", default="routed.es", help="output ESCHER file")
    args = parser.parse_args(argv)
    network = _load_network(args)
    diagram = load_escher(args.graphic, network)
    report = route_diagram(diagram, _eureka_options(args))
    for name in report.failed_nets:
        print(f"warning: net {name!r} is unroutable", file=sys.stderr)
    save_escher(diagram, args.output)
    _report(diagram)
    return 0 if not report.failed_nets else 1


def quinto_main(argv: list[str] | None = None) -> int:
    """Add a module description (Appendix B) to a library directory."""
    parser = argparse.ArgumentParser(prog="quinto", description=quinto_main.__doc__)
    parser.add_argument("file", help="module description file")
    parser.add_argument("--library", default="user_lib", help="library directory")
    args = parser.parse_args(argv)
    module = parse_module_description(Path(args.file).read_text())
    directory = Path(args.library)
    directory.mkdir(parents=True, exist_ok=True)
    out = directory / f"{module.template}{ModuleLibrary.SUFFIX}"
    out.write_text(write_module_description(module))
    print(f"added template {module.template!r} -> {out}")
    return 0


def artwork_main(argv: list[str] | None = None) -> int:
    """The full generator: network files in, routed SVG + ESCHER out."""
    parser = argparse.ArgumentParser(prog="artwork", description=artwork_main.__doc__)
    _network_args(parser)
    _pablo_args(parser)
    _eureka_args(parser, short_swap=False)
    parser.add_argument("-o", "--output", default="artwork.svg", help="output SVG")
    parser.add_argument("--escher", help="also write an ESCHER file here")
    args = parser.parse_args(argv)
    network = _load_network(args)
    result = generate(network, _pablo_options(args), _eureka_options(args))
    save_svg(result.diagram, args.output)
    if args.escher:
        save_escher(result.diagram, args.escher)
    _report(result.diagram)
    print(f"wrote {args.output}")
    return 0 if not result.routing.failed_nets else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(artwork_main())
