"""Command-line front ends: ``pablo``, ``eureka``, ``quinto``, ``artwork``
and the batch service driver ``artwork-batch``.

The first four mirror the paper's programs (Appendices B, E and F):

* ``pablo``   — place a network described by net-list/call/io files,
* ``eureka``  — route a placed diagram (ESCHER file) against a net-list,
* ``quinto``  — add a module description to a library directory,
* ``artwork`` — the whole pipeline: network files in, SVG/ESCHER out.

``artwork-batch`` runs the pipeline as a service over JSON manifests of
many networks (file triples and/or a generated workload), fanning jobs
across a process pool with a content-addressed result cache, and emits
per-job SVG/ESCHER outputs plus an aggregate Table-6.1-style report.
With ``--keep-warm`` the pool is forked once and reused across
manifests; tiny batches short-circuit to an in-process serial path.

``artwork-serve`` keeps the whole pipeline resident: a stdlib asyncio
HTTP + WebSocket gateway (:mod:`repro.gateway`) over the same warm
worker pool, with auth, rate limiting, Prometheus metrics and graceful
drain.

All commands exit 0 on success, 1 when some nets stayed unroutable (or a
batch job failed), and 2 on load/validation errors.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from pathlib import Path

from . import __version__
from .core.diagram import DiagramError
from .obs import (
    RunLog,
    add_log_argument,
    enable_tracing,
    get_registry,
    setup_logging,
)
from .core.generator import generate
from .core.metrics import diagram_metrics
from .core.netlist import NetlistError, Network
from .formats.escher import load_escher, save_escher
from .formats.library import ModuleLibrary
from .formats.module_desc import parse_module_description, write_module_description
from .formats.netlist_files import load_network_files
from .core.geometry import Side
from .place.pablo import PabloOptions, place_network
from .render.svg import save_svg
from .route.eureka import RouterOptions, route_diagram
from .route.line_expansion import CostOrder
from .service import BatchScheduler, JobError, JobSpec, ResultCache
from .workloads.batch import workload_from_dict

#: Exit code for load/validation problems (vs. 1 = unroutable/failed jobs).
EXIT_USAGE = 2

#: Exceptions that mean "your input is bad", not "the program is broken".
_INPUT_ERRORS = (NetlistError, DiagramError, JobError, OSError, ValueError, KeyError)


class _CliError(Exception):
    """Input problem already formatted for the user."""


def _fail(message: str) -> "_CliError":
    return _CliError(message)


def _library(path: str | None) -> ModuleLibrary:
    if path is None:
        return ModuleLibrary.standard()
    return ModuleLibrary.load(path)


def _load_network(args: argparse.Namespace) -> Network:
    try:
        return load_network_files(
            args.netlist, args.call, args.io, library=_library(args.library)
        )
    except _INPUT_ERRORS as exc:
        raise _fail(f"cannot load network: {exc}") from exc


def _network_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("netlist", help="net-list-file (Appendix A)")
    parser.add_argument("call", help="call-file (instances and templates)")
    parser.add_argument("io", nargs="?", default=None, help="io-file (system terminals)")
    parser.add_argument("--library", help="module library directory (default: built-in)")


def _version_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )


# -- observability plumbing (shared by every command) ---------------------


def _obs_args(parser: argparse.ArgumentParser) -> None:
    """``--trace``/``--profile``/``--flame``/``--runlog``/``--log-level``."""
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="write a Chrome trace-event JSON of this run (chrome://tracing)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print the hierarchical time tree and event counters after the run",
    )
    parser.add_argument(
        "--flame",
        metavar="FILE",
        help="sample the run's stacks and write a flamegraph HTML here",
    )
    parser.add_argument(
        "--runlog",
        metavar="FILE",
        help="append a RunRecord for this run to the JSONL run registry "
        "(inspect it with artwork-inspect)",
    )
    add_log_argument(parser)


def _obs_begin(args: argparse.Namespace):
    """Configure logging and, when asked for, turn tracing on (the run
    registry needs per-stage timings, so ``--runlog`` implies tracing;
    ``--flame`` does too — sample attribution roots in the span path)."""
    setup_logging(args.log_level)
    if getattr(args, "flame", None):
        from .obs.sampler import CAPTURE_HZ, ensure_sampler

        # High-hz with 1 s windows and a deep ring: CLI runs are short,
        # and the flamegraph should cover the whole run, not a trailing
        # minute of it.
        ensure_sampler(hz=CAPTURE_HZ, window_s=1.0, max_windows=600)
    if (
        getattr(args, "trace", None)
        or getattr(args, "profile", False)
        or getattr(args, "flame", None)
        or getattr(args, "runlog", None)
    ):
        return enable_tracing()
    return None


def _runlog_for(args: argparse.Namespace) -> RunLog | None:
    return RunLog(args.runlog) if getattr(args, "runlog", None) else None


def _obs_end(args: argparse.Namespace, tracer) -> None:
    """Emit whatever observability outputs the flags requested.

    Runs from ``finally`` blocks, so the trace survives aborted runs
    (DiagramError mid-pipeline still leaves the spans collected so far).
    """
    if getattr(args, "flame", None):
        from .obs.sampler import get_sampler, merge_windows, write_flamegraph_html

        sampler = get_sampler()
        if sampler is not None:
            sampler.stop()
            windows = sampler.windows()
            try:
                write_flamegraph_html(
                    args.flame, windows,
                    title=f"sampled run — {Path(args.flame).stem}",
                )
            except OSError as exc:
                raise _fail(f"cannot write flamegraph {args.flame!r}: {exc}") from exc
            merged = merge_windows(windows)
            print(
                f"flamegraph -> {args.flame} ({merged.samples} samples at "
                f"{sampler.hz:g} hz, "
                f"{100.0 * merged.attributed_ratio():.1f}% attributed)"
            )
    if tracer is None:
        return
    if args.trace:
        try:
            tracer.write_chrome_trace(args.trace)
        except OSError as exc:
            raise _fail(f"cannot write trace {args.trace!r}: {exc}") from exc
        print(f"trace -> {args.trace} (open in chrome://tracing or Perfetto)")
    if args.profile:
        print(tracer.profile_tree())
        counter_report = get_registry().report()
        if counter_report:
            print(counter_report)


def _run_guarded(main, argv) -> int:
    """Run a command body, mapping input errors to exit code 2."""
    try:
        return main(argv)
    except _CliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except DiagramError as exc:
        # A malformed/inconsistent diagram surfacing mid-pipeline is an
        # input problem too; the finally blocks already flushed the trace.
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE


def _pablo_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("-p", type=int, default=1, help="max modules per partition")
    parser.add_argument("-b", type=int, default=1, help="max modules per box (string)")
    parser.add_argument("-c", type=float, default=math.inf, help="max outgoing nets per partition")
    parser.add_argument("-e", type=int, default=0, help="extra tracks around partitions")
    parser.add_argument("-i", type=int, default=0, help="extra tracks around boxes")
    parser.add_argument("-s", type=int, default=0, dest="module_space", help="extra tracks around modules")


def _pablo_options(args: argparse.Namespace) -> PabloOptions:
    return PabloOptions(
        partition_size=args.p,
        box_size=args.b,
        max_connections=args.c,
        partition_spacing=args.e,
        box_spacing=args.i,
        module_extra_space=args.module_space,
    )


def _eureka_args(parser: argparse.ArgumentParser, *, short_swap: bool = True) -> None:
    parser.add_argument("-u", action="store_true", help="pin the upper plane border")
    parser.add_argument("-d", action="store_true", help="pin the lower plane border")
    parser.add_argument("-r", action="store_true", help="pin the right plane border")
    parser.add_argument("-l", action="store_true", help="pin the left plane border")
    # ``artwork`` combines both programs, where PABLO already owns -s.
    swap_flags = ["-s", "--swap"] if short_swap else ["--swap"]
    parser.add_argument(
        *swap_flags,
        action="store_true",
        dest="swap",
        help="tie-break minimum-bend paths on length before crossings",
    )
    parser.add_argument("--no-claims", action="store_true", help="disable claimpoints")
    parser.add_argument("--margin", type=int, default=4, help="routing border margin")
    parser.add_argument(
        "--bidirectional",
        action="store_true",
        help="bidirectional line expansion (same optimum cost, may pick "
        "different equal-cost paths)",
    )
    parser.add_argument(
        "--parallel-nets",
        action="store_true",
        dest="parallel_nets",
        help="route conflict-unlikely waves of nets concurrently "
        "(identical output to serial routing)",
    )


def _eureka_options(args: argparse.Namespace) -> RouterOptions:
    fixed = set()
    if args.u:
        fixed.add(Side.UP)
    if args.d:
        fixed.add(Side.DOWN)
    if args.r:
        fixed.add(Side.RIGHT)
    if args.l:
        fixed.add(Side.LEFT)
    order = (
        CostOrder.BENDS_LENGTH_CROSSINGS if args.swap else CostOrder.BENDS_CROSSINGS_LENGTH
    )
    return RouterOptions(
        claimpoints=not args.no_claims,
        cost_order=order,
        margin=args.margin,
        fixed_sides=frozenset(fixed),
        bidirectional=args.bidirectional,
        parallel_nets=args.parallel_nets,
    )


def _report(diagram) -> None:
    metrics = diagram_metrics(diagram)
    print(
        f"nets routed: {metrics.nets_routed}/{metrics.nets_total}  "
        f"length={metrics.length} bends={metrics.bends} "
        f"crossovers={metrics.crossovers} branch_nodes={metrics.branch_nodes}"
    )


def pablo_main(argv: list[str] | None = None) -> int:
    """Place a network and write the placed diagram as an ESCHER file."""
    return _run_guarded(_pablo_body, argv)


def _pablo_body(argv: list[str] | None) -> int:
    parser = argparse.ArgumentParser(prog="pablo", description=pablo_main.__doc__)
    _version_arg(parser)
    _network_args(parser)
    _pablo_args(parser)
    _obs_args(parser)
    parser.add_argument("-o", "--output", default="placed.es", help="output ESCHER file")
    args = parser.parse_args(argv)
    tracer = _obs_begin(args)
    try:
        network = _load_network(args)
        diagram, report = place_network(network, _pablo_options(args))
        save_escher(diagram, args.output)
        print(
            f"placed {len(diagram.placements)} modules in "
            f"{report.partition_count} partitions / {report.box_count} boxes "
            f"({report.seconds:.2f}s) -> {args.output}"
        )
        runlog = _runlog_for(args)
        if runlog is not None:
            record = runlog.record(
                kind="pablo",
                name=network.name,
                wall_seconds=report.seconds,
                metrics=dict(diagram_metrics(diagram).as_row()),
                extra={
                    "partitions": report.partition_count,
                    "boxes": report.box_count,
                },
            )
            print(f"runlog: {record.run_id} -> {args.runlog}")
        return 0
    finally:
        _obs_end(args, tracer)


def eureka_main(argv: list[str] | None = None) -> int:
    """Route the unrouted nets of a placed ESCHER diagram."""
    return _run_guarded(_eureka_body, argv)


def _eureka_body(argv: list[str] | None) -> int:
    parser = argparse.ArgumentParser(prog="eureka", description=eureka_main.__doc__)
    _version_arg(parser)
    parser.add_argument("graphic", help="placed diagram (ESCHER file)")
    _network_args(parser)
    _eureka_args(parser)
    _obs_args(parser)
    parser.add_argument("-o", "--output", default="routed.es", help="output ESCHER file")
    args = parser.parse_args(argv)
    tracer = _obs_begin(args)
    try:
        network = _load_network(args)
        try:
            diagram = load_escher(args.graphic, network)
        except _INPUT_ERRORS as exc:
            raise _fail(f"cannot load diagram {args.graphic!r}: {exc}") from exc
        report = route_diagram(diagram, _eureka_options(args))
        for failure in report.failed_nets:
            print(
                f"warning: net {str(failure)!r} is unroutable "
                f"({failure.reason.value})",
                file=sys.stderr,
            )
        save_escher(diagram, args.output)
        _report(diagram)
        runlog = _runlog_for(args)
        if runlog is not None:
            record = runlog.record(
                kind="eureka",
                name=network.name,
                wall_seconds=report.seconds,
                metrics=dict(diagram_metrics(diagram).as_row()),
                failures={
                    str(f): {
                        "reason": f.reason.value,
                        "unconnected_pins": f.unconnected_pins,
                    }
                    for f in report.failed_nets
                },
                congestion=report.congestion,
            )
            print(f"runlog: {record.run_id} -> {args.runlog}")
        return 0 if not report.failed_nets else 1
    finally:
        _obs_end(args, tracer)


def quinto_main(argv: list[str] | None = None) -> int:
    """Add a module description (Appendix B) to a library directory."""
    return _run_guarded(_quinto_body, argv)


def _quinto_body(argv: list[str] | None) -> int:
    parser = argparse.ArgumentParser(prog="quinto", description=quinto_main.__doc__)
    _version_arg(parser)
    parser.add_argument("file", help="module description file")
    parser.add_argument("--library", default="user_lib", help="library directory")
    add_log_argument(parser)
    args = parser.parse_args(argv)
    setup_logging(args.log_level)
    try:
        module = parse_module_description(Path(args.file).read_text())
    except _INPUT_ERRORS as exc:
        raise _fail(f"cannot load module description {args.file!r}: {exc}") from exc
    directory = Path(args.library)
    directory.mkdir(parents=True, exist_ok=True)
    out = directory / f"{module.template}{ModuleLibrary.SUFFIX}"
    out.write_text(write_module_description(module))
    print(f"added template {module.template!r} -> {out}")
    return 0


def artwork_main(argv: list[str] | None = None) -> int:
    """The full generator: network files in, routed SVG + ESCHER out."""
    return _run_guarded(_artwork_body, argv)


def _artwork_body(argv: list[str] | None) -> int:
    parser = argparse.ArgumentParser(prog="artwork", description=artwork_main.__doc__)
    _version_arg(parser)
    _network_args(parser)
    _pablo_args(parser)
    _eureka_args(parser, short_swap=False)
    _obs_args(parser)
    parser.add_argument("-o", "--output", default="artwork.svg", help="output SVG")
    parser.add_argument("--escher", help="also write an ESCHER file here")
    args = parser.parse_args(argv)
    tracer = _obs_begin(args)
    try:
        network = _load_network(args)
        result = generate(
            network,
            _pablo_options(args),
            _eureka_options(args),
            runlog=_runlog_for(args),
        )
        save_svg(result.diagram, args.output)
        if args.escher:
            save_escher(result.diagram, args.escher)
        _report(result.diagram)
        for net, reason in result.routing.failure_reasons.items():
            print(f"warning: net {net!r} is unroutable ({reason.value})", file=sys.stderr)
        print(f"wrote {args.output}")
        if result.run_record is not None:
            print(f"runlog: {result.run_record.run_id} -> {args.runlog}")
        return 0 if not result.routing.failed_nets else 1
    finally:
        _obs_end(args, tracer)


# -- artwork-batch: the job service front end -----------------------------


def _manifest_specs(manifest: dict, base: Path) -> list[JobSpec]:
    """Turn a manifest into job specs (file jobs + generated workload)."""
    if not isinstance(manifest, dict):
        raise _fail("manifest must be a JSON object")
    unknown = set(manifest) - {"jobs", "workload", "pablo", "eureka", "library"}
    if unknown:
        raise _fail(f"unknown manifest key(s): {sorted(unknown)}")
    default_pablo = manifest.get("pablo", {})
    default_eureka = manifest.get("eureka", {})
    specs: list[JobSpec] = []

    from .service.jobs import pablo_from_dict, router_from_dict

    def options_for(job: dict) -> tuple[PabloOptions, RouterOptions]:
        return (
            pablo_from_dict({**default_pablo, **job.get("pablo", {})}),
            router_from_dict({**default_eureka, **job.get("eureka", {})}),
        )

    for i, job in enumerate(manifest.get("jobs", [])):
        if not isinstance(job, dict) or "netlist" not in job or "call" not in job:
            raise _fail(f"job #{i} needs at least 'netlist' and 'call' paths")
        library = job.get("library", manifest.get("library"))
        try:
            network = load_network_files(
                base / job["netlist"],
                base / job["call"],
                base / job["io"] if job.get("io") else None,
                library=_library(str(base / library) if library else None),
            )
        except _INPUT_ERRORS as exc:
            raise _fail(f"job #{i}: cannot load network: {exc}") from exc
        pablo, eureka = options_for(job)
        specs.append(
            JobSpec.from_network(network, pablo, eureka, name=job.get("name"))
        )

    if "workload" in manifest:
        workload = dict(manifest["workload"])
        pablo, eureka = options_for(workload.pop("options", {}))
        try:
            networks = workload_from_dict(workload)
        except _INPUT_ERRORS as exc:
            raise _fail(f"bad workload spec: {exc}") from exc
        specs.extend(JobSpec.from_network(n, pablo, eureka) for n in networks)

    if not specs:
        raise _fail("manifest describes no jobs (need 'jobs' and/or 'workload')")
    return _uniquify(specs)


def _uniquify(specs: list[JobSpec]) -> list[JobSpec]:
    """Give duplicate job names distinct output file stems."""
    seen: dict[str, int] = {}
    out = []
    for spec in specs:
        count = seen.get(spec.name, 0)
        seen[spec.name] = count + 1
        if count:
            spec = JobSpec(
                name=f"{spec.name}_{count}",
                network_json=spec.network_json,
                pablo=spec.pablo,
                eureka=spec.eureka,
            )
        out.append(spec)
    return out


def _print_table(title: str, rows: list[dict]) -> None:
    if not rows:
        return
    headers = list(rows[0])
    widths = {h: max(len(h), *(len(str(r.get(h, ""))) for r in rows)) for h in headers}
    print(title)
    print("  " + "  ".join(h.ljust(widths[h]) for h in headers))
    for row in rows:
        print("  " + "  ".join(str(row.get(h, "")).ljust(widths[h]) for h in headers))


def artwork_batch_main(argv: list[str] | None = None) -> int:
    """Batch generator service: JSON manifest in, per-job SVG/ESCHER plus an
    aggregate timing report out, with process-pool parallelism and a
    content-addressed warm cache."""
    return _run_guarded(_artwork_batch_body, argv)


def _artwork_batch_body(argv: list[str] | None) -> int:
    parser = argparse.ArgumentParser(
        prog="artwork-batch", description=artwork_batch_main.__doc__
    )
    _version_arg(parser)
    parser.add_argument(
        "manifest", nargs="+", help="JSON manifest(s) (jobs and/or workload)"
    )
    parser.add_argument("-o", "--out", default="batch_out", help="output directory")
    parser.add_argument(
        "--workers", type=int, default=os.cpu_count() or 1, help="process pool size"
    )
    parser.add_argument(
        "--timeout", type=float, default=None, help="per-job wall-clock budget (s)"
    )
    parser.add_argument(
        "--keep-warm",
        action="store_true",
        help="fork the worker pool once and reuse it across manifests "
        "(eliminates the per-batch import/spawn cold start)",
    )
    parser.add_argument(
        "--serial-threshold",
        type=float,
        default=0.03,
        metavar="SECONDS",
        help="run batches serially in-process when a probe job beats this "
        "budget (0 disables; ignored with --keep-warm)",
    )
    parser.add_argument(
        "--cache", default=None, help="result cache directory (default: OUT/cache)"
    )
    parser.add_argument("--no-cache", action="store_true", help="disable the cache")
    parser.add_argument(
        "--max-cache-entries", type=int, default=None, help="LRU bound on the cache"
    )
    parser.add_argument("--no-svg", action="store_true", help="skip SVG rendering")
    parser.add_argument("--report", help="also write the aggregate report as JSON here")
    parser.add_argument("-q", "--quiet", action="store_true", help="no per-job progress")
    _obs_args(parser)
    args = parser.parse_args(argv)
    tracer = _obs_begin(args)
    try:
        return _artwork_batch_run(args)
    finally:
        _obs_end(args, tracer)


def _load_manifest_specs(manifest_path: Path) -> list[JobSpec]:
    try:
        manifest = json.loads(manifest_path.read_text())
    except OSError as exc:
        raise _fail(f"cannot read manifest: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise _fail(f"manifest is not valid JSON: {exc}") from exc
    return _manifest_specs(manifest, manifest_path.parent)


def _artwork_batch_run(args: argparse.Namespace) -> int:
    manifest_paths = [Path(m) for m in args.manifest]
    all_specs = [_load_manifest_specs(p) for p in manifest_paths]

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    cache = None
    if not args.no_cache:
        cache = ResultCache(
            args.cache or out_dir / "cache", max_entries=args.max_cache_entries
        )
    if args.workers < 1:
        raise _fail("--workers must be at least 1")

    def progress(outcome, done, total):
        if args.quiet:
            return
        seconds = outcome.payload.get("seconds", 0.0) if outcome.payload else 0.0
        source = "cache" if outcome.from_cache else "fresh"
        print(
            f"[{done}/{total}] {outcome.spec.name}: {outcome.status} "
            f"({seconds:.3f}s, {source})"
        )

    import time as _time

    runlog = _runlog_for(args)
    pool = None
    if args.keep_warm:
        # Fork the fleet once, warm imports and all; every manifest then
        # dispatches onto the same resident workers.
        from .gateway.pool import WorkerPool

        pool = WorkerPool(args.workers, timeout=args.timeout)
        pool.start()
    scheduler = BatchScheduler(
        max_workers=args.workers,
        timeout=args.timeout,
        cache=cache,
        runlog=runlog,
        pool=pool,
        serial_threshold=args.serial_threshold or None,
    )
    started = _time.perf_counter()
    try:
        outcomes = []
        for manifest_path, specs in zip(manifest_paths, all_specs):
            if len(manifest_paths) > 1 and not args.quiet:
                print(f"== manifest {manifest_path} ({len(specs)} jobs)")
            outcomes.extend(scheduler.run(specs, progress=progress))
    finally:
        if pool is not None:
            pool.close()
    wall = _time.perf_counter() - started
    manifest_path = manifest_paths[0]

    rows = []
    bad = 0
    merged_metrics: dict[str, int] = {}
    for outcome in outcomes:
        if outcome.ok:
            (out_dir / f"{outcome.spec.name}.es").write_text(
                outcome.payload["escher"]
            )
            if not args.no_svg:
                save_svg(outcome.load_diagram(), out_dir / f"{outcome.spec.name}.svg")
        timing = outcome.timing
        metrics = outcome.metrics
        for key, value in metrics.items():
            if isinstance(value, (int, float)):
                merged_metrics[key] = merged_metrics.get(key, 0) + value
        rows.append(
            {
                "job": outcome.spec.name,
                "status": outcome.status,
                "modules": timing.get("modules", ""),
                "nets": metrics.get("nets", ""),
                "routed": metrics.get("routed", ""),
                "placement_s": timing.get("placement_seconds", ""),
                "routing_s": timing.get("routing_seconds", ""),
                "total_s": timing.get("total_seconds", ""),
                "cache": "hit" if outcome.from_cache else "miss",
            }
        )
        if not outcome.ok or outcome.failed_nets:
            bad += 1

    _print_table(f"batch report ({len(outcomes)} jobs)", rows)
    summary = {
        "jobs": len(outcomes),
        "ok": sum(o.ok for o in outcomes),
        "failed": bad,
        "wall_seconds": round(wall, 3),
        "jobs_per_second": round(len(outcomes) / wall, 2) if wall else 0.0,
        "workers": args.workers,
        "counters": scheduler.counters.snapshot()["counters"],
    }
    if cache is not None:
        summary["cache"] = {**cache.stats.as_row(), "entries": len(cache)}
        hits, total = cache.stats.hits, len(outcomes)
        print(
            f"cache: {hits}/{total} hits "
            f"({100.0 * hits / total if total else 0.0:.0f}%), "
            f"{cache.stats.evictions} evictions, {len(cache)} entries"
        )
    print(
        f"{summary['ok']}/{summary['jobs']} jobs ok in {summary['wall_seconds']}s "
        f"({summary['jobs_per_second']} jobs/s, {args.workers} workers) -> {out_dir}"
    )
    if args.report:
        Path(args.report).write_text(json.dumps({"jobs": rows, "summary": summary}, indent=1))
    if runlog is not None:
        # The per-job records landed as outcomes arrived; this is the
        # parent's merged view of the whole batch.
        record = runlog.record(
            kind="batch",
            name=manifest_path.stem,
            wall_seconds=wall,
            counters=scheduler.counters.snapshot(),
            metrics=merged_metrics,
            extra={k: v for k, v in summary.items() if k != "counters"},
        )
        print(
            f"runlog: batch {record.run_id} "
            f"(+{len(outcomes)} job records) -> {args.runlog}"
        )
    return 0 if bad == 0 else 1


# -- artwork-serve: the persistent gateway daemon --------------------------


def artwork_serve_main(argv: list[str] | None = None) -> int:
    """Persistent artwork daemon: an HTTP + WebSocket gateway over a pool
    of forked-once workers with warm imports, so a job pays milliseconds
    of pipeline instead of a process cold start.  Submit ``JobSpec`` JSON
    to ``POST /v1/jobs``; stream progress from ``/v1/jobs/{id}/events``;
    scrape ``/metrics``; SIGTERM drains gracefully."""
    return _run_guarded(_artwork_serve_body, argv)


def _artwork_serve_body(argv: list[str] | None) -> int:
    parser = argparse.ArgumentParser(
        prog="artwork-serve", description=artwork_serve_main.__doc__
    )
    _version_arg(parser)
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8571, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--workers", type=int, default=os.cpu_count() or 1, help="worker pool size"
    )
    parser.add_argument(
        "--timeout", type=float, default=120.0, help="per-job wall-clock budget (s)"
    )
    parser.add_argument(
        "--token",
        action="append",
        default=None,
        help="accepted API token (repeatable; default: $ARTWORK_SERVE_TOKEN, "
        "no tokens = open access)",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=0.0,
        help="per-client request rate limit in requests/s (0 = unlimited)",
    )
    parser.add_argument(
        "--burst", type=int, default=20, help="rate-limit burst capacity"
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=64,
        help="queued jobs before submissions get 503",
    )
    parser.add_argument(
        "--cache", default=None, help="result cache directory (omit to disable)"
    )
    parser.add_argument(
        "--max-cache-entries", type=int, default=None, help="LRU bound on the cache"
    )
    parser.add_argument(
        "--journal",
        default=None,
        help="write-ahead journal file for accepted jobs; replayed on boot "
        "so queued/in-flight work survives restarts (omit to disable)",
    )
    parser.add_argument(
        "--journal-fsync",
        choices=("always", "interval", "never"),
        default="always",
        help="journal durability: fsync every append, at most once per "
        "interval, or leave it to the OS",
    )
    parser.add_argument(
        "--faults",
        default=None,
        help="fault-injection spec, e.g. 'cache.read=io:0.5,worker.exec=crash:1' "
        "(default: $ARTWORK_FAULTS; chaos testing only)",
    )
    parser.add_argument(
        "--faults-seed",
        type=int,
        default=None,
        help="seed for fault-injection draws (default: $ARTWORK_FAULTS_SEED or 0)",
    )
    parser.add_argument(
        "--drain-grace",
        type=float,
        default=10.0,
        help="seconds to let in-flight jobs finish on shutdown",
    )
    parser.add_argument(
        "--slow-threshold",
        type=float,
        default=1.0,
        help="latency (s) past which a request's span tree is persisted "
        "to the runlog as a kind=slow exemplar (0 captures every request, "
        "negative disables capture)",
    )
    _obs_args(parser)
    args = parser.parse_args(argv)
    tracer = _obs_begin(args)
    try:
        return _artwork_serve_run(args)
    finally:
        _obs_end(args, tracer)


def _artwork_serve_run(args: argparse.Namespace) -> int:
    import asyncio
    import signal as _signal

    from .faults import ENV_FAULTS, ENV_SEED, FaultRegistry, FaultSpecError, set_faults
    from .gateway import ArtworkGateway, GatewayConfig, JobJournal, RateLimiter, TokenAuth

    if args.workers < 1:
        raise _fail("--workers must be at least 1")
    if args.faults is not None or args.faults_seed is not None:
        # CLI flags override the environment — and land *in* the
        # environment too, so spawn-started workers rebuild the same table.
        seed = (
            args.faults_seed
            if args.faults_seed is not None
            else int(os.environ.get(ENV_SEED, "0") or "0")
        )
        try:
            set_faults(FaultRegistry(args.faults or "", seed=seed))
        except FaultSpecError as exc:
            raise _fail(f"--faults: {exc}")
        os.environ[ENV_FAULTS] = args.faults or ""
        os.environ[ENV_SEED] = str(seed)
    auth = TokenAuth(args.token) if args.token else TokenAuth.from_env()
    limiter = (
        RateLimiter(args.rate, args.burst, jitter=0.25) if args.rate > 0 else None
    )
    cache = None
    if args.cache:
        cache = ResultCache(args.cache, max_entries=args.max_cache_entries)
    journal = (
        JobJournal(args.journal, fsync=args.journal_fsync) if args.journal else None
    )
    config = GatewayConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        job_timeout=args.timeout or None,
        auth=auth,
        rate_limit=limiter,
        max_queue=args.max_queue,
        cache=cache,
        runlog=_runlog_for(args),
        journal=journal,
        drain_grace=args.drain_grace,
        slow_threshold=args.slow_threshold if args.slow_threshold >= 0 else None,
    )

    async def main() -> None:
        gateway = ArtworkGateway(config)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (_signal.SIGINT, _signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        await gateway.start()
        print(
            f"artwork-serve listening on http://{config.host}:{gateway.port} "
            f"({config.workers} workers, auth "
            f"{'on' if auth.enabled else 'off'})",
            flush=True,
        )
        await stop.wait()
        print("artwork-serve: draining (SIGTERM/SIGINT)", flush=True)
        await gateway.stop(drain=True)
        print("artwork-serve: stopped", flush=True)

    asyncio.run(main())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(artwork_main())
