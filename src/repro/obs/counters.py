"""Process-local metrics registry: counters and histograms, zero deps.

The routing/placement hot paths record *events* here — expansions per
net, claimpoints placed and released, retry attempts, per-reason failure
counts, cache hits/misses — cheaply enough to leave on all the time
(one dict update per event under the GIL).

A :class:`Registry` snapshots to a plain JSON-able dict and *merges*
snapshots from other registries, which is how per-worker counters from
the batch scheduler's process pool aggregate back into the parent run.
"""

from __future__ import annotations

import math
import random
import threading
from dataclasses import dataclass, field

#: Reservoir bound per histogram: enough for stable p95/p99 estimates
#: while keeping worker->parent snapshots small.
RESERVOIR_SIZE = 256


@dataclass
class Histogram:
    """Streaming summary of an observed value.

    Exact count/sum/min/max plus a bounded reservoir sample for
    percentile estimates (exact up to :data:`RESERVOIR_SIZE`
    observations).  The reservoir travels in :meth:`as_dict` snapshots,
    so p50/p95/p99 survive the cross-process merge the batch scheduler
    does — not just count/sum/mean.
    """

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")
    samples: list[float] = field(default_factory=list)
    #: How many values the reservoir has been offered (merge included);
    #: drives algorithm-R replacement, seeded so runs are reproducible.
    _seen: int = field(default=0, repr=False)
    _rng: random.Random = field(
        default_factory=lambda: random.Random(0x5EED), repr=False, compare=False
    )

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._sample(value)

    def _sample(self, value: float) -> None:
        self._seen += 1
        if len(self.samples) < RESERVOIR_SIZE:
            self.samples.append(value)
        else:
            j = self._rng.randrange(self._seen)
            if j < RESERVOIR_SIZE:
                self.samples[j] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile estimate from the reservoir (q in 0..1)."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        k = max(0, min(len(ordered) - 1, math.ceil(q * len(ordered)) - 1))
        return ordered[k]

    def as_dict(self) -> dict:
        if not self.count:
            return {
                "count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
                "p50": 0.0, "p95": 0.0, "p99": 0.0, "samples": [],
            }
        return {
            "count": self.count,
            "total": round(self.total, 6),
            "min": self.min,
            "max": self.max,
            "mean": round(self.mean, 6),
            "p50": round(self.percentile(0.50), 6),
            "p95": round(self.percentile(0.95), 6),
            "p99": round(self.percentile(0.99), 6),
            "samples": [round(v, 6) for v in self.samples],
        }

    def merge(self, data: "Histogram | dict") -> None:
        if isinstance(data, Histogram):
            data = data.as_dict()
        count = int(data.get("count", 0))
        if not count:
            return
        self.count += count
        self.total += float(data.get("total", 0.0))
        self.min = min(self.min, float(data.get("min", self.min)))
        self.max = max(self.max, float(data.get("max", self.max)))
        for value in data.get("samples", ()):
            self._sample(float(value))


class Registry:
    """A named bag of counters and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counters: dict[str, int] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- recording (hot path: one dict update under the GIL) -----------

    def inc(self, name: str, value: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
            hist.observe(value)

    def get(self, name: str) -> int:
        return self.counters.get(name, 0)

    def histogram(self, name: str) -> Histogram:
        return self.histograms.get(name, Histogram())

    # -- aggregation ---------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-able view: ``{"counters": {...}, "histograms": {...}}``."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "histograms": {k: h.as_dict() for k, h in self.histograms.items()},
            }

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one."""
        if not snapshot:
            return
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self.counters[name] = self.counters.get(name, 0) + int(value)
            for name, data in snapshot.get("histograms", {}).items():
                hist = self.histograms.get(name)
                if hist is None:
                    hist = self.histograms[name] = Histogram()
                hist.merge(data)

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()
            self.histograms.clear()

    def report(self) -> str:
        """Aligned text dump (the ``--profile`` footer)."""
        snap = self.snapshot()
        lines = []
        names = list(snap["counters"]) + list(snap["histograms"])
        width = max((len(n) for n in names), default=0)
        for name in sorted(snap["counters"]):
            lines.append(f"{name:<{width}}  {snap['counters'][name]}")
        for name in sorted(snap["histograms"]):
            h = snap["histograms"][name]
            lines.append(
                f"{name:<{width}}  count={h['count']} mean={h['mean']:g} "
                f"min={h['min']:g} max={h['max']:g} "
                f"p50={h['p50']:g} p95={h['p95']:g} p99={h['p99']:g}"
            )
        return "\n".join(lines)


#: The process-global registry the pipeline records into.
_REGISTRY = Registry()


def get_registry() -> Registry:
    return _REGISTRY


def set_registry(registry: Registry) -> Registry:
    """Install ``registry`` as the process-global one; returns the old."""
    global _REGISTRY
    previous, _REGISTRY = _REGISTRY, registry
    return previous


def inc(name: str, value: int = 1) -> None:
    _REGISTRY.inc(name, value)


def observe(name: str, value: float) -> None:
    _REGISTRY.observe(name, value)
