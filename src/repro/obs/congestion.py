"""Congestion diagnostics straight from the incremental plane index.

RoutePlacer's argument (PAPERS.md) is that routability has to be
*observable* to be actionable.  This module turns the
:class:`~repro.route.index.PlaneIndex` a routed
:class:`~repro.route.plane.Plane` already maintains into a
:class:`CongestionMap` — per-point wire occupancy and crossover counts
plus per-track (row/column) totals — **without rescanning the plane**:
everything is read off ``index.occ``, which the router kept up to date
while it worked.

The map serializes into a :class:`~repro.obs.runlog.RunRecord` (sparse
cell list) and renders two ways:

* :meth:`CongestionMap.to_svg` — a standalone heat grid for the HTML
  diagnostics report, built purely from the recorded matrix;
* :func:`heat_cells` — normalized ``(x, y, intensity)`` cells that
  :func:`repro.render.svg.render_svg` draws as an overlay *behind* the
  schematic when the diagram itself is at hand.

Invariants (checked by ``tests/test_obs.py``):

* ``occupancy_total`` equals ``sum(plane.index.occ.values())``;
* ``crossover_total`` equals ``DiagramMetrics.crossovers`` for the same
  routed diagram (both count unordered net pairs sharing a point).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..route.plane import Plane


@dataclass
class CongestionMap:
    """Sparse per-point congestion field over the routing plane bounds.

    ``cells`` maps ``(x, y)`` to ``(occupancy, crossovers)`` where
    occupancy is how many nets use the point and crossovers is the
    number of unordered net pairs meeting there (``k*(k-1)/2``), which is
    exactly the quantity Table 6.1's crossover column sums.
    """

    x: int = 0
    y: int = 0
    w: int = 0
    h: int = 0
    cells: dict[tuple[int, int], tuple[int, int]] = field(default_factory=dict)

    @classmethod
    def from_plane(cls, plane: "Plane") -> "CongestionMap":
        """Read the congestion field off the live index — O(occupied
        points), zero plane rescans."""
        bounds = plane.bounds
        cells: dict[tuple[int, int], tuple[int, int]] = {}
        for p, n in plane.index.occ.items():
            cells[(p.x, p.y)] = (n, n * (n - 1) // 2)
        return cls(x=bounds.x, y=bounds.y, w=bounds.w, h=bounds.h, cells=cells)

    # -- aggregates -----------------------------------------------------

    @property
    def occupancy_total(self) -> int:
        return sum(occ for occ, _ in self.cells.values())

    @property
    def crossover_total(self) -> int:
        return sum(cross for _, cross in self.cells.values())

    @property
    def max_occupancy(self) -> int:
        return max((occ for occ, _ in self.cells.values()), default=0)

    def row_totals(self) -> dict[int, int]:
        """Wire occupancy per horizontal track (y -> total)."""
        rows: dict[int, int] = {}
        for (_, y), (occ, _) in self.cells.items():
            rows[y] = rows.get(y, 0) + occ
        return rows

    def col_totals(self) -> dict[int, int]:
        """Wire occupancy per vertical track (x -> total)."""
        cols: dict[int, int] = {}
        for (x, _), (occ, _) in self.cells.items():
            cols[x] = cols.get(x, 0) + occ
        return cols

    def hotspots(self, limit: int = 10) -> list[tuple[int, int, int, int]]:
        """The ``limit`` most congested points as ``(x, y, occ, cross)``,
        crossover-heavy first."""
        ranked = sorted(
            ((x, y, occ, cross) for (x, y), (occ, cross) in self.cells.items()),
            key=lambda c: (-c[3], -c[2], c[0], c[1]),
        )
        return ranked[:limit]

    # -- serialization (RunRecord round trip) ---------------------------

    def to_dict(self) -> dict:
        return {
            "bounds": [self.x, self.y, self.w, self.h],
            "cells": sorted(
                [x, y, occ, cross]
                for (x, y), (occ, cross) in self.cells.items()
            ),
            "occupancy_total": self.occupancy_total,
            "crossover_total": self.crossover_total,
            "max_occupancy": self.max_occupancy,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CongestionMap":
        x, y, w, h = data.get("bounds", (0, 0, 0, 0))
        return cls(
            x=x,
            y=y,
            w=w,
            h=h,
            cells={
                (cx, cy): (occ, cross)
                for cx, cy, occ, cross in data.get("cells", ())
            },
        )

    # -- rendering ------------------------------------------------------

    def heat_cells(self) -> list[tuple[int, int, float]]:
        """Normalized ``(x, y, intensity)`` cells for the schematic
        overlay; intensity scales with occupancy, saturating at the
        map's own maximum."""
        peak = self.max_occupancy
        if not peak:
            return []
        return [
            (x, y, occ / peak) for (x, y), (occ, _) in sorted(self.cells.items())
        ]

    def to_svg(self, *, unit: int = 10) -> str:
        """Standalone heatmap SVG built purely from the recorded matrix
        (no diagram needed): occupancy as warm fill, crossover points
        ringed."""
        width = max(1, (self.w + 2)) * unit
        height = max(1, (self.h + 2)) * unit

        def sx(x: int) -> float:
            return (x - self.x + 1) * unit

        def sy(y: int) -> float:
            return (self.y + self.h - y + 1) * unit

        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}" viewBox="0 0 {width} {height}">',
            f'<rect width="{width}" height="{height}" fill="#fdfcf8" '
            'stroke="#cccccc"/>',
        ]
        peak = self.max_occupancy or 1
        half = unit / 2
        for (x, y), (occ, cross) in sorted(self.cells.items()):
            opacity = 0.15 + 0.75 * (occ / peak)
            parts.append(
                f'<rect x="{sx(x) - half:.1f}" y="{sy(y) - half:.1f}" '
                f'width="{unit}" height="{unit}" fill="#d9534f" '
                f'fill-opacity="{opacity:.2f}"><title>'
                f"({x},{y}) occ={occ} cross={cross}</title></rect>"
            )
            if cross:
                parts.append(
                    f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" '
                    f'r="{unit * 0.3:.1f}" fill="none" stroke="#7a1f1c" '
                    'stroke-width="1.2"/>'
                )
        parts.append("</svg>")
        return "\n".join(parts)


def snapshot(plane: "Plane") -> dict:
    """The JSON-able congestion snapshot EUREKA attaches to its
    :class:`~repro.route.eureka.RoutingReport`."""
    return CongestionMap.from_plane(plane).to_dict()
