"""Prometheus text exposition for :mod:`repro.obs.counters` snapshots.

The gateway's ``GET /metrics`` endpoint renders a
:meth:`~repro.obs.counters.Registry.snapshot` straight into the
Prometheus text format (version 0.0.4).  Counters become ``counter``
families, histograms become real ``histogram`` families — cumulative
``_bucket{le="..."}`` counts estimated from the reservoir sample, plus
``_sum``/``_count`` and the legacy ``{quantile="..."}`` convenience
samples — and callers can append point-in-time ``gauge`` values (queue
depth, worker liveness) as well as *labeled series* (the windowed RED
telemetry: ``{endpoint="POST /v1/jobs",window="1m"}``).  Every family
gets ``# HELP``/``# TYPE`` metadata.  Dotted metric names are mangled to
the ``[a-zA-Z0-9_:]`` charset Prometheus requires, so
``service.job_wall_s`` scrapes as ``repro_service_job_wall_s``.
"""

from __future__ import annotations

import re
from bisect import bisect_right

#: Namespace every exported sample is prefixed with.
PREFIX = "repro_"

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")

#: Reservoir quantiles exported per histogram (label value -> percentile).
SUMMARY_QUANTILES = (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))

#: Cumulative bucket bounds (seconds) for histogram exposition; ``+Inf``
#: is always appended.  Spans sub-millisecond claims work to minute-long
#: jobs — the full dynamic range the pipeline observes.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Curated HELP lines for metrics whose dotted name alone under-explains
#: them; per-call ``help_texts`` overrides these.
WELL_KNOWN_HELP = {
    "sampler.errors": (
        "Sampler ticks that raised and were absorbed "
        "(profiling failures never break the pipeline)."
    ),
    "gateway.sampler_running": "1 while the always-on sampling profiler is up.",
    "gateway.sampler_hz": "Always-on sampling rate in stacks per second.",
    "gateway.sampler_ticks_total": "Sampling passes taken since process start.",
    "gateway.sampler_errors_total": "Sampling passes that raised and were absorbed.",
    "gateway.sampler_overhead_ratio": (
        "Sampler self-time as a fraction of profiled wall clock."
    ),
    "gateway.sampler_attributed_ratio": (
        "Fraction of stack samples rooted in a named span or thread label."
    ),
    "route.bound_tightness": (
        "Initial A* bound estimate over the final routed cost "
        "(1.0 = the bound was exact)."
    ),
}


def metric_name(name: str, *, prefix: str = PREFIX) -> str:
    """Mangle a dotted registry name into a legal Prometheus name."""
    mangled = _NAME_OK.sub("_", name.replace(".", "_"))
    if not mangled or mangled[0].isdigit():
        mangled = "_" + mangled
    return prefix + mangled


def _fmt(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _escape_label(value: object) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels(labels: dict | None) -> str:
    """Render a label dict as ``{k="v",...}`` (empty dict -> '')."""
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(value)}"' for key, value in labels.items()
    )
    return "{" + inner + "}"


def _meta(lines: list[str], metric: str, kind: str, help_text: str) -> None:
    lines.append(f"# HELP {metric} {help_text}")
    lines.append(f"# TYPE {metric} {kind}")


def bucket_counts(
    samples: list[float], count: int, bounds: tuple[float, ...] = DEFAULT_BUCKETS
) -> list[tuple[float, int]]:
    """Cumulative ``le`` counts estimated from a reservoir sample.

    The reservoir is a uniform sample of the stream, so the fraction of
    samples at or below each bound scales to the true ``count``; the
    result is forced monotone and capped at ``count`` (the ``+Inf``
    bucket, appended last, is always exactly ``count``).
    """
    ordered = sorted(samples)
    out: list[tuple[float, int]] = []
    previous = 0
    for bound in bounds:
        if ordered:
            fraction = bisect_right(ordered, bound) / len(ordered)
            at_most = round(fraction * count)
        else:
            at_most = 0
        at_most = max(previous, min(count, at_most))
        out.append((bound, at_most))
        previous = at_most
    out.append((float("inf"), count))
    return out


def render_prometheus(
    snapshot: dict,
    *,
    gauges: dict[str, float] | None = None,
    series: dict[str, list[tuple[dict, float]]] | None = None,
    help_texts: dict[str, str] | None = None,
    prefix: str = PREFIX,
) -> str:
    """Render a registry snapshot (+ gauges + labeled series) as text.

    ``snapshot`` is the ``{"counters": ..., "histograms": ...}`` shape
    :meth:`Registry.snapshot` returns; ``gauges`` are extra
    instantaneous values (already-final numbers, not deltas); ``series``
    maps a dotted name to ``[(labels_dict, value), ...]`` sample lists
    rendered as one labeled gauge family each.  ``help_texts`` overrides
    the default HELP line (:data:`WELL_KNOWN_HELP`, then the dotted
    name) per dotted name.
    """
    help_texts = {**WELL_KNOWN_HELP, **(help_texts or {})}

    def help_for(name: str, fallback: str) -> str:
        return help_texts.get(name, fallback)

    lines: list[str] = []
    for name in sorted(snapshot.get("counters", {})):
        metric = metric_name(name, prefix=prefix)
        _meta(lines, metric, "counter", help_for(name, f"Lifetime count of {name}."))
        lines.append(f"{metric} {_fmt(snapshot['counters'][name])}")
    for name in sorted(snapshot.get("histograms", {})):
        hist = snapshot["histograms"][name]
        metric = metric_name(name, prefix=prefix)
        count = int(hist.get("count", 0))
        _meta(lines, metric, "histogram", help_for(name, f"Distribution of {name}."))
        for bound, at_most in bucket_counts(hist.get("samples", []), count):
            le = "+Inf" if bound == float("inf") else _fmt(bound)
            lines.append(f'{metric}_bucket{{le="{le}"}} {at_most}')
        lines.append(f"{metric}_sum {_fmt(hist.get('total', 0.0))}")
        lines.append(f"{metric}_count {count}")
        # Legacy quantile samples (reservoir estimates) kept alongside the
        # buckets so existing dashboards and the smoke checks still scrape.
        for label, key in SUMMARY_QUANTILES:
            lines.append(f'{metric}{{quantile="{label}"}} {_fmt(hist.get(key, 0.0))}')
    for name in sorted(gauges or {}):
        metric = metric_name(name, prefix=prefix)
        _meta(lines, metric, "gauge", help_for(name, f"Current value of {name}."))
        lines.append(f"{metric} {_fmt(gauges[name])}")
    for name in sorted(series or {}):
        samples = series[name]
        if not samples:
            continue
        metric = metric_name(name, prefix=prefix)
        _meta(lines, metric, "gauge", help_for(name, f"Windowed series {name}."))
        for labels, value in samples:
            lines.append(f"{metric}{_labels(labels)} {_fmt(value)}")
    return "\n".join(lines) + "\n"
