"""Prometheus text exposition for :mod:`repro.obs.counters` snapshots.

The gateway's ``GET /metrics`` endpoint renders a
:meth:`~repro.obs.counters.Registry.snapshot` straight into the
Prometheus text format (version 0.0.4): counters become ``counter``
samples, histograms become ``summary`` families with p50/p95/p99
quantiles from the reservoir, and callers can append point-in-time
``gauge`` values (queue depth, worker liveness).  Dotted metric names
are mangled to the ``[a-zA-Z0-9_:]`` charset Prometheus requires, so
``service.job_wall_s`` scrapes as ``repro_service_job_wall_s``.
"""

from __future__ import annotations

import re

#: Namespace every exported sample is prefixed with.
PREFIX = "repro_"

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")

#: Reservoir quantiles exported per histogram (label value -> percentile).
SUMMARY_QUANTILES = (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))


def metric_name(name: str, *, prefix: str = PREFIX) -> str:
    """Mangle a dotted registry name into a legal Prometheus name."""
    mangled = _NAME_OK.sub("_", name.replace(".", "_"))
    if not mangled or mangled[0].isdigit():
        mangled = "_" + mangled
    return prefix + mangled


def _fmt(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(
    snapshot: dict,
    *,
    gauges: dict[str, float] | None = None,
    prefix: str = PREFIX,
) -> str:
    """Render a registry snapshot (+ optional gauges) as exposition text.

    ``snapshot`` is the ``{"counters": ..., "histograms": ...}`` shape
    :meth:`Registry.snapshot` returns; ``gauges`` are extra
    instantaneous values (already-final numbers, not deltas).
    """
    lines: list[str] = []
    for name in sorted(snapshot.get("counters", {})):
        metric = metric_name(name, prefix=prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(snapshot['counters'][name])}")
    for name in sorted(snapshot.get("histograms", {})):
        hist = snapshot["histograms"][name]
        metric = metric_name(name, prefix=prefix)
        lines.append(f"# TYPE {metric} summary")
        for label, key in SUMMARY_QUANTILES:
            lines.append(f'{metric}{{quantile="{label}"}} {_fmt(hist.get(key, 0.0))}')
        lines.append(f"{metric}_sum {_fmt(hist.get('total', 0.0))}")
        lines.append(f"{metric}_count {_fmt(hist.get('count', 0))}")
    for name in sorted(gauges or {}):
        metric = metric_name(name, prefix=prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(gauges[name])}")
    return "\n".join(lines) + "\n"
