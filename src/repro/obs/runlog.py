"""The append-only run registry: durable, comparable run telemetry.

Every generator/batch/bench run can append one :class:`RunRecord` — a
JSON line holding the spec digest, git revision, wall-clock per
PABLO/EUREKA stage (from the tracer), a counter/histogram snapshot, the
full quality metrics row, per-net failure reasons, the congestion
heatmap and environment info — to a :class:`RunLog` (JSONL file,
``.artwork-runs/runs.jsonl`` by default).  That file is the bench
trajectory: ``artwork-inspect`` lists, diffs and renders it, and the
regression gate (:func:`check_regressions`) compares the latest run per
workload against a committed baseline with configurable relative
tolerances.

The registry is deliberately dumb storage: appends are single
``O_APPEND`` writes (safe across concurrent processes for records of
this size), loads skip corrupt lines instead of failing, and records
round-trip losslessly through :meth:`RunRecord.to_dict`.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
from dataclasses import asdict, dataclass, field
from pathlib import Path
from time import gmtime, strftime
from typing import TYPE_CHECKING, Any, Iterable

from .counters import get_registry
from .sampler import get_sampler
from .trace import get_tracer

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..core.generator import GenerationResult

#: Default registry location, relative to the working directory.
DEFAULT_RUNLOG = Path(".artwork-runs") / "runs.jsonl"

#: Metric keys the regression gate treats as quality (lower is better).
QUALITY_METRICS = ("bends", "crossovers", "failed")


def git_rev(cwd: str | Path | None = None) -> str:
    """Short git revision of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def environment_info() -> dict:
    """Where and with what a run happened (stored per record)."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "pid": os.getpid(),
        "argv": list(sys.argv),
    }


def stages_from_spans(roots: Iterable[dict]) -> dict[str, dict]:
    """Flatten serialized worker span trees into per-stage totals —
    the same shape :meth:`repro.obs.trace.Tracer.stage_totals` returns."""
    totals: dict[str, dict] = {}

    def walk(node: dict) -> None:
        agg = totals.setdefault(
            str(node.get("name", "?")), {"seconds": 0.0, "count": 0}
        )
        agg["seconds"] += float(node.get("duration", 0.0))
        agg["count"] += 1
        for child in node.get("children", ()):
            walk(child)

    for root in roots:
        walk(root)
    for agg in totals.values():
        agg["seconds"] = round(agg["seconds"], 6)
    return totals


@dataclass
class RunRecord:
    """One run's durable telemetry — everything a later diagnosis needs."""

    run_id: str = ""
    kind: str = "artwork"  # artwork | pablo | eureka | batch | job | bench
    name: str = ""
    timestamp: str = ""
    git_rev: str = ""
    spec_digest: str = ""
    wall_seconds: float = 0.0
    #: Per-stage wall clock from the tracer: ``{span name: {seconds, count}}``.
    stages: dict[str, dict] = field(default_factory=dict)
    #: ``Registry.snapshot()`` shape: counters + histograms (with percentiles).
    counters: dict = field(default_factory=dict)
    #: ``DiagramMetrics.as_row()`` shape.
    metrics: dict = field(default_factory=dict)
    #: Per-net failure drill-down: ``{net: {reason, unconnected_pins}}``.
    failures: dict[str, dict] = field(default_factory=dict)
    #: ``CongestionMap.to_dict()`` shape (may be empty for placement-only runs).
    congestion: dict = field(default_factory=dict)
    #: Rendered profile tree text (when tracing was on) for reports.
    profile: str = ""
    #: Sampling-profiler windows (:meth:`repro.obs.sampler.ProfileWindow
    #: .to_dict` shape) that overlapped the run — what ``artwork-inspect
    #: flame`` and the report's flamegraph section render.
    profile_windows: list = field(default_factory=list)
    environment: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416 - set of names
        return cls(**{k: v for k, v in data.items() if k in known})

    def seal(self) -> "RunRecord":
        """Derive ``run_id`` from the record's content (stable, 12 hex)."""
        if not self.run_id:
            payload = self.to_dict()
            payload.pop("run_id", None)
            blob = json.dumps(payload, sort_keys=True, default=str)
            self.run_id = hashlib.sha256(blob.encode()).hexdigest()[:12]
        return self

    @property
    def quality_row(self) -> dict:
        """The Table-6.1 shaped row reports and the regression gate read."""
        row = {k: self.metrics.get(k, 0) for k in (
            "nets", "routed", "failed", "length", "bends", "crossovers",
            "branch_nodes",
        )}
        row["wall_seconds"] = round(self.wall_seconds, 4)
        return row


class RunLog:
    """Append-only JSONL registry of :class:`RunRecord` s."""

    def __init__(self, path: str | Path = DEFAULT_RUNLOG) -> None:
        self.path = Path(path)
        #: Lines the last :meth:`load` could not parse (corruption tally).
        self.corrupt_lines = 0

    # -- writing --------------------------------------------------------

    def append(self, record: RunRecord) -> RunRecord:
        record.seal()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as fh:
            # ``default=str`` so a stray Path/enum in ``extra`` degrades to
            # text instead of losing the whole record.
            fh.write(json.dumps(record.to_dict(), sort_keys=True, default=str) + "\n")
        return record

    def record(
        self,
        *,
        kind: str,
        name: str,
        wall_seconds: float = 0.0,
        spec_digest: str = "",
        stages: dict | None = None,
        counters: dict | None = None,
        metrics: dict | None = None,
        failures: dict | None = None,
        congestion: dict | None = None,
        profile: str | None = None,
        profile_windows: list | None = None,
        extra: dict | None = None,
    ) -> RunRecord:
        """Assemble a record (filling stages/counters/env from the live
        tracer and registry when not given) and append it.

        ``profile_windows`` defaults to whatever the process's always-on
        sampler collected (empty when profiling is off); pass ``[]`` to
        keep a record deliberately lean."""
        tracer = get_tracer()
        if stages is None:
            stages = tracer.stage_totals() if tracer.enabled else {}
        if profile is None:
            profile = tracer.profile_tree() if tracer.enabled else ""
        if profile_windows is None:
            sampler = get_sampler()
            profile_windows = sampler.export() if sampler is not None else []
        record = RunRecord(
            kind=kind,
            name=name,
            timestamp=strftime("%Y-%m-%dT%H:%M:%SZ", gmtime()),
            git_rev=git_rev(),
            spec_digest=spec_digest,
            wall_seconds=round(wall_seconds, 6),
            stages=stages,
            counters=counters if counters is not None else get_registry().snapshot(),
            metrics=metrics or {},
            failures=failures or {},
            congestion=congestion or {},
            profile=profile,
            profile_windows=profile_windows,
            environment=environment_info(),
            extra=extra or {},
        )
        return self.append(record)

    def record_result(
        self,
        result: "GenerationResult",
        *,
        kind: str = "artwork",
        name: str = "",
        spec_digest: str = "",
        extra: dict | None = None,
    ) -> RunRecord:
        """Record one generator run: metrics, failure reasons and the
        congestion snapshot come straight off the result."""
        routing = result.routing
        failures = {
            str(f): {
                "reason": f.reason.value,
                "unconnected_pins": getattr(f, "unconnected_pins", 0),
            }
            for f in routing.failed_nets
        }
        search_detail = dict(getattr(routing, "search_detail", {}) or {})
        if search_detail:
            extra = dict(extra or {})
            extra.setdefault("search", search_detail)
        return self.record(
            kind=kind,
            name=name or result.diagram.network.name,
            wall_seconds=result.placement.seconds + routing.seconds,
            spec_digest=spec_digest,
            metrics=dict(result.metrics.as_row()),
            failures=failures,
            congestion=dict(getattr(routing, "congestion", {}) or {}),
            extra=extra,
        )

    # -- reading --------------------------------------------------------

    def load(self) -> list[RunRecord]:
        """Every parseable record, oldest first; corrupt lines are
        skipped and tallied in :attr:`corrupt_lines`."""
        self.corrupt_lines = 0
        records: list[RunRecord] = []
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return records
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                data = json.loads(line)
                if not isinstance(data, dict):
                    raise ValueError("record is not an object")
                records.append(RunRecord.from_dict(data))
            except (ValueError, TypeError):
                self.corrupt_lines += 1
        return records

    def runs(
        self, *, kind: str | None = None, name: str | None = None
    ) -> list[RunRecord]:
        return [
            r
            for r in self.load()
            if (kind is None or r.kind == kind)
            and (name is None or r.name == name)
        ]

    def latest(
        self, *, kind: str | None = None, name: str | None = None
    ) -> RunRecord | None:
        matching = self.runs(kind=kind, name=name)
        return matching[-1] if matching else None

    def find(self, run_id: str) -> RunRecord | None:
        """Look a record up by id or unique id prefix (latest wins)."""
        matching = [r for r in self.load() if r.run_id.startswith(run_id)]
        return matching[-1] if matching else None


# -- comparison and the regression gate -----------------------------------


def diff_records(base: RunRecord, run: RunRecord) -> dict[str, dict]:
    """Per-metric deltas between two runs (quality row + wall clock)."""
    out: dict[str, dict] = {}
    a, b = base.quality_row, run.quality_row
    for key in sorted(set(a) | set(b)):
        old = a.get(key, 0) or 0
        new = b.get(key, 0) or 0
        delta = new - old
        out[key] = {
            "base": old,
            "run": new,
            "delta": round(delta, 6),
            "pct": round(100.0 * delta / old, 2) if old else None,
        }
    return out


@dataclass(frozen=True)
class Regression:
    """One tolerance violation found by the gate."""

    name: str  # workload / baseline name
    metric: str
    baseline: float
    actual: float
    limit: float
    kind: str  # "quality" | "time"

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.metric} regressed "
            f"{self.baseline:g} -> {self.actual:g} (limit {self.limit:g})"
        )


def quality_limit(baseline: float, tolerance: float) -> float:
    """Highest acceptable value for a lower-is-better quality metric."""
    return baseline * (1.0 + tolerance)


def time_limit(baseline: float, tolerance: float, floor: float) -> float:
    """Highest acceptable wall time: relative tolerance plus an absolute
    floor so microsecond-scale baselines don't flake on scheduler noise."""
    return baseline * (1.0 + tolerance) + floor


def check_regressions(
    baseline: dict,
    record: RunRecord,
    *,
    quality_tolerance: float = 0.0,
    time_tolerance: float = 2.0,
    time_floor: float = 0.5,
) -> list[Regression]:
    """Compare one run against a baseline dict (``metrics`` +
    ``wall_seconds``); returns every violated tolerance (empty = pass).

    Quality metrics (:data:`QUALITY_METRICS`) are lower-is-better and
    gated at ``baseline * (1 + quality_tolerance)``; improvements always
    pass.  Wall time is gated at
    ``baseline * (1 + time_tolerance) + time_floor``.
    """
    name = str(baseline.get("name", record.name))
    base_metrics = baseline.get("metrics", {})
    violations: list[Regression] = []
    for metric in QUALITY_METRICS:
        if metric not in base_metrics:
            continue
        base = float(base_metrics[metric])
        actual = float(record.metrics.get(metric, 0))
        limit = quality_limit(base, quality_tolerance)
        if actual > limit + 1e-9:
            violations.append(
                Regression(name, metric, base, actual, limit, "quality")
            )
    base_wall = baseline.get("wall_seconds")
    if base_wall is not None and record.wall_seconds:
        limit = time_limit(float(base_wall), time_tolerance, time_floor)
        if record.wall_seconds > limit:
            violations.append(
                Regression(
                    name,
                    "wall_seconds",
                    float(base_wall),
                    record.wall_seconds,
                    round(limit, 6),
                    "time",
                )
            )
    return violations
