"""Windowed RED telemetry: a lock-cheap ring of time buckets.

The lifetime counters in :mod:`repro.obs.counters` answer "how many
ever"; operating a gateway needs "what is the p95 *right now*".  A
:class:`RollingWindow` keeps, per series key (an endpoint, a pipeline
stage), a fixed ring of time buckets — each bucket covers ``bucket_s``
seconds and holds an event count, an error count, a duration sum and a
bounded duration sample.  Recording is O(1) under one lock (a dict
probe plus a few adds); memory is strictly bounded by
``keys × slots × max_samples``.

:meth:`RollingWindow.snapshot` aggregates the trailing buckets into the
classic RED view — rate (qps), error ratio, duration p50/p95 — over any
set of windows (1m/5m/15m by default).  The ring holds one slot more
than the horizon needs, so the current partially-filled bucket never
overwrites the oldest one still inside the longest window.

The clock is injectable, so tests rotate windows deterministically.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable, Iterable

#: The default reporting windows: label -> trailing seconds.
WINDOWS: dict[str, float] = {"1m": 60.0, "5m": 300.0, "15m": 900.0}

#: Empty aggregate (what an idle series reports for a window).
_ZERO = {
    "count": 0,
    "errors": 0,
    "qps": 0.0,
    "error_ratio": 0.0,
    "mean": 0.0,
    "p50": 0.0,
    "p95": 0.0,
    "max": 0.0,
}


def _percentile(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample (q in 0..1)."""
    if not ordered:
        return 0.0
    k = max(0, min(len(ordered) - 1, math.ceil(q * len(ordered)) - 1))
    return ordered[k]


class _Bucket:
    """One time slot of one series."""

    __slots__ = ("stamp", "count", "errors", "total", "samples")

    def __init__(self, stamp: int) -> None:
        self.stamp = stamp  # absolute slot index; stale buckets are reused
        self.count = 0
        self.errors = 0
        self.total = 0.0
        self.samples: list[float] = []


class RollingWindow:
    """Per-key rings of time buckets with RED aggregation.

    ``horizon_s`` bounds the longest answerable window, ``bucket_s`` the
    rotation granularity, ``max_samples`` the per-bucket duration sample
    (replacement is stride-based: cheap, deterministic, spread across
    the bucket's lifetime).
    """

    def __init__(
        self,
        *,
        horizon_s: float = 900.0,
        bucket_s: float = 5.0,
        max_samples: int = 64,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if horizon_s <= 0 or bucket_s <= 0:
            raise ValueError("horizon_s and bucket_s must be positive")
        if bucket_s > horizon_s:
            raise ValueError("bucket_s cannot exceed horizon_s")
        if max_samples < 1:
            raise ValueError("max_samples must be at least 1")
        self.horizon_s = float(horizon_s)
        self.bucket_s = float(bucket_s)
        self.max_samples = max_samples
        self.clock = clock
        #: One extra slot so the current partial bucket never evicts the
        #: oldest bucket still covered by the horizon.
        self.slots = int(math.ceil(horizon_s / bucket_s)) + 1
        self._lock = threading.Lock()
        self._series: dict[str, list[_Bucket | None]] = {}

    # -- recording (hot path) -------------------------------------------

    def observe(self, key: str, seconds: float, *, error: bool = False) -> None:
        """Record one event for ``key``: its duration and error flag."""
        slot = int(self.clock() // self.bucket_s)
        with self._lock:
            ring = self._series.get(key)
            if ring is None:
                ring = self._series[key] = [None] * self.slots
            index = slot % self.slots
            bucket = ring[index]
            if bucket is None or bucket.stamp != slot:
                bucket = ring[index] = _Bucket(slot)
            bucket.count += 1
            if error:
                bucket.errors += 1
            bucket.total += seconds
            if len(bucket.samples) < self.max_samples:
                bucket.samples.append(seconds)
            else:
                bucket.samples[(bucket.count - 1) % self.max_samples] = seconds

    # -- aggregation ----------------------------------------------------

    def keys(self) -> list[str]:
        with self._lock:
            return sorted(self._series)

    def window(self, window_s: float, *, keys: Iterable[str] | None = None) -> dict[str, dict]:
        """RED aggregate of the trailing ``window_s`` seconds per key."""
        window_s = min(float(window_s), self.horizon_s)
        span = max(1, int(math.ceil(window_s / self.bucket_s)))
        newest = int(self.clock() // self.bucket_s)
        oldest = newest - span  # exclusive: stamps in (oldest, newest]
        out: dict[str, dict] = {}
        with self._lock:
            wanted = self._series if keys is None else {
                k: self._series[k] for k in keys if k in self._series
            }
            for key, ring in wanted.items():
                count = errors = 0
                total = peak = 0.0
                samples: list[float] = []
                for bucket in ring:
                    if bucket is None or not (oldest < bucket.stamp <= newest):
                        continue
                    count += bucket.count
                    errors += bucket.errors
                    total += bucket.total
                    if bucket.samples:
                        samples.extend(bucket.samples)
                        peak = max(peak, max(bucket.samples))
                if not count:
                    out[key] = dict(_ZERO)
                    continue
                samples.sort()
                out[key] = {
                    "count": count,
                    "errors": errors,
                    "qps": round(count / window_s, 6),
                    "error_ratio": round(errors / count, 6),
                    "mean": round(total / count, 6),
                    "p50": round(_percentile(samples, 0.50), 6),
                    "p95": round(_percentile(samples, 0.95), 6),
                    "max": round(peak, 6),
                }
        return out

    def snapshot(self, windows: dict[str, float] | None = None) -> dict[str, dict[str, dict]]:
        """``{key: {window label: RED aggregate}}`` for every series."""
        windows = WINDOWS if windows is None else windows
        per_window = {label: self.window(seconds) for label, seconds in windows.items()}
        out: dict[str, dict[str, dict]] = {}
        for label, table in per_window.items():
            for key, stats in table.items():
                out.setdefault(key, {})[label] = stats
        return out
