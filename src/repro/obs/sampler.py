"""Always-on sampling profiler: where the wall clock actually goes.

A :class:`Sampler` is a daemon thread that walks
``sys._current_frames()`` at a configurable rate (19 hz by default —
deliberately a prime, so the sampling grid never phase-locks to
second-aligned periodic work), collapses each thread's stack into a
``frame;frame;frame`` string and aggregates the counts into a ring of
fixed-duration :class:`ProfileWindow` s.  Thread sampling was chosen
over ``SIGPROF``/``setitimer`` on purpose: the pool workers already own
``SIGALRM`` for job deadlines (:func:`repro.service.scheduler
.run_with_timeout`), signals don't compose, and a Python-level signal
handler could only observe the main thread anyway.

Every sample is *attributed*:

* the ambient :class:`~repro.obs.trace.Tracer` span path of the sampled
  thread (via :func:`~repro.obs.trace.active_span_paths`) — or the
  thread's registered :func:`label_thread` label when no span is open —
  becomes the root of the collapsed stack, so cost rolls up per stage;
* the process's ambient :class:`~repro.obs.trace.TraceContext` tags the
  sample with the live request id, so cost rolls up per request too.

Windows serialize to plain dicts (:meth:`ProfileWindow.to_dict`) and
ship across process boundaries alongside the existing counter/trace
payloads; :func:`merge_windows` folds windows from many workers into
one.  :func:`render_flamegraph_html` turns windows into a
self-contained HTML flamegraph (pure CSS, no external assets — same
spirit as :mod:`repro.obs.report`).

Profiling must never break the pipeline: every tick runs under a
``sampler.tick`` failpoint and a catch-all — a failing tick is counted
(``sampler.errors``) and the loop keeps going.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from html import escape as _esc
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

from ..faults import fault
from . import counters
from .trace import active_span_paths, current_trace_context

#: Always-on default rate.  19 hz costs well under 1% of one core and
#: resolves anything that takes longer than ~50 ms per window.
DEFAULT_HZ = 19.0
#: On-demand (``POST /v1/profile``) capture rate.
CAPTURE_HZ = 97.0
#: Seconds each ring window covers.
DEFAULT_WINDOW_S = 5.0
#: Ring depth: 12 × 5 s = one trailing minute of profile.
DEFAULT_MAX_WINDOWS = 12
#: Stack depth bound per sample (keeps pathological recursion cheap).
MAX_STACK_DEPTH = 64
#: Distinct collapsed stacks kept per window; the rarest stacks beyond
#: this are folded into ``(truncated)`` so a window's size is bounded.
MAX_STACKS_PER_WINDOW = 512

#: Separator inside a collapsed stack (Brendan Gregg's format).
STACK_SEP = ";"
#: Separator inside a span path ("gateway.request>worker.exec").
SPAN_SEP = ">"

_UNATTRIBUTED = ""

# -- thread labels ---------------------------------------------------------
#
# Long-lived threads with no live span (the gateway's asyncio loop, a
# worker waiting on its inbox) register a label so their samples still
# attribute to a named root instead of an anonymous thread id.

_THREAD_LABELS: dict[int, str] = {}


def label_thread(label: str, thread_id: int | None = None) -> None:
    """Attribute ``thread_id``'s (default: the calling thread's) samples
    to ``label`` whenever no tracer span is open on it."""
    tid = threading.get_ident() if thread_id is None else thread_id
    _THREAD_LABELS[tid] = label


def unlabel_thread(thread_id: int | None = None) -> None:
    _THREAD_LABELS.pop(
        threading.get_ident() if thread_id is None else thread_id, None
    )


# -- stack collapsing ------------------------------------------------------


def frame_name(frame: Any) -> str:
    """``module.qualname`` for one frame (stdlib-only, 3.10-safe)."""
    code = frame.f_code
    module = frame.f_globals.get("__name__") if frame.f_globals else None
    if not module:
        module = Path(code.co_filename).stem or "?"
    func = getattr(code, "co_qualname", None) or code.co_name
    return f"{module}.{func}"


def collapse_frame(frame: Any, limit: int = MAX_STACK_DEPTH) -> list[str]:
    """The frame's stack as names, outermost first, depth-bounded."""
    names: list[str] = []
    while frame is not None and len(names) < limit:
        names.append(frame_name(frame))
        frame = frame.f_back
    names.reverse()
    return names


# -- profile windows -------------------------------------------------------


@dataclass
class ProfileWindow:
    """One fixed-duration bucket of aggregated stack samples."""

    #: Monotonic open/close stamps (sampler clock).
    start: float = 0.0
    end: float = 0.0
    #: Wall-clock (epoch) open/close stamps — what lets a slow request's
    #: time range find the window that overlapped it.
    started_at: float = 0.0
    ended_at: float = 0.0
    hz: float = DEFAULT_HZ
    #: Sampler iterations that fed this window.
    ticks: int = 0
    #: Thread-stack samples aggregated (≥ ticks when threads > 1).
    samples: int = 0
    #: ``"root;frame;...;frame" -> count`` collapsed stacks.  The root
    #: element is the span path / thread label the sample attributed to.
    stacks: dict[str, int] = field(default_factory=dict)
    #: ``"span>path" -> count`` — per-stage attribution ("" = none).
    spans: dict[str, int] = field(default_factory=dict)
    #: ``trace_id -> count`` — per-request attribution.
    requests: dict[str, int] = field(default_factory=dict)
    #: Seconds the sampler itself spent collecting into this window.
    self_s: float = 0.0
    #: Ticks that raised (failpoint or real) and were absorbed.
    errors: int = 0

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    @property
    def overhead_ratio(self) -> float:
        """Sampler self-time as a fraction of the window's wall clock."""
        wall = self.duration
        return self.self_s / wall if wall > 0 else 0.0

    def add(
        self,
        parts: Iterable[str],
        *,
        span_path: str = _UNATTRIBUTED,
        request_id: str | None = None,
        count: int = 1,
    ) -> None:
        """Aggregate one collapsed sample (root included in ``parts``)."""
        key = STACK_SEP.join(parts)
        self.samples += count
        self.stacks[key] = self.stacks.get(key, 0) + count
        self.spans[span_path] = self.spans.get(span_path, 0) + count
        if request_id:
            self.requests[request_id] = self.requests.get(request_id, 0) + count

    def seal(self, *, end: float, ended_at: float) -> "ProfileWindow":
        self.end = end
        self.ended_at = ended_at
        if len(self.stacks) > MAX_STACKS_PER_WINDOW:
            keep = sorted(self.stacks.items(), key=lambda kv: -kv[1])
            folded = sum(c for _, c in keep[MAX_STACKS_PER_WINDOW:])
            self.stacks = dict(keep[:MAX_STACKS_PER_WINDOW])
            if folded:
                self.stacks["(truncated)"] = (
                    self.stacks.get("(truncated)", 0) + folded
                )
        return self

    def self_counts(self) -> dict[str, int]:
        """Per-frame *self* samples (the leaf of every stack)."""
        out: dict[str, int] = {}
        for key, count in self.stacks.items():
            leaf = key.rsplit(STACK_SEP, 1)[-1]
            out[leaf] = out.get(leaf, 0) + count
        return out

    def top_frames(self, n: int = 5) -> list[tuple[str, int]]:
        """The ``n`` frames with the most self-time, hottest first."""
        ranked = sorted(self.self_counts().items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:n]

    def attributed_ratio(self) -> float:
        """Fraction of samples rooted in a named span / thread label."""
        if not self.samples:
            return 0.0
        return 1.0 - self.spans.get(_UNATTRIBUTED, 0) / self.samples

    def to_dict(self) -> dict:
        return {
            "start": round(self.start, 6),
            "end": round(self.end, 6),
            "started_at": round(self.started_at, 6),
            "ended_at": round(self.ended_at, 6),
            "hz": self.hz,
            "ticks": self.ticks,
            "samples": self.samples,
            "stacks": dict(self.stacks),
            "spans": dict(self.spans),
            "requests": dict(self.requests),
            "self_s": round(self.self_s, 6),
            "errors": self.errors,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ProfileWindow":
        return cls(
            start=float(data.get("start", 0.0)),
            end=float(data.get("end", 0.0)),
            started_at=float(data.get("started_at", 0.0)),
            ended_at=float(data.get("ended_at", 0.0)),
            hz=float(data.get("hz", DEFAULT_HZ)),
            ticks=int(data.get("ticks", 0)),
            samples=int(data.get("samples", 0)),
            stacks={str(k): int(v) for k, v in dict(data.get("stacks", {})).items()},
            spans={str(k): int(v) for k, v in dict(data.get("spans", {})).items()},
            requests={
                str(k): int(v) for k, v in dict(data.get("requests", {})).items()
            },
            self_s=float(data.get("self_s", 0.0)),
            errors=int(data.get("errors", 0)),
        )


def merge_windows(windows: Iterable[ProfileWindow | Mapping]) -> ProfileWindow:
    """Fold any number of windows (objects or shipped dicts, possibly
    from different processes) into one aggregate window."""
    merged = ProfileWindow(start=float("inf"), started_at=float("inf"))
    seen = False
    for w in windows:
        if not isinstance(w, ProfileWindow):
            w = ProfileWindow.from_dict(w)
        seen = True
        merged.hz = w.hz
        merged.start = min(merged.start, w.start)
        merged.end = max(merged.end, w.end)
        merged.started_at = min(merged.started_at, w.started_at)
        merged.ended_at = max(merged.ended_at, w.ended_at)
        merged.ticks += w.ticks
        merged.samples += w.samples
        merged.self_s += w.self_s
        merged.errors += w.errors
        for k, v in w.stacks.items():
            merged.stacks[k] = merged.stacks.get(k, 0) + v
        for k, v in w.spans.items():
            merged.spans[k] = merged.spans.get(k, 0) + v
        for k, v in w.requests.items():
            merged.requests[k] = merged.requests.get(k, 0) + v
    if not seen:
        return ProfileWindow()
    return merged


# -- the sampler -----------------------------------------------------------


class Sampler:
    """Background stack sampler with an injectable frame source + clock.

    ``frame_source`` defaults to ``sys._current_frames``; tests inject a
    callable returning ``{thread id: frame-like}`` and drive :meth:`tick`
    directly for fully deterministic aggregation.
    """

    def __init__(
        self,
        *,
        hz: float = DEFAULT_HZ,
        window_s: float = DEFAULT_WINDOW_S,
        max_windows: int = DEFAULT_MAX_WINDOWS,
        clock: Callable[[], float] = time.monotonic,
        wall_clock: Callable[[], float] = time.time,
        frame_source: Callable[[], Mapping[int, Any]] | None = None,
        span_source: Callable[[], Mapping[int, tuple[str, ...]]] | None = None,
    ) -> None:
        if hz <= 0:
            raise ValueError("hz must be positive")
        if window_s <= 0 or max_windows < 1:
            raise ValueError("window_s must be positive, max_windows >= 1")
        self.hz = float(hz)
        self.window_s = float(window_s)
        self.clock = clock
        self.wall_clock = wall_clock
        self._frame_source = frame_source or sys._current_frames
        self._span_source = span_source or active_span_paths
        self._ring: deque[ProfileWindow] = deque(maxlen=max_windows)
        self._current: ProfileWindow | None = None
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        #: Threads never sampled: the sampler's own, plus any the caller
        #: excludes (e.g. the thread blocking on an on-demand capture).
        self.excluded: set[int] = set()
        self.ticks = 0
        self.errors = 0

    # -- window bookkeeping (callers hold self._lock) ------------------

    def _window(self, now: float) -> ProfileWindow:
        current = self._current
        if current is not None and now - current.start >= self.window_s:
            self._ring.append(
                current.seal(end=now, ended_at=self.wall_clock())
            )
            current = None
        if current is None:
            current = self._current = ProfileWindow(
                start=now,
                end=now,
                started_at=self.wall_clock(),
                ended_at=self.wall_clock(),
                hz=self.hz,
            )
        return current

    # -- sampling ------------------------------------------------------

    def tick(self) -> int:
        """One sampling pass over every live thread; returns the number
        of stack samples aggregated.  Never raises: failures (including
        the ``sampler.tick`` failpoint) are counted and swallowed."""
        t0 = self.clock()
        added = 0
        try:
            fault("sampler.tick")
            frames = self._frame_source()
            span_paths = self._span_source()
            ctx = current_trace_context()
            request_id = ctx.trace_id if ctx is not None else None
            with self._lock:
                window = self._window(t0)
                window.ticks += 1
                self.ticks += 1
                for tid, frame in frames.items():
                    if tid in self.excluded:
                        continue
                    path = span_paths.get(tid, ())
                    root = SPAN_SEP.join(path) if path else (
                        _THREAD_LABELS.get(tid, _UNATTRIBUTED)
                    )
                    parts = list(path) if path else (
                        [root] if root else []
                    )
                    parts.extend(collapse_frame(frame))
                    if not parts:
                        continue
                    window.add(parts, span_path=root, request_id=request_id)
                    added += 1
                window.end = max(window.end, self.clock())
                window.ended_at = self.wall_clock()
                window.self_s += self.clock() - t0
        except Exception:
            self.errors += 1
            counters.inc("sampler.errors")
            with self._lock:
                if self._current is not None:
                    self._current.errors += 1
                    self._current.self_s += self.clock() - t0
        return added

    # -- lifecycle -----------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "Sampler":
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-sampler", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        self.excluded.add(threading.get_ident())
        interval = 1.0 / self.hz
        while not self._stop.is_set():
            started = self.clock()
            self.tick()
            elapsed = self.clock() - started
            self._stop.wait(max(0.0, interval - elapsed))

    def stop(self, *, timeout: float = 2.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout)
        self._thread = None

    # -- reading -------------------------------------------------------

    def windows(self, *, include_current: bool = True) -> list[ProfileWindow]:
        """Sealed windows oldest-first (plus a sealed *copy* of the
        in-progress window, so readers always see a closed interval)."""
        with self._lock:
            out = list(self._ring)
            current = self._current
            if include_current and current is not None and current.samples:
                snap = ProfileWindow.from_dict(current.to_dict())
                snap.seal(end=self.clock(), ended_at=self.wall_clock())
                out.append(snap)
        return out

    def last_window(self) -> ProfileWindow | None:
        windows = self.windows()
        return windows[-1] if windows else None

    def export(self, *, since: float | None = None) -> list[dict]:
        """Windows as shippable dicts; ``since`` (epoch seconds) keeps
        only windows that ended at or after it."""
        return [
            w.to_dict()
            for w in self.windows()
            if since is None or w.ended_at >= since
        ]

    def windows_overlapping(self, t0: float, t1: float) -> list[ProfileWindow]:
        """Windows whose wall-clock span intersects ``[t0, t1]`` (epoch)."""
        return [
            w
            for w in self.windows()
            if w.started_at <= t1 and w.ended_at >= t0
        ]

    def snapshot(self, *, top: int = 5) -> dict:
        """The JSON block ``/v1/stats`` serves."""
        last = self.last_window()
        merged = merge_windows(self.windows())
        out = {
            "running": self.running,
            "hz": self.hz,
            "window_s": self.window_s,
            "windows": len(self.windows(include_current=False)),
            "ticks": self.ticks,
            "errors": self.errors,
            "overhead_ratio": round(merged.overhead_ratio, 6),
            "attributed_ratio": round(merged.attributed_ratio(), 4),
        }
        if last is not None:
            out["last_window"] = {
                "samples": last.samples,
                "duration_s": round(last.duration, 3),
                "top_frames": [list(kv) for kv in last.top_frames(top)],
                "spans": dict(
                    sorted(last.spans.items(), key=lambda kv: -kv[1])[:top]
                ),
            }
        return out


def capture(
    seconds: float,
    *,
    hz: float = CAPTURE_HZ,
    frame_source: Callable[[], Mapping[int, Any]] | None = None,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
) -> ProfileWindow:
    """Blocking on-demand high-hz capture: sample for ``seconds`` and
    return the merged window.  The calling thread is excluded (it would
    only ever show this function)."""
    sampler = Sampler(
        hz=hz,
        window_s=max(seconds, 0.001),
        max_windows=max(2, int(seconds) + 1),
        clock=clock,
        frame_source=frame_source,
    )
    sampler.excluded.add(threading.get_ident())
    # Don't sample the always-on sampler either: its wait loop is pure
    # unattributed noise in a high-hz capture.
    always_on = get_sampler()
    if always_on is not None and always_on._thread is not None:
        ident = always_on._thread.ident
        if ident is not None:
            sampler.excluded.add(ident)
    deadline = clock() + seconds
    interval = 1.0 / hz
    while clock() < deadline:
        started = clock()
        sampler.tick()
        sleep(max(0.0, min(interval - (clock() - started), deadline - clock())))
    return merge_windows(sampler.windows())


# -- the process-global always-on sampler ----------------------------------

_SAMPLER: Sampler | None = None
_SAMPLER_LOCK = threading.Lock()

#: Environment override for the always-on rate; ``0`` disables.
ENV_HZ = "ARTWORK_SAMPLER_HZ"


def get_sampler() -> Sampler | None:
    return _SAMPLER


def set_sampler(sampler: Sampler | None) -> Sampler | None:
    """Swap the global sampler (tests); returns the previous one."""
    global _SAMPLER
    with _SAMPLER_LOCK:
        previous, _SAMPLER = _SAMPLER, sampler
    return previous


def ensure_sampler(*, hz: float | None = None, **kwargs: Any) -> Sampler | None:
    """Start (or return) the process's always-on sampler.

    ``hz`` defaults to :data:`DEFAULT_HZ`, overridable via
    ``ARTWORK_SAMPLER_HZ``; a non-positive rate disables profiling and
    returns ``None``.
    """
    global _SAMPLER
    if hz is None:
        import os

        raw = os.environ.get(ENV_HZ, "")
        try:
            hz = float(raw) if raw else DEFAULT_HZ
        except ValueError:
            hz = DEFAULT_HZ
    if hz <= 0:
        return None
    with _SAMPLER_LOCK:
        if _SAMPLER is None:
            _SAMPLER = Sampler(hz=hz, **kwargs)
        if not _SAMPLER.running:
            _SAMPLER.start()
        return _SAMPLER


# -- flamegraph rendering --------------------------------------------------

_FLAME_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em auto;
       max-width: 72em; color: #222; background: #fdfcf8; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em;
     border-bottom: 1px solid #ddd; padding-bottom: .2em; }
table { border-collapse: collapse; margin: .6em 0; }
th, td { border: 1px solid #ccc; padding: .25em .6em; text-align: right;
         font-variant-numeric: tabular-nums; }
th { background: #f0ede4; } td.key, th.key { text-align: left; }
.muted { color: #777; }
.flame { position: relative; border: 1px solid #ddd; background: #fff;
         font-size: 11px; font-family: ui-monospace, monospace; }
.frame { position: absolute; height: 16px; line-height: 16px;
         overflow: hidden; white-space: nowrap; text-overflow: clip;
         border-radius: 2px; border: 1px solid rgba(255,255,255,.6);
         box-sizing: border-box; padding: 0 2px; cursor: default; }
.frame:hover { border-color: #222; z-index: 2; }
"""

#: Warm flame palette, deterministic per frame name.
_FLAME_COLORS = (
    "#e4572e", "#e98a2b", "#edab32", "#f0c541", "#d9822b",
    "#e06b3c", "#ec9d46", "#f2b347", "#de7547", "#e89a55",
)


def _flame_color(name: str) -> str:
    # Not ``hash()``: per-process salting would recolor frames run to run.
    return _FLAME_COLORS[sum(name.encode()) % len(_FLAME_COLORS)]


def _flame_tree(stacks: Mapping[str, int]) -> dict:
    """Collapsed stacks to a nested ``{name, value, children}`` tree."""
    root: dict = {"name": "all", "value": 0, "children": {}}
    for key, count in stacks.items():
        root["value"] += count
        node = root
        for part in key.split(STACK_SEP):
            children = node["children"]
            child = children.get(part)
            if child is None:
                child = children[part] = {
                    "name": part, "value": 0, "children": {},
                }
            child["value"] += count
            node = child
    return root


def _flame_divs(
    node: dict, left: float, width: float, depth: int, total: int,
    out: list[str], max_depth: list[int],
) -> None:
    if depth > max_depth[0]:
        max_depth[0] = depth
    if width < 0.05:  # invisible at any sane viewport; stop recursing
        return
    pct = 100.0 * node["value"] / total if total else 0.0
    title = f"{node['name']} — {node['value']} samples ({pct:.1f}%)"
    out.append(
        f'<div class="frame" title="{_esc(title)}" style="left:{left:.3f}%;'
        f"width:{width:.3f}%;top:{depth * 17}px;"
        f'background:{_flame_color(node["name"])}">'
        f"{_esc(node['name'])}</div>"
    )
    child_left = left
    for name in sorted(node["children"]):
        child = node["children"][name]
        child_width = width * child["value"] / node["value"]
        _flame_divs(child, child_left, child_width, depth + 1, total, out, max_depth)
        child_left += child_width


def flamegraph_div(stacks: Mapping[str, int]) -> str:
    """The flamegraph itself as one embeddable ``<div>`` (no page chrome),
    icicle orientation: roots on top, leaves growing downward."""
    tree = _flame_tree(stacks)
    if not tree["value"]:
        return '<p class="muted">no samples in the profile window</p>'
    out: list[str] = []
    max_depth = [0]
    _flame_divs(tree, 0.0, 100.0, 0, tree["value"], out, max_depth)
    height = (max_depth[0] + 1) * 17 + 2
    return (
        f'<div class="flame" style="height:{height}px">' + "".join(out) + "</div>"
    )


def render_flamegraph_html(
    windows: Iterable[ProfileWindow | Mapping],
    *,
    title: str = "artwork profile",
) -> str:
    """A self-contained flamegraph page for any set of profile windows."""
    merged = merge_windows(windows)
    span_rows = "\n".join(
        f'<tr><td class="key">{_esc(name or "(unattributed)")}</td>'
        f"<td>{count}</td>"
        f"<td>{100.0 * count / merged.samples:.1f}%</td></tr>"
        for name, count in sorted(merged.spans.items(), key=lambda kv: -kv[1])
    ) if merged.samples else ""
    frame_rows = "\n".join(
        f'<tr><td class="key">{_esc(name)}</td><td>{count}</td>'
        f"<td>{100.0 * count / merged.samples:.1f}%</td></tr>"
        for name, count in merged.top_frames(10)
    ) if merged.samples else ""
    summary = (
        f"<p>{merged.samples} samples · {merged.ticks} ticks at "
        f"{merged.hz:g} hz · {merged.duration:.2f}s of wall clock · "
        f"sampler overhead {100.0 * merged.overhead_ratio:.2f}% · "
        f"{100.0 * merged.attributed_ratio():.1f}% of samples attributed "
        "to named spans</p>"
    )
    body = [
        summary,
        "<h2>Flamegraph</h2>",
        flamegraph_div(merged.stacks),
    ]
    if span_rows:
        body += [
            "<h2>Span attribution</h2>",
            '<table><tr><th class="key">span path</th><th>samples</th>'
            f"<th>share</th></tr>{span_rows}</table>",
        ]
    if frame_rows:
        body += [
            "<h2>Top self-time frames</h2>",
            '<table><tr><th class="key">frame</th><th>self samples</th>'
            f"<th>share</th></tr>{frame_rows}</table>",
        ]
    return (
        "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>"
        f"<title>{_esc(title)}</title><style>{_FLAME_CSS}</style></head>"
        f"<body><h1>{_esc(title)}</h1>\n" + "\n".join(body) + "\n</body></html>"
    )


def write_flamegraph_html(
    path: str | Path,
    windows: Iterable[ProfileWindow | Mapping],
    *,
    title: str = "artwork profile",
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_flamegraph_html(windows, title=title))
    return path
