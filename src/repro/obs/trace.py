"""Hierarchical span tracing for the generation pipeline.

A :class:`Tracer` records a tree of timed spans::

    with span("pablo.partitioning"):
        ...

Spans nest per thread (a ``threading.local`` stack), so concurrent
threads each grow their own subtree under the tracer.  The recorded
forest exports two ways:

* :meth:`Tracer.chrome_trace` — the Chrome trace-event JSON format, so a
  run opens directly in ``chrome://tracing`` / Perfetto;
* :meth:`Tracer.profile_tree` — a plain-text time tree with per-node
  totals, percentages and call counts (siblings with the same name are
  aggregated, so 40 ``eureka.net`` spans print as one ×40 line).

Tracing is **off by default** and near-free when off: the module-level
:func:`span` helper returns a shared no-op context manager without
touching the tracer at all, so instrumented hot paths pay one attribute
check per span.

Spans survive process boundaries: :meth:`Span.to_dict` /
:meth:`Span.from_dict` round-trip a subtree through JSON, and
:meth:`Tracer.adopt` grafts a serialized subtree (e.g. from a pool
worker, whose clock is unrelated to ours) into the live trace,
re-anchored on this tracer's timebase.

Requests cross processes too: a :class:`TraceContext` carries a W3C
``traceparent``-compatible trace id from the gateway's HTTP boundary
into a pool worker (:func:`set_trace_context` /
:func:`current_trace_context`), so the spans a worker ships back can be
re-parented under the originating request's root span and every log
line, WebSocket event and run record shares one correlation id.
"""

from __future__ import annotations

import json
import os
import re
import secrets
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

#: ``traceparent`` header shape (W3C Trace Context, version 00).
_TRACEPARENT = re.compile(
    r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)


def new_trace_id() -> str:
    """A fresh 128-bit trace id (32 lowercase hex chars)."""
    return secrets.token_hex(16)


def new_span_id() -> str:
    """A fresh 64-bit span id (16 lowercase hex chars)."""
    return secrets.token_hex(8)


@dataclass(frozen=True)
class TraceContext:
    """One request's identity as it crosses process boundaries.

    ``trace_id`` names the whole request; ``span_id`` is the id of the
    current segment; ``parent_id`` is the caller's segment when the
    request arrived with a ``traceparent`` header.
    """

    trace_id: str
    span_id: str
    parent_id: str | None = None

    def traceparent(self) -> str:
        """The context as a W3C ``traceparent`` header value."""
        return f"00-{self.trace_id}-{self.span_id}-01"

    def to_dict(self) -> dict:
        out = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.parent_id:
            out["parent_id"] = self.parent_id
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "TraceContext":
        return cls(
            trace_id=str(data.get("trace_id", "")) or new_trace_id(),
            span_id=str(data.get("span_id", "")) or new_span_id(),
            parent_id=data.get("parent_id") or None,
        )


def parse_traceparent(header: str | None) -> TraceContext | None:
    """Parse an incoming ``traceparent`` header; ``None`` when absent or
    malformed (a bad header must not fail the request — a fresh trace
    simply starts here)."""
    if not header:
        return None
    match = _TRACEPARENT.match(header.strip().lower())
    if match is None:
        return None
    _version, trace_id, span_id, _flags = match.groups()
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None  # the spec reserves the all-zero ids as invalid
    return TraceContext(trace_id=trace_id, span_id=span_id)


def trace_context_from_headers(headers: dict) -> TraceContext:
    """The request's context: continue an incoming ``traceparent``
    (keeping its trace id, becoming its child) or start a new trace."""
    incoming = parse_traceparent(headers.get("traceparent"))
    if incoming is not None:
        return TraceContext(
            trace_id=incoming.trace_id,
            span_id=new_span_id(),
            parent_id=incoming.span_id,
        )
    return TraceContext(trace_id=new_trace_id(), span_id=new_span_id())


#: The ambient trace context of the job this process is running (set by
#: the pool worker loop around each job; ``None`` between jobs).
_TRACE_CONTEXT: TraceContext | None = None


def set_trace_context(ctx: TraceContext | None) -> TraceContext | None:
    """Install ``ctx`` as this process's ambient trace context; returns
    the previous one so callers can restore it."""
    global _TRACE_CONTEXT
    previous, _TRACE_CONTEXT = _TRACE_CONTEXT, ctx
    return previous


def current_trace_context() -> TraceContext | None:
    return _TRACE_CONTEXT


#: Cross-thread view of the live span stacks: ``{thread id: [span name,
#: ...]}``, outermost first.  Every tracer's push/pop maintains it (the
#: owning thread appends/pops its own list — atomic under the GIL), so
#: the sampling profiler can attribute a stack sample to the span path
#: active on *any* thread without touching a tracer's ``threading.local``
#: (which only the owning thread can read).
_ACTIVE_SPANS: dict[int, list[str]] = {}


def active_span_path(thread_id: int | None = None) -> tuple[str, ...]:
    """The span-name path currently open on ``thread_id`` (default: the
    calling thread), outermost first; empty when no span is live."""
    if thread_id is None:
        thread_id = threading.get_ident()
    return tuple(_ACTIVE_SPANS.get(thread_id, ()))


def active_span_paths() -> dict[int, tuple[str, ...]]:
    """A point-in-time copy of every thread's live span path.

    Safe to call from a sampling thread: iteration copies the table
    first, and ``tuple(list)`` of a concurrently-appended list is atomic
    under the GIL (worst case the sample sees the path one push early or
    late — a one-sample attribution skew, never corruption)."""
    return {
        tid: tuple(names)
        for tid, names in list(_ACTIVE_SPANS.items())
        if names
    }


@dataclass
class Span:
    """One timed region; ``start``/``duration`` are tracer-relative seconds."""

    name: str
    start: float = 0.0
    duration: float = 0.0
    attrs: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    tid: int = 0

    @property
    def end(self) -> float:
        return self.start + self.duration

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the span (shown as ``args`` in Chrome)."""
        self.attrs.update(attrs)
        return self

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    # -- serialization (worker -> parent process) ----------------------

    def to_dict(self) -> dict:
        out: dict[str, Any] = {"name": self.name, "start": round(self.start, 6),
                               "duration": round(self.duration, 6)}
        if self.attrs:
            out["attrs"] = self.attrs
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(
            name=str(data.get("name", "?")),
            start=float(data.get("start", 0.0)),
            duration=float(data.get("duration", 0.0)),
            attrs=dict(data.get("attrs", {})),
            children=[cls.from_dict(c) for c in data.get("children", [])],
        )

    def shifted(self, offset: float) -> "Span":
        """A copy of the subtree with every start moved by ``offset``."""
        return Span(
            name=self.name,
            start=self.start + offset,
            duration=self.duration,
            attrs=dict(self.attrs),
            children=[c.shifted(offset) for c in self.children],
            tid=self.tid,
        )


class _SpanHandle:
    """Context manager binding one live span to a tracer's thread stack."""

    __slots__ = ("_tracer", "_span", "_t0")

    def __init__(self, tracer: "Tracer", span_: Span):
        self._tracer = tracer
        self._span = span_

    def set(self, **attrs: Any) -> "_SpanHandle":
        self._span.set(**attrs)
        return self

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        self._t0 = time.perf_counter()
        self._span.start = self._t0 - self._tracer.origin
        return self._span

    def __exit__(self, exc_type, _exc, _tb) -> None:
        self._span.duration = time.perf_counter() - self._t0
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self._span)


class _NullSpan:
    """Shared do-nothing span used whenever tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> None:
        return None

    def set(self, **_attrs: Any) -> "_NullSpan":
        return self

    @property
    def attrs(self) -> dict:
        return {}


NULL_SPAN = _NullSpan()


def chrome_trace_events(roots: Iterable[Span], *, pid: int | None = None) -> list[dict]:
    """Flatten span trees into Chrome trace-event dicts (``ph: "X"``)."""
    pid = os.getpid() if pid is None else pid
    events: list[dict] = []
    for root in roots:
        for s in root.walk():
            event = {
                "name": s.name,
                "ph": "X",
                "ts": round(s.start * 1e6, 1),
                "dur": round(s.duration * 1e6, 1),
                "pid": pid,
                "tid": s.tid or 0,
            }
            if s.attrs:
                event["args"] = dict(s.attrs)
            events.append(event)
    return events


def chrome_trace_document(roots: Iterable[Span], *, pid: int | None = None) -> dict:
    """A complete ``chrome://tracing`` / Perfetto JSON document."""
    return {
        "traceEvents": chrome_trace_events(roots, pid=pid),
        "displayTimeUnit": "ms",
    }


class Tracer:
    """Collects a forest of spans on a single process-local timebase."""

    def __init__(self, *, enabled: bool = True):
        self.enabled = enabled
        self.origin = time.perf_counter()
        self.roots: list[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _SpanHandle | _NullSpan:
        if not self.enabled:
            return NULL_SPAN
        return _SpanHandle(
            self,
            Span(
                name=name,
                start=time.perf_counter() - self.origin,
                attrs=attrs,
                tid=threading.get_ident(),
            ),
        )

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span_: Span) -> None:
        self._stack().append(span_)
        tid = threading.get_ident()
        names = _ACTIVE_SPANS.get(tid)
        if names is None:
            names = _ACTIVE_SPANS[tid] = []
        names.append(span_.name)

    def _pop(self, span_: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span_:
            stack.pop()
        names = _ACTIVE_SPANS.get(threading.get_ident())
        if names:
            names.pop()
        if stack:
            stack[-1].children.append(span_)
        else:
            with self._lock:
                self.roots.append(span_)

    def current(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    def adopt(self, data: dict | Span, *, label: str | None = None) -> Span:
        """Graft a serialized subtree (foreign clock) into the live trace.

        The subtree is re-anchored so it *ends* now — the moment the
        parent learned of it — which keeps the timeline consistent
        without needing the foreign process's epoch.  Returns the
        adopted root span.
        """
        root = data if isinstance(data, Span) else Span.from_dict(data)
        now = time.perf_counter() - self.origin
        # End the subtree "now" — but never start it before our origin
        # (a job can predate this tracer, e.g. in tests).
        adopted = root.shifted(max(now - root.end, -root.start))
        if label is not None:
            adopted.name = label
        adopted.tid = threading.get_ident()
        parent = self.current()
        if parent is not None:
            parent.children.append(adopted)
        else:
            with self._lock:
                self.roots.append(adopted)
        return adopted

    # -- export --------------------------------------------------------

    def chrome_trace(self) -> dict:
        """The run as Chrome trace-event JSON (``chrome://tracing``)."""
        with self._lock:
            roots = list(self.roots)
        return chrome_trace_document(roots)

    def write_chrome_trace(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.chrome_trace(), indent=1))
        return path

    def stage_totals(self) -> dict[str, dict]:
        """Per-span-name wall-clock aggregate over the whole forest:
        ``{name: {"seconds": total, "count": n}}`` — the flat form of the
        profile tree that a :class:`~repro.obs.runlog.RunRecord` stores."""
        totals: dict[str, dict] = {}
        with self._lock:
            roots = list(self.roots)
        for root in roots:
            for s in root.walk():
                agg = totals.setdefault(s.name, {"seconds": 0.0, "count": 0})
                agg["seconds"] += s.duration
                agg["count"] += 1
        for agg in totals.values():
            agg["seconds"] = round(agg["seconds"], 6)
        return totals

    def profile_tree(self) -> str:
        """Plain-text time tree; same-named siblings are aggregated."""
        with self._lock:
            roots = list(self.roots)
        total = sum(r.duration for r in roots) or 1e-12
        lines: list[str] = []

        def emit(spans: list[Span], depth: int) -> None:
            groups: dict[str, list[Span]] = {}
            for s in spans:
                groups.setdefault(s.name, []).append(s)
            for name, group in sorted(
                groups.items(), key=lambda kv: -sum(s.duration for s in kv[1])
            ):
                seconds = sum(s.duration for s in group)
                count = f" ×{len(group)}" if len(group) > 1 else ""
                lines.append(
                    f"{'  ' * depth}{name:<{max(1, 44 - 2 * depth)}}"
                    f"{seconds:9.4f}s {100.0 * seconds / total:5.1f}%{count}"
                )
                emit([c for s in group for c in s.children], depth + 1)

        emit(roots, 0)
        return "\n".join(lines)

    def total_seconds(self) -> float:
        with self._lock:
            return sum(r.duration for r in self.roots)

    def export_roots(self) -> list[dict]:
        """Serialized root spans (for shipping out of a pool worker)."""
        with self._lock:
            return [r.to_dict() for r in self.roots]


#: The process-global tracer; disabled until a CLI/test turns it on.
_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-global tracer; returns the old one."""
    global _TRACER
    previous, _TRACER = _TRACER, tracer
    return previous


def enable_tracing() -> Tracer:
    """Install and return a fresh enabled global tracer."""
    tracer = Tracer(enabled=True)
    set_tracer(tracer)
    return tracer


def span(name: str, **attrs: Any) -> _SpanHandle | _NullSpan:
    """Open a span on the global tracer (no-op when tracing is off)."""
    tracer = _TRACER
    if not tracer.enabled:
        return NULL_SPAN
    return tracer.span(name, **attrs)
