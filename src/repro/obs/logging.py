"""Structured logging for the ``repro.*`` namespaces.

Every CLI accepts ``--log-level``; :func:`setup_logging` configures the
``repro`` root logger once with a compact structured line format::

    2026-08-06T12:00:01 INFO  repro.route.eureka  retry pass  nets=3

Libraries get their logger via :func:`get_logger` and attach key=value
context with ``extra={"fields": {...}}`` (rendered, never interpolated
into the message, so lines stay grep-able).
"""

from __future__ import annotations

import argparse
import logging
import sys

LEVELS = ("debug", "info", "warning", "error", "critical")

_HANDLER_FLAG = "_repro_obs_handler"


class StructuredFormatter(logging.Formatter):
    """``time LEVEL logger message key=value ...`` lines."""

    default_time_format = "%Y-%m-%dT%H:%M:%S"

    def format(self, record: logging.LogRecord) -> str:
        base = (
            f"{self.formatTime(record, self.default_time_format)} "
            f"{record.levelname:<7} {record.name}  {record.getMessage()}"
        )
        fields = getattr(record, "fields", None)
        if fields:
            base += "  " + " ".join(f"{k}={v}" for k, v in fields.items())
        if record.exc_info:
            base += "\n" + self.formatException(record.exc_info)
        return base


def get_logger(name: str) -> logging.Logger:
    """The logger for a subsystem, rooted under ``repro``."""
    if name == "repro" or name.startswith("repro."):
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")


class _LiveStderrHandler(logging.StreamHandler):
    """Always writes to the *current* ``sys.stderr`` (which test harnesses
    and CLI wrappers swap out), never a stream captured at setup time."""

    def __init__(self) -> None:
        super().__init__(sys.stderr)

    @property
    def stream(self):
        return sys.stderr

    @stream.setter
    def stream(self, _value) -> None:  # StreamHandler.__init__ assigns it
        pass


def setup_logging(level: str = "warning", *, stream=None) -> logging.Logger:
    """Configure the ``repro`` root logger and return it.

    Safe to call repeatedly (each CLI does): the previous obs handler is
    replaced, never duplicated.
    """
    if level not in LEVELS:
        raise ValueError(f"unknown log level {level!r} (choose from {LEVELS})")
    root = logging.getLogger("repro")
    root.setLevel(getattr(logging, level.upper()))
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            root.removeHandler(handler)
    handler = (
        logging.StreamHandler(stream) if stream is not None else _LiveStderrHandler()
    )
    handler.setFormatter(StructuredFormatter())
    setattr(handler, _HANDLER_FLAG, True)
    root.addHandler(handler)
    root.propagate = False
    return root


def add_log_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--log-level",
        choices=LEVELS,
        default="warning",
        help="logging verbosity for the repro.* namespaces",
    )
