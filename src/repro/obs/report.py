"""Self-contained HTML diagnostics report for one recorded run.

Renders a :class:`~repro.obs.runlog.RunRecord` — optionally against a
baseline — into a single HTML file with no external assets: run header,
profile tree, a CPU flamegraph rebuilt from the record's sampling
windows, counter tables with histogram percentiles, a Table-6.1-style
quality row compared to the baseline, the congestion heatmap SVG
rebuilt from the recorded matrix (no plane access, so zero rescans), a
per-net failure drill-down (each failed net linking into the
search-introspection section) and the router's per-net search
telemetry.  Every section degrades to a note when its data wasn't
recorded — a report renders cleanly with tracing and profiling off.
"""

from __future__ import annotations

import html
import re
from pathlib import Path

from .congestion import CongestionMap
from .runlog import RunRecord, diff_records
from .sampler import flamegraph_div, merge_windows

_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em auto;
       max-width: 72em; color: #222; background: #fdfcf8; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em;
     border-bottom: 1px solid #ddd; padding-bottom: .2em; }
table { border-collapse: collapse; margin: .6em 0; }
th, td { border: 1px solid #ccc; padding: .25em .6em; text-align: right;
         font-variant-numeric: tabular-nums; }
th { background: #f0ede4; } td.key, th.key { text-align: left; }
pre { background: #f6f3ea; padding: .8em; overflow-x: auto; font-size: .85em; }
.better { color: #1a7a36; } .worse { color: #b3232a; font-weight: 600; }
.muted { color: #777; } .svgbox { border: 1px solid #ddd; background: #fff;
  padding: .5em; overflow: auto; max-height: 40em; }
.flame { position: relative; border: 1px solid #ddd; background: #fff;
         font-size: 11px; font-family: ui-monospace, monospace; }
.frame { position: absolute; height: 16px; line-height: 16px;
         overflow: hidden; white-space: nowrap; text-overflow: clip;
         border-radius: 2px; border: 1px solid rgba(255,255,255,.6);
         box-sizing: border-box; padding: 0 2px; cursor: default; }
.frame:hover { border-color: #222; z-index: 2; }
"""


def _esc(value: object) -> str:
    return html.escape(str(value))


def _anchor(kind: str, name: object) -> str:
    """A safe, deterministic ``id=`` value for intra-report links."""
    return f"{kind}-" + re.sub(r"[^A-Za-z0-9_.-]", "_", str(name))


def _kv_table(pairs: list[tuple[str, object]]) -> str:
    rows = "\n".join(
        f'<tr><td class="key">{_esc(k)}</td><td>{_esc(v)}</td></tr>'
        for k, v in pairs
    )
    return f"<table>{rows}</table>"


def _header_section(record: RunRecord) -> str:
    env = record.environment or {}
    return _kv_table(
        [
            ("run id", record.run_id),
            ("kind / name", f"{record.kind} / {record.name}"),
            ("timestamp", record.timestamp),
            ("git rev", record.git_rev),
            ("spec digest", record.spec_digest[:16] or "—"),
            ("wall clock", f"{record.wall_seconds:.3f}s"),
            ("python", f"{env.get('python', '?')} ({env.get('implementation', '?')})"),
            ("platform", env.get("platform", "?")),
        ]
    )


def _stages_section(record: RunRecord) -> str:
    if record.profile:
        tree = f"<pre>{_esc(record.profile)}</pre>"
    else:
        tree = '<p class="muted">tracing was off for this run</p>'
    if not record.stages:
        return tree
    ordered = sorted(
        record.stages.items(), key=lambda kv: -kv[1].get("seconds", 0.0)
    )
    rows = "\n".join(
        f'<tr><td class="key">{_esc(name)}</td>'
        f"<td>{agg.get('seconds', 0.0):.4f}</td>"
        f"<td>{agg.get('count', 0)}</td></tr>"
        for name, agg in ordered
    )
    return (
        tree
        + '<table><tr><th class="key">stage</th><th>seconds</th>'
        f"<th>count</th></tr>{rows}</table>"
    )


def _quality_section(record: RunRecord, baseline: RunRecord | None) -> str:
    if baseline is None:
        rows = "\n".join(
            f'<tr><td class="key">{_esc(k)}</td><td>{_esc(v)}</td></tr>'
            for k, v in record.quality_row.items()
        )
        return (
            '<table><tr><th class="key">metric</th><th>run</th></tr>'
            f"{rows}</table>"
            '<p class="muted">no baseline selected — deltas unavailable</p>'
        )
    diff = diff_records(baseline, record)
    rows = []
    for metric, d in diff.items():
        delta = d["delta"]
        # Lower is better for everything here except routed-net count.
        worse = delta > 0 if metric != "routed" else delta < 0
        cls = "muted" if not delta else ("worse" if worse else "better")
        pct = f"{d['pct']:+.1f}%" if d["pct"] is not None else "—"
        rows.append(
            f'<tr><td class="key">{_esc(metric)}</td><td>{d["base"]}</td>'
            f'<td>{d["run"]}</td><td class="{cls}">{delta:+g}</td>'
            f'<td class="{cls}">{pct}</td></tr>'
        )
    return (
        f'<p>baseline: <code>{_esc(baseline.run_id)}</code> '
        f'({_esc(baseline.timestamp)}, {_esc(baseline.git_rev)})</p>'
        '<table><tr><th class="key">metric</th><th>baseline</th><th>run</th>'
        f'<th>Δ</th><th>%</th></tr>{"".join(rows)}</table>'
    )


def _counters_section(record: RunRecord) -> str:
    snap = record.counters or {}
    counters = snap.get("counters", {})
    histograms = snap.get("histograms", {})
    parts = []
    if counters:
        rows = "\n".join(
            f'<tr><td class="key">{_esc(k)}</td><td>{_esc(v)}</td></tr>'
            for k, v in sorted(counters.items())
        )
        parts.append(
            '<table><tr><th class="key">counter</th><th>value</th></tr>'
            f"{rows}</table>"
        )
    if histograms:
        rows = "\n".join(
            f'<tr><td class="key">{_esc(k)}</td><td>{h.get("count", 0)}</td>'
            f'<td>{h.get("mean", 0.0):g}</td><td>{h.get("min", 0.0):g}</td>'
            f'<td>{h.get("p50", 0.0):g}</td><td>{h.get("p95", 0.0):g}</td>'
            f'<td>{h.get("p99", 0.0):g}</td><td>{h.get("max", 0.0):g}</td></tr>'
            for k, h in sorted(histograms.items())
        )
        parts.append(
            '<table><tr><th class="key">histogram</th><th>count</th>'
            "<th>mean</th><th>min</th><th>p50</th><th>p95</th><th>p99</th>"
            f"<th>max</th></tr>{rows}</table>"
        )
    return "".join(parts) or '<p class="muted">no counters recorded</p>'


def _congestion_section(record: RunRecord) -> str:
    if not record.congestion:
        return '<p class="muted">no congestion snapshot in this record</p>'
    cmap = CongestionMap.from_dict(record.congestion)
    hot = cmap.hotspots(8)
    hot_rows = "\n".join(
        f'<tr><td class="key">({x}, {y})</td><td>{occ}</td><td>{cross}</td></tr>'
        for x, y, occ, cross in hot
    )
    return (
        f"<p>occupied points: {len(cmap.cells)} · total occupancy: "
        f"{cmap.occupancy_total} · crossovers: {cmap.crossover_total} · "
        f"peak occupancy: {cmap.max_occupancy}</p>"
        f'<div class="svgbox">{cmap.to_svg()}</div>'
        '<table><tr><th class="key">hotspot</th><th>occupancy</th>'
        f"<th>crossovers</th></tr>{hot_rows}</table>"
    )


def _failures_section(record: RunRecord) -> str:
    if not record.failures:
        return "<p>every net routed — no failures to drill into</p>"
    explainable = set((record.extra or {}).get("search", {}).get("nets", {}))
    run_ref = (
        f'run <code id="{_anchor("run", record.run_id)}">'
        f"{_esc(record.run_id)}</code>"
    )

    def net_cell(net: str) -> str:
        # Net names are user input — escape always, link into the
        # search-introspection section when telemetry exists for them.
        if net in explainable:
            return f'<a href="#{_anchor("net", net)}">{_esc(net)}</a>'
        return _esc(net)

    rows = "\n".join(
        f'<tr><td class="key">{net_cell(net)}</td>'
        f'<td class="key">{_esc(info.get("reason", "?"))}</td>'
        f"<td>{_esc(info.get('unconnected_pins', 0))}</td></tr>"
        for net, info in sorted(record.failures.items())
    )
    hint = (
        f'<p class="muted">{run_ref} — linked nets jump to their search '
        "telemetry; <code>artwork-inspect explain "
        f"{_esc(record.run_id)} &lt;net&gt;</code> prints the same view."
        "</p>"
        if explainable
        else ""
    )
    return (
        '<table><tr><th class="key">net</th><th class="key">reason</th>'
        f"<th>unconnected pins</th></tr>{rows}</table>{hint}"
    )


def _flame_section(record: RunRecord) -> str:
    windows = record.profile_windows or []
    if not windows:
        return (
            '<p class="muted">no sampling-profiler windows in this record '
            "(profiling was off, or the run predates the sampler)</p>"
        )
    merged = merge_windows(windows)
    if not merged.samples:
        return '<p class="muted">profiler ran but captured zero samples</p>'
    top = "\n".join(
        f'<tr><td class="key">{_esc(frame)}</td><td>{count}</td>'
        f"<td>{100.0 * count / merged.samples:.1f}%</td></tr>"
        for frame, count in merged.top_frames(8)
    )
    return (
        f"<p>{merged.samples} samples over {merged.duration:.2f}s at "
        f"{merged.hz:g} hz · sampler overhead "
        f"{100.0 * merged.overhead_ratio:.2f}% · "
        f"{100.0 * merged.attributed_ratio():.1f}% span-attributed</p>"
        + flamegraph_div(merged.stacks)
        + '<table><tr><th class="key">frame</th><th>self samples</th>'
        f"<th>share</th></tr>{top}</table>"
    )


def _search_section(record: RunRecord) -> str:
    search = (record.extra or {}).get("search", {})
    nets = search.get("nets", {})
    if not nets:
        return (
            '<p class="muted">no router search telemetry in this record</p>'
        )
    ordered = sorted(
        nets.items(), key=lambda kv: -kv[1].get("pops", 0)
    )
    rows = "\n".join(
        f'<tr><td class="key" id="{_anchor("net", net)}">{_esc(net)}</td>'
        f"<td>{agg.get('connections', 0)}</td>"
        f"<td>{agg.get('pops', 0)}</td>"
        f"<td>{agg.get('bound_est', 0)}</td>"
        f"<td>{agg.get('escalations', 0)}</td>"
        f"<td>{agg.get('area', 0)}</td>"
        f"<td>{agg.get('seconds', 0.0):.4f}</td>"
        f'<td class="key">{_esc(agg.get("outcome", "routed"))}</td></tr>'
        for net, agg in ordered[:40]
    )
    parts = [
        '<table><tr><th class="key">net</th><th>connections</th>'
        "<th>pops</th><th>bound est.</th><th>escalations</th>"
        "<th>footprint area</th><th>seconds</th>"
        f'<th class="key">outcome</th></tr>{rows}</table>'
    ]
    if len(ordered) > 40:
        parts.append(
            f'<p class="muted">…{len(ordered) - 40} quieter nets omitted '
            "(full detail in the record)</p>"
        )
    tightness = search.get("bound_tightness", {})
    if tightness:
        trows = "\n".join(
            f'<tr><td class="key">{_esc(bucket)}</td><td>{count}</td></tr>'
            for bucket, count in sorted(tightness.items())
        )
        parts.append(
            "<p>bound tightness (initial heuristic estimate ÷ final cost "
            "per connection — 1.0 means the bound was exact):</p>"
            '<table><tr><th class="key">tightness</th><th>connections</th>'
            f"</tr>{trows}</table>"
        )
    parallel = search.get("parallel", [])
    if parallel:
        prows = "\n".join(
            f'<tr><td class="key">{_esc(ev.get("net", "?"))}</td>'
            f"<td>{_esc(ev.get('wave', '?'))}</td>"
            f'<td class="key">{_esc(ev.get("outcome", "?"))}</td>'
            f'<td class="key">{_esc(ev.get("cause", "—"))}</td></tr>'
            for ev in parallel[:40]
        )
        parts.append(
            "<p>speculative-wave outcomes (conflicts/rollbacks only):</p>"
            '<table><tr><th class="key">net</th><th>wave</th>'
            '<th class="key">outcome</th><th class="key">cause</th></tr>'
            f"{prows}</table>"
        )
    return "".join(parts)


def render_html_report(
    record: RunRecord,
    *,
    baseline: RunRecord | None = None,
    title: str | None = None,
) -> str:
    """The whole report as one self-contained HTML document."""
    title = title or f"artwork run {record.run_id} — {record.name}"
    sections = [
        ("Run", _header_section(record)),
        ("Profile", _stages_section(record)),
        ("Flamegraph", _flame_section(record)),
        ("Quality vs baseline", _quality_section(record, baseline)),
        ("Congestion heatmap", _congestion_section(record)),
        ("Failure drill-down", _failures_section(record)),
        ("Search introspection", _search_section(record)),
        ("Counters", _counters_section(record)),
    ]
    body = "\n".join(
        f"<h2>{_esc(name)}</h2>\n{content}" for name, content in sections
    )
    return (
        "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>"
        f"<title>{_esc(title)}</title><style>{_CSS}</style></head>"
        f"<body><h1>{_esc(title)}</h1>\n{body}\n</body></html>"
    )


def write_html_report(
    path: str | Path,
    record: RunRecord,
    *,
    baseline: RunRecord | None = None,
    title: str | None = None,
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_html_report(record, baseline=baseline, title=title))
    return path
