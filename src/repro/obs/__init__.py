"""``repro.obs`` — the observability layer.

Three small, dependency-free pieces every other subsystem records into:

* :mod:`repro.obs.trace` — hierarchical span tracer with Chrome
  trace-event export and a plain-text profile tree;
* :mod:`repro.obs.counters` — process-local counters/histograms with
  cross-process snapshot merging;
* :mod:`repro.obs.logging` — structured ``repro.*`` logger setup.
"""

from .counters import Registry, get_registry, inc, observe, set_registry
from .logging import add_log_argument, get_logger, setup_logging
from .trace import (
    Span,
    Tracer,
    enable_tracing,
    get_tracer,
    set_tracer,
    span,
)

__all__ = [
    "Registry",
    "Span",
    "Tracer",
    "add_log_argument",
    "enable_tracing",
    "get_logger",
    "get_registry",
    "get_tracer",
    "inc",
    "observe",
    "set_registry",
    "set_tracer",
    "setup_logging",
    "span",
]
