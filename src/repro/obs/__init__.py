"""``repro.obs`` — the observability layer.

Tier 1 — live, in-process telemetry every other subsystem records into:

* :mod:`repro.obs.trace` — hierarchical span tracer with Chrome
  trace-event export and a plain-text profile tree;
* :mod:`repro.obs.counters` — process-local counters/histograms (with
  reservoir percentiles) and cross-process snapshot merging;
* :mod:`repro.obs.logging` — structured ``repro.*`` logger setup.

Tier 2 — durable, comparable run telemetry built on tier 1:

* :mod:`repro.obs.runlog` — the append-only JSONL run registry
  (:class:`RunRecord` / :class:`RunLog`) plus the regression gate;
* :mod:`repro.obs.congestion` — occupancy/crossover heatmaps read off
  the incremental :class:`~repro.route.index.PlaneIndex`;
* :mod:`repro.obs.report` — the self-contained HTML diagnostics report.
"""

from .congestion import CongestionMap
from .counters import Registry, get_registry, inc, observe, set_registry
from .logging import add_log_argument, get_logger, setup_logging
from .runlog import (
    Regression,
    RunLog,
    RunRecord,
    check_regressions,
    diff_records,
)
from .report import render_html_report, write_html_report
from .trace import (
    Span,
    TraceContext,
    Tracer,
    chrome_trace_document,
    chrome_trace_events,
    current_trace_context,
    enable_tracing,
    get_tracer,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    set_trace_context,
    set_tracer,
    span,
    trace_context_from_headers,
)
from .window import WINDOWS, RollingWindow

__all__ = [
    "CongestionMap",
    "Registry",
    "Regression",
    "RollingWindow",
    "RunLog",
    "RunRecord",
    "Span",
    "TraceContext",
    "Tracer",
    "WINDOWS",
    "add_log_argument",
    "check_regressions",
    "chrome_trace_document",
    "chrome_trace_events",
    "current_trace_context",
    "diff_records",
    "enable_tracing",
    "get_logger",
    "get_registry",
    "get_tracer",
    "inc",
    "new_span_id",
    "new_trace_id",
    "observe",
    "parse_traceparent",
    "render_html_report",
    "set_registry",
    "set_trace_context",
    "set_tracer",
    "setup_logging",
    "span",
    "trace_context_from_headers",
    "write_html_report",
]
