"""``repro.obs`` — the observability layer.

Tier 1 — live, in-process telemetry every other subsystem records into:

* :mod:`repro.obs.trace` — hierarchical span tracer with Chrome
  trace-event export and a plain-text profile tree;
* :mod:`repro.obs.counters` — process-local counters/histograms (with
  reservoir percentiles) and cross-process snapshot merging;
* :mod:`repro.obs.logging` — structured ``repro.*`` logger setup.

Tier 2 — durable, comparable run telemetry built on tier 1:

* :mod:`repro.obs.runlog` — the append-only JSONL run registry
  (:class:`RunRecord` / :class:`RunLog`) plus the regression gate;
* :mod:`repro.obs.congestion` — occupancy/crossover heatmaps read off
  the incremental :class:`~repro.route.index.PlaneIndex`;
* :mod:`repro.obs.report` — the self-contained HTML diagnostics report.
"""

from .congestion import CongestionMap
from .counters import Registry, get_registry, inc, observe, set_registry
from .logging import add_log_argument, get_logger, setup_logging
from .runlog import (
    Regression,
    RunLog,
    RunRecord,
    check_regressions,
    diff_records,
)
from .report import render_html_report, write_html_report
from .trace import (
    Span,
    Tracer,
    enable_tracing,
    get_tracer,
    set_tracer,
    span,
)

__all__ = [
    "CongestionMap",
    "Registry",
    "Regression",
    "RunLog",
    "RunRecord",
    "Span",
    "Tracer",
    "add_log_argument",
    "check_regressions",
    "diff_records",
    "enable_tracing",
    "get_logger",
    "get_registry",
    "get_tracer",
    "inc",
    "observe",
    "render_html_report",
    "set_registry",
    "set_tracer",
    "setup_logging",
    "span",
    "write_html_report",
]
