"""``repro.obs`` — the observability layer.

Tier 1 — live, in-process telemetry every other subsystem records into:

* :mod:`repro.obs.trace` — hierarchical span tracer with Chrome
  trace-event export and a plain-text profile tree;
* :mod:`repro.obs.counters` — process-local counters/histograms (with
  reservoir percentiles) and cross-process snapshot merging;
* :mod:`repro.obs.sampler` — the always-on stack-sampling profiler
  (span-attributed profile windows, cross-process shipping, HTML
  flamegraphs);
* :mod:`repro.obs.logging` — structured ``repro.*`` logger setup.

Tier 2 — durable, comparable run telemetry built on tier 1:

* :mod:`repro.obs.runlog` — the append-only JSONL run registry
  (:class:`RunRecord` / :class:`RunLog`) plus the regression gate;
* :mod:`repro.obs.congestion` — occupancy/crossover heatmaps read off
  the incremental :class:`~repro.route.index.PlaneIndex`;
* :mod:`repro.obs.report` — the self-contained HTML diagnostics report.
"""

from .congestion import CongestionMap
from .counters import Registry, get_registry, inc, observe, set_registry
from .logging import add_log_argument, get_logger, setup_logging
from .runlog import (
    Regression,
    RunLog,
    RunRecord,
    check_regressions,
    diff_records,
)
from .report import render_html_report, write_html_report
from .sampler import (
    ProfileWindow,
    Sampler,
    capture,
    ensure_sampler,
    get_sampler,
    label_thread,
    merge_windows,
    render_flamegraph_html,
    set_sampler,
    write_flamegraph_html,
)
from .trace import (
    Span,
    TraceContext,
    Tracer,
    active_span_paths,
    chrome_trace_document,
    chrome_trace_events,
    current_trace_context,
    enable_tracing,
    get_tracer,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    set_trace_context,
    set_tracer,
    span,
    trace_context_from_headers,
)
from .window import WINDOWS, RollingWindow

__all__ = [
    "CongestionMap",
    "ProfileWindow",
    "Registry",
    "Regression",
    "RollingWindow",
    "RunLog",
    "RunRecord",
    "Sampler",
    "Span",
    "TraceContext",
    "Tracer",
    "WINDOWS",
    "active_span_paths",
    "add_log_argument",
    "capture",
    "check_regressions",
    "chrome_trace_document",
    "chrome_trace_events",
    "current_trace_context",
    "diff_records",
    "enable_tracing",
    "ensure_sampler",
    "get_logger",
    "get_registry",
    "get_sampler",
    "get_tracer",
    "inc",
    "label_thread",
    "merge_windows",
    "new_span_id",
    "new_trace_id",
    "observe",
    "parse_traceparent",
    "render_flamegraph_html",
    "render_html_report",
    "set_registry",
    "set_sampler",
    "set_trace_context",
    "set_tracer",
    "setup_logging",
    "span",
    "trace_context_from_headers",
    "write_flamegraph_html",
    "write_html_report",
]
