"""Job specifications for the batch generation service.

A :class:`JobSpec` wraps one place-and-route request — a network plus
:class:`PabloOptions` and :class:`RouterOptions` — as an immutable,
hashable value.  The network is *canonically normalized* on construction
(modules, terminals, nets and pins sorted by name) and stored as a JSON
string, so two specs describing the same design compare, hash and digest
identically regardless of how the network was built up.

Because module iteration order influences placement, jobs are always
executed on the network rebuilt from the canonical form
(:meth:`JobSpec.build_network`), never on the original object: the digest
then fully determines the generated diagram, which is what makes the
content-addressed result cache sound.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field, fields

from ..core.geometry import Point, Side
from ..core.netlist import Module, Network, TermType
from ..place.pablo import PabloOptions
from ..route.eureka import RouterOptions
from ..route.line_expansion import CostOrder


class JobError(ValueError):
    """Raised for malformed job specifications or manifests."""


# -- network canonical form -----------------------------------------------


def network_to_dict(network: Network) -> dict:
    """Canonical JSON-able form of a network (sorted, content-only)."""
    return {
        "name": network.name,
        "modules": [
            {
                "name": m.name,
                "template": m.template,
                "width": m.width,
                "height": m.height,
                "terminals": [
                    {
                        "name": t.name,
                        "type": t.type.value,
                        "x": t.offset.x,
                        "y": t.offset.y,
                    }
                    for t in sorted(m.terminals.values(), key=lambda t: t.name)
                ],
            }
            for m in sorted(network.modules.values(), key=lambda m: m.name)
        ],
        "system_terminals": [
            {"name": s.name, "type": s.type.value}
            for s in sorted(network.system_terminals.values(), key=lambda s: s.name)
        ],
        "nets": [
            {
                "name": n.name,
                "pins": sorted(
                    [[p.module, p.terminal] for p in n.pins],
                    key=lambda pin: (pin[0] or "", pin[1]),
                ),
            }
            for n in sorted(network.nets.values(), key=lambda n: n.name)
        ],
    }


def network_from_dict(data: dict) -> Network:
    """Rebuild a network from its canonical form (in canonical order)."""
    try:
        net = Network(name=data["name"])
        for m in data["modules"]:
            module = Module(
                name=m["name"],
                width=m["width"],
                height=m["height"],
                template=m["template"],
            )
            for t in m["terminals"]:
                module.add_terminal(t["name"], TermType(t["type"]), Point(t["x"], t["y"]))
            net.add_module(module)
        for s in data["system_terminals"]:
            net.add_system_terminal(s["name"], TermType(s["type"]))
        for n in data["nets"]:
            net.connect(n["name"], *[(p[0], p[1]) if p[0] else p[1] for p in n["pins"]])
    except (KeyError, TypeError, ValueError) as exc:
        raise JobError(f"malformed network description: {exc}") from exc
    return net


# -- options <-> dict -----------------------------------------------------


def pablo_to_dict(options: PabloOptions) -> dict:
    d = {f.name: getattr(options, f.name) for f in fields(options)}
    if math.isinf(d["max_connections"]):
        d["max_connections"] = None
    return d


def pablo_from_dict(data: dict) -> PabloOptions:
    known = {f.name for f in fields(PabloOptions)}
    unknown = set(data) - known
    if unknown:
        raise JobError(f"unknown pablo option(s): {sorted(unknown)}")
    d = dict(data)
    if d.get("max_connections") is None and "max_connections" in d:
        d["max_connections"] = math.inf
    return PabloOptions(**d)


#: Router options that change how the work is *executed*, never what it
#: produces: serialized for round-tripping but excluded from the job
#: digest, so e.g. a ``parallel_nets`` run shares its cache entry with
#: the serial run it is guaranteed to match.  ``bidirectional`` is NOT
#: here — it may pick different equal-cost tie-break paths.
_EXECUTION_ONLY_OPTIONS = ("parallel_nets",)


def router_to_dict(options: RouterOptions) -> dict:
    return {
        "claimpoints": options.claimpoints,
        "cost_order": options.cost_order.name,
        "margin": options.margin,
        "fixed_sides": sorted(s.name for s in options.fixed_sides),
        "retry_failed": options.retry_failed,
        "net_order": options.net_order,
        "engine": options.engine,
        "bidirectional": options.bidirectional,
        "parallel_nets": options.parallel_nets,
    }


def router_from_dict(data: dict) -> RouterOptions:
    known = {f.name for f in fields(RouterOptions)}
    unknown = set(data) - known
    if unknown:
        raise JobError(f"unknown eureka option(s): {sorted(unknown)}")
    d = dict(data)
    try:
        if "cost_order" in d:
            d["cost_order"] = CostOrder[d["cost_order"]]
        if "fixed_sides" in d:
            d["fixed_sides"] = frozenset(Side[name] for name in d["fixed_sides"])
    except KeyError as exc:
        raise JobError(f"unknown router enum value: {exc}") from exc
    return RouterOptions(**d)


# -- the job spec ---------------------------------------------------------


@dataclass(frozen=True)
class JobSpec:
    """One generation request: canonical network + placement/routing knobs.

    ``name`` labels outputs and reports; it does **not** enter the digest,
    so two differently-named jobs over the same design share a cache entry.
    """

    name: str
    network_json: str = field(repr=False)
    pablo: PabloOptions = field(default_factory=PabloOptions)
    eureka: RouterOptions = field(default_factory=RouterOptions)

    @classmethod
    def from_network(
        cls,
        network: Network,
        pablo: PabloOptions | None = None,
        eureka: RouterOptions | None = None,
        *,
        name: str | None = None,
    ) -> "JobSpec":
        network.validate()
        canonical = json.dumps(
            network_to_dict(network), sort_keys=True, separators=(",", ":")
        )
        return cls(
            name=name or network.name,
            network_json=canonical,
            pablo=pablo or PabloOptions(),
            eureka=eureka or RouterOptions(),
        )

    @property
    def digest(self) -> str:
        """Stable content address of the work (network + options, not name
        or execution-strategy options that cannot change the output)."""
        eureka = router_to_dict(self.eureka)
        for key in _EXECUTION_ONLY_OPTIONS:
            eureka.pop(key, None)
        blob = json.dumps(
            {
                "network": json.loads(self.network_json),
                "pablo": pablo_to_dict(self.pablo),
                "eureka": eureka,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(blob.encode()).hexdigest()

    def build_network(self) -> Network:
        """The canonical network this job runs on."""
        return network_from_dict(json.loads(self.network_json))

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "network": json.loads(self.network_json),
            "pablo": pablo_to_dict(self.pablo),
            "eureka": router_to_dict(self.eureka),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        try:
            network = data["network"]
            name = data.get("name") or network.get("name", "job")
        except (TypeError, AttributeError) as exc:
            raise JobError(f"malformed job spec: {exc}") from exc
        # Round-trip through the model so hand-written manifests are
        # normalized (and validated) exactly like API-built specs.
        net = network_from_dict(network)
        net.validate()
        return cls.from_network(
            net,
            pablo_from_dict(data.get("pablo", {})),
            router_from_dict(data.get("eureka", {})),
            name=name,
        )
