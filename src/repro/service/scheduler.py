"""Batch scheduler: fan jobs across a process-pool worker fleet.

The unit of work is :func:`execute_job` — a module-level (hence picklable)
function that rebuilds the canonical network from a :class:`JobSpec`
payload, runs the full PABLO→EUREKA pipeline and returns a plain-dict
result (ESCHER text + metrics + timing), which is also exactly what the
:class:`~repro.service.cache.ResultCache` persists.

The scheduler guarantees:

* **deterministic ordering** — outcomes come back in submission order
  whatever the completion order or worker count;
* **per-job timeouts** — enforced *inside* the worker with ``SIGALRM``,
  so a slow job dies cleanly without poisoning the pool;
* **retry-once on worker crash** — a job whose process died (segfault,
  ``os._exit``, OOM kill) is resubmitted once on a fresh pool, because a
  crash may be collateral damage from a sibling breaking the pool;
* **progress streaming** — an optional callback fires as each job reaches
  its final outcome.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (gateway imports us)
    from ..gateway.pool import WorkerPool

from ..core.diagram import Diagram
from ..core.generator import generate
from ..formats.escher import read_escher, write_escher
from ..obs import get_logger, get_registry, get_tracer, span
from ..obs.counters import Registry, set_registry
from ..obs.runlog import RunLog, stages_from_spans
from ..obs.sampler import ensure_sampler
from ..obs.trace import Tracer, current_trace_context, set_tracer
from .cache import ResultCache
from .jobs import JobSpec

#: Final states a job can end in.  "ok" includes runs with unroutable
#: nets (they are reported, not fatal); only "ok" results are cached.
JOB_STATUSES = ("ok", "error", "timeout", "crashed")

ProgressCallback = Callable[["JobOutcome", int, int], None]


class JobTimeout(BaseException):
    """Raised by the alarm handler inside a worker.

    Derives from ``BaseException`` so the pipeline's own ``except
    Exception`` error reporting cannot swallow it.
    """


@dataclass
class JobOutcome:
    """Final result of one scheduled job."""

    spec: JobSpec
    status: str
    payload: dict | None = None
    from_cache: bool = False
    attempts: int = 0
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def timing(self) -> dict:
        return dict(self.payload.get("timing", {})) if self.payload else {}

    @property
    def metrics(self) -> dict:
        return dict(self.payload.get("metrics", {})) if self.payload else {}

    @property
    def failed_nets(self) -> list[str]:
        return list(self.payload.get("failed_nets", [])) if self.payload else []

    @property
    def failure_reasons(self) -> dict[str, str]:
        """``{net: why}`` for the job's unroutable nets (may be empty for
        payloads produced before reasons were recorded)."""
        return dict(self.payload.get("failure_reasons", {})) if self.payload else {}

    def load_diagram(self) -> Diagram:
        """Rebuild the routed diagram from the ESCHER text in the payload."""
        if not self.payload or "escher" not in self.payload:
            raise ValueError(f"job {self.spec.name!r} has no diagram ({self.status})")
        return read_escher(self.payload["escher"], self.spec.build_network())


def execute_job(payload: dict, progress: Callable[[str], None] | None = None) -> dict:
    """Run one job (a ``JobSpec.to_dict()`` payload) through the pipeline.

    Returns a JSON-able dict; never raises for pipeline errors (they come
    back as ``status: "error"``) so a pool worker survives bad inputs.
    ``progress`` (when the caller supports it — the persistent
    :class:`~repro.gateway.pool.WorkerPool` does) receives per-stage
    notifications that the gateway streams to WebSocket subscribers.
    """
    started = time.perf_counter()
    started_epoch = time.time()
    # The always-on sampler survives across jobs in a pool worker; each
    # job ships only the profile windows that overlap its own run.
    sampler = ensure_sampler()
    # Record the job under a private tracer/registry: the spans and
    # counters travel back in the payload and are re-parented into the
    # parent process's trace by the scheduler.
    tracer = Tracer(enabled=True)
    registry = Registry()
    previous_tracer = set_tracer(tracer)
    previous_registry = set_registry(registry)
    # When a gateway request's trace context rode along (installed by the
    # pool's worker loop), stamp its trace id on the root span and the
    # result so the parent can re-parent the spans under the request.
    context = current_trace_context()
    try:
        spec = JobSpec.from_dict(payload)
        root_attrs = {"job": spec.name}
        if context is not None:
            root_attrs["trace_id"] = context.trace_id
        with tracer.span("job", **root_attrs):
            result = generate(
                spec.build_network(), spec.pablo, spec.eureka, progress=progress
            )
        return {
            "status": "ok",
            "name": spec.name,
            **({"trace_id": context.trace_id} if context is not None else {}),
            "escher": write_escher(result.diagram),
            "metrics": dict(result.metrics.as_row()),
            "timing": dict(result.timing_row),
            "failed_nets": [str(n) for n in result.routing.failed_nets],
            "failure_reasons": {
                net: reason.value
                for net, reason in result.routing.failure_reasons.items()
            },
            "congestion": result.routing.congestion,
            "search": dict(getattr(result.routing, "search_detail", {}) or {}),
            "seconds": round(time.perf_counter() - started, 4),
            "trace": tracer.export_roots(),
            "counters": registry.snapshot(),
            "profile": (
                sampler.export(since=started_epoch) if sampler is not None else []
            ),
        }
    except Exception as exc:  # noqa: BLE001 — worker must not die on bad jobs
        return {
            "status": "error",
            "name": payload.get("name", "?"),
            "error": f"{type(exc).__name__}: {exc}",
            "metrics": {},
            "timing": {},
            "seconds": round(time.perf_counter() - started, 4),
        }
    finally:
        set_tracer(previous_tracer)
        set_registry(previous_registry)


def _alarm(_signum, _frame):  # pragma: no cover - fires inside workers
    raise JobTimeout()


def run_with_timeout(worker, timeout: float | None, payload: dict) -> dict:
    """Top-level worker wrapper enforcing a wall-clock budget via SIGALRM."""
    if not timeout or not hasattr(signal, "SIGALRM"):
        return worker(payload)
    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return worker(payload)
    except JobTimeout:
        return {
            "status": "timeout",
            "name": payload.get("name", "?"),
            "error": f"exceeded {timeout:g}s budget",
            "metrics": {},
            "timing": {},
            "seconds": timeout,
        }
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@dataclass
class BatchScheduler:
    """Fan a batch of :class:`JobSpec` s over a process pool.

    ``worker`` must be a picklable module-level callable taking the job
    payload dict and returning a result dict — :func:`execute_job` unless
    a test (or an alternative pipeline) substitutes its own.
    """

    max_workers: int = field(default_factory=lambda: os.cpu_count() or 1)
    timeout: float | None = None
    cache: ResultCache | None = None
    retry_crashed: bool = True
    worker: Callable[[dict], dict] = execute_job
    #: Aggregate of every fresh job's worker-side counters, merged as the
    #: outcomes land (cache hits contribute nothing — no work was done).
    counters: Registry = field(default_factory=Registry)
    #: When set, the parent appends one RunRecord per job as outcomes
    #: land (the workers never touch the registry file themselves).
    runlog: RunLog | None = None
    #: A warm :class:`~repro.gateway.pool.WorkerPool` to dispatch on
    #: instead of spinning up a fresh ``ProcessPoolExecutor`` per round.
    #: The pool is *borrowed*: its worker/timeout/retry settings govern
    #: execution and the caller owns its lifecycle (``artwork-batch
    #: --keep-warm`` reuses one pool across manifests this way).
    pool: "WorkerPool | None" = None
    #: Jobs whose first (probe) execution finishes within this budget are
    #: presumed spawn-dominated and the whole batch runs serially in the
    #: parent — for the paper's sub-30ms artworks this beats any pool, so
    #: four workers are never slower than one.  Set to 0/None to always
    #: fan out.  Only engages for the stock :func:`execute_job` worker.
    serial_threshold: float | None = 0.03

    #: Payload keys that describe *how* a run went, not *what* it made —
    #: merged into the parent's telemetry on arrival and kept out of the
    #: result cache (a warm hit must not replay the original run's spans
    #: or claim its profile windows).
    TRANSIENT_KEYS = ("trace", "counters", "trace_id", "profile")

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ValueError("max_workers must be at least 1")

    def run(
        self,
        specs: Sequence[JobSpec],
        progress: ProgressCallback | None = None,
    ) -> list[JobOutcome]:
        """Execute every spec; outcomes are returned in submission order."""
        specs = list(specs)
        outcomes: list[JobOutcome | None] = [None] * len(specs)
        done = 0

        def finish(index: int, outcome: JobOutcome) -> None:
            nonlocal done
            outcomes[index] = outcome
            done += 1
            self._record(outcome)
            if (
                self.cache is not None
                and outcome.ok
                and not outcome.from_cache
            ):
                try:
                    self.cache.put(
                        specs[index],
                        {
                            k: v
                            for k, v in outcome.payload.items()
                            if k not in self.TRANSIENT_KEYS
                        },
                    )
                except OSError:
                    # A failed store costs the cache entry, not the batch.
                    self.counters.inc("service.cache_errors")
                    get_registry().inc("service.cache_errors")
            if progress is not None:
                progress(outcome, done, len(specs))

        with span("batch.run", jobs=len(specs), workers=self.max_workers):
            pending: list[int] = []
            for i, spec in enumerate(specs):
                payload = self.cache.get(spec) if self.cache is not None else None
                if payload is not None:
                    finish(
                        i, JobOutcome(spec, payload["status"], payload, from_cache=True)
                    )
                else:
                    pending.append(i)

            attempt = 0
            while pending:
                attempt += 1
                if self.pool is not None:
                    crashed = self._run_round_pool(specs, pending, attempt, finish)
                else:
                    if attempt == 1:
                        pending = self._serial_fast_path(specs, pending, finish)
                        if not pending:
                            break
                    crashed = self._run_round(specs, pending, attempt, finish)
                if not crashed or not self.retry_crashed or attempt >= 2:
                    for i in crashed:
                        finish(
                            i,
                            JobOutcome(
                                specs[i],
                                "crashed",
                                attempts=attempt,
                                error="worker process died",
                            ),
                        )
                    break
                pending = crashed  # one fresh-pool retry round

        assert all(o is not None for o in outcomes)
        return outcomes  # type: ignore[return-value]

    def _record(self, outcome: JobOutcome) -> None:
        """Fold one outcome's telemetry into the parent-process obs state:
        worker spans are re-parented into the live trace, worker counters
        merge into both the scheduler's and the global registry."""
        registry = get_registry()
        payload = outcome.payload or {}
        job_wall = float(payload.get("seconds", 0.0) or 0.0)
        for reg in (self.counters, registry):
            reg.inc("service.jobs")
            reg.inc(f"service.status.{outcome.status}")
            reg.inc(
                "service.cache_hits" if outcome.from_cache else "service.cache_misses"
            )
            if not outcome.from_cache:
                # Job wall time as a histogram so percentiles land in the
                # run registry, not just the human-readable report dict.
                reg.observe("service.job_wall_s", job_wall)
        worker_counters = payload.get("counters")
        if worker_counters and not outcome.from_cache:
            self.counters.merge(worker_counters)
            registry.merge(worker_counters)
        if self.runlog is not None:
            self.runlog.record(
                kind="job",
                name=outcome.spec.name,
                wall_seconds=job_wall,
                spec_digest=outcome.spec.digest,
                stages=stages_from_spans(payload.get("trace") or []),
                counters=worker_counters or {"counters": {}, "histograms": {}},
                metrics=outcome.metrics,
                failures={
                    net: {"reason": reason}
                    for net, reason in outcome.failure_reasons.items()
                },
                congestion=dict(payload.get("congestion", {}) or {}),
                profile="",
                profile_windows=list(payload.get("profile") or []),
                extra={
                    "status": outcome.status,
                    "from_cache": outcome.from_cache,
                    "attempts": outcome.attempts,
                    "error": outcome.error or "",
                    **(
                        {"search": payload["search"]}
                        if payload.get("search") else {}
                    ),
                },
            )
        tracer = get_tracer()
        if tracer.enabled:
            job_label = f"job:{outcome.spec.name}"
            roots = payload.get("trace") or []
            if roots and not outcome.from_cache:
                for root in roots:
                    tracer.adopt(root, label=job_label)
            else:
                with tracer.span(job_label, status=outcome.status,
                                 cached=outcome.from_cache):
                    pass
        if not outcome.ok:
            get_logger("service.scheduler").warning(
                "job did not finish ok",
                extra={
                    "fields": {
                        "job": outcome.spec.name,
                        "status": outcome.status,
                        "error": outcome.error or "",
                    }
                },
            )

    def _run_round(
        self,
        specs: Sequence[JobSpec],
        indices: list[int],
        attempt: int,
        finish: Callable[[int, JobOutcome], None],
    ) -> list[int]:
        """Run one pool round; returns indices whose worker crashed."""
        crashed: list[int] = []
        workers = min(self.max_workers, len(indices))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures: dict[Future, int] = {
                pool.submit(
                    run_with_timeout, self.worker, self.timeout, specs[i].to_dict()
                ): i
                for i in indices
            }
            remaining = set(futures)
            while remaining:
                finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in finished:
                    i = futures[future]
                    try:
                        payload = future.result()
                    except BrokenProcessPool:
                        crashed.append(i)
                        continue
                    except Exception as exc:  # pool plumbing failure
                        finish(
                            i,
                            JobOutcome(
                                specs[i],
                                "error",
                                attempts=attempt,
                                error=f"{type(exc).__name__}: {exc}",
                            ),
                        )
                        continue
                    finish(
                        i,
                        JobOutcome(
                            specs[i],
                            payload.get("status", "error"),
                            payload,
                            attempts=attempt,
                            error=payload.get("error"),
                        ),
                    )
        crashed.sort()
        return crashed

    def _run_inline(self, payload: dict) -> dict:
        """Run one job in the parent process (the serial fast path).

        ``SIGALRM`` timeouts only work on the main thread; elsewhere the
        job simply runs unbudgeted — acceptable because the fast path
        only engages after a probe proved jobs finish in milliseconds.
        """
        if threading.current_thread() is threading.main_thread():
            return run_with_timeout(self.worker, self.timeout, payload)
        return self.worker(payload)

    def _serial_fast_path(
        self,
        specs: Sequence[JobSpec],
        indices: list[int],
        finish: Callable[[int, JobOutcome], None],
    ) -> list[int]:
        """Probe the first pending job in-parent; when it proves cheaper
        than a process spawn, drain the whole batch serially.  Returns the
        indices still pending for the pool (empty when drained).

        Restricted to the stock :func:`execute_job` worker: substituted
        test workers may crash on purpose (``os._exit``), which must stay
        inside a child process.
        """
        if (
            not indices
            or not self.serial_threshold
            or self.worker is not execute_job
        ):
            return indices
        probe, rest = indices[0], indices[1:]
        with span("batch.serial_probe", job=specs[probe].name):
            started = time.perf_counter()
            payload = self._run_inline(specs[probe].to_dict())
            probe_wall = time.perf_counter() - started
        finish(
            probe,
            JobOutcome(
                specs[probe],
                payload.get("status", "error"),
                payload,
                attempts=1,
                error=payload.get("error"),
            ),
        )
        if probe_wall > self.serial_threshold:
            return rest  # real work: fan the remainder out to processes
        for reg in (self.counters, get_registry()):
            reg.inc("service.serial_fast_path")
        for i in rest:
            payload = self._run_inline(specs[i].to_dict())
            finish(
                i,
                JobOutcome(
                    specs[i],
                    payload.get("status", "error"),
                    payload,
                    attempts=1,
                    error=payload.get("error"),
                ),
            )
        return []

    def _run_round_pool(
        self,
        specs: Sequence[JobSpec],
        indices: list[int],
        attempt: int,
        finish: Callable[[int, JobOutcome], None],
    ) -> list[int]:
        """Dispatch one round on the borrowed persistent pool.

        The pool already owns crash-retry and timeout semantics (crashed
        jobs come back as ``status: "crashed"`` payloads after its own
        retry), so this round never reports crashes for re-dispatch.
        """
        results: dict[int, tuple[dict, int]] = {}
        all_done = threading.Event()
        lock = threading.Lock()

        def make_callback(i: int) -> Callable[[dict, int], None]:
            def callback(payload: dict, attempts: int) -> None:
                with lock:
                    results[i] = (payload, attempts)
                    if len(results) == len(indices):
                        all_done.set()

            return callback

        for i in indices:
            if self.timeout is not None:
                self.pool.submit(
                    specs[i].to_dict(), timeout=self.timeout, callback=make_callback(i)
                )
            else:  # defer to the pool's own configured budget
                self.pool.submit(specs[i].to_dict(), callback=make_callback(i))
        all_done.wait()
        for i in indices:  # deterministic submission order, as ever
            payload, attempts = results[i]
            finish(
                i,
                JobOutcome(
                    specs[i],
                    payload.get("status", "error"),
                    payload,
                    attempts=attempts,
                    error=payload.get("error"),
                ),
            )
        return []
