"""Content-addressed result cache for generation jobs.

Results are stored on disk keyed by :attr:`JobSpec.digest`.  Each entry is
a directory ``<root>/<digest[:2]>/<digest>`` holding

* ``diagram.es`` — the routed diagram in the ESCHER interchange format
  (the same bytes the batch CLI emits), and
* ``result.json`` — a sidecar with the metrics, timing row and routing
  outcome, so warm hits never recompute anything.

The cache is deliberately forgiving: a corrupt or truncated entry (bad
magic, unparsable JSON, missing file) is evicted on read and counted as a
miss, so a crashed writer can never poison future runs.  An optional
``max_entries`` bound evicts least-recently-used entries on insert.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import asdict, dataclass
from pathlib import Path

from ..faults import fault
from ..formats.escher import MAGIC
from .jobs import JobSpec

DIAGRAM_FILE = "diagram.es"
RESULT_FILE = "result.json"

#: result.json keys every valid entry must carry.
_REQUIRED_KEYS = ("status", "metrics", "timing")


@dataclass
class CacheStats:
    """Counters since this cache object was created."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    corrupt: int = 0

    @property
    def hit_rate(self) -> float:
        looked = self.hits + self.misses
        return self.hits / looked if looked else 0.0

    def as_row(self) -> dict:
        return {**asdict(self), "hit_rate": round(self.hit_rate, 3)}


class ResultCache:
    """Disk-backed map from job digest to generation result payload."""

    def __init__(self, root: str | Path, *, max_entries: int | None = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.stats = CacheStats()

    # -- addressing ---------------------------------------------------

    def entry_dir(self, digest: str) -> Path:
        return self.root / digest[:2] / digest

    def _entries(self) -> list[Path]:
        return [d for shard in self.root.iterdir() if shard.is_dir()
                for d in shard.iterdir() if d.is_dir()]

    def __len__(self) -> int:
        return len(self._entries())

    def __contains__(self, spec: JobSpec) -> bool:
        return (self.entry_dir(spec.digest) / RESULT_FILE).exists()

    # -- read ---------------------------------------------------------

    def get(self, spec: JobSpec) -> dict | None:
        """The stored result payload for a spec, or ``None`` on miss.

        The returned dict is what :func:`repro.service.scheduler.execute_job`
        produced: ``status``, ``escher`` (diagram text), ``metrics``,
        ``timing``, ``failed_nets`` and ``seconds``.
        """
        entry = self.entry_dir(spec.digest)
        diagram_path = entry / DIAGRAM_FILE
        result_path = entry / RESULT_FILE
        if not result_path.exists():
            self.stats.misses += 1
            return None
        try:
            fault("cache.read")  # injectable bad-sector read
            payload = json.loads(result_path.read_text())
            escher = diagram_path.read_text()
            if not isinstance(payload, dict) or any(
                key not in payload for key in _REQUIRED_KEYS
            ):
                raise ValueError("result sidecar is missing required keys")
            if not escher.startswith(MAGIC):
                raise ValueError("diagram file lost its ESCHER magic")
        except (OSError, ValueError) as _corruption:
            self.stats.corrupt += 1
            self.stats.misses += 1
            self.evict(spec.digest)
            return None
        payload["escher"] = escher
        self.stats.hits += 1
        os.utime(entry)  # refresh LRU clock
        return payload

    # -- write --------------------------------------------------------

    def put(self, spec: JobSpec, payload: dict) -> Path:
        """Persist a result payload; returns the entry directory."""
        entry = self.entry_dir(spec.digest)
        entry.mkdir(parents=True, exist_ok=True)
        sidecar = {k: v for k, v in payload.items() if k != "escher"}
        sidecar.setdefault("name", spec.name)
        sidecar["digest"] = spec.digest
        fault("cache.write")  # injectable disk-full / IO error
        # Each file lands atomically (temp + rename on the same filesystem),
        # and the diagram lands before the sidecar: readers only trust
        # entries whose sidecar exists, so no crash point — mid-file or
        # between files — can expose a truncated entry.
        self._write_atomic(entry / DIAGRAM_FILE, payload.get("escher", ""))
        self._write_atomic(entry / RESULT_FILE, json.dumps(sidecar, indent=1))
        self.stats.stores += 1
        if self.max_entries is not None:
            self._trim()
        return entry

    @staticmethod
    def _write_atomic(path: Path, text: str) -> None:
        """Write-then-rename so a crash mid-write never leaves a
        truncated file at ``path`` for the corruption path to evict."""
        tmp = path.with_name(path.name + ".tmp")
        try:
            with open(tmp, "w") as fh:
                fh.write(text)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except OSError:
            tmp.unlink(missing_ok=True)
            raise

    def evict(self, digest: str) -> bool:
        entry = self.entry_dir(digest)
        if not entry.exists():
            return False
        shutil.rmtree(entry, ignore_errors=True)
        self.stats.evictions += 1
        return True

    def clear(self) -> int:
        """Drop every entry; returns how many were removed."""
        removed = 0
        for entry in self._entries():
            shutil.rmtree(entry, ignore_errors=True)
            removed += 1
        self.stats.evictions += removed
        return removed

    def _trim(self) -> None:
        entries = self._entries()
        excess = len(entries) - (self.max_entries or 0)
        if excess <= 0:
            return
        entries.sort(key=lambda d: d.stat().st_mtime)
        for stale in entries[:excess]:
            shutil.rmtree(stale, ignore_errors=True)
            self.stats.evictions += 1
