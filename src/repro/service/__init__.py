"""Batch job orchestration: specs, content-addressed caching, scheduling.

The service layer turns the blocking one-network ``generate()`` call into
a job-oriented pipeline: hashable :class:`JobSpec` s, a disk-backed
:class:`ResultCache` keyed on the spec digest, and a
:class:`BatchScheduler` that fans batches across a process pool.  The
``artwork-batch`` CLI front end lives in :mod:`repro.cli`.
"""

from .cache import CacheStats, ResultCache
from .jobs import (
    JobError,
    JobSpec,
    network_from_dict,
    network_to_dict,
    pablo_from_dict,
    pablo_to_dict,
    router_from_dict,
    router_to_dict,
)
from .scheduler import (
    BatchScheduler,
    JobOutcome,
    JobTimeout,
    execute_job,
    run_with_timeout,
)

__all__ = [
    "CacheStats",
    "ResultCache",
    "JobError",
    "JobSpec",
    "network_from_dict",
    "network_to_dict",
    "pablo_from_dict",
    "pablo_to_dict",
    "router_from_dict",
    "router_to_dict",
    "BatchScheduler",
    "JobOutcome",
    "JobTimeout",
    "execute_job",
    "run_with_timeout",
]
