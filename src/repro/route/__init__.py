"""Routing: the line-expansion router (EUREKA) and baselines."""

from .plane import DEFAULT_MARGIN, Plane
from .line_expansion import (
    CostOrder,
    RouteResult,
    SearchStats,
    route_connection,
    start_directions_for,
)
from .claimpoints import place_claims, release_net_claims
from .eureka import RouterOptions, RoutingReport, route_diagram
from .lee import route_lee
from .hightower import route_hightower
from .channel import ChannelPin, ChannelRoute, channel_density, route_channel
from .ripup import RipupReport, reroute_failed
from .interval_expansion import route_connection_intervals
from .index import NetView, PlaneIndex
from .reference import route_connection_reference

__all__ = [
    "DEFAULT_MARGIN",
    "Plane",
    "CostOrder",
    "RouteResult",
    "SearchStats",
    "route_connection",
    "start_directions_for",
    "place_claims",
    "release_net_claims",
    "RouterOptions",
    "RoutingReport",
    "route_diagram",
    "route_lee",
    "route_hightower",
    "ChannelPin",
    "ChannelRoute",
    "channel_density",
    "route_channel",
    "RipupReport",
    "reroute_failed",
    "route_connection_intervals",
    "NetView",
    "PlaneIndex",
    "route_connection_reference",
]
