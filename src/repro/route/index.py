"""The incremental routing-plane index.

Both line-expansion engines used to rebuild a flat per-net snapshot of
the whole plane — copying ``blocked | claims`` and re-scanning every
``usage`` point — for *every connection of every net*, making routing
O(nets x plane-size) before a single state was expanded.  This module
replaces that rebuild with a persistent :class:`PlaneIndex` the
:class:`~repro.route.plane.Plane` maintains incrementally on every
mutation (``block_rect``, ``add_claim``, ``release_claims``,
``add_net_path``).

The index keeps *global* aggregates over all nets:

* ``h_block``/``v_block`` — per point, how many nets forbid a wire
  moving horizontally/vertically through it (node points, degenerate
  single-point wires and parallel wire segments all contribute),
* ``cross_h``/``cross_v`` — per point, the total crossover count a
  horizontal/vertical passage would pay over all nets,
* ``occ`` — per point, how many nets use it at all (the ``foreign_any``
  set of the old snapshot, before removing the querying net),
* ``contrib`` — per net, that net's own contribution at every point it
  uses, which is what makes a per-connection view an O(own net) overlay
  ("all minus own net") instead of an O(plane) rebuild,
* per-row/per-column sorted obstacle coordinates, so straight sweeps can
  jump to the next obstacle with a bisect instead of probing point by
  point,
* lazily built per-row/per-column *crossing prefix sums*, so the A*'s
  crossover-aware lower bound can ask "how many crossings would a
  straight run over ``[a..b]`` pay" in O(log row) instead of O(b-a).

A :class:`NetView` is the routers' per-connection window: it references
the global maps (the ``hard`` set of blocked and claimed points is never
copied) plus four small per-net exception sets/dicts computed from the
net's own contribution map.

Invariants (checked by ``tests/test_route_index.py`` against a
rebuilt-from-scratch reference):

* for every point ``p`` and net ``n``: ``contrib[n][p]`` equals the
  contribution recomputed from ``plane.usage``/``plane.nodes``,
* ``h_block[p] == sum(contrib[n][p].hb)`` and point sets mirror the
  positive counts (same for ``v_block``/``cross_*``/``occ``),
* every point of ``blocked | claims`` or with a positive axis block
  count appears in its row/column obstacle set, and nothing else does.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING, Hashable, Iterable

from ..core.geometry import Orientation, Point

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .plane import Plane

_ZERO = (0, 0, 0, 0)


def _prefix_entry(line: "dict[int, int] | tuple"):
    """Sorted coordinates + running prefix sums for one line's crossing
    counts; ``sums[i]`` is the total over ``coords[:i]``."""
    if not line:
        return [], [0]
    coords = sorted(line)
    sums = [0] * (len(coords) + 1)
    total = 0
    for i, c in enumerate(coords):
        total += line[c]
        sums[i + 1] = total
    return coords, sums


class IndexedPointSet(set):
    """A ``set`` of points that notifies the index on every mutation.

    ``Plane.blocked`` is a public field that callers (and tests) mutate
    directly — ``plane.blocked.add(p)`` — so the hook has to live on the
    container itself, not on ``Plane`` methods.
    """

    def __init__(self, index: "PlaneIndex", points: Iterable[Point] = ()) -> None:
        super().__init__()
        self._index = index
        self.update(points)

    def add(self, point) -> None:  # type: ignore[override]
        if point not in self:
            set.add(self, point)
            self._index.blocked_added(point)

    def update(self, *others) -> None:  # type: ignore[override]
        for other in others:
            for point in other:
                self.add(point)

    def __ior__(self, other):  # type: ignore[override]
        self.update(other)
        return self

    def discard(self, point) -> None:  # type: ignore[override]
        if point in self:
            set.discard(self, point)
            self._index.blocked_removed(point)

    def remove(self, point) -> None:  # type: ignore[override]
        if point not in self:
            raise KeyError(point)
        self.discard(point)

    def clear(self) -> None:  # type: ignore[override]
        for point in list(self):
            self.discard(point)


class PlaneIndex:
    """Incremental aggregates of a :class:`Plane`'s obstacle field."""

    __slots__ = (
        "plane",
        "h_block",
        "v_block",
        "blocked_h_pts",
        "blocked_v_pts",
        "cross_h",
        "cross_v",
        "occ",
        "occ_pts",
        "contrib",
        "_rows",
        "_cols",
        "_rows_sorted",
        "_cols_sorted",
        "_cross_by_row",
        "_cross_by_col",
        "_cross_rows",
        "_cross_cols",
    )

    def __init__(self, plane: "Plane") -> None:
        self.plane = plane
        # point -> number of nets blocking horizontal/vertical entry
        self.h_block: dict[Point, int] = {}
        self.v_block: dict[Point, int] = {}
        # membership mirrors of the positive counts (hot-loop probes)
        self.blocked_h_pts: set[Point] = set()
        self.blocked_v_pts: set[Point] = set()
        # point -> total crossings for horizontal/vertical passage
        self.cross_h: dict[Point, int] = {}
        self.cross_v: dict[Point, int] = {}
        # point -> number of nets using it (any orientation)
        self.occ: dict[Point, int] = {}
        self.occ_pts: set[Point] = set()
        # net -> point -> (h_block, v_block, cross_h, cross_v) contribution
        self.contrib: dict[str, dict[Point, tuple[int, int, int, int]]] = {}
        # y -> xs blocking horizontal movement / x -> ys blocking vertical
        # movement (hard points block both axes; wire blocks one each).
        self._rows: dict[int, set[int]] = {}
        self._cols: dict[int, set[int]] = {}
        self._rows_sorted: dict[int, list[int]] = {}
        self._cols_sorted: dict[int, list[int]] = {}
        # Eager per-line crossing counts (y -> x -> cross_h, x -> y ->
        # cross_v) plus lazily sorted (coords, prefix sums) caches the
        # range queries bisect; a cache entry drops whenever a crossing
        # count on its line changes.
        self._cross_by_row: dict[int, dict[int, int]] = {}
        self._cross_by_col: dict[int, dict[int, int]] = {}
        self._cross_rows: dict[int, tuple[list[int], list[int]]] = {}
        self._cross_cols: dict[int, tuple[list[int], list[int]]] = {}

    # -- plane mutation hooks -------------------------------------------

    def blocked_added(self, p: Point) -> None:
        self._static_add(p)

    def blocked_removed(self, p: Point) -> None:
        self._static_remove(p)

    def claim_added(self, p: Point) -> None:
        self._static_add(p)

    def claim_removed(self, p: Point) -> None:
        self._static_remove(p)

    def net_path_added(self, net: str, points: Iterable[Point]) -> None:
        """Refresh ``net``'s contribution at every covered point of a
        newly registered path (orientations may have grown, vertices may
        have become nodes)."""
        plane = self.plane
        usage = plane.usage
        nodes = plane.nodes.get(net, ())
        horizontal = Orientation.HORIZONTAL
        vertical = Orientation.VERTICAL
        cmap = self.contrib.setdefault(net, {})
        for p in points:
            oris = usage[p][net]
            if p in nodes or not oris:
                new = (1, 1, 0, 0)
            else:
                hb = 1 if horizontal in oris else 0
                vb = 1 if vertical in oris else 0
                new = (hb, vb, vb, hb)
            self._apply(net, cmap, p, new)

    def remove_net(self, net: str) -> None:
        """Unwind every contribution of ``net`` in O(own net), leaving
        the index identical to one rebuilt from scratch off a plane that
        never saw the net (the speculative-rollback requirement)."""
        cmap = self.contrib.pop(net, None)
        if not cmap:
            return
        for p, old in cmap.items():
            self._apply_delta(p, old)
            n = self.occ[p] - 1
            if n:
                self.occ[p] = n
            else:
                del self.occ[p]
                self.occ_pts.discard(p)

    def _apply_delta(self, p: Point, old: tuple[int, int, int, int]) -> None:
        """Subtract a contribution tuple from the per-point aggregates."""
        dhb = -old[0]
        if dhb:
            n = self.h_block.get(p, 0) + dhb
            if n:
                self.h_block[p] = n
            else:
                del self.h_block[p]
                self.blocked_h_pts.discard(p)
                self._row_maybe_remove(p)
        dvb = -old[1]
        if dvb:
            n = self.v_block.get(p, 0) + dvb
            if n:
                self.v_block[p] = n
            else:
                del self.v_block[p]
                self.blocked_v_pts.discard(p)
                self._col_maybe_remove(p)
        if old[2]:
            self._cross_h_change(p, -old[2])
        if old[3]:
            self._cross_v_change(p, -old[3])

    def rebuild(self) -> None:
        """Ingest a pre-populated plane (dataclass construction with
        existing claims/usage; ``blocked`` notifies through its own
        container)."""
        for p in self.plane.claims:
            self.claim_added(p)
        per_net: dict[str, set[Point]] = {}
        for p, nets in self.plane.usage.items():
            for net in nets:
                per_net.setdefault(net, set()).add(p)
        for net, points in per_net.items():
            self.net_path_added(net, points)

    # -- internals ------------------------------------------------------

    def _apply(
        self,
        net: str,
        cmap: dict[Point, tuple[int, int, int, int]],
        p: Point,
        new: tuple[int, int, int, int],
    ) -> None:
        old = cmap.get(p)
        if old == new:
            return
        if old is None:
            old = _ZERO
            n = self.occ.get(p, 0) + 1
            self.occ[p] = n
            if n == 1:
                self.occ_pts.add(p)
        cmap[p] = new
        dhb = new[0] - old[0]
        if dhb:
            n = self.h_block.get(p, 0) + dhb
            if n:
                self.h_block[p] = n
            else:
                del self.h_block[p]
            if n == dhb and dhb > 0:  # 0 -> positive
                self.blocked_h_pts.add(p)
                self._row_add(p)
            elif not n:
                self.blocked_h_pts.discard(p)
                self._row_maybe_remove(p)
        dvb = new[1] - old[1]
        if dvb:
            n = self.v_block.get(p, 0) + dvb
            if n:
                self.v_block[p] = n
            else:
                del self.v_block[p]
            if n == dvb and dvb > 0:
                self.blocked_v_pts.add(p)
                self._col_add(p)
            elif not n:
                self.blocked_v_pts.discard(p)
                self._col_maybe_remove(p)
        dch = new[2] - old[2]
        if dch:
            self._cross_h_change(p, dch)
        dcv = new[3] - old[3]
        if dcv:
            self._cross_v_change(p, dcv)

    def _cross_h_change(self, p: Point, delta: int) -> None:
        n = self.cross_h.get(p, 0) + delta
        row = self._cross_by_row.setdefault(p.y, {})
        if n:
            self.cross_h[p] = n
            row[p.x] = n
        else:
            del self.cross_h[p]
            del row[p.x]
            if not row:
                del self._cross_by_row[p.y]
        self._cross_rows.pop(p.y, None)

    def _cross_v_change(self, p: Point, delta: int) -> None:
        n = self.cross_v.get(p, 0) + delta
        col = self._cross_by_col.setdefault(p.x, {})
        if n:
            self.cross_v[p] = n
            col[p.y] = n
        else:
            del self.cross_v[p]
            del col[p.y]
            if not col:
                del self._cross_by_col[p.x]
        self._cross_cols.pop(p.x, None)

    def _static_add(self, p: Point) -> None:
        """A blocked/claimed point obstructs movement on both axes."""
        self._row_add(p)
        self._col_add(p)

    def _static_remove(self, p: Point) -> None:
        self._row_maybe_remove(p)
        self._col_maybe_remove(p)

    def _row_add(self, p: Point) -> None:
        row = self._rows.get(p.y)
        if row is None:
            row = self._rows[p.y] = set()
        if p.x not in row:
            row.add(p.x)
            self._rows_sorted.pop(p.y, None)

    def _col_add(self, p: Point) -> None:
        col = self._cols.get(p.x)
        if col is None:
            col = self._cols[p.x] = set()
        if p.y not in col:
            col.add(p.y)
            self._cols_sorted.pop(p.x, None)

    def _row_maybe_remove(self, p: Point) -> None:
        """Drop ``p`` from its row unless another source still blocks
        horizontal movement there."""
        if (
            p in self.plane.blocked
            or p in self.plane.claims
            or p in self.blocked_h_pts
        ):
            return
        row = self._rows.get(p.y)
        if row and p.x in row:
            row.discard(p.x)
            if not row:
                del self._rows[p.y]
            self._rows_sorted.pop(p.y, None)

    def _col_maybe_remove(self, p: Point) -> None:
        if (
            p in self.plane.blocked
            or p in self.plane.claims
            or p in self.blocked_v_pts
        ):
            return
        col = self._cols.get(p.x)
        if col and p.y in col:
            col.discard(p.y)
            if not col:
                del self._cols[p.x]
            self._cols_sorted.pop(p.x, None)

    def sorted_row(self, y: int) -> list[int]:
        """Sorted x coordinates obstructing horizontal movement on row y."""
        lst = self._rows_sorted.get(y)
        if lst is None:
            lst = self._rows_sorted[y] = sorted(self._rows.get(y, ()))
        return lst

    def sorted_col(self, x: int) -> list[int]:
        """Sorted y coordinates obstructing vertical movement on column x."""
        lst = self._cols_sorted.get(x)
        if lst is None:
            lst = self._cols_sorted[x] = sorted(self._cols.get(x, ()))
        return lst

    # -- crossing range sums (the A*'s crossover-aware bound) -----------

    def _cross_row(self, y: int) -> tuple[list[int], list[int]]:
        entry = self._cross_rows.get(y)
        if entry is None:
            entry = self._cross_rows[y] = _prefix_entry(
                self._cross_by_row.get(y, ())
            )
        return entry

    def _cross_col(self, x: int) -> tuple[list[int], list[int]]:
        entry = self._cross_cols.get(x)
        if entry is None:
            entry = self._cross_cols[x] = _prefix_entry(
                self._cross_by_col.get(x, ())
            )
        return entry

    def range_cross_h(self, y: int, a: int, b: int) -> int:
        """Total crossings a horizontal run entering ``x in [a..b]`` on
        row ``y`` would pay, over all nets (callers subtract their own)."""
        if a > b:
            return 0
        coords, sums = self._cross_row(y)
        if not coords:
            return 0
        lo = bisect_left(coords, a)
        hi = bisect_right(coords, b)
        return sums[hi] - sums[lo]

    def range_cross_v(self, x: int, a: int, b: int) -> int:
        """Total crossings a vertical run entering ``y in [a..b]`` on
        column ``x`` would pay, over all nets."""
        if a > b:
            return 0
        coords, sums = self._cross_col(x)
        if not coords:
            return 0
        lo = bisect_left(coords, a)
        hi = bisect_right(coords, b)
        return sums[hi] - sums[lo]

    # -- per-net queries -------------------------------------------------

    def net_points(self, net: str) -> set[Point]:
        """All points ``net`` uses — served from the contribution map in
        O(net size) instead of a full ``usage`` scan."""
        return set(self.contrib.get(net, ()))

    def view(
        self,
        net: str,
        allow: frozenset[Point] = frozenset(),
        extra_hard: frozenset[Point] = frozenset(),
    ) -> "NetView":
        return NetView(self, net, allow, extra_hard)


class NetView:
    """One net's window on the plane: global maps by reference plus the
    net's own small exception overlay ("all minus own net")."""

    __slots__ = (
        "x1",
        "y1",
        "x2",
        "y2",
        "blocked",
        "claims",
        "allow",
        "extra_hard",
        "blocked_h",
        "blocked_v",
        "cross_h",
        "cross_v",
        "occ_pts",
        "unblock_h",
        "unblock_v",
        "own_cross_h",
        "own_cross_v",
        "self_clear",
        "index",
        "net",
    )

    def __init__(
        self,
        index: PlaneIndex,
        net: str,
        allow: frozenset[Point],
        extra_hard: frozenset[Point] = frozenset(),
    ) -> None:
        plane = index.plane
        bounds = plane.bounds
        self.x1, self.y1 = bounds.x, bounds.y
        self.x2, self.y2 = bounds.x2, bounds.y2
        self.blocked = plane.blocked
        self.claims = plane.claims
        self.allow = allow
        self.extra_hard = extra_hard
        self.blocked_h = index.blocked_h_pts
        self.blocked_v = index.blocked_v_pts
        self.cross_h = index.cross_h
        self.cross_v = index.cross_v
        self.occ_pts = index.occ_pts
        self.index = index
        self.net = net
        own = index.contrib.get(net)
        if own:
            h_block, v_block, occ = index.h_block, index.v_block, index.occ
            # Points only this net blocks: passable for it.
            self.unblock_h = {
                p for p, c in own.items() if c[0] and h_block[p] == c[0]
            }
            self.unblock_v = {
                p for p, c in own.items() if c[1] and v_block[p] == c[1]
            }
            # Own crossing contributions to subtract from the totals.
            self.own_cross_h = {p: c[2] for p, c in own.items() if c[2]}
            self.own_cross_v = {p: c[3] for p, c in own.items() if c[3]}
            # Own points free of foreign wires: bends stay legal there.
            self.self_clear = {p for p in own if occ[p] == 1}
        else:
            self.unblock_h = self.unblock_v = self.self_clear = frozenset()
            self.own_cross_h = self.own_cross_v = {}

    # -- point queries (the routers inline the sets; these are for the
    # -- interval engine and tests) -------------------------------------

    def hard_at(self, q: Point) -> bool:
        if q in self.extra_hard:
            return True
        return (q in self.blocked or q in self.claims) and q not in self.allow

    def entry_blocked(self, q: Point, horizontal: bool) -> bool:
        """Would a wire of this net moving horizontally/vertically be
        forbidden to enter ``q`` by foreign wires?"""
        if horizontal:
            return q in self.blocked_h and q not in self.unblock_h
        return q in self.blocked_v and q not in self.unblock_v

    def crossings_at(self, q: Point, horizontal: bool) -> int:
        total = (self.cross_h if horizontal else self.cross_v).get(q, 0)
        if total:
            total -= (self.own_cross_h if horizontal else self.own_cross_v).get(
                q, 0
            )
        return total

    def foreign_at(self, q: Point) -> bool:
        """Does any *other* net use ``q`` (no bends/terminations there)?"""
        return q in self.occ_pts and q not in self.self_clear

    # -- straight-run jumps ---------------------------------------------

    def run_stop(self, vertical: bool, line: int, start: int, step: int) -> int | None:
        """First coordinate at or beyond ``start + step`` where a sweep of
        this net along column ``x=line`` (``vertical``) or row ``y=line``
        must stop, or ``None`` when it runs to the plane border.

        Uses the index's sorted per-row/column obstacle coordinates and
        skips entries this net is exempt from (its own wire, its
        ``allow`` terminals).
        """
        coords = (
            self.index.sorted_col(line) if vertical else self.index.sorted_row(line)
        )
        if not coords:
            return None
        if step > 0:
            i = bisect_left(coords, start + 1)
            while i < len(coords):
                c = coords[i]
                q = Point(line, c) if vertical else Point(c, line)
                if self._stops(q, vertical):
                    return c
                i += 1
            return None
        i = bisect_right(coords, start - 1) - 1
        while i >= 0:
            c = coords[i]
            q = Point(line, c) if vertical else Point(c, line)
            if self._stops(q, vertical):
                return c
            i -= 1
        return None

    def _stops(self, q: Point, vertical: bool) -> bool:
        if q in self.extra_hard:
            return True
        if (q in self.blocked or q in self.claims) and q not in self.allow:
            return True
        if vertical:
            return q in self.blocked_v and q not in self.unblock_v
        return q in self.blocked_h and q not in self.unblock_h
